//! Offline shim for the `rand` 0.8 API surface used by the `refgen`
//! workspace: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over primitive ranges.
//!
//! The container building this workspace has no access to crates.io, so the
//! real `rand` cannot be fetched; this crate stands in with a small,
//! deterministic xoshiro256**-based generator. It is *not* a
//! cryptographically secure or statistically rigorous replacement — it only
//! needs to drive reproducible benchmark-circuit generation and Monte-Carlo
//! examples.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended for seeding xoshiro.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&y));
        }
    }

    #[test]
    fn f64_samples_cover_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
