//! Offline shim for the `criterion` 0.5 API surface used by the `refgen`
//! bench targets: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The container building this workspace cannot reach crates.io, so the
//! real criterion cannot be fetched. This shim keeps every bench target
//! compiling and runnable (`cargo bench` prints wall-clock statistics per
//! benchmark) without criterion's statistical machinery, plots, or HTML
//! reports. Numbers it prints are mean/min/max over a bounded sample loop —
//! good enough for coarse regression spotting, not for publication.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark, mirroring criterion's type.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording one wall-clock sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call outside the measurement.
        let _ = std::hint::black_box(routine());
        let budget = Duration::from_millis(1500);
        let started = Instant::now();
        for _ in 0..self.target {
            let t0 = Instant::now();
            let _ = std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > budget {
                break;
            }
        }
    }
}

/// Group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many samples to record per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim uses a fixed time budget.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<S: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.sample_size, f);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<S: fmt::Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring criterion's entry type.
pub struct Criterion {
    enabled: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries with `--test`;
        // compile-check only in that mode, per criterion's own behavior.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { enabled: !test_mode }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: fmt::Display>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: 100 }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<S: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let name = id.to_string();
        self.run_one(&name, 100, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, sample_size: usize, mut f: F) {
        if !self.enabled {
            return;
        }
        let mut b = Bencher { samples: Vec::new(), target: sample_size.max(1) };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = b.samples.iter().min().expect("nonempty");
        let max = b.samples.iter().max().expect("nonempty");
        println!(
            "{name:<60} mean {:>12} min {:>12} max {:>12} (n={})",
            fmt_duration(mean),
            fmt_duration(*min),
            fmt_duration(*max),
            b.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Re-export matching criterion's `black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion { enabled: true };
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut ran = 0u32;
        group.bench_function("counts", |b| b.iter(|| ran += 1));
        group.finish();
        // warmup + up to 5 samples
        assert!(ran >= 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
