//! The case runner: configuration, RNG, and failure plumbing.

use std::fmt;

use crate::strategy::Strategy;

/// Subset of proptest's configuration honored by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!`) tolerated before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's assumptions were not met; draw another input.
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed constructor: every run draws the same case sequence.
    pub fn deterministic() -> Self {
        TestRng { state: 0x243f_6a88_85a3_08d3 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

/// Drives `config.cases` generated inputs through a property.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Builds a runner with a deterministic RNG.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config, rng: TestRng::deterministic() }
    }

    /// Runs the property against `config.cases` accepted inputs, panicking
    /// on the first failure with the generated input (no shrinking).
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        S::Value: Clone + fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut accepted: u32 = 0;
        let mut rejected: u32 = 0;
        while accepted < self.config.cases {
            let value = strategy.new_value(&mut self.rng);
            match test(value.clone()) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest: exceeded {} rejects after {} accepted cases",
                            self.config.max_global_rejects, accepted
                        );
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "proptest: property failed after {accepted} passing cases\n\
                         input: {value:?}\n{reason}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn deterministic_sequences_repeat() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn assume_retries(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![0f64..1.0, (2f64..3.0).prop_map(|v| v + 10.0)]) {
            prop_assert!((0.0..1.0).contains(&x) || (12.0..13.0).contains(&x));
        }

        #[test]
        fn full_domain_inclusive_ranges_sample(
            a in 0u64..=u64::MAX,
            b in i64::MIN..=i64::MAX,
            c in u8::MIN..=u8::MAX,
        ) {
            // Regression: span arithmetic must not overflow on full domains.
            let _ = (a, b, c);
            prop_assert!(true);
        }

        #[test]
        fn inclusive_float_ranges_stay_in_bounds(x in -2.0f64..=2.0) {
            prop_assert!((-2.0..=2.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(-1f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for e in &v {
                prop_assert!((-1.0..1.0).contains(e));
            }
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_input() {
        let mut runner = TestRunner::new(ProptestConfig { cases: 8, ..Default::default() });
        runner.run(&(0u64..10,), |(x,)| {
            if x < 100 {
                Err(TestCaseError::fail("always fails"))
            } else {
                Ok(())
            }
        });
    }
}
