//! The case runner: configuration, RNG, and failure plumbing.

use std::fmt;

use crate::strategy::Strategy;

/// Subset of proptest's configuration honored by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!`) tolerated before giving up.
    pub max_global_rejects: u32,
    /// Cap on accepted shrink steps when minimizing a failing case.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536, max_shrink_iters: 4_096 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's assumptions were not met; draw another input.
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed constructor: every run draws the same case sequence.
    pub fn deterministic() -> Self {
        TestRng { state: 0x243f_6a88_85a3_08d3 }
    }

    /// Snapshot of the generator state — enough to regenerate the next
    /// drawn value exactly (the unit regression files persist).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a [`TestRng::state`] snapshot.
    pub fn from_state(state: u64) -> Self {
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

/// Drives `config.cases` generated inputs through a property.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Builds a runner with a deterministic RNG.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config, rng: TestRng::deterministic() }
    }

    /// Runs the property against `config.cases` accepted inputs, shrinking
    /// and panicking on the first failure. Equivalent to
    /// [`TestRunner::run_named`] without regression persistence.
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        S::Value: Clone + fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        self.run_named(None, strategy, test)
    }

    /// Runs the property like [`TestRunner::run`], with regression
    /// persistence under `name`: any state recorded in the regression file
    /// is replayed *before* the fresh cases, and a new failure appends its
    /// state to the file (see the crate docs).
    pub fn run_named<S, F>(&mut self, name: Option<&str>, strategy: &S, test: F)
    where
        S: Strategy,
        S::Value: Clone + fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        // Replay persisted failures first: a fixed regression must stay
        // fixed, and an unfixed one should fail fast.
        if let Some(name) = name {
            for state in persistence::load(name) {
                let mut rng = TestRng::from_state(state);
                let value = strategy.new_value(&mut rng);
                if let Err(TestCaseError::Fail(reason)) = test(value.clone()) {
                    self.fail(Some(name), state, strategy, value, reason, &test, true);
                }
            }
        }
        let mut accepted: u32 = 0;
        let mut rejected: u32 = 0;
        while accepted < self.config.cases {
            let state = self.rng.state();
            let value = strategy.new_value(&mut self.rng);
            match test(value.clone()) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest: exceeded {} rejects after {} accepted cases",
                            self.config.max_global_rejects, accepted
                        );
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    self.fail(name, state, strategy, value, reason, &test, false);
                }
            }
        }
    }

    /// Shrinks a failing case, persists its generator state, and panics
    /// with both the original and the minimized input.
    #[allow(clippy::too_many_arguments)]
    fn fail<S, F>(
        &self,
        name: Option<&str>,
        state: u64,
        strategy: &S,
        value: S::Value,
        reason: String,
        test: &F,
        replayed: bool,
    ) -> !
    where
        S: Strategy,
        S::Value: Clone + fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let original = format!("{value:?}");
        let (minimal, steps, reason) =
            shrink_case(strategy, value, reason, test, self.config.max_shrink_iters);
        if let Some(name) = name {
            persistence::save(name, state);
        }
        let provenance = if replayed { " (replayed from the regression file)" } else { "" };
        panic!(
            "proptest: property failed{provenance}\n\
             input: {original}\n\
             minimal input after {steps} shrink steps: {minimal:?}\n\
             {reason}"
        );
    }
}

/// Minimizes a failing `value`: repeatedly applies the first
/// [`Strategy::shrink`] candidate that still fails, until no candidate
/// fails or `max_iters` accepted steps were taken. Returns the minimal
/// failing value, the number of accepted shrink steps, and the failure
/// reason of the minimal case. Rejected candidates (`prop_assume!`) are
/// treated as passing.
pub fn shrink_case<S, F>(
    strategy: &S,
    mut value: S::Value,
    mut reason: String,
    test: &F,
    max_iters: u32,
) -> (S::Value, u32, String)
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut steps = 0u32;
    'outer: while steps < max_iters {
        for candidate in strategy.shrink(&value) {
            if let Err(TestCaseError::Fail(r)) = test(candidate.clone()) {
                value = candidate;
                reason = r;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, steps, reason)
}

/// Regression-file persistence: failing generator states are recorded in
/// `proptest-regressions/<test>.txt` (one `cc <hex-state>` line each,
/// mirroring proptest's `cc <seed>` format) and replayed before the fresh
/// case sequence on the next run. The directory can be redirected with the
/// `PROPTEST_REGRESSIONS_DIR` environment variable; all I/O is
/// best-effort (an unwritable checkout never fails a test run).
pub mod persistence {
    use std::io::Write;
    use std::path::PathBuf;

    fn file_for(name: &str) -> PathBuf {
        let dir = std::env::var_os("PROPTEST_REGRESSIONS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("proptest-regressions"));
        // Test names arrive as `module::path::test_name`; keep them
        // filesystem-safe.
        dir.join(format!("{}.txt", name.replace("::", "-")))
    }

    /// States recorded for `name`, in file order.
    pub fn load(name: &str) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(file_for(name)) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| line.strip_prefix("cc "))
            .filter_map(|hex| u64::from_str_radix(hex.trim(), 16).ok())
            .collect()
    }

    /// Appends `state` to `name`'s regression file unless already present.
    pub fn save(name: &str, state: u64) {
        if load(name).contains(&state) {
            return;
        }
        let path = file_for(name);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let fresh = !path.exists();
        let Ok(mut file) = std::fs::OpenOptions::new().append(true).create(true).open(&path) else {
            return;
        };
        if fresh {
            let _ = writeln!(
                file,
                "# Seeds for failure cases the proptest shim generated in the past. It is\n\
                 # automatically read and these cases re-run before any novel cases are\n\
                 # generated. Safe to delete once the failure is fixed and verified."
            );
        }
        let _ = writeln!(file, "cc {state:016x}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn deterministic_sequences_repeat() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn assume_retries(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![0f64..1.0, (2f64..3.0).prop_map(|v| v + 10.0)]) {
            prop_assert!((0.0..1.0).contains(&x) || (12.0..13.0).contains(&x));
        }

        #[test]
        fn full_domain_inclusive_ranges_sample(
            a in 0u64..=u64::MAX,
            b in i64::MIN..=i64::MAX,
            c in u8::MIN..=u8::MAX,
        ) {
            // Regression: span arithmetic must not overflow on full domains.
            let _ = (a, b, c);
            prop_assert!(true);
        }

        #[test]
        fn inclusive_float_ranges_stay_in_bounds(x in -2.0f64..=2.0) {
            prop_assert!((-2.0..=2.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(-1f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for e in &v {
                prop_assert!((-1.0..1.0).contains(e));
            }
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_input() {
        let mut runner = TestRunner::new(ProptestConfig { cases: 8, ..Default::default() });
        runner.run(&(0u64..10,), |(x,)| {
            if x < 100 {
                Err(TestCaseError::fail("always fails"))
            } else {
                Ok(())
            }
        });
    }

    fn fails_at_or_above(threshold: u64) -> impl Fn((u64,)) -> Result<(), TestCaseError> {
        move |(x,)| {
            if x >= threshold {
                Err(TestCaseError::fail(format!("{x} >= {threshold}")))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn shrinking_finds_the_exact_boundary() {
        // From any failing start, halving + predecessor steps must land on
        // the smallest failing input.
        let strategy = (0u64..1_000,);
        for start in [999u64, 500, 57, 10] {
            let seed_reason = format!("{start} >= 10");
            let (minimal, steps, reason) = shrink_case(
                &strategy,
                (start,),
                seed_reason,
                &fails_at_or_above(10),
                ProptestConfig::default().max_shrink_iters,
            );
            assert_eq!(minimal, (10,), "from {start}");
            assert!(reason.contains(">= 10"));
            if start == 10 {
                assert_eq!(steps, 0);
            }
        }
    }

    #[test]
    fn shrinking_respects_range_starts() {
        // A property that always fails shrinks to the range start, not 0.
        let strategy = (37u64..1_000,);
        let (minimal, _, _) = shrink_case(
            &strategy,
            (731,),
            "seed".into(),
            &|_| Err(TestCaseError::fail("always")),
            1_024,
        );
        assert_eq!(minimal, (37,));
    }

    #[test]
    fn shrinking_truncates_vectors_to_minimal_length() {
        let strategy = (crate::collection::vec(0f64..1.0, 0..30),);
        let test = |(v,): (Vec<f64>,)| {
            if v.len() >= 4 {
                Err(TestCaseError::fail(format!("len {}", v.len())))
            } else {
                Ok(())
            }
        };
        let (minimal, _, _) = shrink_case(&strategy, (vec![0.5; 23],), "seed".into(), &test, 1_024);
        assert_eq!(minimal.0.len(), 4);
        // Element-wise shrinking also drove the survivors toward the range
        // start.
        assert!(minimal.0.iter().all(|&x| x == 0.0), "{:?}", minimal.0);
    }

    #[test]
    fn shrinking_tuples_minimizes_each_component() {
        let strategy = (0u64..100, -4.0f64..4.0);
        let test = |(a, b): (u64, f64)| {
            if a >= 7 && b > 1.0 {
                Err(TestCaseError::fail("both large"))
            } else {
                Ok(())
            }
        };
        let (minimal, _, _) = shrink_case(&strategy, (93, 3.5), "seed".into(), &test, 1_024);
        // The integer component reaches its boundary exactly; the float
        // component can only halve toward the range start (−4), and every
        // such candidate crosses below the 1.0 boundary and passes — so it
        // keeps its original value (the documented stateless-halving
        // limitation).
        assert_eq!(minimal.0, 7);
        assert!(minimal.1 > 1.0 && minimal.1 <= 3.5, "b = {}", minimal.1);
    }

    #[test]
    fn regression_states_persist_and_replay() {
        // Redirect persistence into a scratch dir (process-wide, hence a
        // name no other shim test writes).
        let dir =
            std::env::temp_dir().join(format!("proptest-shim-regressions-{}", std::process::id()));
        std::env::set_var("PROPTEST_REGRESSIONS_DIR", &dir);
        let name = "shim_persistence_demo";
        let strategy = (0u64..1_000,);

        let panicked = std::panic::catch_unwind(|| {
            let mut runner = TestRunner::new(ProptestConfig { cases: 64, ..Default::default() });
            runner.run_named(Some(name), &strategy, fails_at_or_above(10));
        });
        assert!(panicked.is_err(), "property must fail");

        // The failing state was recorded…
        let states = persistence::load(name);
        assert_eq!(states.len(), 1, "one regression line, got {states:?}");
        // …and regenerates a failing input on replay.
        let mut rng = TestRng::from_state(states[0]);
        let (x,) = strategy.new_value(&mut rng);
        assert!(x >= 10, "persisted state must reproduce the failure, got {x}");

        // A second run replays the regression before fresh cases and
        // reports it as such.
        let replay = std::panic::catch_unwind(|| {
            let mut runner = TestRunner::new(ProptestConfig { cases: 64, ..Default::default() });
            runner.run_named(Some(name), &strategy, fails_at_or_above(10));
        });
        let message = *replay.expect_err("still failing").downcast::<String>().unwrap();
        assert!(message.contains("replayed from the regression file"), "{message}");
        assert!(message.contains("minimal input after"), "{message}");

        std::env::remove_var("PROPTEST_REGRESSIONS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
