//! Offline shim for the `proptest` 1.x API surface used by the `refgen`
//! workspace: the `proptest!` macro, range/`prop_oneof!`/`prop_map`/
//! `collection::vec` strategies, `ProptestConfig`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! The container building this workspace cannot reach crates.io, so the
//! real proptest cannot be fetched. Behavior notes:
//!
//! * **Shrinking.** A failing case is minimized before the panic:
//!   [`strategy::Strategy::shrink`] proposes simplifications (integers and
//!   floats halve toward their range start, vectors truncate and shrink
//!   elements, tuples shrink one component at a time) and the runner keeps
//!   any candidate that still fails, iterating until a fixed point (or
//!   `ProptestConfig::max_shrink_iters`). The panic reports both the
//!   original and the minimal input. `prop_map`, `prop_oneof!` and boxed
//!   strategies cannot invert their transformation and do not shrink.
//! * **Regression persistence.** The generator state of a failing case is
//!   appended to `proptest-regressions/<test>.txt` (`cc <hex>` lines) and
//!   replayed *before* the fresh case sequence on later runs — mirroring
//!   real proptest's seed files. See [`test_runner::persistence`].
//! * **Deterministic seeding.** Every test runs the same case sequence on
//!   every machine, which makes CI stable.
//! * Rejections (`prop_assume!`) are retried without counting toward
//!   `cases`, up to a bounded attempt budget.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of proptest's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }

    /// Strategy producing arbitrary values of a primitive type.
    pub fn any<T: crate::strategy::Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Supports the two forms used in this workspace: with and without a
/// leading `#![proptest_config(expr)]` inner attribute. Each test is
/// emitted as a zero-argument function carrying through all attributes
/// (including `#[test]`), whose body draws `config.cases` inputs from the
/// tuple of strategies and runs the original body against each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
    )* ) => { $(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run_named(
                ::core::option::Option::Some(concat!(module_path!(), "::", stringify!($name))),
                &( $( $strat, )+ ),
                |( $( $pat, )+ )| {
                    { $body }
                    ::core::result::Result::Ok(())
                },
            );
        }
    )* };
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Rejects the current case (retried, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
