//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bounds for collection strategies: `lo..hi` exclusive-style.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out: Vec<Vec<S::Value>> = Vec::new();
        // Length shrinks first (halving, then dropping the last element),
        // never below the strategy's minimum length…
        let min = self.size.lo;
        if value.len() > min {
            let half = min.max(value.len() / 2);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            if value.len() - 1 > half {
                out.push(value[..value.len() - 1].to_vec());
            }
        }
        // …then element-wise shrinks (each element's most aggressive
        // candidate, one position at a time).
        for (i, v) in value.iter().enumerate() {
            if let Some(candidate) = self.element.shrink(v).into_iter().next() {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

/// Builds a strategy for `Vec`s with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
