//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bounds for collection strategies: `lo..hi` exclusive-style.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Builds a strategy for `Vec`s with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
