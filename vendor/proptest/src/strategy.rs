//! Value-generation strategies with simplification (shrinking) hooks.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, most aggressive
    /// first. The runner keeps any candidate that still fails and repeats
    /// until no candidate fails (iterative halving/truncation — see the
    /// crate docs). The default is "not shrinkable" (empty); ranges,
    /// tuples and `collection::vec` override it. `prop_map`, `prop_oneof!`
    /// and boxed strategies cannot invert their transformation and stay
    /// unshrinkable.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Transforms generated values with `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.new_value(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.new_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// Builds the whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain strategy for primitive types.
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// Shrink candidates for an integer drawn from a range starting at
/// `start`: the range start (most aggressive), the midpoint toward it
/// (halving), and the predecessor (final fine adjustment) — deduplicated,
/// in that order.
fn shrink_int(start: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v > start {
        for candidate in [start, start + (v - start) / 2, v - 1] {
            if candidate != v && out.last() != Some(&candidate) {
                out.push(candidate);
            }
        }
    }
    out
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // i128 arithmetic so full-domain ranges (e.g.
                // i64::MIN..i64::MAX) cannot overflow the subtraction.
                let span = self.end as i128 - self.start as i128;
                (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = *self.end() as i128 - *self.start() as i128 + 1;
                (*self.start() as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Shrink candidates for a float drawn from a range starting at `start`:
/// the start itself, then the midpoint toward it.
fn shrink_float(start: f64, v: f64) -> Vec<f64> {
    let d = v - start;
    if d == 0.0 || !d.is_finite() {
        return Vec::new();
    }
    let mut out = vec![start];
    let half = start + d / 2.0;
    if half != v && half != start {
        out.push(half);
    }
    out
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float(self.start as f64, *value as f64)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                self.start() + (rng.next_f64() as $t) * (self.end() - self.start())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float(*self.start() as f64, *value as f64)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Shrink one component at a time, holding the others fixed.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!((A, 0));
impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6), (H, 7));
