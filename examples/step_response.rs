//! Closed-form transient analysis from recovered coefficients: partial
//! fractions give the step response of a 5th-order Butterworth LC ladder
//! without any time-stepping — a capability that exists *because* the exact
//! coefficients were recovered.
//!
//! ```text
//! cargo run --release --example step_response
//! ```

use refgen::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f_c = 1e6;
    let circuit = library::lc_ladder_lowpass(5, 50.0, f_c);
    let nf = Session::for_circuit(&circuit)
        .spec(TransferSpec::voltage_gain("VIN", "out"))
        .solve()?
        .network;
    let pf = nf.partial_fractions()?;

    println!("5th-order Butterworth LC ladder, fc = {f_c:.0e} Hz");
    println!("poles (all on the Butterworth circle):");
    for (p, r) in &pf.terms {
        println!("  p = {:>12.4e} {:+.4e}j   residue {:.3e}{:+.3e}j", p.re, p.im, r.re, r.im);
    }
    println!("\nstep response (final value {:.4}):", pf.final_value());
    let t_end = 4.0 / f_c;
    let cols = 58.0;
    for k in 0..=40 {
        let t = t_end * (k as f64) / 40.0;
        let y = pf.step_response(t);
        let col = (y / 0.6 * cols).clamp(0.0, cols) as usize;
        println!("{:>8.2} ns |{}*  {:.4}", t * 1e9, " ".repeat(col), y);
    }
    println!(
        "\n(Butterworth n=5 step: ~11% overshoot over the 0.5 matched-divider \
         final value, then flat — no simulator time-stepping involved.)"
    );
    Ok(())
}
