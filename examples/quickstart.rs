//! Quickstart: recover the exact transfer-function coefficients of an RC
//! ladder through the `Session` API, watch the solve through an `Observer`,
//! and inspect poles and Bode response.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use refgen::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12-section RC low-pass ladder with IC-like element values.
    let circuit = library::rc_ladder(12, 1e3, 1e-9);
    let spec = TransferSpec::voltage_gain("VIN", "out");

    // Numerical reference generation: a Session owns circuit, spec, config
    // and observer; the default solver is the paper's adaptive-scaling
    // interpolator (σ = 6 significant digits). The observer receives every
    // typed Diagnostic event as the solve progresses.
    let mut observer = CollectObserver::new();
    let solution = Session::for_circuit(&circuit)
        .spec(spec.clone())
        .config(RefgenConfig::default())
        .observer(&mut observer)
        .solve()?;
    let nf = &solution.network;

    println!("H(s) = N(s)/D(s) via the `{}` solver, with:", solution.method);
    println!("  numerator degree   {:?}", nf.numerator.degree());
    println!("  denominator degree {:?}", nf.denominator.degree());
    println!("  DC gain            {:.6}", nf.dc_gain().re);

    println!("\ndenominator coefficients (note the ~6 decades per step):");
    for (i, c) in nf.denominator.coeffs().iter().enumerate() {
        println!("  p{i:<2} = {:.6}", c.re());
    }

    println!("\npoles (rad/s):");
    let mut poles = nf.poles();
    poles.sort_by(|a, b| a.norm().partial_cmp(&b.norm()).expect("finite"));
    for p in poles {
        println!("  {:.4}", p);
    }

    // The diagnostic trail: one WindowOpened per interpolation, plus any
    // declared zeros / gap repairs / cross-check mismatches.
    println!("\ndiagnostics streamed during the solve:");
    for d in &observer.events {
        println!("  [{:?}] {d}", d.severity());
    }

    // Cross-validate against the independent AC simulator (paper Fig. 2
    // methodology).
    let freqs = log_space(1.0, 1e9, 200);
    let rep = validate_against_ac(nf, &circuit, &spec, &freqs)?;
    println!(
        "\nvalidation vs AC simulator over {} points: max {:.2e} dB / {:.2e}° deviation",
        freqs.len(),
        rep.max_mag_err_db,
        rep.max_phase_err_deg
    );

    println!("\nrecovery cost:");
    println!(
        "  denominator: {} interpolations, {} points total",
        nf.report.denominator.windows.len(),
        nf.report.denominator.total_points
    );
    Ok(())
}
