//! Monte-Carlo tolerance analysis as a batch session.
//!
//! One `BatchSession` solves a fleet of process corners of the Miller
//! opamp — every R/G/C/gm value under a uniform relative tolerance — on a
//! persistent worker pool with one compiled plan cache: threads spawn
//! once for the whole fleet and the pivot search that normally starts
//! every window plan happens once per window-scale region per *topology*,
//! not per corner. The aggregate `BatchReport` delivers per-coefficient
//! mean/σ directly; the per-corner `Solution`s still carry full network
//! functions, so derived metrics (DC gain, GBW, phase margin) come from
//! the same run.
//!
//! ```text
//! cargo run --release --example monte_carlo
//! ```

use refgen::prelude::*;

/// Unity-gain crossover by bisection on |H|.
fn gbw_hz(nf: &NetworkFunction) -> f64 {
    let (mut lo, mut hi): (f64, f64) = (1e3, 1e10);
    for _ in 0..60 {
        let mid = (lo * hi).sqrt();
        if nf.response_at_hz(mid).abs() > 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = library::miller_two_stage_opamp(2e-12, 5e-12);
    let corners = 100;
    // ±8.6 % uniform ≈ the σ = 5 % log-normal spread of the old per-corner
    // loop, now expressed as a tolerance recipe on element classes.
    let tolerances = Perturbation::all_relative(0.086);

    let mut progress = |d: &Diagnostic| {
        if let Diagnostic::VariantSolved { variant, refactor_hits, .. } = d {
            if (variant + 1) % 25 == 0 {
                eprintln!(
                    "  corner {:>3} solved ({refactor_hits} pivot-order reuses)",
                    variant + 1
                );
            }
        }
    };
    let run = Session::for_circuit(&base)
        .spec(TransferSpec::voltage_gain("VIN", "out"))
        .config(RefgenConfig::builder().executor(ExecutorKind::Pool).build())
        .observer(&mut progress)
        .variants(VariantSet::new(tolerances, corners).seed(20260612))
        .solve_all()?;

    // Derived metrics per corner, straight from the batch's solutions.
    let mut dc = Vec::with_capacity(corners);
    let mut gbw = Vec::with_capacity(corners);
    let mut pm = Vec::with_capacity(corners);
    for s in run.solutions() {
        let nf = &s.network;
        dc.push(20.0 * nf.dc_gain().abs().log10());
        let f_u = gbw_hz(nf);
        gbw.push(f_u);
        // Phase margin: 180° minus the lag accumulated from DC to the
        // unity-gain crossover (the DC reference removes the inverting
        // stage's 180° offset).
        let lag = (nf.response_at_hz(f_u) / nf.dc_gain()).arg().to_degrees();
        pm.push(180.0 - lag.abs());
    }

    let stats = |v: &[f64]| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
        let mut sorted = v.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (mean, var.sqrt(), sorted[0], sorted[v.len() - 1])
    };
    println!("Miller opamp, {corners} Monte-Carlo corners (±8.6 % uniform on all values):\n");
    for (name, v, unit) in
        [("DC gain", &dc, "dB"), ("GBW", &gbw, "Hz"), ("phase margin", &pm, "deg")]
    {
        let (mean, std, min, max) = stats(v);
        println!(
            "{name:>13}: mean {mean:>12.4e} {unit:<4} σ {std:>10.3e}  range [{min:.4e}, {max:.4e}]"
        );
    }

    // Coefficient-level spread comes from the batch report for free.
    println!("\nDenominator coefficient spread (first five, relative σ):");
    for (i, c) in run.report.denominator.iter().take(5).enumerate() {
        let rel = if c.mean == 0.0 { 0.0 } else { c.std_dev() / c.mean.abs() };
        println!("  p{i}: mean {:>12.4e}   σ/|mean| {rel:.3}", c.mean);
    }
    println!(
        "\nFleet cost: {} corners, {} pivot searches total ({} plan reuses), \
         {} pivot-order replays.",
        run.report.variants,
        run.report.pivot_searches,
        run.report.shared_plan_hits,
        run.report.total_refactor_hits,
    );
    println!(
        "Each corner is a full coefficient recovery — an analog opamp \
         characterized across process spread without a single SPICE sweep."
    );
    Ok(())
}
