//! Monte-Carlo tolerance analysis on top of reference generation.
//!
//! Because the adaptive interpolator recovers a complete `N(s)/D(s)` in
//! tens of milliseconds, running it across random process corners is cheap:
//! here every passive/active value of the Miller opamp is perturbed
//! log-normally (σ = 5%) and the recovered references give DC gain, GBW and
//! phase margin distributions directly. One `Solver` instance is built once
//! and reused for every corner.
//!
//! ```text
//! cargo run --release --example monte_carlo
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use refgen::circuit::ElementKind;
use refgen::prelude::*;

/// Rebuilds `base` with every R/G/C/gm value multiplied by a log-normal
/// factor `exp(σ·N(0,1))`.
fn perturb(base: &Circuit, sigma: f64, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new();
    let factor = |rng: &mut StdRng| -> f64 {
        // Box–Muller from two uniforms.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (sigma * n).exp()
    };
    for el in base.elements() {
        let p = base.node_name(el.nodes.0).to_string();
        let m = base.node_name(el.nodes.1).to_string();
        match &el.kind {
            ElementKind::Resistor { ohms } => {
                c.add_resistor(&el.name, &p, &m, ohms * factor(rng)).expect("copy")
            }
            ElementKind::Conductance { siemens } => {
                c.add_conductance(&el.name, &p, &m, siemens * factor(rng)).expect("copy")
            }
            ElementKind::Capacitor { farads } => {
                c.add_capacitor(&el.name, &p, &m, farads * factor(rng)).expect("copy")
            }
            ElementKind::Vccs { gm, control } => {
                let cp = base.node_name(control.0).to_string();
                let cm = base.node_name(control.1).to_string();
                c.add_vccs(&el.name, &p, &m, &cp, &cm, gm * factor(rng)).expect("copy")
            }
            ElementKind::VSource { ac } => c.add_vsource(&el.name, &p, &m, *ac).expect("copy"),
            other => panic!("unexpected element in opamp: {other:?}"),
        }
    }
    c
}

/// Unity-gain crossover by bisection on |H|.
fn gbw_hz(nf: &NetworkFunction) -> f64 {
    let (mut lo, mut hi): (f64, f64) = (1e3, 1e10);
    for _ in 0..60 {
        let mid = (lo * hi).sqrt();
        if nf.response_at_hz(mid).abs() > 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = library::miller_two_stage_opamp(2e-12, 5e-12);
    let spec = TransferSpec::voltage_gain("VIN", "out");
    let solver = AdaptiveInterpolator::default();
    let mut rng = StdRng::seed_from_u64(20260612);

    let runs = 100;
    let mut dc = Vec::with_capacity(runs);
    let mut gbw = Vec::with_capacity(runs);
    let mut pm = Vec::with_capacity(runs);
    for _ in 0..runs {
        let c = perturb(&base, 0.05, &mut rng);
        let nf = solver.solve(&c, &spec)?.network;
        dc.push(20.0 * nf.dc_gain().abs().log10());
        let f_u = gbw_hz(&nf);
        gbw.push(f_u);
        // Phase margin: 180° minus the phase lag accumulated from DC to the
        // unity-gain crossover (the DC reference removes the inverting
        // stage's 180° offset).
        let lag = (nf.response_at_hz(f_u) / nf.dc_gain()).arg().to_degrees();
        pm.push(180.0 - lag.abs());
    }

    let stats = |v: &[f64]| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
        let mut sorted = v.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (mean, var.sqrt(), sorted[0], sorted[v.len() - 1])
    };
    println!("Miller opamp, {runs} Monte-Carlo corners (σ = 5% log-normal on all values):\n");
    for (name, v, unit) in
        [("DC gain", &dc, "dB"), ("GBW", &gbw, "Hz"), ("phase margin", &pm, "deg")]
    {
        let (mean, std, min, max) = stats(v);
        println!(
            "{name:>13}: mean {mean:>12.4e} {unit:<4} σ {std:>10.3e}  range [{min:.4e}, {max:.4e}]"
        );
    }
    println!(
        "\nEach corner is a full coefficient recovery — {runs} corners of an \
         analog opamp characterized without a single SPICE sweep."
    );
    Ok(())
}
