//! Reproduces the paper's **Table 1** on the positive-feedback OTA
//! (Fig. 1): the round-off failure of plain unit-circle interpolation, and
//! the partial rescue by a fixed 1e9 frequency scale factor.
//!
//! ```text
//! cargo run --release --example ota_table1
//! ```

use refgen::circuit::library::positive_feedback_ota;
use refgen::core::baseline::static_interpolation;
use refgen::core::{AdaptiveInterpolator, PolyKind, RefgenConfig};
use refgen::mna::{Scale, TransferSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = positive_feedback_ota();
    let spec = TransferSpec::voltage_gain("VIN", "out");
    let cfg = RefgenConfig::default();

    // The true coefficients, from the adaptive algorithm, for comparison.
    let truth = AdaptiveInterpolator::new(cfg).network_function(&circuit, &spec)?;
    let order = truth.denominator.degree().expect("OTA has dynamics");
    println!("true denominator order: {order} (paper's OTA estimate: 9)\n");

    // (a) unit-circle interpolation, no scaling — Table 1a.
    let a = static_interpolation(&circuit, &spec, Scale::unit(), &cfg)?;
    println!("Table 1a — no scaling: coefficient magnitudes vs truth");
    println!("{:>4} {:>14} {:>14} {:>9}", "s^i", "interpolated", "true", "rel.err");
    for i in 0..=order {
        let got = a.denormalized(PolyKind::Denominator, i).expect("in range");
        let want = truth.denominator.coeffs()[i];
        let rel = ((got - want).norm() / want.norm()).to_f64();
        println!(
            "{:>4} {:>14.3} {:>14.3} {:>9.1e}{}",
            format!("s{i}"),
            got.re(),
            want.re(),
            rel,
            if rel > 1e-3 { "   <-- garbage" } else { "" },
        );
    }
    let (lo, hi) = a.denominator.region.expect("window exists");
    println!("--> only p{lo}..p{hi} survive round-off (paper: most of Table 1a is invalid)\n");

    // (b) frequency scale factor 1e9 — Table 1b.
    let b = static_interpolation(&circuit, &spec, Scale::new(1e9, 1.0), &cfg)?;
    println!("Table 1b — frequency scale 1e9: the valid window widens");
    println!("{:>4} {:>16} {:>7} {:>9}", "s^i", "normalized", "valid", "rel.err");
    for i in 0..=order {
        let norm = b.denominator.normalized_at(i).expect("in range");
        let got = b.denormalized(PolyKind::Denominator, i).expect("in range");
        let want = truth.denominator.coeffs()[i];
        let rel = ((got - want).norm() / want.norm()).to_f64();
        println!(
            "{:>4} {:>16.4} {:>7} {:>9.1e}",
            format!("s{i}"),
            norm.re(),
            if b.denominator.is_valid(i) { "yes" } else { "no" },
            rel,
        );
    }
    let (lo, hi) = b.denominator.region.expect("window exists");
    println!("--> valid region p{lo}..p{hi}: one fixed scale still cannot cover everything;");
    println!("    the adaptive algorithm (see ua741_adaptive) closes the rest.");
    Ok(())
}
