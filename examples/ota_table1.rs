//! Reproduces the paper's **Table 1** on the positive-feedback OTA
//! (Fig. 1): the round-off failure of plain unit-circle interpolation, and
//! the partial rescue by a fixed 1e9 frequency scale factor — both through
//! the baseline `Solver` types.
//!
//! ```text
//! cargo run --release --example ota_table1
//! ```

use refgen::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = library::positive_feedback_ota();
    let spec = TransferSpec::voltage_gain("VIN", "out");
    let cfg = RefgenConfig::default();

    // The true coefficients, from the adaptive algorithm, for comparison.
    let truth = Session::for_circuit(&circuit).spec(spec.clone()).config(cfg).solve()?.network;
    let order = truth.denominator.degree().expect("OTA has dynamics");
    println!("true denominator order: {order} (paper's OTA estimate: 9)\n");

    // (a) unit-circle interpolation, no scaling — Table 1a.
    let a = UnitCircleSolver::new(cfg).interpolation(&circuit, &spec)?;
    println!("Table 1a — no scaling: coefficient magnitudes vs truth");
    println!("{:>4} {:>14} {:>14} {:>9}", "s^i", "interpolated", "true", "rel.err");
    for i in 0..=order {
        let got = a.denormalized(PolyKind::Denominator, i).expect("in range");
        let want = truth.denominator.coeffs()[i];
        let rel = ((got - want).norm() / want.norm()).to_f64();
        println!(
            "{:>4} {:>14.3} {:>14.3} {:>9.1e}{}",
            format!("s{i}"),
            got.re(),
            want.re(),
            rel,
            if rel > 1e-3 { "   <-- garbage" } else { "" },
        );
    }
    let (lo, hi) = a.denominator.region.expect("window exists");
    println!("--> only p{lo}..p{hi} survive round-off (paper: most of Table 1a is invalid)\n");

    // (b) frequency scale factor 1e9 — Table 1b.
    let b = StaticScalingSolver::with_scale(Scale::new(1e9, 1.0), cfg)
        .interpolation(&circuit, &spec)?;
    println!("Table 1b — frequency scale 1e9: the valid window widens");
    println!("{:>4} {:>16} {:>7} {:>9}", "s^i", "normalized", "valid", "rel.err");
    for i in 0..=order {
        let norm = b.denominator.normalized_at(i).expect("in range");
        let got = b.denormalized(PolyKind::Denominator, i).expect("in range");
        let want = truth.denominator.coeffs()[i];
        let rel = ((got - want).norm() / want.norm()).to_f64();
        println!(
            "{:>4} {:>16.4} {:>7} {:>9.1e}",
            format!("s{i}"),
            norm.re(),
            if b.denominator.is_valid(i) { "yes" } else { "no" },
            rel,
        );
    }
    let (lo, hi) = b.denominator.region.expect("window exists");
    println!("--> valid region p{lo}..p{hi}: one fixed scale still cannot cover everything;");
    println!("    the adaptive algorithm (see ua741_adaptive) closes the rest.");

    // The same comparison, one line per method, through the Solver trait.
    println!("\nas `&dyn Solver`s (unit-circle truncates; adaptive recovers all):");
    let solvers: [&dyn Solver; 3] = [
        &UnitCircleSolver::new(cfg),
        &StaticScalingSolver::with_scale(Scale::new(1e9, 1.0), cfg),
        &AdaptiveInterpolator::new(cfg),
    ];
    for solver in solvers {
        match solver.solve(&circuit, &spec) {
            Ok(s) => println!(
                "  {:>16}: degree {:?}, {} points",
                s.method,
                s.network.denominator.degree(),
                s.total_points()
            ),
            Err(e) => println!("  {:>16}: failed — {e}", solver.name()),
        }
    }
    Ok(())
}
