//! SBG demonstration: reference-controlled circuit simplification (the
//! paper's motivating application, §1).
//!
//! The OTA's small-signal model carries many parasitics that barely affect
//! its voltage gain. With the exact numerical references available, SBG can
//! strip them while *guaranteeing* the response deviation stays within a
//! budget — without references there is nothing trustworthy to compare to.
//! The reference generator is any `&dyn Solver`; here the paper's adaptive
//! interpolator.
//!
//! ```text
//! cargo run --release --example sbg_simplify
//! ```

use refgen::prelude::*;
use refgen::symbolic::{simplify_before_generation, SbgOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = library::positive_feedback_ota();
    let spec = TransferSpec::voltage_gain("VIN", "out");
    let solver = AdaptiveInterpolator::default();
    println!("positive-feedback OTA: {} elements before simplification", circuit.elements().len());

    for (mag_db, phase) in [(0.1, 1.0), (0.5, 3.0), (2.0, 10.0)] {
        let opts = SbgOptions {
            max_mag_err_db: mag_db,
            max_phase_err_deg: phase,
            freqs_hz: log_space(1e2, 1e9, 40),
        };
        let out = simplify_before_generation(&solver, &circuit, &spec, &opts)?;
        println!(
            "\nbudget {mag_db} dB / {phase}°: removed {} elements, {} remain \
             (final deviation {:.3} dB / {:.2}°)",
            out.removed.len(),
            out.remaining,
            out.final_mag_err_db,
            out.final_phase_err_deg
        );
        println!("  removed: {}", out.removed.join(", "));
    }
    println!(
        "\nLooser budgets remove more — exactly the SBG accuracy/complexity \
         dial the paper's references enable."
    );
    Ok(())
}
