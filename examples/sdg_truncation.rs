//! SDG demonstration: eq. (3) term truncation against numerical references.
//!
//! Expands a graded RC ladder's denominator into its full symbolic term
//! lists (the SAG baseline), then truncates each coefficient to the fewest
//! leading terms that reproduce the *reference* value within ε — the error
//! control loop the paper's reference generation exists to serve.
//!
//! ```text
//! cargo run --release --example sdg_truncation
//! ```

use refgen::prelude::*;
use refgen::symbolic::{symbolic_numerator, symbolic_polynomial, truncate_coefficients};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Graded values spread the term magnitudes, which is what makes
    // truncation productive (uniform ladders have all-equal terms).
    let circuit = library::graded_rc_ladder(5, 1e3, 1e-9, 4.0, 0.25);
    let spec = TransferSpec::voltage_gain("VIN", "out");

    // Full symbolic expansion (feasible only because the circuit is small —
    // the factorial wall here is why SDG/SBG exist at all).
    let terms = symbolic_polynomial(&circuit, PolyKind::Denominator)?;
    let total: usize = terms.iter().map(|c| c.terms.len()).sum();
    println!("full symbolic denominator: {total} terms across {} coefficients", terms.len());
    let num_terms = symbolic_numerator(&circuit, "VIN", "out")?;
    println!(
        "full symbolic numerator:   {} terms (ladder numerators are a single product)",
        num_terms.iter().map(|c| c.terms.len()).sum::<usize>()
    );

    // Numerical references from the adaptive interpolation engine.
    let nf = Session::for_circuit(&circuit).spec(spec).solve()?.network;

    for epsilon in [1e-1, 1e-2, 1e-4, 1e-8] {
        let rep = truncate_coefficients(&terms, &nf.denominator, epsilon);
        println!(
            "\nε = {epsilon:.0e}: keep {}/{} terms ({:.1}%)",
            rep.kept_terms(),
            rep.total_terms(),
            100.0 * rep.compression()
        );
        for c in &rep.coefficients {
            println!(
                "  s^{}: {:>3}/{:<3} terms, achieved rel err {:.2e}",
                c.power, c.kept, c.total, c.achieved_error
            );
        }
    }

    println!("\nlargest terms of the middle coefficient:");
    let mid = &terms[2];
    for t in mid.terms.iter().take(5) {
        println!("  {t}");
    }
    Ok(())
}
