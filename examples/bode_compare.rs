//! Reproduces the paper's **Fig. 2**: Bode diagrams of the µA741 voltage
//! gain from interpolated coefficients overlaid on the independent AC
//! ("electrical") simulator. Writes `fig2_bode.csv` next to the working
//! directory for plotting.
//!
//! ```text
//! cargo run --release --example bode_compare
//! ```

use refgen::prelude::*;
use std::fs::File;
use std::io::Write as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = library::ua741();
    let spec = TransferSpec::voltage_gain("VIN", "out");

    let nf = Session::for_circuit(&circuit).spec(spec.clone()).solve()?.network;
    let ac = AcAnalysis::new(&circuit, spec)?;

    let freqs = log_space(1.0, 1e8, 400);
    let interp = nf.bode(&freqs);
    let sim = ac.sweep(&freqs)?;

    let ph_i = unwrap_phase(&interp.iter().map(|&(_, _, p)| p).collect::<Vec<_>>());
    let ph_s = unwrap_phase(&sim.iter().map(|p| p.phase_deg()).collect::<Vec<_>>());

    let mut csv = File::create("fig2_bode.csv")?;
    writeln!(csv, "freq_hz,mag_interp_db,mag_sim_db,phase_interp_deg,phase_sim_deg")?;
    let mut max_mag: f64 = 0.0;
    let mut max_ph: f64 = 0.0;
    for (i, &f) in freqs.iter().enumerate() {
        writeln!(csv, "{f},{},{},{},{}", interp[i].1, sim[i].mag_db(), ph_i[i], ph_s[i])?;
        max_mag = max_mag.max((interp[i].1 - sim[i].mag_db()).abs());
        max_ph = max_ph.max((ph_i[i] - ph_s[i]).abs());
    }

    println!("wrote fig2_bode.csv ({} points, 1 Hz – 100 MHz)", freqs.len());
    println!("worst deviation: {max_mag:.3e} dB, {max_ph:.3e}°");
    println!("\nASCII magnitude plot (interpolated = simulator to plot width):");
    for i in (0..freqs.len()).step_by(16) {
        let m = interp[i].1;
        let col = ((m + 50.0) / 160.0 * 60.0).clamp(0.0, 60.0) as usize;
        println!("{:>10.2e} Hz |{}*  {:7.2} dB", freqs[i], " ".repeat(col), m);
    }
    Ok(())
}
