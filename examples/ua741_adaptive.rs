//! Reproduces the paper's **Tables 2–3**: the µA741 denominator recovered
//! by successive adaptively-scaled interpolations, with the eq. (17)
//! problem reduction shrinking each iteration.
//!
//! ```text
//! cargo run --release --example ua741_adaptive
//! ```

use refgen::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = library::ua741();
    let spec = TransferSpec::voltage_gain("VIN", "out");
    println!(
        "µA741-class opamp: {} elements, {} capacitors",
        circuit.elements().len(),
        circuit.capacitor_values().len()
    );

    // verify=false mirrors the paper's iteration structure exactly.
    let cfg = RefgenConfig::builder().verify(false).build();
    let (den, report) = Session::for_circuit(&circuit)
        .spec(spec.clone())
        .config(cfg)
        .solve_polynomial(PolyKind::Denominator)?;

    println!(
        "\ndenominator degree {} (order bound {}); {} interpolations, {} points total",
        den.degree().expect("non-trivial"),
        report.order_bound,
        report.windows.len(),
        report.total_points,
    );
    println!("\nper-iteration structure (cf. paper Tables 2a, 2b, 3):");
    for (k, w) in report.windows.iter().enumerate() {
        println!(
            "  {}: f = {:.3e}  g = {:.3e}  {:>3} pts{}  region {:?}",
            k + 1,
            w.scale.f,
            w.scale.g,
            w.points,
            if w.reduced { " (reduced)" } else { "          " },
            w.region,
        );
    }

    println!("\ncoefficients span {} decades:", {
        let first = den.coeffs().first().expect("nonempty").norm().log10();
        let last = den.coeffs().last().expect("nonempty").norm().log10();
        (first - last).round() as i64
    });
    for (i, c) in den.coeffs().iter().enumerate() {
        if i % 4 == 0 || i + 1 == den.coeffs().len() {
            println!("  p{i:<3} = {:.5}", c.re());
        }
    }

    // The same run without reduction, to show the §3.3 saving.
    let (_, rep_nr) = Session::for_circuit(&circuit)
        .spec(spec)
        .config(RefgenConfig::builder().verify(false).reduce(false).build())
        .solve_polynomial(PolyKind::Denominator)?;
    println!(
        "\neq. (17) reduction: {} points vs {} without — the paper's \
         3.9s/2.3s/0.9s per-iteration CPU-time decrease",
        report.total_points, rep_nr.total_points
    );
    Ok(())
}
