//! Adjoint sensitivity analysis: which elements actually matter?
//!
//! Two factorizations per frequency yield ∂H/∂x for *every* element — the
//! quantitative footing under SBG's "contribution appropriately measured".
//! The ranking below correlates with what `sbg_simplify` removes: the
//! lowest-sensitivity elements go first.
//!
//! ```text
//! cargo run --release --example sensitivity_ranking
//! ```

use refgen::mna::MnaSystem;
use refgen::numeric::Complex;
use refgen::prelude::*;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = library::positive_feedback_ota();
    let spec = TransferSpec::voltage_gain("VIN", "out");
    let sys = MnaSystem::new(&circuit)?;

    // Worst-case normalized sensitivity across the band of interest.
    let mut worst: HashMap<String, f64> = HashMap::new();
    for f in log_space(1e3, 1e9, 25) {
        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * f);
        for item in sys.sensitivities(s, Scale::unit(), &spec)? {
            let mag = item.normalized.abs();
            let e = worst.entry(item.element).or_insert(0.0);
            if mag > *e {
                *e = mag;
            }
        }
    }
    let mut ranked: Vec<(String, f64)> = worst.into_iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

    println!("OTA elements by worst-case |normalized sensitivity| (1 kHz – 1 GHz):\n");
    println!("{:>12} {:>14}   most critical", "element", "max |S|");
    for (name, s) in ranked.iter().take(10) {
        println!("{name:>12} {s:>14.4e}   {}", "#".repeat((s.log10() + 6.0).max(0.0) as usize));
    }
    println!("   …");
    println!("{:>12} {:>14}   safest to simplify", "element", "max |S|");
    for (name, s) in ranked.iter().rev().take(10).collect::<Vec<_>>().iter().rev() {
        println!("{name:>12} {s:>14.4e}");
    }
    println!(
        "\nCompare with `cargo run --example sbg_simplify`: SBG removes elements \
         from the bottom of this list."
    );
    Ok(())
}
