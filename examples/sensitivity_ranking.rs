//! Sensitivity ranking as a finite-difference batch session, cross-checked
//! against adjoint sensitivities.
//!
//! Which elements actually matter? Two independent answers:
//!
//! 1. **Finite differences on recovered coefficients** — one
//!    `BatchSession` solves ±1 % one-at-a-time variants of every
//!    perturbable OTA element (all same-topology, so the whole fleet
//!    shares one plan cache and worker pool) and ranks elements by the
//!    normalized DC-gain difference quotient `|Δ|H(0)|/H(0)| / (Δx/x)`.
//! 2. **Adjoint analysis** — two factorizations per frequency give
//!    `∂H/∂x` for every element at once; the worst-case normalized
//!    magnitude over the band is the classical ranking.
//!
//! The rankings agree at the top (and both correlate with what
//! `sbg_simplify` removes first); the finite-difference column is the one
//! that generalizes to *any* scalar metric of the recovered network
//! function.
//!
//! ```text
//! cargo run --release --example sensitivity_ranking
//! ```

use refgen::mna::MnaSystem;
use refgen::numeric::Complex;
use refgen::prelude::*;
use std::collections::HashMap;

const REL_STEP: f64 = 0.01;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = library::positive_feedback_ota();
    let spec = TransferSpec::voltage_gain("VIN", "out");

    // --- 1: finite differences through one batch session ---------------
    // Two variants (up/down) per perturbable element, in one fleet.
    let names: Vec<String> = circuit
        .elements()
        .iter()
        .filter(|el| scaled_variant(&circuit, &el.name, 1.0 + REL_STEP).is_ok())
        .map(|el| el.name.clone())
        .collect();
    let mut fleet = Vec::with_capacity(2 * names.len());
    for name in &names {
        fleet.push(scaled_variant(&circuit, name, 1.0 + REL_STEP)?);
        fleet.push(scaled_variant(&circuit, name, 1.0 - REL_STEP)?);
    }
    let run = Session::for_circuit(&circuit)
        .spec(spec.clone())
        .config(RefgenConfig::builder().executor(ExecutorKind::Pool).build())
        .variant_circuits(&fleet)
        .solve_all()?;

    let mut fd: Vec<(String, f64)> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let up = run.solutions()[2 * i].network.dc_gain().abs();
            let down = run.solutions()[2 * i + 1].network.dc_gain().abs();
            let mid = 0.5 * (up + down);
            // Central difference of ln|H(0)| w.r.t. ln x.
            let s = (up - down) / (2.0 * REL_STEP * mid);
            (name.clone(), s.abs())
        })
        .collect();
    fd.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

    // --- 2: adjoint worst-case over the band ----------------------------
    let sys = MnaSystem::new(&circuit)?;
    let mut worst: HashMap<String, f64> = HashMap::new();
    for f in log_space(1e3, 1e9, 25) {
        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * f);
        for item in sys.sensitivities(s, Scale::unit(), &spec)? {
            let mag = item.normalized.abs();
            let e = worst.entry(item.element).or_insert(0.0);
            if mag > *e {
                *e = mag;
            }
        }
    }
    let mut adjoint: Vec<(String, f64)> = worst.into_iter().collect();
    adjoint.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

    println!(
        "OTA sensitivity ranking — finite-difference fleet ({} solves, {} pivot searches) \
         vs adjoint band worst-case:\n",
        run.report.variants, run.report.pivot_searches,
    );
    println!(
        "{:>4} {:>12} {:>14}   {:>12} {:>14}",
        "rank", "FD element", "|dln|H0|/dlnx|", "adjoint", "max |S|"
    );
    for i in 0..8.min(fd.len()) {
        println!(
            "{:>4} {:>12} {:>14.4e}   {:>12} {:>14.4e}",
            i + 1,
            fd[i].0,
            fd[i].1,
            adjoint[i].0,
            adjoint[i].1,
        );
    }
    println!("\n{:>12}   safest to simplify (finite-difference tail):", "");
    for (name, s) in fd.iter().rev().take(6).collect::<Vec<_>>().iter().rev() {
        println!("{name:>12} {s:>14.4e}");
    }
    println!(
        "\nCompare with `cargo run --example sbg_simplify`: SBG removes elements \
         from the bottom of this list."
    );
    Ok(())
}
