//! Parse a SPICE-like netlist and run the whole analysis it describes.
//!
//! The netlist carries everything: `.SUBCKT` definitions with default
//! parameters, hierarchical `X` instances, the `.AC` sweep grid, and the
//! `.TF` transfer-function card. Pass a netlist path as the first argument
//! (see `examples/netlists/*.sp`), or run without arguments to use a
//! built-in Sallen-Key biquad from the `.SUBCKT` building-block library.
//!
//! ```text
//! cargo run --release --example netlist_tf [netlist.sp]
//! ```

use refgen::prelude::*;

/// Top-level fragment completed by [`library::netlist_with_library`]: the
/// biquad and the opamp macromodel inside it come from the shared
/// `.SUBCKT` library.
const BUILTIN_TOP: &str = "\
* Sallen-Key biquad on the opamp macromodel (f0 ~ 12.7 kHz)
VIN in 0 AC 1
X1 in out sallen_key r1=10k r2=10k c1=4n c2=390p
RL out 0 1meg
.ac dec 5 100 1meg
.tf V(out) VIN
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => library::netlist_with_library(BUILTIN_TOP),
    };
    let netlist = parse_netlist(&source)?;
    let circuit = &netlist.circuit;
    circuit.validate()?;
    println!(
        "parsed: {} elements, {} nodes, {} capacitors",
        circuit.elements().len(),
        circuit.node_count(),
        circuit.capacitor_values().len()
    );
    let flattened: Vec<&str> = circuit
        .elements()
        .iter()
        .filter(|e| e.name.contains('.'))
        .map(|e| e.name.as_str())
        .collect();
    if !flattened.is_empty() {
        println!("flattened from subcircuits: {}", flattened.join(", "));
    }

    // The `.TF` card drives the solve; no hand-built spec needed.
    let nf = Session::for_circuit(circuit).analysis(&netlist.analysis).solve()?.network;

    println!("\nnumerator coefficients:");
    for (i, c) in nf.numerator.coeffs().iter().enumerate() {
        println!("  n{i} = {:.6}", c.re());
    }
    println!("denominator coefficients:");
    for (i, c) in nf.denominator.coeffs().iter().enumerate() {
        println!("  d{i} = {:.6}", c.re());
    }
    println!("\nDC gain: {:.4}", nf.dc_gain().re);
    for p in nf.poles() {
        let z = p.to_complex();
        println!(
            "pole at {:.4e} ± j{:.4e} rad/s (f = {:.2} Hz)",
            z.re,
            z.im.abs(),
            z.abs() / (2.0 * std::f64::consts::PI)
        );
    }

    // The `.AC` card fixes the sweep grid; cross-check the recovered
    // network function against the independent per-frequency LU path.
    if let (Some(ac_card), Some(tf_card)) = (netlist.analysis.ac(), netlist.analysis.tf()) {
        let ac = AcAnalysis::new(circuit, TransferSpec::from(tf_card))?;
        let points = ac.sweep_card(ac_card)?;
        println!("\n.AC sweep ({} points):", points.len());
        println!(
            "{:>12}  {:>10}  {:>10}  {:>12}",
            "freq [Hz]", "mag [dB]", "phase [°]", "interp err"
        );
        let step = (points.len() / 8).max(1);
        for p in points.iter().step_by(step) {
            let h = nf.response_at_hz(p.freq_hz);
            let err = (h - p.response).abs() / p.response.abs().max(1e-300);
            println!(
                "{:>12.3e}  {:>10.3}  {:>10.2}  {:>12.2e}",
                p.freq_hz,
                p.mag_db(),
                p.phase_deg(),
                err
            );
        }
    }
    Ok(())
}
