//! Parse a SPICE-like netlist and generate its numerical references.
//!
//! Pass a netlist path as the first argument, or run without arguments to
//! use a built-in Sallen-Key example.
//!
//! ```text
//! cargo run --release --example netlist_tf [netlist.sp]
//! ```

use refgen::prelude::*;

const BUILTIN: &str = "\
* Sallen-Key low-pass, f0 ~ 10 kHz, Q ~ 1.3
VIN in 0 AC 1
R1 in a 10k
R2 a b 10k
C1 a out 4n
+ ; C1 completes the positive-feedback path
C2 b 0 390p
E1 out 0 b 0 1
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => BUILTIN.to_string(),
    };
    let circuit = parse_spice(&source)?;
    circuit.validate()?;
    println!(
        "parsed: {} elements, {} nodes, {} capacitors",
        circuit.elements().len(),
        circuit.node_count(),
        circuit.capacitor_values().len()
    );

    let nf = Session::for_circuit(&circuit)
        .spec(TransferSpec::voltage_gain("VIN", "out"))
        .solve()?
        .network;

    println!("\nnumerator coefficients:");
    for (i, c) in nf.numerator.coeffs().iter().enumerate() {
        println!("  n{i} = {:.6}", c.re());
    }
    println!("denominator coefficients:");
    for (i, c) in nf.denominator.coeffs().iter().enumerate() {
        println!("  d{i} = {:.6}", c.re());
    }
    println!("\nDC gain: {:.4}", nf.dc_gain().re);
    for p in nf.poles() {
        let z = p.to_complex();
        println!(
            "pole at {:.4e} ± j{:.4e} rad/s (f = {:.2} Hz)",
            z.re,
            z.im.abs(),
            z.abs() / (2.0 * std::f64::consts::PI)
        );
    }
    Ok(())
}
