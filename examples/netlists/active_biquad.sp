* Self-contained hierarchical Sallen-Key biquad.
* A single-pole opamp macromodel is defined once and instantiated inside
* the biquad block; the top level overrides the biquad's RC values.

.subckt opamp inp inn out gm=1m rp=100meg cp=159p
RIN inp inn 10meg
G1 0 p inp inn {gm}
RP p 0 {rp}
CP p 0 {cp}
EOUT out 0 p 0 1
.ends opamp

.subckt sallen_key in out r1=10k r2=10k c1=4n c2=390p
R1 in a {r1}
R2 a b {r2}
C1 a out {c1}
C2 b 0 {c2}
XOP b out out opamp
.ends sallen_key

VIN in 0 AC 1
X1 in out sallen_key r1=8.2k r2=12k c1=3.3n c2=470p
RL out 0 1meg

.ac dec 10 100 1meg
.tf V(out) VIN
.end
