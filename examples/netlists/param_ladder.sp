* Parameterized RC section reused at three corner frequencies, plus a
* .param-driven default: the section default r={base} resolves in the
* caller's scope.
.param base=2k

.subckt section in out r={base} c=1n
R1 in out {r}
C1 out 0 {c}
.ends

VIN in 0 AC 1
X1 in a section
X2 a b section r=4k
X3 b out section r=8k c=500p

.ac dec 20 1k 1meg
.tf V(out) VIN
.end
