* Finite-rise pulse into a 2-section RC ladder: the .TRAN card drives
* the companion-model stepper, the .TF card names the transfer function
* the symbolic engine recovers for the closed-form cross-check.
VIN in 0 AC 1 PULSE(0 1 0 1e-7 1e-7 4e-6 1e-5)
R1 in n1 1k
C1 n1 0 1n
R2 n1 out 1k
C2 out 0 1n
.tran 2e-8 6e-6
.tf V(out) VIN
.end
