* Flat 6-section RC ladder with a linear sweep card.
VIN in 0 AC 1
R1 in n1 1k
C1 n1 0 1n
R2 n1 n2 1k
C2 n2 0 1n
R3 n2 n3 1k
C3 n3 0 1n
R4 n3 n4 1k
C4 n4 0 1n
R5 n4 n5 1k
C5 n5 0 1n
R6 n5 out 1k
C6 out 0 1n
.ac lin 50 1k 500k
.tf V(out) VIN
.end
