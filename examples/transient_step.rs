//! Companion-model transient analysis driven entirely by a netlist's
//! `.TRAN` card: parse, step, cross-check, and report step metrics.
//!
//! The netlist carries the pulse waveform on its source line and the time
//! axis on its `.TRAN` card; the session compiles one companion-model
//! `TransientPlan` (one pivot search, one numeric factorization, every
//! step a compiled replay) and the Richardson cross-check re-runs at Δt/2
//! through the *same* factorization to bound the discretization error.
//! Pass a netlist path as the first argument, or run without arguments to
//! use `examples/netlists/pulse_step.sp`.
//!
//! ```text
//! cargo run --release --example transient_step [netlist.sp]
//! ```

use refgen::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/examples/netlists/pulse_step.sp"
        ))?,
    };
    let netlist = parse_netlist(&source)?;
    let circuit = &netlist.circuit;
    circuit.validate()?;
    let card = netlist.analysis.tran().ok_or("netlist has no .TRAN card")?.clone();
    println!(
        "parsed: {} elements, {} nodes; .TRAN {:e} s step to {:e} s ({} steps)",
        circuit.elements().len(),
        circuit.node_count(),
        card.tstep,
        card.tstop,
        card.steps()
    );

    let result =
        Session::for_circuit(circuit).transient(TransientAnalysis::new(card).cross_check(true))?;
    println!(
        "method {} (order {}), {} steps, {} numeric factorization(s), {} compiled solves",
        result.method.label(),
        result.method.order(),
        result.stats.steps,
        result.stats.refactor_hits,
        result.stats.compiled_hits
    );
    if let Some(check) = &result.cross_check {
        println!(
            "Richardson cross-check at dt/2 = {:e}: max deviation {:.3e}, \
             error estimate {:.3e}",
            check.dt_half,
            check.max_abs_dev,
            check.error_estimate()
        );
    }

    let wave = result.node("out").ok_or("netlist has no node named `out`")?;
    let times = result.times();
    println!("\nv(out):");
    let cols = 58.0;
    let peak = wave.iter().fold(1e-12f64, |m, v| m.max(v.abs()));
    let rows = 40.min(times.len() - 1).max(1);
    for k in 0..=rows {
        let i = k * (times.len() - 1) / rows;
        let col = (wave[i] / peak * cols).clamp(0.0, cols) as usize;
        println!("{:>9.3} us |{}*  {:.4}", times[i] * 1e6, " ".repeat(col), wave[i]);
    }

    if let Some(m) = result.metrics("out") {
        println!("\nstep metrics for v(out):");
        println!("  final value  {:.4}", m.final_value);
        match m.overshoot_pct {
            Some(pct) => println!("  peak         {:.4} ({pct:.2}% overshoot)", m.peak),
            None => println!("  peak         {:.4} (overshoot undefined at zero final)", m.peak),
        }
        match m.rise_time {
            Some(tr) => println!("  rise time    {:.3e} s (10% to 90%)", tr),
            None => println!("  rise time    n/a"),
        }
        match m.settling_time {
            Some(ts) => println!("  settling     {:.3e} s (into the 2% band)", ts),
            None => println!("  settling     not settled within the window"),
        }
    }
    Ok(())
}
