//! # refgen — numerical reference generation for symbolic analysis
//!
//! Facade crate for the reproduction of *"An Algorithm for Numerical
//! Reference Generation in Symbolic Analysis of Large Analog Circuits"*
//! (I. García-Vargas, M. Galán, F. V. Fernández, A. Rodríguez-Vázquez,
//! DATE 1997). It re-exports the workspace crates:
//!
//! * [`numeric`] — complex / extended-range / double-double arithmetic,
//!   DFTs, polynomials.
//! * [`exec`] — dependency-free scoped-thread executor with deterministic,
//!   index-ordered collection (the batched-sampling engine's workers).
//! * [`sparse`] — sparse complex LU with exponent-tracked determinants.
//! * [`circuit`] — netlists, device models, benchmark circuit generators.
//! * [`mna`] — modified nodal analysis assembly and AC simulation.
//! * [`core`] — the paper's adaptive-scaling interpolation algorithm
//!   behind the `Solver`/`Session` API.
//! * [`symbolic`] — SBG/SDG consumers that use the numerical references.
//!
//! …and bundles the everyday names in [`prelude`].
//!
//! # Quickstart
//!
//! A [`Session`](core::Session) owns one solve — circuit, spec, config,
//! solver, observer — and is assembled by chaining:
//!
//! ```
//! use refgen::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = library::rc_ladder(6, 1e3, 1e-9);
//! let solution = Session::for_circuit(&circuit)
//!     .spec(TransferSpec::voltage_gain("VIN", "out"))
//!     .solve()?;
//! assert_eq!(solution.network.denominator.coeffs().len(), 7); // 6th order
//! # Ok(())
//! # }
//! ```
//!
//! Any [`Solver`](core::Solver) slots into the same session — the paper's
//! adaptive algorithm (the default), or the conventional baselines it is
//! compared against — and an [`Observer`](core::Observer) receives typed
//! [`Diagnostic`](core::Diagnostic) events while the solve runs:
//!
//! ```
//! use refgen::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = library::rc_ladder(6, 1e3, 1e-9);
//! let mut observer = CollectObserver::new();
//! let solution = Session::for_circuit(&circuit)
//!     .spec(TransferSpec::voltage_gain("VIN", "out"))
//!     .config(RefgenConfig::builder().verify(false).build())
//!     .observer(&mut observer)
//!     .solve()?;
//! assert_eq!(solution.method, "adaptive");
//! assert!(!observer.events.is_empty());
//! # Ok(())
//! # }
//! ```

pub use refgen_circuit as circuit;
pub use refgen_core as core;
pub use refgen_exec as exec;
pub use refgen_mna as mna;
pub use refgen_numeric as numeric;
pub use refgen_sparse as sparse;
pub use refgen_symbolic as symbolic;

/// The everyday names: `use refgen::prelude::*;` is enough for the common
/// build-circuit → session → solution → validate workflow.
pub mod prelude {
    pub use refgen_circuit::perturb::{scaled_variant, ElementClass, Perturbation, VariantSet};
    pub use refgen_circuit::{
        library, parse_netlist, parse_spice, to_spice, AcCard, AnalysisCard, AnalysisSpec, Circuit,
        Netlist, SweepGrid, TfCard, TfOutput, TranCard, Waveform,
    };
    pub use refgen_core::baseline::{
        multi_scale_grid, static_interpolation, MultiScaleGridSolver, StaticScalingSolver,
        UnitCircleSolver,
    };
    pub use refgen_core::{
        validate_against_ac, AdaptiveInterpolator, BatchReport, BatchRun, BatchSession, CoeffStats,
        CollectObserver, Diagnostic, ExecutorKind, FaultPolicy, NetworkFunction, NullObserver,
        Observer, PartialFractions, PolyKind, RefgenConfig, RefgenError, RichardsonCheck,
        SamplingRuntime, Session, Severity, Solution, Solver, StepMetrics, TransientAnalysis,
        TransientResult, ValidationReport, VariantOutcome,
    };
    pub use refgen_exec::WorkerPool;
    pub use refgen_mna::{
        log_space, unwrap_phase, AcAnalysis, AcPoint, IntegrationMethod, PlanCache, Scale,
        SweepPlan, SweepScratch, TransferSpec, TransientPlan, TransientScratch, TransientStats,
    };
    pub use refgen_sparse::{FactorProgram, ProgramScratch};
}
