//! # refgen — numerical reference generation for symbolic analysis
//!
//! Facade crate for the reproduction of *"An Algorithm for Numerical
//! Reference Generation in Symbolic Analysis of Large Analog Circuits"*
//! (I. García-Vargas, M. Galán, F. V. Fernández, A. Rodríguez-Vázquez,
//! DATE 1997). It re-exports the workspace crates:
//!
//! * [`numeric`] — complex / extended-range / double-double arithmetic,
//!   DFTs, polynomials.
//! * [`sparse`] — sparse complex LU with exponent-tracked determinants.
//! * [`circuit`] — netlists, device models, benchmark circuit generators.
//! * [`mna`] — modified nodal analysis assembly and AC simulation.
//! * [`core`] — the paper's adaptive-scaling interpolation algorithm.
//! * [`symbolic`] — SBG/SDG consumers that use the numerical references.
//!
//! # Quickstart
//!
//! ```
//! use refgen::circuit::library::rc_ladder;
//! use refgen::core::{AdaptiveInterpolator, RefgenConfig};
//! use refgen::mna::TransferSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = rc_ladder(6, 1e3, 1e-9);
//! let spec = TransferSpec::voltage_gain("in", "out");
//! let tf = AdaptiveInterpolator::new(RefgenConfig::default())
//!     .network_function(&circuit, &spec)?;
//! assert_eq!(tf.denominator.coeffs().len(), 7); // 6th-order denominator
//! # Ok(())
//! # }
//! ```

pub use refgen_circuit as circuit;
pub use refgen_core as core;
pub use refgen_mna as mna;
pub use refgen_numeric as numeric;
pub use refgen_sparse as sparse;
pub use refgen_symbolic as symbolic;
