//! Property tests for the executor contract: the persistent
//! [`WorkerPool`], the scoped [`par_map_indexed`], and a plain sequential
//! map must be indistinguishable for any pure map function — for arbitrary
//! item counts and worker counts, including more workers than items and
//! empty work lists — and a panicking map function must propagate from
//! both executors.

use proptest::prelude::*;
use refgen_exec::{par_map_indexed, Executor, WorkerPool};

/// A deterministic map whose per-item result exercises the scratch without
/// depending on scheduling: the scratch is a reusable buffer, not carried
/// state.
fn mapper(i: usize, x: &f64, buf: &mut Vec<f64>) -> (usize, f64) {
    buf.clear();
    buf.extend((0..5).map(|k| x.powi(k) + k as f64));
    (i, buf.iter().sum::<f64>() * (i as f64 + 1.0))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn pool_equals_scoped_equals_sequential(
        items in prop::collection::vec(-4.0f64..4.0, 0..40),
        workers in 0usize..9,
    ) {
        let sequential: Vec<(usize, f64)> =
            items.iter().enumerate().map(|(i, x)| mapper(i, x, &mut Vec::new())).collect();
        let scoped = par_map_indexed(workers, &items, Vec::new, mapper);
        let pool = WorkerPool::new(workers);
        let pooled = pool.par_map_indexed(&items, Vec::new, mapper);
        // f64 equality is intentional: the contract is bit-identity, not
        // approximate agreement.
        prop_assert_eq!(&scoped, &sequential);
        prop_assert_eq!(&pooled, &sequential);
    }

    #[test]
    fn one_pool_many_batches(
        batches in prop::collection::vec(prop::collection::vec(-2.0f64..2.0, 0..12), 1..6),
        workers in 1usize..5,
    ) {
        // A single pool reused across differently-sized batches (the batch
        // session shape) must match per-batch sequential maps.
        let pool = WorkerPool::new(workers);
        for items in &batches {
            let sequential: Vec<(usize, f64)> =
                items.iter().enumerate().map(|(i, x)| mapper(i, x, &mut Vec::new())).collect();
            let pooled = pool.par_map_indexed(items, Vec::new, mapper);
            prop_assert_eq!(pooled, sequential);
        }
    }

    #[test]
    fn executor_facade_is_strategy_independent(
        items in prop::collection::vec(0u64..1_000, 0..30),
        workers in 0usize..6,
    ) {
        let scoped = Executor::scoped(workers);
        let pooled = Executor::pool(workers);
        let run = |e: &Executor| e.par_map_indexed(&items, || 0u64, |i, &x, acc| {
            // Scratch used as a buffer whose prior contents never leak
            // into the result.
            *acc = x;
            *acc * 2 + i as u64
        });
        prop_assert_eq!(run(&scoped), run(&pooled));
        prop_assert_eq!(scoped.threads(), pooled.threads());
    }
}

// `std::thread::scope` re-raises worker panics with its own generic
// payload; the pool preserves the original payload (strictly more
// informative, same propagation guarantee).
#[test]
#[should_panic(expected = "a scoped thread panicked")]
fn scoped_panics_propagate() {
    let items: Vec<usize> = (0..32).collect();
    par_map_indexed(
        4,
        &items,
        || (),
        |i, _, _| {
            if i == 9 {
                panic!("scoped executor panic");
            }
        },
    );
}

#[test]
#[should_panic(expected = "pool executor panic")]
fn pool_panics_propagate() {
    let pool = WorkerPool::new(4);
    let items: Vec<usize> = (0..32).collect();
    pool.par_map_indexed(
        &items,
        || (),
        |i, _, _| {
            if i == 9 {
                panic!("pool executor panic");
            }
        },
    );
}

#[test]
fn workers_exceeding_items_never_deadlock() {
    for items in [0usize, 1, 2, 3] {
        let list: Vec<usize> = (0..items).collect();
        for workers in [1usize, 2, 8, 64] {
            let pool = WorkerPool::new(workers);
            let out = pool.par_map_indexed(&list, || (), |i, &x, _| i + x);
            assert_eq!(out.len(), items, "items {items}, workers {workers}");
        }
    }
}
