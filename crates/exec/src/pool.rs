//! A persistent worker pool with the [`par_map_indexed`](crate::par_map_indexed) contract.
//!
//! The scoped executor ([`crate::par_map_indexed`]) spawns its workers per
//! call — ~100 µs of spawn/join per window batch at 4 workers, fine for a
//! 41-point window, wasteful for a reduced 6-point one and painful for a
//! Monte-Carlo fleet issuing thousands of batches. A [`WorkerPool`] spawns
//! its OS threads **once** and feeds them work over channels, so the
//! steady-state cost of a batch is one channel send per worker.
//!
//! The mapping contract is identical to the free function: items are
//! claimed dynamically from an atomic cursor, each worker owns one scratch,
//! results are written home by index and collected `0..n` — so for a map
//! function that is a pure function of `(index, item, scratch)`, the output
//! is **bit-identical** to the scoped executor and to a sequential map at
//! any worker count. `tests/prop.rs` asserts this equivalence by property
//! test.
//!
//! # How borrowed work crosses into persistent threads
//!
//! Persistent threads outlive any one call, so the job closure they receive
//! must be `'static` — but the whole point of the contract is that workers
//! borrow the caller's item slice and closures without cloning. The pool
//! bridges the gap the same way every scoped-pool implementation does: the
//! per-call job is built with the caller's (non-`'static`) borrows and its
//! lifetime is erased by an `unsafe` transmute before being sent to the
//! workers. Soundness rests on one invariant, maintained by
//! [`WorkerPool::par_map_indexed`]: **the call blocks until every
//! dispatched job has sent its completion ack, and an ack is the last thing
//! a job does with the borrowed state** — so no borrow is ever touched
//! after the call returns. Worker panics are caught, forwarded as failed
//! acks, and re-raised on the calling thread once all workers have stopped
//! (matching `std::thread::scope`).
//!
//! # Example
//!
//! ```
//! use refgen_exec::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let items: Vec<u64> = (0..100).collect();
//! let doubled = pool.par_map_indexed(&items, || (), |i, &x, _| x + i as u64);
//! let serial = refgen_exec::par_map_indexed(1, &items, || (), |i, &x, _| x + i as u64);
//! assert_eq!(doubled, serial);
//! ```

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use crate::{contain_item, resolve_threads, JobPanic};

/// A type-erased, lifetime-erased unit of work. See the module docs for
/// why the `'static` here is a (sound) lie.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of persistent worker threads executing
/// [`WorkerPool::par_map_indexed`] batches. See the [module docs](self).
///
/// Dropping the pool closes the job channel and joins every worker.
pub struct WorkerPool {
    threads: usize,
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads).finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of [`resolve_threads`]`(threads)` workers (`0` = use
    /// the available hardware parallelism). A resolved count of 1 spawns
    /// **no** threads at all: every batch runs inline on the caller's
    /// thread, which keeps the single-threaded configuration identical to
    /// the plain sequential map.
    pub fn new(threads: usize) -> WorkerPool {
        let threads = resolve_threads(threads).max(1);
        if threads == 1 {
            return WorkerPool { threads, sender: None, workers: Vec::new() };
        }
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || loop {
                    // Hold the lock only while claiming, not while running.
                    let job = match receiver.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => break,
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => break, // channel closed: pool dropped
                    }
                })
            })
            .collect();
        WorkerPool { threads, sender: Some(sender), workers }
    }

    /// The resolved worker count this pool schedules onto (≥ 1; `1` means
    /// inline execution, no threads).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on the pool's workers with one
    /// `make_scratch()` state per participating worker, returning results
    /// **in item order** — the exact contract of
    /// [`crate::par_map_indexed`], minus the per-call thread spawns.
    ///
    /// At most `items.len()` workers participate; with an effective count
    /// of 1 (or an empty pool) the whole map runs inline on the caller's
    /// thread.
    ///
    /// # Panics
    ///
    /// If `f` panics on any item, the panic propagates to the caller once
    /// all participating workers have finished their remaining items.
    pub fn par_map_indexed<T, S, R, FS, F>(&self, items: &[T], make_scratch: FS, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        FS: Fn() -> S + Sync,
        F: Fn(usize, &T, &mut S) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        let Some(sender) = self.sender.as_ref().filter(|_| workers > 1) else {
            let mut scratch = make_scratch();
            return items.iter().enumerate().map(|(i, item)| f(i, item, &mut scratch)).collect();
        };

        let cursor = AtomicUsize::new(0);
        // One slot per item, written exactly once by whichever worker
        // claims the index; collection order is fixed regardless of the
        // schedule.
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let (ack_tx, ack_rx): (Sender<Ack>, Receiver<Ack>) = channel();

        for _ in 0..workers {
            let ack_tx = ack_tx.clone();
            let cursor = &cursor;
            let slots = &slots;
            let make_scratch = &make_scratch;
            let f = &f;
            let run = move || {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let mut scratch = make_scratch();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = f(i, &items[i], &mut scratch);
                        // A poisoned slot means a sibling worker panicked;
                        // the value is written exactly once and never torn,
                        // so recover instead of cascading a second panic.
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                    }
                }));
                // The ack is the job's last touch of any borrowed state;
                // par_map_indexed cannot return before receiving it.
                let _ = ack_tx.send(outcome);
            };
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(run);
            // SAFETY: the job borrows `cursor`, `slots`, `items`,
            // `make_scratch` and `f`, all of which outlive this call frame.
            // The loop below blocks until every dispatched job has sent its
            // ack, and the ack is the final action of the job body, so no
            // borrow is used after this function returns (see the module
            // docs). The transmute only erases the borrow lifetime; the
            // vtable and layout of the trait object are unchanged.
            let job: Job = unsafe { std::mem::transmute(job) };
            sender.send(job).expect("worker pool channel closed while pool is alive");
        }

        // Wait for every dispatched job; a disconnected channel here would
        // mean a worker died without acking, which the catch_unwind makes
        // impossible.
        let mut panic: Option<Payload> = None;
        for _ in 0..workers {
            match ack_rx.recv().expect("worker dropped its ack channel") {
                Ok(()) => {}
                Err(payload) => panic = panic.or(Some(payload)),
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every index below the cursor was computed")
            })
            .collect()
    }

    /// The **contained** variant of [`WorkerPool::par_map_indexed`]: a
    /// panic in `f` is caught per item and surfaces as
    /// `Err(`[`JobPanic`]`)` in that item's output slot while the workers
    /// keep draining, preserving index-ordered deterministic collection —
    /// the pool analogue of [`crate::try_par_map_indexed`].
    pub fn try_par_map_indexed<T, S, R, FS, F>(
        &self,
        items: &[T],
        make_scratch: FS,
        f: F,
    ) -> Vec<Result<R, JobPanic>>
    where
        T: Sync,
        R: Send,
        FS: Fn() -> S + Sync,
        F: Fn(usize, &T, &mut S) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        let Some(sender) = self.sender.as_ref().filter(|_| workers > 1) else {
            let mut scratch: Option<S> = None;
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| contain_item(i, item, &mut scratch, &make_scratch, &f))
                .collect();
        };

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<R, JobPanic>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let (ack_tx, ack_rx): (Sender<Ack>, Receiver<Ack>) = channel();

        for _ in 0..workers {
            let ack_tx = ack_tx.clone();
            let cursor = &cursor;
            let slots = &slots;
            let make_scratch = &make_scratch;
            let f = &f;
            let run = move || {
                // The outer shield only catches what the per-item
                // containment cannot (e.g. a panicking Drop of a torn
                // scratch); in the common case every panic is quarantined
                // inside `contain_item` and the ack is `Ok`.
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let mut scratch: Option<S> = None;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = contain_item(i, &items[i], &mut scratch, make_scratch, f);
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                    }
                }));
                // The ack is the job's last touch of any borrowed state;
                // try_par_map_indexed cannot return before receiving it.
                let _ = ack_tx.send(outcome);
            };
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(run);
            // SAFETY: identical to `par_map_indexed` above — the job only
            // borrows state that outlives this call frame, and the ack loop
            // below blocks until every dispatched job has finished with its
            // borrows. The transmute erases only the borrow lifetime.
            let job: Job = unsafe { std::mem::transmute(job) };
            sender.send(job).expect("worker pool channel closed while pool is alive");
        }

        let mut panic: Option<Payload> = None;
        for _ in 0..workers {
            match ack_rx.recv().expect("worker dropped its ack channel") {
                Ok(()) => {}
                Err(payload) => panic = panic.or(Some(payload)),
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every index below the cursor was computed")
            })
            .collect()
    }
}

type Payload = Box<dyn std::any::Any + Send + 'static>;

/// Per-job completion message: `Ok` or the caught panic payload.
type Ack = Result<(), Payload>;

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Which execution strategy an [`Executor`] uses — the knob configuration
/// layers (e.g. `refgen_core::RefgenConfig`) carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Scoped threads spawned per batch ([`crate::par_map_indexed`]).
    /// Zero standing cost; ~100 µs spawn/join overhead per batch.
    Scoped,
    /// A persistent [`WorkerPool`] spawned once and reused across batches.
    Pool,
}

/// A batch executor: either the per-call scoped spawner or a persistent
/// [`WorkerPool`], behind one `par_map_indexed` entry point. Both produce
/// bit-identical output for pure map functions — only the thread lifecycle
/// differs — so callers can switch freely (the `REFGEN_TEST_EXECUTOR` CI
/// hook relies on this).
#[derive(Debug)]
pub enum Executor {
    /// Spawn scoped workers per batch.
    Scoped {
        /// Resolved worker count (≥ 1).
        threads: usize,
    },
    /// Reuse one persistent pool across batches.
    Pool(WorkerPool),
}

impl Executor {
    /// Builds an executor of the requested kind with
    /// [`resolve_threads`]`(threads)` workers.
    pub fn new(kind: ExecutorKind, threads: usize) -> Executor {
        match kind {
            ExecutorKind::Scoped => Executor::scoped(threads),
            ExecutorKind::Pool => Executor::pool(threads),
        }
    }

    /// A per-batch scoped-thread executor.
    pub fn scoped(threads: usize) -> Executor {
        Executor::Scoped { threads: resolve_threads(threads).max(1) }
    }

    /// A persistent-pool executor (threads spawn now, once).
    pub fn pool(threads: usize) -> Executor {
        Executor::Pool(WorkerPool::new(threads))
    }

    /// The resolved worker count (≥ 1).
    pub fn threads(&self) -> usize {
        match self {
            Executor::Scoped { threads } => *threads,
            Executor::Pool(pool) => pool.threads(),
        }
    }

    /// `true` when this executor amortizes thread spawns across batches.
    pub fn is_pool(&self) -> bool {
        matches!(self, Executor::Pool(_))
    }

    /// Maps `f` over `items` under this executor's strategy — the
    /// [`crate::par_map_indexed`] contract, with the worker count fixed at
    /// construction.
    pub fn par_map_indexed<T, S, R, FS, F>(&self, items: &[T], make_scratch: FS, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        FS: Fn() -> S + Sync,
        F: Fn(usize, &T, &mut S) -> R + Sync,
    {
        match self {
            Executor::Scoped { threads } => {
                crate::par_map_indexed(*threads, items, make_scratch, f)
            }
            Executor::Pool(pool) => pool.par_map_indexed(items, make_scratch, f),
        }
    }

    /// Maps `f` over `items` in **contained** mode: a panicking item
    /// becomes `Err(`[`JobPanic`]`)` in its own slot instead of unwinding
    /// the batch — the [`crate::try_par_map_indexed`] contract under this
    /// executor's strategy.
    pub fn try_par_map_indexed<T, S, R, FS, F>(
        &self,
        items: &[T],
        make_scratch: FS,
        f: F,
    ) -> Vec<Result<R, JobPanic>>
    where
        T: Sync,
        R: Send,
        FS: Fn() -> S + Sync,
        F: Fn(usize, &T, &mut S) -> R + Sync,
    {
        match self {
            Executor::Scoped { threads } => {
                crate::try_par_map_indexed(*threads, items, make_scratch, f)
            }
            Executor::Pool(pool) => pool.try_par_map_indexed(items, make_scratch, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_matches_scoped_and_sequential() {
        let pool = WorkerPool::new(4);
        let items: Vec<f64> = (0..123).map(|i| 0.5 + i as f64 / 3.0).collect();
        let map = |i: usize, x: &f64, buf: &mut Vec<f64>| {
            buf.clear();
            buf.extend((0..6).map(|k| x.powi(k)));
            buf.iter().sum::<f64>() * (i as f64 + 1.0)
        };
        let sequential = crate::par_map_indexed(1, &items, Vec::new, map);
        let scoped = crate::par_map_indexed(4, &items, Vec::new, map);
        let pooled = pool.par_map_indexed(&items, Vec::new, map);
        assert_eq!(sequential, scoped);
        assert_eq!(sequential, pooled);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(3);
        for round in 0..50 {
            let items: Vec<usize> = (0..round).collect();
            let out = pool.par_map_indexed(&items, || (), |i, &x, _| i + x);
            assert_eq!(out, items.iter().map(|&x| 2 * x).collect::<Vec<_>>(), "round {round}");
        }
    }

    #[test]
    fn pool_with_one_thread_spawns_nothing_and_works() {
        let pool = WorkerPool::new(1);
        assert!(pool.workers.is_empty());
        let out = pool.par_map_indexed(&[10u32, 20, 30], || (), |_, &x, _| x / 10);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn pool_caps_workers_at_item_count() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.par_map_indexed(&[7u8], || (), |_, &x, _| x * 2), vec![14]);
        assert!(pool.par_map_indexed(&[] as &[u8], || (), |_, &x, _| x).is_empty());
    }

    #[test]
    fn pool_scratch_count_bounded_by_workers() {
        let made = AtomicUsize::new(0);
        let pool = WorkerPool::new(4);
        let items = vec![0u8; 64];
        pool.par_map_indexed(
            &items,
            || {
                made.fetch_add(1, Ordering::Relaxed);
            },
            |_, _, _| (),
        );
        let count = made.load(Ordering::Relaxed);
        assert!((1..=4).contains(&count), "scratches: {count}");
    }

    #[test]
    #[should_panic(expected = "boom at 17")]
    fn pool_propagates_worker_panics() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..64).collect();
        pool.par_map_indexed(
            &items,
            || (),
            |i, _, _| {
                if i == 17 {
                    panic!("boom at 17");
                }
                i
            },
        );
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..32).collect();
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_indexed(
                &items,
                || (),
                |i, _, _| {
                    if i == 3 {
                        panic!("one bad item");
                    }
                    i
                },
            )
        }));
        assert!(panicked.is_err());
        // The pool's workers caught the panic and kept their loops: the
        // next batch must run normally.
        let out = pool.par_map_indexed(&items, || (), |i, _, _| i * 2);
        assert_eq!(out[31], 62);
    }

    #[test]
    fn pool_contained_mode_quarantines_and_stays_usable() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let out = pool.try_par_map_indexed(
            &items,
            || (),
            |i, &x, _| {
                if i == 17 {
                    panic!("boom at 17");
                }
                x * 2
            },
        );
        assert_eq!(out.len(), 64);
        for (i, r) in out.iter().enumerate() {
            if i == 17 {
                assert_eq!(r, &Err(JobPanic { message: "boom at 17".into() }));
            } else {
                assert_eq!(r, &Ok(2 * i));
            }
        }
        // The quarantined batch must not have wedged the pool.
        let next = pool.par_map_indexed(&items, || (), |i, _, _| i + 1);
        assert_eq!(next[63], 64);
    }

    #[test]
    fn executor_contained_modes_agree() {
        let scoped = Executor::new(ExecutorKind::Scoped, 4);
        let pooled = Executor::new(ExecutorKind::Pool, 4);
        let items: Vec<u64> = (0..97).collect();
        let map = |i: usize, &x: &u64, _: &mut ()| {
            if i % 31 == 5 {
                panic!("scripted failure at {i}");
            }
            x * 3
        };
        let a = scoped.try_par_map_indexed(&items, || (), map);
        let b = pooled.try_par_map_indexed(&items, || (), map);
        assert_eq!(a, b);
        // i ∈ {5, 36, 67} panic within 0..97.
        assert_eq!(a.iter().filter(|r| r.is_err()).count(), 3);
    }

    #[test]
    fn executor_kinds_agree() {
        let scoped = Executor::new(ExecutorKind::Scoped, 4);
        let pooled = Executor::new(ExecutorKind::Pool, 4);
        assert!(!scoped.is_pool());
        assert!(pooled.is_pool());
        assert_eq!(scoped.threads(), 4);
        assert_eq!(pooled.threads(), 4);
        let items: Vec<u64> = (0..257).collect();
        let a = scoped.par_map_indexed(&items, || (), |i, &x, _| x * 3 + i as u64);
        let b = pooled.par_map_indexed(&items, || (), |i, &x, _| x * 3 + i as u64);
        assert_eq!(a, b);
    }
}
