//! Dependency-free scoped-thread executor for the `refgen` workspace.
//!
//! The interpolation engine's hot loop — evaluating the MNA determinant or
//! cofactor at `K` unit-circle points — is embarrassingly parallel: every
//! point is an independent numeric refactorization. This crate provides the
//! one primitive that loop needs, [`par_map_indexed`]: map a function over a
//! work list on a fixed number of OS threads, giving each thread its own
//! scratch state, and collect the results **in index order** so the output
//! is bit-identical at any thread count.
//!
//! Two implementations share that contract:
//!
//! * the free function [`par_map_indexed`] spawns scoped threads per call
//!   (`std::thread::scope`) — zero standing cost, ~100 µs spawn/join per
//!   batch;
//! * a persistent [`WorkerPool`] (the [`pool`] module) spawns its threads
//!   once and feeds batches over channels — the executor batch sessions
//!   use to amortize spawns across windows, polynomials, and whole
//!   Monte-Carlo fleets.
//!
//! The [`Executor`] enum puts both behind one call site so engine code is
//! written once and the strategy is a configuration knob.
//!
//! # Why not rayon?
//!
//! The build container for this workspace cannot reach crates.io; every
//! external dependency is a vendored API-subset shim (see the workspace
//! `vendor/` directory). Vendoring a faithful rayon shim would mean
//! reimplementing its work-stealing deques and join primitives — far more
//! code than the one fork/join shape the engine actually needs.
//! `std::thread::scope` (stable since 1.63) lets scoped worker threads
//! borrow the work list and the map closure directly, with no `'static`
//! bounds, no channels, and no unsafe. If the registry ever becomes
//! reachable, `par_map_indexed` is the single seam to swap for
//! `rayon::iter::ParallelIterator`.
//!
//! # Determinism
//!
//! Work items are claimed dynamically (an atomic cursor), so *which thread*
//! computes an item is scheduling-dependent — but each result is written to
//! its item's slot and the output `Vec` is assembled `0..n`. As long as the
//! map function is a pure function of `(index, item, scratch)` with scratch
//! state that does not leak between items in a result-affecting way, the
//! returned vector is identical for 1, 2, or 64 threads.
//!
//! # Example
//!
//! ```
//! let items: Vec<u64> = (0..100).collect();
//! let serial = refgen_exec::par_map_indexed(1, &items, || 0u64, |i, &x, _| x * i as u64);
//! let parallel = refgen_exec::par_map_indexed(4, &items, || 0u64, |i, &x, _| x * i as u64);
//! assert_eq!(serial, parallel);
//! ```

pub mod pool;

pub use pool::{Executor, ExecutorKind, WorkerPool};

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// A job panic caught by a contained executor run
/// ([`try_par_map_indexed`] and friends): the panic payload rendered as a
/// typed per-item failure instead of an unwinding batch.
///
/// Only the panic *message* survives the crossing (string payloads are
/// preserved verbatim; anything else is summarized), which keeps the type
/// `Clone + PartialEq` so callers can store and compare outcomes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic message (`panic!("...")` payload), or a placeholder for
    /// non-string payloads.
    pub message: String,
}

impl JobPanic {
    /// Renders a caught panic payload (`std::panic::catch_unwind`'s `Err`)
    /// as a typed failure. Public so callers quarantining their own
    /// `catch_unwind` sites produce payload messages identical to the
    /// contained executor paths.
    pub fn from_payload(payload: Box<dyn std::any::Any + Send>) -> JobPanic {
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "job panicked with a non-string payload".to_string()
        };
        JobPanic { message }
    }
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Runs one work item under a per-item panic shield. On a caught panic the
/// worker's scratch is discarded (the unwind may have left it in a torn
/// state) and lazily rebuilt for the next item, so one bad item cannot
/// corrupt its successors. Shared by the scoped and pooled contained paths.
pub(crate) fn contain_item<T, S, R>(
    index: usize,
    item: &T,
    scratch: &mut Option<S>,
    make_scratch: &(impl Fn() -> S + Sync),
    f: &(impl Fn(usize, &T, &mut S) -> R + Sync),
) -> Result<R, JobPanic> {
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        f(index, item, scratch.get_or_insert_with(make_scratch))
    }));
    outcome.map_err(|payload| {
        *scratch = None;
        JobPanic::from_payload(payload)
    })
}

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves a thread-count knob: `0` means "use the available hardware
/// parallelism", any other value is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// The worker count [`par_map_indexed`] will actually use for `requested`
/// threads over `items` work items: [`resolve_threads`], capped at the
/// item count, floored at 1. Callers that report the worker count (e.g.
/// in diagnostics) use this so their number always matches the executor's
/// behavior.
pub fn effective_threads(requested: usize, items: usize) -> usize {
    resolve_threads(requested).min(items).max(1)
}

/// Maps `f` over `items` on up to `threads` scoped OS threads (`0` = use
/// [`available_threads`]), with one `make_scratch()` state per worker, and
/// returns the results **in item order**.
///
/// The thread count is additionally capped at `items.len()` — spawning more
/// workers than work items buys nothing. With an effective count of 1 the
/// whole map runs inline on the caller's thread (no spawn at all), which is
/// also the path a single-item list takes.
///
/// Items are claimed dynamically, so uneven per-item cost load-balances
/// automatically; the index-ordered collection keeps the output independent
/// of the schedule (see the [crate docs](crate) on determinism).
///
/// # Panics
///
/// If `f` panics on any item, the panic propagates to the caller once all
/// workers have stopped (the behavior of [`std::thread::scope`]).
pub fn par_map_indexed<T, S, R, FS, F>(
    threads: usize,
    items: &[T],
    make_scratch: FS,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    FS: Fn() -> S + Sync,
    F: Fn(usize, &T, &mut S) -> R + Sync,
{
    let n = items.len();
    let threads = effective_threads(threads, n);
    if threads == 1 {
        let mut scratch = make_scratch();
        return items.iter().enumerate().map(|(i, item)| f(i, item, &mut scratch)).collect();
    }

    let cursor = AtomicUsize::new(0);
    // One slot per item: workers write results home by index, so collection
    // order is fixed regardless of which worker computed what. Per-slot
    // locks are uncontended (each slot is written exactly once).
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = make_scratch();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i, &items[i], &mut scratch);
                    // A poisoned slot just means some other worker panicked
                    // mid-batch; the slot value itself is written exactly
                    // once and is never torn, so recover it.
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every index below the cursor was computed")
        })
        .collect()
}

/// The **contained** variant of [`par_map_indexed`]: a panic in `f` is
/// caught per item and surfaces as `Err(`[`JobPanic`]`)` in that item's
/// output slot, while the workers keep draining the remaining items.
/// Collection stays index-ordered, so for a pure map function the `Ok`
/// results are bit-identical to an uncontained run at any thread count.
///
/// A worker whose item panicked discards its scratch state (the unwind may
/// have left it torn) and rebuilds it for the next item it claims.
pub fn try_par_map_indexed<T, S, R, FS, F>(
    threads: usize,
    items: &[T],
    make_scratch: FS,
    f: F,
) -> Vec<Result<R, JobPanic>>
where
    T: Sync,
    R: Send,
    FS: Fn() -> S + Sync,
    F: Fn(usize, &T, &mut S) -> R + Sync,
{
    let n = items.len();
    let threads = effective_threads(threads, n);
    if threads == 1 {
        let mut scratch: Option<S> = None;
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| contain_item(i, item, &mut scratch, &make_scratch, &f))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, JobPanic>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch: Option<S> = None;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = contain_item(i, &items[i], &mut scratch, &make_scratch, &f);
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every index below the cursor was computed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn resolves_zero_to_hardware() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(0), available_threads());
    }

    #[test]
    fn effective_threads_caps_and_floors() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(4, 0), 1);
        assert_eq!(effective_threads(0, 100), available_threads().min(100));
    }

    #[test]
    fn maps_in_index_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map_indexed(4, &items, || (), |i, &x, _| (i, x * 2));
        assert_eq!(out.len(), 257);
        for (i, &(idx, doubled)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(doubled, 2 * i);
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let items: Vec<f64> = (0..100).map(|i| 1.0 + i as f64 / 7.0).collect();
        // A scratch-accumulating map whose per-item result depends only on
        // the item (the scratch is a reusable buffer, not carried state).
        let run = |threads: usize| {
            par_map_indexed(threads, &items, Vec::<f64>::new, |i, &x, buf| {
                buf.clear();
                buf.extend((0..8).map(|k| x.powi(k)));
                buf.iter().sum::<f64>() * (i as f64 + 1.0)
            })
        };
        let one = run(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(one, run(threads), "threads = {threads}");
        }
    }

    #[test]
    fn one_scratch_per_worker() {
        let made = AtomicUsize::new(0);
        let items = vec![0u8; 64];
        par_map_indexed(
            4,
            &items,
            || {
                made.fetch_add(1, Ordering::Relaxed);
            },
            |_, _, _| (),
        );
        let count = made.load(Ordering::Relaxed);
        assert!(count <= 4, "at most one scratch per worker, got {count}");
        assert!(count >= 1);
    }

    #[test]
    fn empty_and_single_item_lists() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_indexed(8, &empty, || (), |_, &x, _| x).is_empty());
        let one = vec![41u32];
        assert_eq!(par_map_indexed(8, &one, || (), |_, &x, _| x + 1), vec![42]);
    }

    #[test]
    fn caps_threads_at_item_count() {
        // 100 workers over 3 items must not deadlock or drop results.
        let items = vec![1u32, 2, 3];
        assert_eq!(par_map_indexed(100, &items, || (), |_, &x, _| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn contained_map_quarantines_panics() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 4] {
            let out = try_par_map_indexed(
                threads,
                &items,
                || (),
                |i, &x, _| {
                    if i == 17 || i == 40 {
                        panic!("boom at {i}");
                    }
                    x * 2
                },
            );
            assert_eq!(out.len(), 64);
            for (i, r) in out.iter().enumerate() {
                match r {
                    Ok(v) => assert_eq!(*v, 2 * i, "threads = {threads}"),
                    Err(p) => {
                        assert!(i == 17 || i == 40);
                        assert_eq!(p.message, format!("boom at {i}"));
                    }
                }
            }
        }
    }

    #[test]
    fn contained_map_rebuilds_scratch_after_panic() {
        // The scratch carries a marker; a panicked item must not leave its
        // marker visible to the worker's next item.
        let items: Vec<usize> = (0..32).collect();
        let out = try_par_map_indexed(
            1,
            &items,
            || 0usize,
            |i, _, scratch| {
                let stale = *scratch;
                *scratch = i + 1;
                if i == 5 {
                    panic!("die with scratch set");
                }
                stale
            },
        );
        assert!(out[5].is_err());
        // Item 6 sees a *fresh* scratch (0), not item 5's marker.
        assert_eq!(out[6], Ok(0));
        // Items whose predecessor succeeded see the predecessor's marker.
        assert_eq!(out[7], Ok(7));
    }

    #[test]
    fn contained_map_matches_uncontained_when_clean() {
        let items: Vec<f64> = (0..100).map(|i| 1.0 + i as f64 / 7.0).collect();
        let map = |i: usize, x: &f64, buf: &mut Vec<f64>| {
            buf.clear();
            buf.extend((0..8).map(|k| x.powi(k)));
            buf.iter().sum::<f64>() * (i as f64 + 1.0)
        };
        let plain = par_map_indexed(4, &items, Vec::new, map);
        let contained = try_par_map_indexed(4, &items, Vec::new, map);
        assert_eq!(contained.into_iter().collect::<Result<Vec<_>, _>>().unwrap(), plain);
    }
}
