//! Simplification Before Generation: reference-controlled circuit
//! reduction.
//!
//! SBG (paper §1) replaces elements whose contribution to the network
//! function is negligible with opens (zero admittance) *before* symbolic
//! analysis, so the reduced circuit is cheap to analyze. The "appropriate
//! measure" of a contribution compares the simplified circuit's response
//! against a numerical evaluation of the exact function — i.e. against the
//! reference network function this workspace generates.
//!
//! The implementation greedily removes admittance elements in order of
//! impact while the worst-case Bode deviation from the reference stays
//! within the user's budget.

use refgen_circuit::{Circuit, ElementKind};
use refgen_core::{NetworkFunction, RefgenError, Solver};
use refgen_mna::{AcAnalysis, TransferSpec};
use std::fmt;

/// Options for [`simplify_before_generation`].
#[derive(Clone, Debug)]
pub struct SbgOptions {
    /// Maximum allowed magnitude deviation from the reference, in dB.
    pub max_mag_err_db: f64,
    /// Maximum allowed phase deviation, in degrees.
    pub max_phase_err_deg: f64,
    /// Frequencies (hertz) at which the deviation is checked.
    pub freqs_hz: Vec<f64>,
}

impl SbgOptions {
    /// A sensible default: 0.5 dB / 3° over the given band.
    pub fn with_band(freqs_hz: Vec<f64>) -> Self {
        SbgOptions { max_mag_err_db: 0.5, max_phase_err_deg: 3.0, freqs_hz }
    }
}

/// Outcome of an SBG pass.
#[derive(Clone, Debug)]
pub struct SbgOutcome {
    /// The simplified circuit.
    pub simplified: Circuit,
    /// Names of removed elements, in removal order.
    pub removed: Vec<String>,
    /// Elements remaining.
    pub remaining: usize,
    /// Worst magnitude deviation of the final circuit, dB.
    pub final_mag_err_db: f64,
    /// Worst phase deviation of the final circuit, degrees.
    pub final_phase_err_deg: f64,
}

impl fmt::Display for SbgOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SBG removed {} elements ({} remain); final deviation {:.3} dB / {:.2}°",
            self.removed.len(),
            self.remaining,
            self.final_mag_err_db,
            self.final_phase_err_deg
        )
    }
}

/// Worst-case Bode deviation of `circuit` against the reference.
fn deviation(
    circuit: &Circuit,
    spec: &TransferSpec,
    reference: &NetworkFunction,
    freqs: &[f64],
) -> Option<(f64, f64)> {
    let ac = AcAnalysis::new(circuit, spec.clone()).ok()?;
    let mut worst_mag = 0.0f64;
    let mut worst_phase = 0.0f64;
    for &f in freqs {
        let sim = ac.at(f).ok()?;
        let h_ref = reference.response_at_hz(f);
        if !sim.response.is_finite() || !h_ref.is_finite() {
            return None;
        }
        let mag = (sim.mag_db() - 20.0 * h_ref.abs().log10()).abs();
        let mut dp = sim.phase_deg() - h_ref.arg().to_degrees();
        while dp > 180.0 {
            dp -= 360.0;
        }
        while dp < -180.0 {
            dp += 360.0;
        }
        worst_mag = worst_mag.max(mag);
        worst_phase = worst_phase.max(dp.abs());
    }
    Some((worst_mag, worst_phase))
}

/// Greedy reference-controlled simplification.
///
/// Builds the reference network function with `solver` — any
/// [`Solver`], typically the adaptive interpolator — then repeatedly
/// removes the admittance element (R, G, C, VCCS) whose removal keeps the
/// circuit valid and the Bode deviation smallest, until no removal fits
/// within the budget.
///
/// # Errors
///
/// Propagates reference-generation failures from `solver`.
pub fn simplify_before_generation(
    solver: &dyn Solver,
    circuit: &Circuit,
    spec: &TransferSpec,
    opts: &SbgOptions,
) -> Result<SbgOutcome, RefgenError> {
    let reference = solver.solve(circuit, spec)?.network;
    let mut current = circuit.clone();
    let mut removed = Vec::new();
    loop {
        let candidates: Vec<String> = current
            .elements()
            .iter()
            .filter(|el| {
                matches!(
                    el.kind,
                    ElementKind::Resistor { .. }
                        | ElementKind::Conductance { .. }
                        | ElementKind::Capacitor { .. }
                        | ElementKind::Vccs { .. }
                )
            })
            .map(|el| el.name.clone())
            .collect();
        let mut best: Option<(String, f64, f64)> = None;
        for name in candidates {
            let mut trial = current.clone();
            trial.remove_element(&name);
            if trial.validate().is_err() {
                continue;
            }
            let Some((mag, phase)) = deviation(&trial, spec, &reference, &opts.freqs_hz) else {
                continue;
            };
            if mag > opts.max_mag_err_db || phase > opts.max_phase_err_deg {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, bm, _)) => mag < *bm,
            };
            if better {
                best = Some((name, mag, phase));
            }
        }
        match best {
            Some((name, _, _)) => {
                current.remove_element(&name);
                removed.push(name);
            }
            None => break,
        }
    }
    let (final_mag, final_phase) =
        deviation(&current, spec, &reference, &opts.freqs_hz).unwrap_or((0.0, 0.0));
    let remaining = current.elements().len();
    Ok(SbgOutcome {
        simplified: current,
        removed,
        remaining,
        final_mag_err_db: final_mag,
        final_phase_err_deg: final_phase,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use refgen_circuit::library::positive_feedback_ota;
    use refgen_circuit::Circuit;
    use refgen_core::{AdaptiveInterpolator, Session};
    use refgen_mna::log_space;

    fn spec() -> TransferSpec {
        TransferSpec::voltage_gain("VIN", "out")
    }

    fn adaptive() -> AdaptiveInterpolator {
        AdaptiveInterpolator::default()
    }

    #[test]
    fn removes_negligible_shunt() {
        // A 1 GΩ resistor in parallel with 1 kΩ is invisible: SBG must
        // remove it (and may remove more) while keeping the response.
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "out", 1e3).unwrap();
        c.add_resistor("RBIG", "out", "0", 1e9).unwrap();
        c.add_resistor("R2", "out", "0", 1e3).unwrap();
        c.add_capacitor("C1", "out", "0", 1e-9).unwrap();
        c.add_capacitor("CTINY", "out", "0", 1e-18).unwrap();
        let opts = SbgOptions::with_band(log_space(1e2, 1e7, 25));
        let out = simplify_before_generation(&adaptive(), &c, &spec(), &opts).unwrap();
        assert!(out.removed.contains(&"RBIG".to_string()), "{:?}", out.removed);
        assert!(out.removed.contains(&"CTINY".to_string()), "{:?}", out.removed);
        assert!(out.final_mag_err_db <= opts.max_mag_err_db);
        out.simplified.validate().unwrap();
    }

    #[test]
    fn essential_elements_survive() {
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "out", 1e3).unwrap();
        c.add_resistor("R2", "out", "0", 1e3).unwrap();
        c.add_capacitor("C1", "out", "0", 1e-9).unwrap();
        let opts = SbgOptions::with_band(log_space(1e2, 1e7, 25));
        let out = simplify_before_generation(&adaptive(), &c, &spec(), &opts).unwrap();
        // Removing any of these changes the response beyond 0.5 dB: the
        // divider ratio or the pole would move.
        for name in ["R1", "R2", "C1"] {
            assert!(
                !out.removed.contains(&name.to_string()),
                "{name} wrongly removed; removed = {:?}",
                out.removed
            );
        }
    }

    #[test]
    fn ota_reduces_meaningfully() {
        let c = positive_feedback_ota();
        let before = c.elements().len();
        let opts = SbgOptions {
            max_mag_err_db: 1.0,
            max_phase_err_deg: 5.0,
            freqs_hz: log_space(1e2, 1e9, 30),
        };
        let out = simplify_before_generation(&adaptive(), &c, &spec(), &opts).unwrap();
        assert!(
            !out.removed.is_empty(),
            "an IC small-signal circuit always has negligible parasitics"
        );
        assert!(out.remaining < before);
        assert!(out.final_mag_err_db <= 1.0 && out.final_phase_err_deg <= 5.0, "{out}");
        // The simplified circuit still passes reference generation.
        let solution = Session::for_circuit(&out.simplified).spec(spec()).solve().unwrap();
        assert!(solution.network.denominator.degree().is_some());
    }

    #[test]
    fn any_solver_drives_sbg() {
        // The point of the &dyn Solver seam: a baseline method can feed the
        // reference too — here the single-static-scaling solver on a small
        // circuit it fully covers.
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "out", 1e3).unwrap();
        c.add_resistor("RBIG", "out", "0", 1e9).unwrap();
        c.add_resistor("R2", "out", "0", 1e3).unwrap();
        c.add_capacitor("C1", "out", "0", 1e-9).unwrap();
        let opts = SbgOptions::with_band(log_space(1e2, 1e7, 25));
        let solver = refgen_core::baseline::StaticScalingSolver::heuristic(
            refgen_core::RefgenConfig::default(),
        );
        let out = simplify_before_generation(&solver, &c, &spec(), &opts).unwrap();
        assert!(out.removed.contains(&"RBIG".to_string()), "{:?}", out.removed);
    }
}
