//! Symbolic-analysis consumers of numerical references.
//!
//! The paper's motivation (§1): simplification in symbolic analysis — SDG
//! (during generation) and SBG (before generation) — needs the exact
//! network-function coefficients `h_k(x₀)` as references for error control.
//! This crate implements both consumers on top of
//! [`refgen_core`]:
//!
//! * [`det`] — full symbolic determinant expansion (the classical SAG
//!   path, feasible only for small circuits — which is exactly the paper's
//!   point about why SDG/SBG exist).
//! * [`sdg`] — term truncation per the paper's eq. (3): keep the largest
//!   terms of each coefficient until the retained sum is within `ε` of the
//!   *numerical reference* produced by the adaptive interpolator.
//! * [`sbg`] — circuit reduction: greedily remove elements whose
//!   contribution to the transfer function is negligible, with the error
//!   measured against the reference network function. The reference
//!   generator is any [`refgen_core::Solver`] — the adaptive algorithm,
//!   a baseline, or a future backend — passed as `&dyn Solver`.

pub mod det;
pub mod sbg;
pub mod sdg;

pub use det::{
    symbolic_numerator, symbolic_polynomial, CoefficientTerms, SymbolicError, SymbolicTerm,
};
pub use sbg::{simplify_before_generation, SbgOptions, SbgOutcome};
pub use sdg::{truncate_coefficients, TruncationReport};
