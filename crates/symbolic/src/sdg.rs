//! Simplification During Generation: eq. (3) term truncation.
//!
//! SDG techniques generate the symbolic terms of each coefficient in
//! decreasing magnitude order and stop once the accumulated sum represents
//! the coefficient to within `ε_k` (paper eq. (3)):
//!
//! ```text
//! |h_k(x₀) − Σ_{l≤P} h_kl(x₀)| < ε_k·|h_k(x₀)|
//! ```
//!
//! The left `h_k(x₀)` is the **numerical reference** — available *without*
//! the symbolic expression, from the adaptive interpolation engine. This
//! module performs the truncation given term lists (from [`crate::det`])
//! and references (from [`refgen_core`]).

use crate::det::CoefficientTerms;
use refgen_numeric::ExtPoly;
use std::fmt;

/// Outcome of truncating one coefficient.
#[derive(Clone, Debug)]
pub struct CoefficientTruncation {
    /// Power of `s`.
    pub power: usize,
    /// Terms kept (the `P` most significant).
    pub kept: usize,
    /// Total terms available.
    pub total: usize,
    /// Relative error of the kept sum vs. the reference.
    pub achieved_error: f64,
}

/// Truncation report across all coefficients.
#[derive(Clone, Debug)]
pub struct TruncationReport {
    /// Per-coefficient outcomes, ascending power.
    pub coefficients: Vec<CoefficientTruncation>,
    /// The error-control parameter `ε` used.
    pub epsilon: f64,
}

impl TruncationReport {
    /// Total terms kept across coefficients.
    pub fn kept_terms(&self) -> usize {
        self.coefficients.iter().map(|c| c.kept).sum()
    }

    /// Total terms available across coefficients.
    pub fn total_terms(&self) -> usize {
        self.coefficients.iter().map(|c| c.total).sum()
    }

    /// Compression ratio `kept/total`.
    pub fn compression(&self) -> f64 {
        let total = self.total_terms();
        if total == 0 {
            return 1.0;
        }
        self.kept_terms() as f64 / total as f64
    }
}

impl fmt::Display for TruncationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SDG truncation at ε = {:.1e}: kept {}/{} terms ({:.1}%)",
            self.epsilon,
            self.kept_terms(),
            self.total_terms(),
            100.0 * self.compression()
        )?;
        for c in &self.coefficients {
            writeln!(
                f,
                "  s^{}: {}/{} terms, rel err {:.2e}",
                c.power, c.kept, c.total, c.achieved_error
            )?;
        }
        Ok(())
    }
}

/// Truncates each coefficient's term list against the reference polynomial
/// per eq. (3): terms are taken in decreasing magnitude until the partial
/// sum is within `epsilon` (relative) of the reference coefficient.
///
/// Coefficients of powers missing from `terms` (structurally zero) are
/// skipped; a reference coefficient of exactly zero keeps all terms of that
/// power (their sum cancels — nothing can be dropped safely).
///
/// # Panics
///
/// Panics unless `0 < epsilon < 1`.
pub fn truncate_coefficients(
    terms: &[CoefficientTerms],
    reference: &ExtPoly,
    epsilon: f64,
) -> TruncationReport {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    let mut out = Vec::with_capacity(terms.len());
    for ct in terms {
        let reference_value =
            reference.coeffs().get(ct.power).map(|c| c.re().to_f64()).unwrap_or(0.0);
        // The reference may carry an arbitrary global factor relative to
        // the raw symbolic determinant (source-branch sign); align signs by
        // the term total.
        let total = ct.total();
        let target = if reference_value != 0.0 && total != 0.0 {
            // Use the reference magnitude with the symbolic sign: the paper
            // compares |sums|, and the reference supplies the magnitude.
            reference_value.abs() * total.signum()
        } else {
            total
        };
        if target == 0.0 {
            out.push(CoefficientTruncation {
                power: ct.power,
                kept: ct.terms.len(),
                total: ct.terms.len(),
                achieved_error: 0.0,
            });
            continue;
        }
        let mut sum = 0.0;
        let mut kept = 0;
        let mut err = 1.0f64;
        for t in &ct.terms {
            sum += t.value;
            kept += 1;
            err = (target - sum).abs() / target.abs();
            if err < epsilon {
                break;
            }
        }
        out.push(CoefficientTruncation {
            power: ct.power,
            kept,
            total: ct.terms.len(),
            achieved_error: err,
        });
    }
    TruncationReport { coefficients: out, epsilon }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det::symbolic_polynomial;
    use refgen_circuit::library::rc_ladder;
    use refgen_core::{PolyKind, Session};
    use refgen_mna::TransferSpec;

    fn ladder_setup(n: usize) -> (Vec<CoefficientTerms>, ExtPoly) {
        let c = rc_ladder(n, 1e3, 1e-9);
        let spec = TransferSpec::voltage_gain("VIN", "out");
        let terms = symbolic_polynomial(&c, PolyKind::Denominator).unwrap();
        let nf = Session::for_circuit(&c).spec(spec.clone()).solve().unwrap().network;
        (terms, nf.denominator)
    }

    #[test]
    fn loose_epsilon_keeps_fewer_terms() {
        let (terms, reference) = ladder_setup(5);
        let tight = truncate_coefficients(&terms, &reference, 1e-9);
        let loose = truncate_coefficients(&terms, &reference, 0.2);
        assert!(loose.kept_terms() <= tight.kept_terms());
        assert!(loose.kept_terms() < loose.total_terms(), "{loose}");
        // Tight truncation achieves its bound.
        for c in &tight.coefficients {
            assert!(c.achieved_error < 1e-9 || c.kept == c.total, "{c:?}");
        }
    }

    #[test]
    fn truncation_error_bounded() {
        let (terms, reference) = ladder_setup(4);
        let rep = truncate_coefficients(&terms, &reference, 0.05);
        for c in &rep.coefficients {
            assert!(
                c.achieved_error < 0.05 || c.kept == c.total,
                "power {} err {}",
                c.power,
                c.achieved_error
            );
        }
        assert!(rep.compression() <= 1.0);
    }

    #[test]
    fn graded_ladder_middle_coefficients_truncate() {
        // With graded element values the term magnitudes within a
        // coefficient spread over decades, so a 1% truncation drops most of
        // them — the SDG payoff the paper's references enable.
        let c = refgen_circuit::library::graded_rc_ladder(5, 1e3, 1e-9, 4.0, 0.25);
        let spec = TransferSpec::voltage_gain("VIN", "out");
        let terms = symbolic_polynomial(&c, PolyKind::Denominator).unwrap();
        let nf = Session::for_circuit(&c).spec(spec.clone()).solve().unwrap().network;
        let rep = truncate_coefficients(&terms, &nf.denominator, 0.01);
        let p0 = &rep.coefficients[0];
        // p0 has exactly one term (product of all conductances).
        assert_eq!(p0.total, 1);
        assert_eq!(p0.kept, 1);
        let mid = &rep.coefficients[2];
        assert!(mid.total > 10, "middle coefficient has many terms: {}", mid.total);
        assert!(mid.kept < mid.total, "middle coefficient truncates: {mid:?}");
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_bounds_enforced() {
        let (terms, reference) = ladder_setup(2);
        truncate_coefficients(&terms, &reference, 1.5);
    }
}
