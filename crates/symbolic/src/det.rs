//! Fully symbolic determinant expansion (the SAG baseline).
//!
//! Builds the MNA matrix with *symbolic* entries (every element value is a
//! named symbol) and expands the determinant by recursive Laplace expansion,
//! producing, per power of `s`, the complete list of symbolic product terms
//! with their numeric magnitudes at the design point. The numerator comes
//! from the same machinery via Cramer's rule ([`symbolic_numerator`]), so a
//! complete symbolic `H(s) = N(s)/D(s)` is available for small circuits.
//!
//! Complexity is factorial in the matrix dimension — the expansion is only
//! feasible for small circuits. That wall is precisely why the paper's
//! SDG/SBG techniques (and hence its reference-generation algorithm) exist;
//! here the expansion serves as (a) the SDG term source and (b) an exact
//! cross-check of the interpolation engine on small circuits.

use refgen_circuit::{Circuit, Element, ElementKind, NodeId};
use refgen_core::PolyKind;
use refgen_mna::MnaSystem;
use std::collections::HashMap;
use std::fmt;

/// Hard cap on the matrix dimension accepted by the expansion.
pub const MAX_DIM: usize = 14;

/// Errors from symbolic expansion.
#[derive(Clone, Debug, PartialEq)]
pub enum SymbolicError {
    /// Matrix dimension exceeds [`MAX_DIM`].
    TooLarge {
        /// The offending dimension.
        dim: usize,
    },
    /// The circuit contains an element kind the symbolic stamps do not
    /// support (only R, G, C, VCCS and independent sources are).
    Unsupported {
        /// Name of the unsupported element.
        element: String,
    },
    /// Underlying MNA construction failed.
    Mna(String),
}

impl fmt::Display for SymbolicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolicError::TooLarge { dim } => {
                write!(f, "matrix dimension {dim} exceeds symbolic expansion cap {MAX_DIM}")
            }
            SymbolicError::Unsupported { element } => {
                write!(f, "element {element} is not supported by symbolic expansion")
            }
            SymbolicError::Mna(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SymbolicError {}

/// One symbolic product term: `sign · ∏ symbols · s^power`, with the
/// product of the symbols' design-point values cached in `magnitude`.
#[derive(Clone, Debug, PartialEq)]
pub struct SymbolicTerm {
    /// Signed numeric value of the term at the design point.
    pub value: f64,
    /// Sorted element names whose values multiply into this term
    /// (constants from source/branch rows are omitted).
    pub symbols: Vec<String>,
}

impl SymbolicTerm {
    /// |value| — the magnitude used for decreasing-order generation.
    pub fn magnitude(&self) -> f64 {
        self.value.abs()
    }
}

impl fmt::Display for SymbolicTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.symbols.is_empty() {
            write!(f, "{:+.3e}", self.value)
        } else {
            write!(f, "{:+.3e}·{}", self.value, self.symbols.join("·"))
        }
    }
}

/// All terms of one network-function coefficient `h_k`, sorted by
/// decreasing magnitude — the generation order SDG techniques use.
#[derive(Clone, Debug)]
pub struct CoefficientTerms {
    /// Power of `s`.
    pub power: usize,
    /// Terms in decreasing |value| order.
    pub terms: Vec<SymbolicTerm>,
}

impl CoefficientTerms {
    /// Exact coefficient value: the sum of all terms.
    pub fn total(&self) -> f64 {
        self.terms.iter().map(|t| t.value).sum()
    }
}

/// A symbolic matrix entry: a sum of atoms `± value·symbol·s^{0|1}`.
#[derive(Clone, Debug, Default)]
struct EntrySum {
    atoms: Vec<Atom>,
}

#[derive(Clone, Debug)]
struct Atom {
    value: f64,
    s_power: u8,
    /// Symbol table index, or `None` for pure constants (±1 incidence).
    symbol: Option<u16>,
}

struct SymbolicMatrix {
    dim: usize,
    entries: Vec<EntrySum>, // row-major
    symbols: Vec<String>,
}

impl SymbolicMatrix {
    fn at(&self, r: usize, c: usize) -> &EntrySum {
        &self.entries[r * self.dim + c]
    }

    fn at_mut(&mut self, r: usize, c: usize) -> &mut EntrySum {
        &mut self.entries[r * self.dim + c]
    }

    fn add_atom(&mut self, r: usize, c: usize, value: f64, s_power: u8, symbol: Option<u16>) {
        self.at_mut(r, c).atoms.push(Atom { value, s_power, symbol });
    }
}

/// Expands the denominator `det(Y_MNA)` symbolically.
///
/// For the numerator (Cramer cofactor) see
/// [`symbolic_numerator`].
///
/// # Errors
///
/// [`SymbolicError::TooLarge`] beyond [`MAX_DIM`],
/// [`SymbolicError::Unsupported`] for element kinds without symbolic
/// stamps, [`SymbolicError::Mna`] for invalid circuits.
pub fn symbolic_polynomial(
    circuit: &Circuit,
    kind: PolyKind,
) -> Result<Vec<CoefficientTerms>, SymbolicError> {
    assert!(kind == PolyKind::Denominator, "use symbolic_numerator for the numerator");
    expand_determinant(circuit, None)
}

/// Expands the numerator of `v(output)/source` symbolically, by Cramer's
/// rule: the output node's column of `Y_MNA` is replaced by the excitation
/// vector (a single constant in the source's branch row), and the
/// determinant of the modified matrix — normalized by the source amplitude
/// — is exactly `N(s) = H(s)·D(s)`.
///
/// `source` must name an independent *voltage* source and `output` a
/// non-ground node.
///
/// # Errors
///
/// As [`symbolic_polynomial`], plus [`SymbolicError::Mna`] when the source
/// or output cannot be resolved.
pub fn symbolic_numerator(
    circuit: &Circuit,
    source: &str,
    output: &str,
) -> Result<Vec<CoefficientTerms>, SymbolicError> {
    expand_determinant(circuit, Some((source, output)))
}

fn expand_determinant(
    circuit: &Circuit,
    numerator_of: Option<(&str, &str)>,
) -> Result<Vec<CoefficientTerms>, SymbolicError> {
    let sys = MnaSystem::new(circuit).map_err(|e| SymbolicError::Mna(e.to_string()))?;
    let dim = sys.dim();
    if dim > MAX_DIM {
        return Err(SymbolicError::TooLarge { dim });
    }
    let mut m =
        SymbolicMatrix { dim, entries: vec![EntrySum::default(); dim * dim], symbols: Vec::new() };
    let mut symbol_ids: HashMap<String, u16> = HashMap::new();
    let mut intern = |m: &mut SymbolicMatrix, name: &str| -> u16 {
        *symbol_ids.entry(name.to_string()).or_insert_with(|| {
            m.symbols.push(name.to_string());
            (m.symbols.len() - 1) as u16
        })
    };

    for el in circuit.elements() {
        stamp_symbolic(&sys, &mut m, el, &mut intern)?;
    }

    if let Some((source, output)) = numerator_of {
        // Cramer column replacement: col(v_out) ← E.
        let (src_name, _amp) =
            sys.resolve_source(source).map_err(|e| SymbolicError::Mna(e.to_string()))?;
        let branch = sys
            .branch_row(&src_name)
            .ok_or_else(|| SymbolicError::Mna(format!("`{src_name}` is not a V source")))?;
        let out_node = circuit
            .find_node(output)
            .and_then(|id| sys.node_row(id))
            .ok_or_else(|| SymbolicError::Mna(format!("no node `{output}`")))?;
        for r in 0..dim {
            m.at_mut(r, out_node).atoms.clear();
        }
        // E holds the amplitude in the source's branch row; `H = v_out/amp`
        // divides it back out, so the normalized numerator stamps a plain
        // constant 1 — N(s) is amplitude-independent.
        m.add_atom(branch, out_node, 1.0, 0, None);
    }

    // Laplace expansion, accumulating terms keyed by (sorted symbols, power).
    let mut acc: HashMap<(Vec<u16>, usize), f64> = HashMap::new();
    let mut col_used = vec![false; dim];
    expand(&m, 0, &mut col_used, 1.0, 1.0, 0, &mut Vec::new(), &mut acc);

    // Group by power.
    let mut by_power: HashMap<usize, Vec<SymbolicTerm>> = HashMap::new();
    for ((symbols, power), value) in acc {
        if value == 0.0 {
            continue;
        }
        let names: Vec<String> = symbols.iter().map(|&id| m.symbols[id as usize].clone()).collect();
        by_power.entry(power).or_default().push(SymbolicTerm { value, symbols: names });
    }
    let mut out: Vec<CoefficientTerms> = by_power
        .into_iter()
        .map(|(power, mut terms)| {
            terms.sort_by(|a, b| {
                b.magnitude().partial_cmp(&a.magnitude()).expect("finite magnitudes")
            });
            CoefficientTerms { power, terms }
        })
        .collect();
    out.sort_by_key(|c| c.power);
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn expand(
    m: &SymbolicMatrix,
    row: usize,
    col_used: &mut [bool],
    sign: f64,
    value: f64,
    s_power: usize,
    symbols: &mut Vec<u16>,
    acc: &mut HashMap<(Vec<u16>, usize), f64>,
) {
    if row == m.dim {
        let mut key = symbols.clone();
        key.sort_unstable();
        *acc.entry((key, s_power)).or_insert(0.0) += sign * value;
        return;
    }
    for c in 0..m.dim {
        if col_used[c] {
            continue;
        }
        let entry = m.at(row, c);
        if entry.atoms.is_empty() {
            continue;
        }
        // Parity: number of used columns below c determines the cofactor
        // sign contribution for expanding along rows in order.
        let skipped = col_used[..c].iter().filter(|&&u| u).count();
        let local_sign = if (c - skipped) % 2 == 0 { 1.0 } else { -1.0 };
        col_used[c] = true;
        for atom in &entry.atoms {
            if let Some(sym) = atom.symbol {
                symbols.push(sym);
            }
            expand(
                m,
                row + 1,
                col_used,
                sign * local_sign,
                value * atom.value,
                s_power + atom.s_power as usize,
                symbols,
                acc,
            );
            if atom.symbol.is_some() {
                symbols.pop();
            }
        }
        col_used[c] = false;
    }
}

fn stamp_symbolic(
    sys: &MnaSystem,
    m: &mut SymbolicMatrix,
    el: &Element,
    intern: &mut impl FnMut(&mut SymbolicMatrix, &str) -> u16,
) -> Result<(), SymbolicError> {
    let row_of = |n: NodeId| sys.node_row(n);
    let (p, mi) = el.nodes;
    match &el.kind {
        ElementKind::Resistor { ohms } => {
            let sym = intern(m, &el.name);
            stamp_adm(m, row_of(p), row_of(mi), 1.0 / ohms, 0, Some(sym));
        }
        ElementKind::Conductance { siemens } => {
            let sym = intern(m, &el.name);
            stamp_adm(m, row_of(p), row_of(mi), *siemens, 0, Some(sym));
        }
        ElementKind::Capacitor { farads } => {
            let sym = intern(m, &el.name);
            stamp_adm(m, row_of(p), row_of(mi), *farads, 1, Some(sym));
        }
        ElementKind::Vccs { gm, control } => {
            let sym = Some(intern(m, &el.name));
            let (cp, cm) = (row_of(control.0), row_of(control.1));
            for (node, sn) in [(row_of(p), 1.0), (row_of(mi), -1.0)] {
                let Some(r) = node else { continue };
                for (ctrl, sc) in [(cp, 1.0), (cm, -1.0)] {
                    let Some(c) = ctrl else { continue };
                    m.add_atom(r, c, gm * sn * sc, 0, sym);
                }
            }
        }
        ElementKind::VSource { .. } => {
            let row = sys.branch_row(&el.name).expect("branch exists");
            for (node, sgn) in [(row_of(p), 1.0), (row_of(mi), -1.0)] {
                let Some(r) = node else { continue };
                m.add_atom(row, r, sgn, 0, None);
                m.add_atom(r, row, sgn, 0, None);
            }
        }
        ElementKind::ISource { .. } => {}
        _ => {
            return Err(SymbolicError::Unsupported { element: el.name.clone() });
        }
    }
    Ok(())
}

fn stamp_adm(
    m: &mut SymbolicMatrix,
    rp: Option<usize>,
    rm: Option<usize>,
    value: f64,
    s_power: u8,
    symbol: Option<u16>,
) {
    if let Some(i) = rp {
        m.add_atom(i, i, value, s_power, symbol);
        if let Some(j) = rm {
            m.add_atom(i, j, -value, s_power, symbol);
        }
    }
    if let Some(j) = rm {
        m.add_atom(j, j, value, s_power, symbol);
        if let Some(i) = rp {
            m.add_atom(j, i, -value, s_power, symbol);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refgen_circuit::library::rc_ladder;
    use refgen_core::Session;
    use refgen_mna::TransferSpec;

    #[test]
    fn rc_one_section_terms() {
        // Ladder-1 MNA: nodes in,out + V branch → dim 3.
        // det = -(G + sC) up to sign: two terms, one per power.
        let c = rc_ladder(1, 1e3, 1e-9);
        let coeffs = symbolic_polynomial(&c, PolyKind::Denominator).unwrap();
        assert_eq!(coeffs.len(), 2);
        assert_eq!(coeffs[0].power, 0);
        assert_eq!(coeffs[0].terms.len(), 1);
        assert_eq!(coeffs[0].terms[0].symbols, vec!["R1".to_string()]);
        assert!((coeffs[0].total().abs() - 1e-3).abs() < 1e-18);
        assert_eq!(coeffs[1].power, 1);
        assert_eq!(coeffs[1].terms[0].symbols, vec!["C1".to_string()]);
        assert!((coeffs[1].total().abs() - 1e-9).abs() < 1e-24);
    }

    #[test]
    fn symbolic_matches_interpolated_reference() {
        // The headline cross-check: full symbolic expansion and the
        // adaptive interpolation engine must produce the same coefficients.
        let c = rc_ladder(4, 2e3, 0.5e-9);
        let spec = TransferSpec::voltage_gain("VIN", "out");
        let coeffs = symbolic_polynomial(&c, PolyKind::Denominator).unwrap();
        let nf = Session::for_circuit(&c).spec(spec.clone()).solve().unwrap().network;
        for ct in &coeffs {
            let sym = ct.total();
            let num = nf.denominator.coeffs()[ct.power].re().to_f64();
            let rel = (sym - num).abs() / sym.abs();
            assert!(rel < 1e-6, "power {}: symbolic {sym} vs interpolated {num}", ct.power);
        }
    }

    #[test]
    fn numerator_of_ladder_is_constant_term() {
        // N(s) of an RC ladder is the constant ∏G (no zeros): exactly one
        // symbolic term at power 0.
        let c = rc_ladder(3, 1e3, 1e-9);
        let n = symbolic_numerator(&c, "VIN", "out").unwrap();
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].power, 0);
        assert_eq!(n[0].terms.len(), 1);
        assert_eq!(
            n[0].terms[0].symbols,
            vec!["R1".to_string(), "R2".to_string(), "R3".to_string()]
        );
    }

    #[test]
    fn symbolic_numerator_matches_interpolated() {
        // Band-pass RC: numerator has a zero at the origin and real terms.
        let mut c = refgen_circuit::Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_capacitor("C1", "in", "a", 1e-9).unwrap();
        c.add_resistor("R1", "a", "0", 1e3).unwrap();
        c.add_resistor("R2", "a", "out", 2e3).unwrap();
        c.add_capacitor("C2", "out", "0", 1e-10).unwrap();
        let spec = TransferSpec::voltage_gain("VIN", "out");
        let n_terms = symbolic_numerator(&c, "VIN", "out").unwrap();
        let d_terms = symbolic_polynomial(&c, PolyKind::Denominator).unwrap();
        let nf = Session::for_circuit(&c).spec(spec.clone()).solve().unwrap().network;
        for (terms, poly) in [(&n_terms, &nf.numerator), (&d_terms, &nf.denominator)] {
            for ct in terms.iter() {
                let sym = ct.total();
                let num = poly.coeffs()[ct.power].re().to_f64();
                if sym == 0.0 {
                    assert!(num.abs() < 1e-30);
                    continue;
                }
                let rel = (sym - num).abs() / sym.abs();
                assert!(rel < 1e-6, "power {}: {sym} vs {num}", ct.power);
            }
        }
    }

    #[test]
    fn symbolic_transfer_ratio_matches_ac() {
        // Evaluate H = N/D from the symbolic term sums at a real frequency
        // and compare with the AC simulator — a full SAG analysis check.
        let c = rc_ladder(4, 1e3, 1e-9);
        let n_terms = symbolic_numerator(&c, "VIN", "out").unwrap();
        let d_terms = symbolic_polynomial(&c, PolyKind::Denominator).unwrap();
        let eval = |terms: &[CoefficientTerms], s: refgen_numeric::Complex| {
            terms.iter().fold(refgen_numeric::Complex::ZERO, |acc, ct| {
                acc + s.powi(ct.power as i32).scale(ct.total())
            })
        };
        let spec = TransferSpec::voltage_gain("VIN", "out");
        let ac = refgen_mna::AcAnalysis::new(&c, spec).unwrap();
        for f in [1e3, 2e5, 1e7] {
            let s = refgen_numeric::Complex::new(0.0, 2.0 * std::f64::consts::PI * f);
            let h_sym = eval(&n_terms, s) / eval(&d_terms, s);
            let h_ac = ac.at(f).unwrap().response;
            let rel = (h_sym - h_ac).abs() / h_ac.abs();
            assert!(rel < 1e-10, "at {f} Hz: {h_sym} vs {h_ac}");
        }
    }

    #[test]
    fn term_counts_grow_combinatorially() {
        // The expression-length explosion that motivates simplification.
        let t3: usize = symbolic_polynomial(&rc_ladder(3, 1e3, 1e-9), PolyKind::Denominator)
            .unwrap()
            .iter()
            .map(|c| c.terms.len())
            .sum();
        let t5: usize = symbolic_polynomial(&rc_ladder(5, 1e3, 1e-9), PolyKind::Denominator)
            .unwrap()
            .iter()
            .map(|c| c.terms.len())
            .sum();
        assert!(t5 > 2 * t3, "t3={t3}, t5={t5}");
    }

    #[test]
    fn dimension_cap_enforced() {
        let c = rc_ladder(20, 1e3, 1e-9);
        assert!(matches!(
            symbolic_polynomial(&c, PolyKind::Denominator),
            Err(SymbolicError::TooLarge { .. })
        ));
    }

    #[test]
    fn unsupported_elements_rejected() {
        let mut c = refgen_circuit::Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_vcvs("E1", "out", "0", "in", "0", 2.0).unwrap();
        c.add_resistor("R1", "out", "0", 1e3).unwrap();
        c.add_capacitor("C1", "out", "0", 1e-9).unwrap();
        c.add_resistor("R2", "in", "out", 1e3).unwrap();
        assert!(matches!(
            symbolic_polynomial(&c, PolyKind::Denominator),
            Err(SymbolicError::Unsupported { .. })
        ));
    }

    #[test]
    fn terms_sorted_decreasing() {
        let c = rc_ladder(4, 1e3, 1e-9);
        let coeffs = symbolic_polynomial(&c, PolyKind::Denominator).unwrap();
        for ct in &coeffs {
            for w in ct.terms.windows(2) {
                assert!(w[0].magnitude() >= w[1].magnitude());
            }
        }
    }
}
