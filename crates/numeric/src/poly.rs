//! Polynomials over [`Complex`] and [`ExtComplex`].
//!
//! Network functions in this workspace are ratios of polynomials in the
//! complex frequency `s`. Coefficients recovered by the interpolation engine
//! span hundreds of decades, so the primary container is [`ExtPoly`]
//! (extended-range coefficients); [`Poly`] is the plain-f64 workhorse used
//! inside a single interpolation window and for root finding.
//!
//! Root finding uses the Aberth–Ehrlich simultaneous iteration with initial
//! radii from the Newton polygon of the coefficient magnitudes — the only
//! scheme that behaves when `|p_i/p_{i+1}|` spans 6–12 decades per step, as
//! is typical for integrated circuits (paper §2.2).

use crate::complex::Complex;
use crate::extcomplex::ExtComplex;
use crate::extfloat::ExtFloat;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A polynomial with [`Complex`] coefficients, `c[i]` multiplying `s^i`.
///
/// ```
/// use refgen_numeric::{Complex, Poly};
/// let p = Poly::from_real(&[6.0, -5.0, 1.0]); // (s-2)(s-3)
/// let r = p.roots(1e-12, 100);
/// let mut re: Vec<f64> = r.iter().map(|z| z.re).collect();
/// re.sort_by(|a, b| a.partial_cmp(b).unwrap());
/// assert!((re[0] - 2.0).abs() < 1e-9 && (re[1] - 3.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Poly {
    coeffs: Vec<Complex>,
}

impl Poly {
    /// Creates a polynomial from coefficients in ascending power order.
    pub fn new(coeffs: Vec<Complex>) -> Self {
        let mut p = Poly { coeffs };
        p.trim();
        p
    }

    /// Creates from real coefficients.
    pub fn from_real(coeffs: &[f64]) -> Self {
        Poly::new(coeffs.iter().map(|&c| Complex::real(c)).collect())
    }

    /// Builds the monic polynomial `∏ (s − r_k)` from its roots.
    pub fn from_roots(roots: &[Complex]) -> Self {
        let mut coeffs = vec![Complex::ONE];
        for &r in roots {
            let mut next = vec![Complex::ZERO; coeffs.len() + 1];
            for (i, &c) in coeffs.iter().enumerate() {
                next[i + 1] += c;
                next[i] -= c * r;
            }
            coeffs = next;
        }
        Poly::new(coeffs)
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// Coefficients in ascending power order (empty for the zero polynomial).
    pub fn coeffs(&self) -> &[Complex] {
        &self.coeffs
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    fn trim(&mut self) {
        while let Some(&last) = self.coeffs.last() {
            if last == Complex::ZERO {
                self.coeffs.pop();
            } else {
                break;
            }
        }
    }

    /// Horner evaluation at `s`.
    pub fn eval(&self, s: Complex) -> Complex {
        self.coeffs.iter().rev().fold(Complex::ZERO, |acc, &c| acc.mul_add(s, c))
    }

    /// Derivative.
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        Poly::new(
            self.coeffs[1..].iter().enumerate().map(|(i, &c)| c.scale((i + 1) as f64)).collect(),
        )
    }

    /// Substitutes `s → a·s`: coefficient `c_i` becomes `c_i·a^i`.
    ///
    /// This is exactly the *frequency scaling* of the paper's eq. (11).
    pub fn scale_variable(&self, a: Complex) -> Poly {
        let mut pw = Complex::ONE;
        Poly::new(
            self.coeffs
                .iter()
                .map(|&c| {
                    let r = c * pw;
                    pw *= a;
                    r
                })
                .collect(),
        )
    }

    /// All complex roots via Aberth–Ehrlich iteration.
    ///
    /// `tol` is the relative correction-size stopping tolerance; `max_iter`
    /// bounds the iteration count. Leading/trailing zero coefficients are
    /// handled (roots at the origin are returned exactly).
    ///
    /// Returns an empty vector for constant or zero polynomials.
    pub fn roots(&self, tol: f64, max_iter: usize) -> Vec<Complex> {
        let mut coeffs = self.coeffs.clone();
        if coeffs.len() <= 1 {
            return Vec::new();
        }
        // Strip roots at the origin.
        let mut origin_roots = 0;
        while coeffs.first().is_some_and(|c| *c == Complex::ZERO) {
            coeffs.remove(0);
            origin_roots += 1;
        }
        let n = coeffs.len() - 1;
        let mut roots = vec![Complex::ZERO; origin_roots];
        if n == 0 {
            return roots;
        }
        let p = Poly { coeffs };
        let dp = p.derivative();
        let mut z = newton_polygon_starts(&p.coeffs);
        for _ in 0..max_iter {
            let mut done = true;
            let snapshot = z.clone();
            for i in 0..n {
                let zi = snapshot[i];
                let pv = p.eval(zi);
                let dv = dp.eval(zi);
                if pv == Complex::ZERO {
                    continue;
                }
                let newton =
                    if dv == Complex::ZERO { Complex::new(tol.max(1e-12), 0.0) } else { pv / dv };
                let mut sum = Complex::ZERO;
                for (j, &zj) in snapshot.iter().enumerate() {
                    if j != i {
                        let d = zi - zj;
                        if d != Complex::ZERO {
                            sum += d.inv();
                        }
                    }
                }
                let denom = Complex::ONE - newton * sum;
                let step = if denom == Complex::ZERO { newton } else { newton / denom };
                z[i] = zi - step;
                if step.abs() > tol * (1.0 + zi.abs()) {
                    done = false;
                }
            }
            if done {
                break;
            }
        }
        roots.extend(z);
        roots
    }
}

/// Initial root guesses from the Newton polygon (upper convex hull of
/// `(i, log|c_i|)`), which estimates root moduli even when coefficients span
/// hundreds of decades. Guesses are spread on circles with an irrational
/// angular offset to break symmetry.
fn newton_polygon_starts(coeffs: &[Complex]) -> Vec<Complex> {
    let n = coeffs.len() - 1;
    let logs: Vec<f64> = coeffs
        .iter()
        .map(|c| if c.abs() == 0.0 { f64::NEG_INFINITY } else { c.abs().ln() })
        .collect();
    // Upper convex hull over points (i, logs[i]).
    let mut hull: Vec<usize> = Vec::new();
    for i in 0..=n {
        if logs[i] == f64::NEG_INFINITY {
            continue;
        }
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            // Remove b if it is below segment a..i.
            let slope_ab = (logs[b] - logs[a]) / ((b - a) as f64);
            let slope_ai = (logs[i] - logs[a]) / ((i - a) as f64);
            if slope_ab <= slope_ai {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(i);
    }
    let mut starts = Vec::with_capacity(n);
    let golden = 0.618033988749895 * std::f64::consts::TAU;
    let mut idx = 0usize;
    for w in hull.windows(2) {
        let (a, b) = (w[0], w[1]);
        let k = b - a;
        // Roots on this hull edge have modulus ≈ exp(-(slope)).
        let r = ((logs[a] - logs[b]) / k as f64).exp();
        for t in 0..k {
            let theta = golden * (idx as f64 + 1.0) + (t as f64) / (k as f64);
            starts.push(Complex::from_polar(r, theta));
            idx += 1;
        }
    }
    // Degenerate hull (e.g. single nonzero coefficient run): fall back to a
    // unit-ish circle.
    while starts.len() < n {
        let theta = golden * (starts.len() as f64 + 1.0);
        starts.push(Complex::from_polar(1.0, theta));
    }
    starts
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![Complex::ZERO; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            out[i] += c;
        }
        for (i, &c) in rhs.coeffs.iter().enumerate() {
            out[i] += c;
        }
        Poly::new(out)
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![Complex::ZERO; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            out[i] += c;
        }
        for (i, &c) in rhs.coeffs.iter().enumerate() {
            out[i] -= c;
        }
        Poly::new(out)
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        if self.coeffs.is_empty() || rhs.coeffs.is_empty() {
            return Poly::zero();
        }
        let mut out = vec![Complex::ZERO; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] = a.mul_add(b, out[i + j]);
            }
        }
        Poly::new(out)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.coeffs.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "({c})·s^{i}")?;
        }
        Ok(())
    }
}

/// A polynomial with [`ExtComplex`] coefficients — the container for
/// denormalized network-function coefficients, whose magnitudes (`1e-90` …
/// `1e-522` for the µA741 denominator) do not fit in `f64`.
#[derive(Clone, Debug, Default)]
pub struct ExtPoly {
    coeffs: Vec<ExtComplex>,
}

impl ExtPoly {
    /// Creates from coefficients in ascending power order.
    pub fn new(coeffs: Vec<ExtComplex>) -> Self {
        let mut p = ExtPoly { coeffs };
        p.trim();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        ExtPoly { coeffs: Vec::new() }
    }

    /// Coefficients in ascending power order.
    pub fn coeffs(&self) -> &[ExtComplex] {
        &self.coeffs
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    fn trim(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.is_zero()) {
            self.coeffs.pop();
        }
    }

    /// Horner evaluation at a plain complex point (each step in extended
    /// range, so neither the point powers nor the partial sums can overflow).
    pub fn eval(&self, s: Complex) -> ExtComplex {
        let se = ExtComplex::from_complex(s);
        self.coeffs.iter().rev().fold(ExtComplex::ZERO, |acc, &c| acc * se + c)
    }

    /// Evaluates at `s = jω`.
    pub fn eval_jw(&self, omega: f64) -> ExtComplex {
        self.eval(Complex::new(0.0, omega))
    }

    /// Derivative.
    pub fn derivative(&self) -> ExtPoly {
        if self.coeffs.len() <= 1 {
            return ExtPoly::zero();
        }
        ExtPoly::new(
            self.coeffs[1..]
                .iter()
                .enumerate()
                .map(|(i, &c)| c.scale_ext(ExtFloat::from_f64((i + 1) as f64)))
                .collect(),
        )
    }

    /// Substitutes `s → a·s` with an extended-range factor: `c_i → c_i·a^i`.
    pub fn scale_variable_ext(&self, a: ExtFloat) -> ExtPoly {
        let mut pw = ExtFloat::ONE;
        ExtPoly::new(
            self.coeffs
                .iter()
                .map(|&c| {
                    let r = c.scale_ext(pw);
                    pw *= a;
                    r
                })
                .collect(),
        )
    }

    /// The largest coefficient magnitude, or zero for the zero polynomial.
    pub fn max_coeff_norm(&self) -> ExtFloat {
        self.coeffs.iter().map(|c| c.norm()).fold(ExtFloat::ZERO, |a, b| if b > a { b } else { a })
    }

    /// Normalizes to a plain [`Poly`] plus the common extended-range factor
    /// that was divided out: `self = factor · poly`.
    ///
    /// Coefficients more than ~300 decades below the maximum flush to zero in
    /// the `Poly` image — callers needing the full range should stay in
    /// `ExtPoly`.
    ///
    /// Returns `None` for the zero polynomial.
    pub fn to_scaled_poly(&self) -> Option<(ExtFloat, Poly)> {
        let max = self.max_coeff_norm();
        if max.is_zero() {
            return None;
        }
        let e = max.exponent();
        let coeffs = self.coeffs.iter().map(|c| c.mantissa_at_exponent(e)).collect();
        Some((ExtFloat::new(1.0, e), Poly::new(coeffs)))
    }

    /// Roots of the polynomial.
    ///
    /// Because coefficients can span hundreds of decades, the variable is
    /// first rescaled by `a` = the geometric mean of consecutive-coefficient
    /// ratios (bringing root moduli near 1), roots are found in f64, then
    /// scaled back. Roots whose moduli differ by more than ~±300 decades from
    /// the centroid may lose relative accuracy.
    pub fn roots(&self, tol: f64, max_iter: usize) -> Vec<ExtComplex> {
        let n = match self.degree() {
            Some(n) if n >= 1 => n,
            _ => return Vec::new(),
        };
        let first = self.coeffs.iter().find(|c| !c.is_zero());
        let last = self.coeffs.last();
        let (f, l) = match (first, last) {
            (Some(f), Some(l)) => (*f, *l),
            _ => return Vec::new(),
        };
        // Geometric mean root modulus: |c_0/c_n|^{1/n}.
        let log_ratio = (f.norm() / l.norm()).log10() / n as f64;
        let a = ExtFloat::exp10(log_ratio); // s = a·σ
        let scaled = self.scale_variable_ext(a);
        let (_, p) = match scaled.to_scaled_poly() {
            Some(x) => x,
            None => return Vec::new(),
        };
        p.roots(tol, max_iter)
            .into_iter()
            .map(|sigma| ExtComplex::from_complex(sigma).scale_ext(a))
            .collect()
    }
}

impl fmt::Display for ExtPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.coeffs.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "({c})·s^{i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_horner() {
        let p = Poly::from_real(&[1.0, 2.0, 3.0]); // 1 + 2s + 3s²
        assert_eq!(p.eval(Complex::real(2.0)), Complex::real(17.0));
        assert_eq!(p.eval(Complex::ZERO), Complex::real(1.0));
        let at_j = p.eval(Complex::I); // 1 + 2j - 3
        assert!((at_j - Complex::new(-2.0, 2.0)).abs() < 1e-15);
    }

    #[test]
    fn degree_and_trim() {
        let p = Poly::from_real(&[1.0, 0.0, 0.0]);
        assert_eq!(p.degree(), Some(0));
        assert_eq!(Poly::zero().degree(), None);
        assert_eq!(Poly::from_real(&[]).degree(), None);
    }

    #[test]
    fn derivative_rule() {
        let p = Poly::from_real(&[5.0, 3.0, 2.0, 1.0]);
        let d = p.derivative();
        assert_eq!(d.coeffs(), Poly::from_real(&[3.0, 4.0, 3.0]).coeffs());
        assert_eq!(Poly::from_real(&[7.0]).derivative().degree(), None);
    }

    #[test]
    fn scale_variable_matches_eval() {
        let p = Poly::from_real(&[1.0, -2.0, 4.0]);
        let a = Complex::new(0.5, 0.25);
        let q = p.scale_variable(a);
        let s = Complex::new(1.0, -1.0);
        assert!((q.eval(s) - p.eval(a * s)).abs() < 1e-14);
    }

    #[test]
    fn roots_quadratic() {
        // (s-2)(s-3)
        let p = Poly::from_real(&[6.0, -5.0, 1.0]);
        let mut r = p.roots(1e-13, 200);
        r.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap());
        assert!((r[0] - Complex::real(2.0)).abs() < 1e-9);
        assert!((r[1] - Complex::real(3.0)).abs() < 1e-9);
    }

    #[test]
    fn roots_complex_pair() {
        // s² + 1
        let p = Poly::from_real(&[1.0, 0.0, 1.0]);
        let r = p.roots(1e-13, 200);
        assert_eq!(r.len(), 2);
        for z in r {
            assert!((z.abs() - 1.0).abs() < 1e-9);
            assert!(z.re.abs() < 1e-9);
        }
    }

    #[test]
    fn roots_at_origin() {
        // s²(s-1)
        let p = Poly::from_real(&[0.0, 0.0, -1.0, 1.0]);
        let r = p.roots(1e-13, 200);
        let zeros = r.iter().filter(|z| z.abs() < 1e-12).count();
        assert_eq!(zeros, 2);
        assert!(r.iter().any(|z| (*z - Complex::ONE).abs() < 1e-9));
    }

    #[test]
    fn roots_wide_spread() {
        // Roots at -1e-3, -1e3: coefficients (1e0? ) p = (s+1e-3)(s+1e3)
        // = s² + 1000.001 s + 1 — 6 decades of root spread.
        let p = Poly::from_real(&[1.0, 1000.001, 1.0]);
        let mut r = p.roots(1e-13, 400);
        r.sort_by(|a, b| a.abs().partial_cmp(&b.abs()).unwrap());
        assert!((r[0].re + 1e-3).abs() < 1e-9, "{:?}", r);
        assert!((r[1].re + 1e3).abs() < 1e-3, "{:?}", r);
    }

    #[test]
    fn roots_of_high_degree_unit_circle() {
        // s^12 - 1: all roots on the unit circle.
        let mut c = vec![0.0; 13];
        c[0] = -1.0;
        c[12] = 1.0;
        let r = Poly::from_real(&c).roots(1e-13, 500);
        assert_eq!(r.len(), 12);
        for z in &r {
            assert!((z.abs() - 1.0).abs() < 1e-7, "{z}");
        }
        // And they are distinct.
        for i in 0..12 {
            for j in 0..i {
                assert!((r[i] - r[j]).abs() > 1e-3);
            }
        }
    }

    #[test]
    fn poly_arithmetic_operators() {
        let a = Poly::from_real(&[1.0, 2.0]); // 1 + 2s
        let b = Poly::from_real(&[3.0, 0.0, 1.0]); // 3 + s²
        assert_eq!((&a + &b).coeffs(), Poly::from_real(&[4.0, 2.0, 1.0]).coeffs());
        assert_eq!((&b - &a).coeffs(), Poly::from_real(&[2.0, -2.0, 1.0]).coeffs());
        // (1+2s)(3+s²) = 3 + 6s + s² + 2s³
        assert_eq!((&a * &b).coeffs(), Poly::from_real(&[3.0, 6.0, 1.0, 2.0]).coeffs());
        // Cancellation trims degree.
        assert_eq!((&a - &a).degree(), None);
        assert_eq!((&a * &Poly::zero()).degree(), None);
    }

    #[test]
    fn from_roots_round_trip() {
        let roots = [Complex::real(-1.0), Complex::real(-3.0), Complex::new(0.0, 2.0)];
        let p = Poly::from_roots(&roots);
        assert_eq!(p.degree(), Some(3));
        for &r in &roots {
            assert!(p.eval(r).abs() < 1e-12);
        }
        // Leading coefficient is 1 (monic).
        assert_eq!(*p.coeffs().last().unwrap(), Complex::ONE);
        // Multiplication agrees with from_roots of the union.
        let q = Poly::from_roots(&roots[..2]);
        let lin = Poly::from_roots(&roots[2..]);
        let prod = &q * &lin;
        for (x, y) in prod.coeffs().iter().zip(p.coeffs()) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }

    #[test]
    fn ext_poly_eval_extreme_coeffs() {
        // p(s) = 1e-90 + 1e-200·s; at s = 1 both contribute.
        let p = ExtPoly::new(vec![
            ExtComplex::from_f64(1.0).scale_ext(ExtFloat::from_pow10(-90)),
            ExtComplex::from_f64(1.0).scale_ext(ExtFloat::from_pow10(-200)),
        ]);
        let v = p.eval(Complex::ONE);
        assert!((v.norm().log10() + 90.0).abs() < 1e-6);
        // At s = 1e150 the second term dominates: 1e-50.
        let v2 = p.eval(Complex::real(1e150));
        assert!((v2.norm().log10() + 50.0).abs() < 1e-6);
    }

    #[test]
    fn ext_poly_derivative() {
        let p = ExtPoly::new(vec![
            ExtComplex::from_f64(5.0),
            ExtComplex::from_f64(3.0),
            ExtComplex::from_f64(2.0),
        ]);
        let d = p.derivative();
        assert_eq!(d.degree(), Some(1));
        // d/ds (5 + 3s + 2s²) = 3 + 4s; at s = 2: 11.
        let v = d.eval(Complex::real(2.0));
        assert!((v.re().to_f64() - 11.0).abs() < 1e-12);
        assert!(ExtPoly::new(vec![ExtComplex::from_f64(7.0)]).derivative().degree().is_none());
    }

    #[test]
    fn ext_poly_scale_variable() {
        let p = ExtPoly::new(vec![
            ExtComplex::from_f64(2.0),
            ExtComplex::from_f64(3.0),
            ExtComplex::from_f64(4.0),
        ]);
        let q = p.scale_variable_ext(ExtFloat::from_pow10(9));
        assert!((q.coeffs()[0].norm().log10() - 2f64.log10()).abs() < 1e-9);
        assert!((q.coeffs()[1].norm().log10() - (9.0 + 3f64.log10())).abs() < 1e-9);
        assert!((q.coeffs()[2].norm().log10() - (18.0 + 4f64.log10())).abs() < 1e-9);
    }

    #[test]
    fn ext_poly_to_scaled_poly() {
        let p = ExtPoly::new(vec![
            ExtComplex::from_f64(1.0).scale_ext(ExtFloat::from_pow10(-400)),
            ExtComplex::from_f64(5.0).scale_ext(ExtFloat::from_pow10(-395)),
        ]);
        let (factor, poly) = p.to_scaled_poly().unwrap();
        // factor·poly == p at a probe point (evaluated in log space).
        let probe = Complex::real(0.7);
        let direct = p.eval(probe);
        let via = ExtComplex::from_complex(poly.eval(probe)).scale_ext(factor);
        assert!(((direct.norm() / via.norm()).log10()).abs() < 1e-9);
        assert!(ExtPoly::zero().to_scaled_poly().is_none());
    }

    #[test]
    fn ext_poly_roots_extreme_range() {
        // (s + 1e6)(s + 1e-6) scaled by 1e-300:
        // 1e-300·(s² + (1e6+1e-6)s + 1)
        let k = ExtFloat::from_pow10(-300);
        let p = ExtPoly::new(vec![
            ExtComplex::from_f64(1.0).scale_ext(k),
            ExtComplex::from_f64(1e6 + 1e-6).scale_ext(k),
            ExtComplex::from_f64(1.0).scale_ext(k),
        ]);
        let mut r = p.roots(1e-13, 400);
        r.sort_by(|a, b| a.norm().partial_cmp(&b.norm()).unwrap());
        assert!((r[0].norm().log10() + 6.0).abs() < 1e-6, "{}", r[0]);
        assert!((r[1].norm().log10() - 6.0).abs() < 1e-6, "{}", r[1]);
    }

    #[test]
    fn ext_poly_zero_cases() {
        assert!(ExtPoly::zero().roots(1e-13, 100).is_empty());
        assert!(ExtPoly::new(vec![ExtComplex::from_f64(3.0)]).roots(1e-13, 100).is_empty());
        assert!(ExtPoly::zero().max_coeff_norm().is_zero());
    }
}
