//! Extended-range complex numbers.
//!
//! An [`ExtComplex`] is a [`Complex`] mantissa paired with a shared `i64`
//! binary exponent, normalized so `max(|re|, |im|) ∈ [1, 2)`. It is the
//! representation of every denormalized network-function coefficient in this
//! workspace, and of determinant values accumulated during the LU
//! factorization (whose magnitudes reach `1e±124` *before* denormalization
//! and `1e-522` after, per the paper's Tables 2–3).

use crate::complex::Complex;
use crate::extfloat::ExtFloat;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An extended-range complex number `m · 2^e` with complex mantissa `m`.
///
/// ```
/// use refgen_numeric::{Complex, ExtComplex};
/// let z = ExtComplex::from_complex(Complex::new(1e-200, 2e-200));
/// let w = z * z * z; // far below f64 range
/// assert!((w.norm().log10() + 599.0).abs() < 1.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ExtComplex {
    mantissa: Complex,
    exponent: i64,
}

impl ExtComplex {
    /// Zero.
    pub const ZERO: ExtComplex = ExtComplex { mantissa: Complex::ZERO, exponent: 0 };
    /// One.
    pub const ONE: ExtComplex = ExtComplex { mantissa: Complex::ONE, exponent: 0 };

    /// Creates from a complex mantissa and binary exponent, normalizing.
    pub fn new(mantissa: Complex, exponent: i64) -> Self {
        ExtComplex { mantissa, exponent }.normalized()
    }

    /// Converts a plain [`Complex`] exactly.
    pub fn from_complex(z: Complex) -> Self {
        ExtComplex { mantissa: z, exponent: 0 }.normalized()
    }

    /// Converts a real `f64` exactly.
    pub fn from_f64(x: f64) -> Self {
        ExtComplex::from_complex(Complex::real(x))
    }

    /// Builds from extended-range real and imaginary parts.
    pub fn from_parts(re: ExtFloat, im: ExtFloat) -> Self {
        if re.is_zero() && im.is_zero() {
            return ExtComplex::ZERO;
        }
        let e = re_im_common_exponent(re, im);
        let rm = shift_to(re, e);
        let im_ = shift_to(im, e);
        ExtComplex::new(Complex::new(rm, im_), e)
    }

    /// The complex mantissa, with `max(|re|,|im|) ∈ [1,2)` unless zero.
    #[inline]
    pub fn mantissa(self) -> Complex {
        self.mantissa
    }

    /// The shared binary exponent.
    #[inline]
    pub fn exponent(self) -> i64 {
        self.exponent
    }

    fn normalized(self) -> Self {
        let m = self.mantissa;
        if m.re == 0.0 && m.im == 0.0 {
            return ExtComplex::ZERO;
        }
        if !m.is_finite() {
            return ExtComplex { mantissa: m, exponent: 0 };
        }
        // Normalize on the dominant component.
        let dom = m.re.abs().max(m.im.abs());
        let ext = ExtFloat::from_f64(dom);
        let shift = ext.exponent();
        if shift == 0 {
            return ExtComplex { mantissa: m, exponent: self.exponent };
        }
        let k = pow2(-shift);
        ExtComplex { mantissa: Complex::new(m.re * k, m.im * k), exponent: self.exponent + shift }
    }

    /// Returns `true` if the value is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.mantissa.re == 0.0 && self.mantissa.im == 0.0
    }

    /// Returns `true` if the mantissa is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.mantissa.is_finite()
    }

    /// Extended-range real part.
    pub fn re(self) -> ExtFloat {
        ExtFloat::new(self.mantissa.re, self.exponent)
    }

    /// Extended-range imaginary part.
    pub fn im(self) -> ExtFloat {
        ExtFloat::new(self.mantissa.im, self.exponent)
    }

    /// Magnitude `|z|` as an [`ExtFloat`].
    pub fn norm(self) -> ExtFloat {
        ExtFloat::new(self.mantissa.abs(), self.exponent)
    }

    /// Argument (phase) of the mantissa — the exponent is real and positive,
    /// so this is the argument of the value.
    pub fn arg(self) -> f64 {
        self.mantissa.arg()
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        ExtComplex { mantissa: self.mantissa.conj(), exponent: self.exponent }
    }

    /// Converts to a plain [`Complex`], saturating/flushing out of range.
    pub fn to_complex(self) -> Complex {
        if self.is_zero() {
            return Complex::ZERO;
        }
        if self.exponent > 1030 {
            return Complex::new(
                self.mantissa.re * f64::INFINITY,
                self.mantissa.im * f64::INFINITY,
            );
        }
        if self.exponent < -1080 {
            return Complex::ZERO;
        }
        let half = self.exponent / 2;
        let a = pow2(half);
        let b = pow2(self.exponent - half);
        Complex::new(self.mantissa.re * a * b, self.mantissa.im * a * b)
    }

    /// Scales by an extended-range real factor.
    pub fn scale_ext(self, k: ExtFloat) -> Self {
        ExtComplex::new(self.mantissa.scale(k.mantissa()), self.exponent + k.exponent())
    }

    /// `self · 2^k` — exact exponent shift.
    pub fn ldexp(self, k: i64) -> Self {
        if self.is_zero() {
            return self;
        }
        ExtComplex { mantissa: self.mantissa, exponent: self.exponent + k }
    }

    /// Integer power by binary exponentiation.
    pub fn powi(self, n: i64) -> Self {
        if n == 0 {
            return ExtComplex::ONE;
        }
        let mut base = if n < 0 { ExtComplex::ONE / self } else { self };
        let mut k = n.unsigned_abs();
        let mut acc = ExtComplex::ONE;
        while k > 0 {
            if k & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            k >>= 1;
        }
        acc
    }

    /// Mantissa shifted so the value equals `mantissa · 2^target_exp`.
    ///
    /// Returns 0.0 when the shift underflows f64 (more than ~120 binary
    /// digits below the target). Used to bring a set of coefficients to a
    /// common exponent before an f64-domain DFT.
    pub fn mantissa_at_exponent(self, target_exp: i64) -> Complex {
        if self.is_zero() {
            return Complex::ZERO;
        }
        let shift = self.exponent - target_exp;
        if shift < -1060 {
            return Complex::ZERO;
        }
        if shift > 1020 {
            return Complex::new(
                self.mantissa.re * f64::INFINITY,
                self.mantissa.im * f64::INFINITY,
            );
        }
        let k = pow2(shift);
        Complex::new(self.mantissa.re * k, self.mantissa.im * k)
    }
}

/// Deferred-normalization accumulator for long products of plain
/// [`Complex`] factors — the determinant fold of an LU pivot sequence.
///
/// The eager fold `det = det * ExtComplex::from_complex(pivot)` pays two
/// normalizations (exponent-bit extraction plus a scaling multiply each)
/// per factor — pure bookkeeping that dominates the sequential replay's
/// determinant cost. `ExtProduct` multiplies the raw factor into an
/// unnormalized complex mantissa and re-extracts the exponent only when
/// the mantissa's dominant component leaves a safe magnitude window,
/// which for well-scaled pivot sequences is once every ~100 factors
/// instead of every factor.
///
/// **Bit-identity.** [`ExtProduct::value`] equals the eager fold's result
/// bit for bit, by construction: every `f64` operation both schemes
/// perform commutes with exact power-of-two rescaling as long as no
/// intermediate is subnormal or overflows. The fast path is guarded so
/// that this always holds — it requires every nonzero component of both
/// the factor and the running mantissa to lie in `[2⁻¹²⁸, 2¹²⁸]`. Within
/// that window the deferred scheme's products lie in `[2⁻²⁵⁶, 2²⁵⁸]` and
/// its nonzero sums are `≥ 2⁻³⁰⁹`; the eager scheme's corresponding
/// intermediates are bounded below by `≥ 2⁻⁵⁶⁷` (the drift between the
/// two scalings is at most `2¹²⁹`) — all normal in both schemes, so
/// rounding commutes with the scaling and the mantissas differ by an
/// exact power of two at every step. A factor or accumulator component
/// outside the window (zero overall, subnormal-adjacent, huge, or
/// non-finite) takes the exact eager step for that factor instead.
///
/// ```
/// use refgen_numeric::{Complex, ExtComplex, ExtProduct};
/// let pivots = [Complex::new(3.0e100, -2.0e-80), Complex::new(-1.5e-90, 4.0e120)];
/// let mut fast = ExtProduct::ONE;
/// let mut eager = ExtComplex::ONE;
/// for &p in &pivots {
///     fast.mul_complex(p);
///     eager = eager * ExtComplex::from_complex(p);
/// }
/// assert_eq!(fast.value().mantissa(), eager.mantissa());
/// assert_eq!(fast.value().exponent(), eager.exponent());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ExtProduct {
    mantissa: Complex,
    exponent: i64,
}

/// Lower edge of the fast-path magnitude window: `2⁻¹²⁸`.
const WINDOW_LO: f64 = f64::from_bits((1023 - 128) << 52);
/// Upper edge of the fast-path magnitude window: `2¹²⁸`.
const WINDOW_HI: f64 = f64::from_bits((1023 + 128) << 52);

impl ExtProduct {
    /// The empty product.
    pub const ONE: ExtProduct = ExtProduct { mantissa: Complex::ONE, exponent: 0 };

    /// A component is fast-path safe when it is zero or its magnitude is
    /// inside the window (NaN/∞ fail both arms).
    #[inline(always)]
    fn safe(x: f64) -> bool {
        let a = x.abs();
        x == 0.0 || (WINDOW_LO..=WINDOW_HI).contains(&a)
    }

    /// Multiplies the accumulated product by a plain complex factor,
    /// bit-identical to `acc * ExtComplex::from_complex(z)` on the eager
    /// [`ExtComplex`] chain.
    #[inline]
    pub fn mul_complex(&mut self, z: Complex) {
        let m = self.mantissa;
        if Self::safe(z.re)
            && Self::safe(z.im)
            && Self::safe(m.re)
            && Self::safe(m.im)
            && (z.re != 0.0 || z.im != 0.0)
            && (m.re != 0.0 || m.im != 0.0)
        {
            let p = m * z;
            let dom = p.re.abs().max(p.im.abs());
            if (WINDOW_LO..=WINDOW_HI).contains(&dom) {
                self.mantissa = p;
                return;
            }
            if dom == 0.0 {
                // Exact complex product of nonzero factors is never zero,
                // but the rounded component sums can both be: the eager
                // chain lands on exactly zero too (its sums are the same
                // values at a shifted scale).
                *self = ExtProduct { mantissa: Complex::ZERO, exponent: 0 };
                return;
            }
            // Dominant component drifted out of the window: re-extract its
            // binary exponent and rescale — exact, `dom` is normal here.
            let delta = ((dom.to_bits() >> 52) & 0x7ff) as i64 - 1023;
            let k = f64::from_bits(((1023 - delta) as u64) << 52);
            self.mantissa = Complex::new(p.re * k, p.im * k);
            self.exponent += delta;
            return;
        }
        // Out-of-window factor or accumulator: take the exact eager step.
        // The deferred state differs from the eager chain's by an exact
        // power of two, which `ExtComplex::new` removes, so this re-syncs
        // the two schemes bit for bit.
        let eager = ExtComplex::new(m, self.exponent) * ExtComplex::from_complex(z);
        self.mantissa = eager.mantissa;
        self.exponent = eager.exponent;
    }

    /// The accumulated product, normalized — bit-identical to the eager
    /// `fold(ExtComplex::ONE, |d, z| d * ExtComplex::from_complex(z))`.
    #[inline]
    pub fn value(self) -> ExtComplex {
        ExtComplex::new(self.mantissa, self.exponent)
    }
}

/// `2^k` for |k| ≤ ~1020, split to avoid powi overflow at the extremes.
#[inline]
fn pow2(k: i64) -> f64 {
    debug_assert!(k.abs() <= 1080);
    if k.abs() <= 1000 {
        2f64.powi(k as i32)
    } else {
        let half = k / 2;
        2f64.powi(half as i32) * 2f64.powi((k - half) as i32)
    }
}

fn re_im_common_exponent(re: ExtFloat, im: ExtFloat) -> i64 {
    match (re.is_zero(), im.is_zero()) {
        (true, true) => 0,
        (false, true) => re.exponent(),
        (true, false) => im.exponent(),
        (false, false) => re.exponent().max(im.exponent()),
    }
}

fn shift_to(x: ExtFloat, e: i64) -> f64 {
    if x.is_zero() {
        return 0.0;
    }
    let shift = x.exponent() - e;
    if shift < -1060 {
        0.0
    } else {
        x.mantissa() * pow2(shift)
    }
}

impl Default for ExtComplex {
    fn default() -> Self {
        ExtComplex::ZERO
    }
}

impl From<Complex> for ExtComplex {
    fn from(z: Complex) -> Self {
        ExtComplex::from_complex(z)
    }
}

impl From<f64> for ExtComplex {
    fn from(x: f64) -> Self {
        ExtComplex::from_f64(x)
    }
}

impl From<ExtFloat> for ExtComplex {
    fn from(x: ExtFloat) -> Self {
        ExtComplex::new(Complex::real(x.mantissa()), x.exponent())
    }
}

impl Neg for ExtComplex {
    type Output = ExtComplex;
    #[inline]
    fn neg(self) -> ExtComplex {
        ExtComplex { mantissa: -self.mantissa, exponent: self.exponent }
    }
}

impl Mul for ExtComplex {
    type Output = ExtComplex;
    #[inline]
    fn mul(self, rhs: ExtComplex) -> ExtComplex {
        ExtComplex::new(self.mantissa * rhs.mantissa, self.exponent + rhs.exponent)
    }
}

impl Div for ExtComplex {
    type Output = ExtComplex;
    #[inline]
    fn div(self, rhs: ExtComplex) -> ExtComplex {
        ExtComplex::new(self.mantissa / rhs.mantissa, self.exponent - rhs.exponent)
    }
}

impl Mul<Complex> for ExtComplex {
    type Output = ExtComplex;
    #[inline]
    fn mul(self, rhs: Complex) -> ExtComplex {
        ExtComplex::new(self.mantissa * rhs, self.exponent)
    }
}

impl Div<Complex> for ExtComplex {
    type Output = ExtComplex;
    #[inline]
    fn div(self, rhs: Complex) -> ExtComplex {
        ExtComplex::new(self.mantissa / rhs, self.exponent)
    }
}

impl Add for ExtComplex {
    type Output = ExtComplex;
    fn add(self, rhs: ExtComplex) -> ExtComplex {
        if self.is_zero() {
            return rhs;
        }
        if rhs.is_zero() {
            return self;
        }
        let (hi, lo) = if self.exponent >= rhs.exponent { (self, rhs) } else { (rhs, self) };
        let shift = hi.exponent - lo.exponent;
        if shift > 120 {
            return hi;
        }
        let k = pow2(-shift);
        ExtComplex::new(
            Complex::new(hi.mantissa.re + lo.mantissa.re * k, hi.mantissa.im + lo.mantissa.im * k),
            hi.exponent,
        )
    }
}

impl Sub for ExtComplex {
    type Output = ExtComplex;
    #[inline]
    fn sub(self, rhs: ExtComplex) -> ExtComplex {
        self + (-rhs)
    }
}

impl AddAssign for ExtComplex {
    fn add_assign(&mut self, rhs: ExtComplex) {
        *self = *self + rhs;
    }
}

impl SubAssign for ExtComplex {
    fn sub_assign(&mut self, rhs: ExtComplex) {
        *self = *self - rhs;
    }
}

impl MulAssign for ExtComplex {
    fn mul_assign(&mut self, rhs: ExtComplex) {
        *self = *self * rhs;
    }
}

impl DivAssign for ExtComplex {
    fn div_assign(&mut self, rhs: ExtComplex) {
        *self = *self / rhs;
    }
}

impl Sum for ExtComplex {
    fn sum<I: Iterator<Item = ExtComplex>>(iter: I) -> ExtComplex {
        iter.fold(ExtComplex::ZERO, |a, b| a + b)
    }
}

impl Product for ExtComplex {
    fn product<I: Iterator<Item = ExtComplex>>(iter: I) -> ExtComplex {
        iter.fold(ExtComplex::ONE, |a, b| a * b)
    }
}

impl PartialEq for ExtComplex {
    fn eq(&self, other: &Self) -> bool {
        self.re() == other.re() && self.im() == other.im()
    }
}

impl fmt::Display for ExtComplex {
    /// Paper-table style: `-2.77330e-339+j1.00000e-345`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = f.precision().unwrap_or(5);
        let re = self.re();
        let im = self.im();
        if im.signum() < 0.0 {
            write!(f, "{re:.prec$}-j{:.prec$}", -im)
        } else {
            write!(f, "{re:.prec$}+j{im:.prec$}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: ExtComplex, b: ExtComplex, rel: f64) {
        if a.is_zero() && b.is_zero() {
            return;
        }
        let diff = (a - b).norm();
        let scale = a.norm().max_abs(b.norm());
        assert!(
            (diff / scale).to_f64() <= rel,
            "a={a}, b={b}, rel diff {}",
            (diff / scale).to_f64()
        );
    }

    #[test]
    fn round_trip_complex() {
        let z = Complex::new(-3.5e-7, 2.25e3);
        let e = ExtComplex::from_complex(z);
        let back = e.to_complex();
        assert!((back - z).abs() < 1e-20);
    }

    #[test]
    fn normalization_dominant_component() {
        let e = ExtComplex::from_complex(Complex::new(3.0, -40.0));
        let dom = e.mantissa().re.abs().max(e.mantissa().im.abs());
        assert!((1.0..2.0).contains(&dom));
    }

    #[test]
    fn arithmetic_matches_complex_in_range() {
        let a = Complex::new(1.3, -0.7);
        let b = Complex::new(-2.0, 0.25);
        let ea = ExtComplex::from_complex(a);
        let eb = ExtComplex::from_complex(b);
        assert_close(ea * eb, ExtComplex::from_complex(a * b), 1e-15);
        assert_close(ea + eb, ExtComplex::from_complex(a + b), 1e-15);
        assert_close(ea - eb, ExtComplex::from_complex(a - b), 1e-15);
        assert_close(ea / eb, ExtComplex::from_complex(a / b), 1e-15);
    }

    #[test]
    fn products_beyond_f64_range() {
        let z = ExtComplex::from_complex(Complex::new(1e-200, 1e-200));
        let w = z.powi(5); // |w| ~ 1e-1000 · 2^{5/2}
        assert!(w.norm().log10() < -990.0);
        let back = w / z / z / z / z;
        assert_close(back, z, 1e-12);
    }

    #[test]
    fn from_parts_mixed_exponents() {
        let re = ExtFloat::from_pow10(-400);
        let im = -ExtFloat::from_pow10(-395);
        let z = ExtComplex::from_parts(re, im);
        assert!((z.re().log10() + 400.0).abs() < 1e-6);
        assert!((z.im().log10() + 395.0).abs() < 1e-6);
        assert!(z.im().signum() < 0.0);
        // Real part far below the imaginary part is still preserved
        // (shift < 120 binary digits ≈ 36 decades).
        let z2 = ExtComplex::from_parts(ExtFloat::from_pow10(-430), ExtFloat::from_pow10(-400));
        assert!((z2.re().log10() + 430.0).abs() < 1e-6);
    }

    #[test]
    fn powi_zero_and_negative() {
        let z = ExtComplex::from_complex(Complex::new(2.0, 1.0));
        assert_eq!(z.powi(0), ExtComplex::ONE);
        assert_close(z.powi(-2) * z.powi(2), ExtComplex::ONE, 1e-13);
    }

    #[test]
    fn mantissa_at_exponent_alignment() {
        let a = ExtComplex::from_f64(3.0);
        let m = a.mantissa_at_exponent(2);
        assert!((m.re - 0.75).abs() < 1e-15);
        // Underflow flush.
        let tiny = ExtComplex::new(Complex::ONE, -2000);
        assert_eq!(tiny.mantissa_at_exponent(0), Complex::ZERO);
    }

    #[test]
    fn display_paper_style() {
        let z = ExtComplex::from_parts(
            ExtFloat::from_f64(-2.7733) * ExtFloat::from_pow10(-339),
            ExtFloat::ZERO,
        );
        let s = format!("{z}");
        assert!(s.starts_with("-2.7733") && s.contains("e-339"), "{s}");
    }

    #[test]
    fn sum_preserves_small_terms_within_window() {
        // Terms spanning 30 decades must all contribute.
        let terms: Vec<ExtComplex> = (0..4)
            .map(|k| ExtComplex::from_f64(1.0).scale_ext(ExtFloat::from_pow10(-10 * k)))
            .collect();
        let s: ExtComplex = terms.iter().copied().sum();
        let expect = 1.0 + 1e-10 + 1e-20 + 1e-30;
        assert!((s.re().to_f64() - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn conj_and_arg() {
        let z = ExtComplex::from_complex(Complex::new(1.0, 1.0));
        assert!((z.arg() - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
        assert!((z.conj().arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-15);
    }

    /// The eager reference fold the deferred product must reproduce.
    fn eager_fold(pivots: &[Complex]) -> ExtComplex {
        pivots.iter().fold(ExtComplex::ONE, |d, &z| d * ExtComplex::from_complex(z))
    }

    fn deferred_fold(pivots: &[Complex]) -> ExtComplex {
        let mut p = ExtProduct::ONE;
        for &z in pivots {
            p.mul_complex(z);
        }
        p.value()
    }

    #[track_caller]
    fn assert_bit_identical(pivots: &[Complex]) {
        let a = deferred_fold(pivots);
        let b = eager_fold(pivots);
        assert_eq!(
            (a.mantissa().re.to_bits(), a.mantissa().im.to_bits(), a.exponent()),
            (b.mantissa().re.to_bits(), b.mantissa().im.to_bits(), b.exponent()),
            "deferred {a} vs eager {b} for {pivots:?}"
        );
    }

    #[test]
    fn ext_product_edge_pivots_match_eager() {
        let sub = f64::MIN_POSITIVE / 8.0; // subnormal
        let cases: &[&[Complex]] = &[
            &[],
            &[Complex::ZERO],
            &[Complex::new(2.0, 3.0), Complex::ZERO, Complex::new(1.0, 1.0)],
            &[Complex::new(sub, 0.0), Complex::new(0.0, sub)],
            &[Complex::new(1e308, -1e308), Complex::new(1e308, 1e308)],
            &[Complex::new(1e-300, 1.0), Complex::new(1.0, 1e-300)],
            &[Complex::new(f64::MAX, f64::MIN_POSITIVE), Complex::new(-3.0, 4.0)],
            // Drifts far out of the window in one direction.
            &[Complex::new(1e100, 0.0); 8],
            &[Complex::new(1e-100, 1e-100); 8],
            // Recessive component collapses relative to the dominant.
            &[Complex::new(1.0, 1e-40), Complex::new(1.0, -1e-40), Complex::new(1e-120, 1e20)],
        ];
        for pivots in cases {
            assert_bit_identical(pivots);
        }
    }

    #[test]
    fn ext_product_long_well_scaled_chain() {
        // A realistic pivot sequence: magnitudes drifting over many decades.
        let mut pivots = Vec::new();
        let mut x = 1.37f64;
        for k in 0..400 {
            x = (x * 1103.515245 + 1.2345).fract() + 0.5; // deterministic, in [0.5, 1.5)
            let mag = 10f64.powf(((k % 13) as f64 - 6.0) * 2.0);
            pivots.push(Complex::new(x * mag, (1.0 - x) * mag));
        }
        assert_bit_identical(&pivots);
    }

    mod ext_product_props {
        use super::*;
        use proptest::prelude::*;

        /// One pivot component: spans zero, subnormal, extreme, and
        /// ordinary magnitudes with both signs.
        fn component() -> impl Strategy<Value = f64> {
            prop_oneof![
                Just(0.0),
                (-1.0f64..1.0).prop_map(|m| m * f64::MIN_POSITIVE), // subnormal
                (-400i32..400, -1.0f64..1.0).prop_map(|(e, m)| m * 10f64.powi(e.clamp(-307, 307))),
                -8.0f64..8.0,
            ]
        }

        fn pivot() -> impl Strategy<Value = Complex> {
            (component(), component()).prop_map(|(re, im)| Complex::new(re, im))
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

            #[test]
            fn deferred_fold_is_bit_identical(pivots in proptest::collection::vec(pivot(), 0..40)) {
                assert_bit_identical(&pivots);
            }
        }
    }
}
