//! Small statistical helpers used when choosing scale factors.
//!
//! The paper's first interpolation uses "the inverse of the mean value of the
//! capacitors as frequency scale factor" and likewise for conductances
//! (§3.2), so means — arithmetic and geometric — are needed on element-value
//! collections.

/// Arithmetic mean of a slice. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Geometric mean of a slice of positive values, computed in log space so no
/// intermediate product can overflow. Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if any element is not strictly positive.
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Geometric mean of two values in log10 space — the paper's eq. (16) uses
/// exactly this for the gap-repair scale factors.
pub fn log10_midpoint(a: f64, b: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "log10 midpoint requires positive values");
    10f64.powf((a.log10() + b.log10()) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn geometric_mean_basic() {
        let g = geometric_mean(&[1.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), None);
    }

    #[test]
    fn geometric_mean_no_overflow() {
        let g = geometric_mean(&[1e300, 1e-300, 1e300, 1e-300]).unwrap();
        assert!((g - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log10_midpoint_is_geometric() {
        let m = log10_midpoint(1e-3, 1e5);
        assert!((m - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }
}
