//! Numerical substrate for the `refgen` workspace.
//!
//! This crate implements, from scratch, every piece of numerics the
//! reproduction of *"An Algorithm for Numerical Reference Generation in
//! Symbolic Analysis of Large Analog Circuits"* (DATE 1997) needs:
//!
//! * [`Complex`] — double-precision complex arithmetic (no external crates).
//! * [`ExtFloat`] / [`ExtComplex`] — **extended-range** floating point: an
//!   `f64` mantissa paired with an `i64` binary exponent. The paper's µA741
//!   denominator coefficients span `1e-90` down to `1e-522` (Tables 2–3),
//!   far outside the `f64` range, so every denormalized coefficient in this
//!   workspace is an `ExtComplex`.
//! * [`dd::Dd`] — double-double (~31 significant digits) arithmetic used to
//!   produce independent high-precision references in tests.
//! * [`dft`] — DFT/IDFT: direct, radix-2 FFT, and Bluestein for arbitrary
//!   sizes (the interpolation point count `K = n+1` is arbitrary).
//! * [`poly`] — polynomials over [`Complex`] and [`ExtComplex`]: Horner
//!   evaluation, arithmetic, and an Aberth–Ehrlich root finder used by the
//!   examples to extract poles/zeros from interpolated coefficients.
//!
//! # Example
//!
//! ```
//! use refgen_numeric::{Complex, ExtFloat};
//!
//! let z = Complex::new(3.0, 4.0);
//! assert_eq!(z.abs(), 5.0);
//!
//! // Values far below f64 range are exactly representable:
//! let tiny = ExtFloat::from_f64(1.0e-300) * ExtFloat::from_f64(1.0e-300);
//! assert!((tiny.log10() + 600.0).abs() < 1e-9);
//! ```

pub mod complex;
pub mod dd;
pub mod dft;
pub mod extcomplex;
pub mod extfloat;
pub mod poly;
pub mod stats;

pub use complex::Complex;
pub use dd::Dd;
pub use extcomplex::{ExtComplex, ExtProduct};
pub use extfloat::ExtFloat;
pub use poly::{ExtPoly, Poly};
