//! Extended-range real floating point.
//!
//! The adaptive-scaling algorithm recovers polynomial coefficients whose
//! magnitudes span *hundreds* of decades: the paper's µA741 denominator runs
//! from `≈1e-90` (`p₀`) down to `≈1e-522` (`p₄₈`), while the normalized
//! coefficients inside one interpolation reach `1e+124`. Neither end fits in
//! an `f64` (`≈1e±308`), so all denormalized quantities in this workspace are
//! carried as an [`ExtFloat`]: an `f64` mantissa `m` with `1 ≤ |m| < 2`
//! paired with an `i64` binary exponent `e`, representing `m · 2^e`.
//!
//! The mantissa keeps full `f64` precision (53 bits); only the exponent range
//! is extended. Normalization is exact (pure exponent-bit manipulation), so
//! multiplication and division lose no accuracy relative to `f64`.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// log10(2), used to convert binary exponents to decimal for display.
pub(crate) const LOG10_2: f64 = std::f64::consts::LOG10_2;

/// An extended-range real number `m · 2^e` with `1 ≤ |m| < 2` (or `m = 0`).
///
/// ```
/// use refgen_numeric::ExtFloat;
/// let x = ExtFloat::from_f64(1.0e-300);
/// let y = x * x * x; // 1e-900: unrepresentable in f64, fine here
/// assert!((y.log10() + 900.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ExtFloat {
    mantissa: f64,
    exponent: i64,
}

impl ExtFloat {
    /// Zero.
    pub const ZERO: ExtFloat = ExtFloat { mantissa: 0.0, exponent: 0 };
    /// One.
    pub const ONE: ExtFloat = ExtFloat { mantissa: 1.0, exponent: 0 };

    /// Creates an `ExtFloat` from a raw mantissa/exponent pair, normalizing.
    ///
    /// The value represented is `mantissa · 2^exponent`.
    pub fn new(mantissa: f64, exponent: i64) -> Self {
        ExtFloat { mantissa, exponent }.normalized()
    }

    /// Converts an `f64` exactly.
    pub fn from_f64(x: f64) -> Self {
        ExtFloat { mantissa: x, exponent: 0 }.normalized()
    }

    /// Builds `10^p` for an integer decimal exponent (accurate to f64
    /// precision in the mantissa, exact in range).
    pub fn from_pow10(p: i64) -> Self {
        // 10^p = 2^(p·log2(10)); split into exact binary exponent and an
        // in-range f64 residual so no intermediate overflows.
        let l2 = (p as f64) * std::f64::consts::LOG2_10;
        let e = l2.floor() as i64;
        let frac = l2 - (e as f64);
        ExtFloat::new(frac.exp2(), e)
    }

    /// The mantissa `m`, with `1 ≤ |m| < 2` unless the value is zero.
    #[inline]
    pub fn mantissa(self) -> f64 {
        self.mantissa
    }

    /// The binary exponent `e`.
    #[inline]
    pub fn exponent(self) -> i64 {
        self.exponent
    }

    fn normalized(self) -> Self {
        let m = self.mantissa;
        if m == 0.0 {
            return ExtFloat::ZERO;
        }
        if !m.is_finite() {
            return ExtFloat { mantissa: m, exponent: 0 };
        }
        let mut m = m;
        let mut e = self.exponent;
        // Pre-scale subnormals into the normal range so the exponent bits are
        // meaningful.
        if m.abs() < f64::MIN_POSITIVE {
            m *= 2f64.powi(200);
            e -= 200;
        }
        let bits = m.to_bits();
        let raw_exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
        if raw_exp != 0 {
            // Rescale mantissa to [1,2) by zeroing the exponent field: exact.
            let new_bits = (bits & !(0x7ffu64 << 52)) | (1023u64 << 52);
            m = f64::from_bits(new_bits);
            e += raw_exp;
        }
        ExtFloat { mantissa: m, exponent: e }
    }

    /// Returns `true` if the value is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.mantissa == 0.0
    }

    /// Returns `true` if the mantissa is finite (the type itself never
    /// overflows through arithmetic on finite inputs).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.mantissa.is_finite()
    }

    /// Returns `true` if the mantissa is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.mantissa.is_nan()
    }

    /// Sign: `-1.0`, `0.0`, or `1.0`.
    pub fn signum(self) -> f64 {
        if self.is_zero() {
            0.0
        } else {
            self.mantissa.signum()
        }
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        ExtFloat { mantissa: self.mantissa.abs(), exponent: self.exponent }
    }

    /// Converts to `f64`, saturating to `±inf` / flushing to `0` outside the
    /// representable range.
    pub fn to_f64(self) -> f64 {
        if self.is_zero() || !self.mantissa.is_finite() {
            return self.mantissa;
        }
        if self.exponent > 1030 {
            return f64::INFINITY * self.mantissa.signum();
        }
        if self.exponent < -1080 {
            return 0.0;
        }
        // Split the exponent so each factor stays in range.
        let half = self.exponent / 2;
        self.mantissa * 2f64.powi(half as i32) * 2f64.powi((self.exponent - half) as i32)
    }

    /// Base-10 logarithm of the absolute value.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn log10(self) -> f64 {
        assert!(!self.is_zero(), "log10 of zero ExtFloat");
        (self.exponent as f64) * LOG10_2 + self.mantissa.abs().log10()
    }

    /// Base-2 logarithm of the absolute value (`-inf` for zero).
    pub fn log2(self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        (self.exponent as f64) + self.mantissa.abs().log2()
    }

    /// Builds `10^x` for a real decimal exponent.
    pub fn exp10(x: f64) -> Self {
        let l2 = x * std::f64::consts::LOG2_10;
        let e = l2.floor() as i64;
        ExtFloat::new((l2 - e as f64).exp2(), e)
    }

    /// Integer power by binary exponentiation.
    pub fn powi(self, n: i64) -> Self {
        if n == 0 {
            return ExtFloat::ONE;
        }
        let mut base = if n < 0 { ExtFloat::ONE / self } else { self };
        let mut k = n.unsigned_abs();
        let mut acc = ExtFloat::ONE;
        while k > 0 {
            if k & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            k >>= 1;
        }
        acc
    }

    /// Square root.
    ///
    /// # Panics
    ///
    /// Panics if the value is negative.
    pub fn sqrt(self) -> Self {
        assert!(self.signum() >= 0.0, "sqrt of negative ExtFloat");
        if self.is_zero() {
            return ExtFloat::ZERO;
        }
        if self.exponent % 2 == 0 {
            ExtFloat::new(self.mantissa.sqrt(), self.exponent / 2)
        } else {
            ExtFloat::new((self.mantissa * 2.0).sqrt(), (self.exponent - 1) / 2)
        }
    }

    /// `self · 2^k` — exact exponent shift.
    #[inline]
    pub fn ldexp(self, k: i64) -> Self {
        if self.is_zero() {
            return self;
        }
        ExtFloat { mantissa: self.mantissa, exponent: self.exponent + k }
    }

    /// Returns the larger of two values by magnitude.
    pub fn max_abs(self, other: Self) -> Self {
        if self.abs() >= other.abs() {
            self
        } else {
            other
        }
    }
}

impl Default for ExtFloat {
    fn default() -> Self {
        ExtFloat::ZERO
    }
}

impl From<f64> for ExtFloat {
    fn from(x: f64) -> Self {
        ExtFloat::from_f64(x)
    }
}

impl Neg for ExtFloat {
    type Output = ExtFloat;
    #[inline]
    fn neg(self) -> ExtFloat {
        ExtFloat { mantissa: -self.mantissa, exponent: self.exponent }
    }
}

impl Mul for ExtFloat {
    type Output = ExtFloat;
    #[inline]
    fn mul(self, rhs: ExtFloat) -> ExtFloat {
        ExtFloat::new(self.mantissa * rhs.mantissa, self.exponent + rhs.exponent)
    }
}

impl Div for ExtFloat {
    type Output = ExtFloat;
    #[inline]
    fn div(self, rhs: ExtFloat) -> ExtFloat {
        ExtFloat::new(self.mantissa / rhs.mantissa, self.exponent - rhs.exponent)
    }
}

impl Add for ExtFloat {
    type Output = ExtFloat;
    fn add(self, rhs: ExtFloat) -> ExtFloat {
        if self.is_zero() {
            return rhs;
        }
        if rhs.is_zero() {
            return self;
        }
        let (hi, lo) = if self.exponent >= rhs.exponent { (self, rhs) } else { (rhs, self) };
        let shift = hi.exponent - lo.exponent;
        if shift > 120 {
            // The smaller operand is below one ulp of the larger.
            return hi;
        }
        let lo_m = lo.mantissa * 2f64.powi(-(shift as i32));
        ExtFloat::new(hi.mantissa + lo_m, hi.exponent)
    }
}

impl Sub for ExtFloat {
    type Output = ExtFloat;
    #[inline]
    fn sub(self, rhs: ExtFloat) -> ExtFloat {
        self + (-rhs)
    }
}

impl AddAssign for ExtFloat {
    fn add_assign(&mut self, rhs: ExtFloat) {
        *self = *self + rhs;
    }
}

impl SubAssign for ExtFloat {
    fn sub_assign(&mut self, rhs: ExtFloat) {
        *self = *self - rhs;
    }
}

impl MulAssign for ExtFloat {
    fn mul_assign(&mut self, rhs: ExtFloat) {
        *self = *self * rhs;
    }
}

impl DivAssign for ExtFloat {
    fn div_assign(&mut self, rhs: ExtFloat) {
        *self = *self / rhs;
    }
}

impl Sum for ExtFloat {
    fn sum<I: Iterator<Item = ExtFloat>>(iter: I) -> ExtFloat {
        iter.fold(ExtFloat::ZERO, |a, b| a + b)
    }
}

impl Product for ExtFloat {
    fn product<I: Iterator<Item = ExtFloat>>(iter: I) -> ExtFloat {
        iter.fold(ExtFloat::ONE, |a, b| a * b)
    }
}

impl PartialEq for ExtFloat {
    fn eq(&self, other: &Self) -> bool {
        self.partial_cmp(other) == Some(Ordering::Equal)
    }
}

impl PartialOrd for ExtFloat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.is_nan() || other.is_nan() {
            return None;
        }
        let sa = self.signum();
        let sb = other.signum();
        if sa != sb {
            return sa.partial_cmp(&sb);
        }
        if sa == 0.0 {
            return Some(Ordering::Equal);
        }
        // Same nonzero sign: compare magnitudes via (exponent, |mantissa|),
        // flipping for negative values.
        let mag = match self.exponent.cmp(&other.exponent) {
            Ordering::Equal => self.mantissa.abs().partial_cmp(&other.mantissa.abs())?,
            ord => ord,
        };
        Some(if sa > 0.0 { mag } else { mag.reverse() })
    }
}

impl fmt::Display for ExtFloat {
    /// Scientific notation with a *decimal* exponent, e.g. `-2.77330e-339`.
    ///
    /// The decimal mantissa is reconstructed through logarithms, so display
    /// (not arithmetic) is accurate to ~15 digits; use `{:.N}` to select the
    /// printed precision (default 5).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = f.precision().unwrap_or(5);
        if self.is_zero() {
            return write!(f, "{:.*}e0", prec, 0.0);
        }
        if !self.mantissa.is_finite() {
            return write!(f, "{}", self.mantissa);
        }
        let d = self.log10();
        let mut ip = d.floor();
        let mut mant = 10f64.powf(d - ip);
        // Guard against 9.99999… rounding up to 10 at the printed precision.
        if mant + 0.5 * 10f64.powi(-(prec as i32)) >= 10.0 {
            mant = 1.0;
            ip += 1.0;
        }
        let sign = if self.mantissa < 0.0 { "-" } else { "" };
        write!(f, "{sign}{mant:.prec$}e{}", ip as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_invariant() {
        for &x in &[1.0, -1.0, 0.5, 3.75, 1e308, -1e-308, 5e-320, 123456.789] {
            let e = ExtFloat::from_f64(x);
            assert!(e.mantissa().abs() >= 1.0 && e.mantissa().abs() < 2.0, "x={x}: {e:?}");
            assert_eq!(e.to_f64(), x, "round trip for {x}");
        }
    }

    #[test]
    fn zero_round_trip() {
        let z = ExtFloat::from_f64(0.0);
        assert!(z.is_zero());
        assert_eq!(z.to_f64(), 0.0);
        assert_eq!(z + ExtFloat::ONE, ExtFloat::ONE);
        assert_eq!(ExtFloat::ONE * z, ExtFloat::ZERO);
    }

    #[test]
    fn multiplication_extends_range() {
        let x = ExtFloat::from_f64(1e-300);
        let y = x * x * x; // 1e-900
        assert!((y.log10() + 900.0).abs() < 1e-8);
        let z = y / x / x;
        assert!(((z.to_f64() - 1e-300) / 1e-300).abs() < 1e-12);
    }

    #[test]
    fn addition_aligns_exponents() {
        let a = ExtFloat::from_f64(1.0);
        let b = ExtFloat::from_f64(3.0);
        assert_eq!((a + b).to_f64(), 4.0);
        let tiny = ExtFloat::from_f64(1e-40);
        assert_eq!((a + tiny).to_f64(), 1.0 + 1e-40);
        // Below one ulp: absorbed.
        let sub_ulp = ExtFloat::from_f64(1e-60);
        assert_eq!((a + sub_ulp).to_f64(), 1.0);
    }

    #[test]
    fn subtraction_cancellation() {
        let a = ExtFloat::from_f64(1.0000000000000002);
        let b = ExtFloat::ONE;
        let d = a - b;
        assert!((d.to_f64() - 2.220446049250313e-16).abs() < 1e-30);
    }

    #[test]
    fn comparison_total_order_on_finite() {
        let vals = [
            ExtFloat::new(-1.0, 900),
            ExtFloat::new(-1.0, -900),
            ExtFloat::ZERO,
            ExtFloat::new(1.5, -2000),
            ExtFloat::new(1.0, -5),
            ExtFloat::ONE,
            ExtFloat::new(1.9, 0),
            ExtFloat::new(1.0, 900),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{:?} < {:?}", w[0], w[1]);
        }
        assert!(ExtFloat::new(-1.0, 900) < ExtFloat::new(-1.0, -900));
        assert!(ExtFloat::new(-1.0, -900) < ExtFloat::new(1.0, -2000));
    }

    #[test]
    fn powi_and_sqrt() {
        let x = ExtFloat::from_f64(10.0);
        assert!((x.powi(100).log10() - 100.0).abs() < 1e-10);
        assert!((x.powi(-100).log10() + 100.0).abs() < 1e-10);
        let s = x.powi(100).sqrt();
        assert!((s.log10() - 50.0).abs() < 1e-10);
        let odd = ExtFloat::new(1.5, 7);
        let r = odd.sqrt();
        assert!(((r * r).log2() - odd.log2()).abs() < 1e-12);
    }

    #[test]
    fn from_pow10_matches_log() {
        for &p in &[-522i64, -90, -13, 0, 6, 118, 124, 300] {
            let v = ExtFloat::from_pow10(p);
            assert!((v.log10() - p as f64).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn exp10_matches() {
        let v = ExtFloat::exp10(-339.442);
        assert!((v.log10() + 339.442).abs() < 1e-9);
    }

    #[test]
    fn display_decimal_exponent() {
        let v = ExtFloat::from_f64(-2.7733) * ExtFloat::from_pow10(-339);
        let s = format!("{v}");
        assert!(s.starts_with("-2.7733") && s.ends_with("e-339"), "{s}");
        assert_eq!(format!("{}", ExtFloat::ZERO), "0.00000e0");
        let nearly_ten = ExtFloat::from_f64(9.999999999);
        let s = format!("{nearly_ten:.3}");
        assert_eq!(s, "1.000e1");
    }

    #[test]
    fn to_f64_saturation() {
        assert_eq!(ExtFloat::new(1.0, 5000).to_f64(), f64::INFINITY);
        assert_eq!(ExtFloat::new(-1.0, 5000).to_f64(), f64::NEG_INFINITY);
        assert_eq!(ExtFloat::new(1.0, -5000).to_f64(), 0.0);
    }

    #[test]
    fn subnormal_input() {
        let x = 5e-324; // smallest positive subnormal
        let e = ExtFloat::from_f64(x);
        assert!(e.mantissa().abs() >= 1.0 && e.mantissa().abs() < 2.0);
        assert_eq!(e.to_f64(), x);
    }

    #[test]
    fn ldexp_shifts() {
        let x = ExtFloat::from_f64(1.5);
        assert_eq!(x.ldexp(10).to_f64(), 1.5 * 1024.0);
        assert!(ExtFloat::ZERO.ldexp(10).is_zero());
    }

    #[test]
    #[should_panic(expected = "sqrt of negative")]
    fn sqrt_negative_panics() {
        let _ = ExtFloat::from_f64(-1.0).sqrt();
    }

    #[test]
    #[should_panic(expected = "log10 of zero")]
    fn log10_zero_panics() {
        let _ = ExtFloat::ZERO.log10();
    }
}
