//! Discrete Fourier transforms.
//!
//! The interpolation method recovers polynomial coefficients from samples on
//! the unit circle through the inverse DFT (paper eq. (5)):
//!
//! ```text
//! p̂_i = (1/K) Σ_{k=0}^{K-1} P(s_k) · e^{-2πjik/K},   s_k = e^{2πjk/K}
//! ```
//!
//! `K = n+1` is arbitrary (the polynomial order is whatever the circuit
//! gives), so three algorithms are provided behind one [`Dft`] plan:
//!
//! * direct `O(K²)` evaluation with exact index reduction (`j·k mod K`),
//! * iterative radix-2 Cooley–Tukey for powers of two,
//! * Bluestein's chirp-z algorithm for everything else above a size cutoff.
//!
//! A double-double direct transform ([`dft_direct_dd`]) serves as the
//! high-precision oracle in tests: the paper's `1e-13·max` error floor
//! (§2.2) is a property of *f64* DFTs and the oracle lets tests measure it.

use crate::complex::Complex;
use crate::dd::DdComplex;
use std::f64::consts::PI;

/// Size above which non-power-of-two transforms switch from the direct
/// algorithm to Bluestein. Below this the direct transform is both faster
/// and slightly more accurate.
const BLUESTEIN_CUTOFF: usize = 96;

/// A DFT plan for a fixed size `n`.
///
/// ```
/// use refgen_numeric::{Complex, dft::Dft};
/// let plan = Dft::new(4);
/// let x = vec![Complex::real(1.0); 4];
/// let spec = plan.forward(&x);
/// assert!((spec[0].re - 4.0).abs() < 1e-12);
/// assert!(spec[1].abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct Dft {
    n: usize,
    kind: Kind,
}

#[derive(Clone, Debug)]
enum Kind {
    Direct { twiddle: Vec<Complex> },
    Radix2 { rev: Vec<u32>, twiddle: Vec<Complex> },
    Bluestein(Box<Bluestein>),
}

#[derive(Clone, Debug)]
struct Bluestein {
    /// Chirp `w_j = e^{-πj·j²/n}`, reduced exactly mod 2n.
    chirp: Vec<Complex>,
    /// FFT of the zero-padded conjugate-chirp kernel.
    kernel_fft: Vec<Complex>,
    /// Inner power-of-two plan.
    inner: Dft,
    m: usize,
}

impl Dft {
    /// Creates a plan for size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "DFT size must be positive");
        let kind = if n.is_power_of_two() {
            Kind::Radix2 { rev: bit_reversal(n), twiddle: forward_twiddles(n) }
        } else if n <= BLUESTEIN_CUTOFF {
            Kind::Direct { twiddle: forward_twiddles(n) }
        } else {
            Kind::Bluestein(Box::new(Bluestein::new(n)))
        };
        Dft { n, kind }
    }

    /// The transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the plan size is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward transform: `X_i = Σ_k x_k e^{-2πjik/n}`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn forward(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.n, "input length mismatch");
        match &self.kind {
            Kind::Direct { twiddle } => direct(x, twiddle),
            Kind::Radix2 { rev, twiddle } => {
                let mut buf = x.to_vec();
                radix2_in_place(&mut buf, rev, twiddle);
                buf
            }
            Kind::Bluestein(b) => b.forward(x),
        }
    }

    /// Inverse transform: `x_k = (1/n) Σ_i X_i e^{+2πjik/n}`.
    ///
    /// This is the paper's eq. (5) up to its sign convention: applying
    /// [`Dft::forward`] to unit-circle samples and dividing by `n` is
    /// identical to this inverse applied to conjugated samples.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn inverse(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.n, "input length mismatch");
        // inverse(x) = conj(forward(conj(x))) / n
        let conj_in: Vec<Complex> = x.iter().map(|z| z.conj()).collect();
        let mut out = self.forward(&conj_in);
        let scale = 1.0 / self.n as f64;
        for z in &mut out {
            *z = z.conj().scale(scale);
        }
        out
    }
}

/// The `n` forward twiddles `e^{-2πjk/n}`, `k = 0..n`.
fn forward_twiddles(n: usize) -> Vec<Complex> {
    (0..n).map(|k| Complex::cis(-2.0 * PI * (k as f64) / (n as f64))).collect()
}

fn direct(x: &[Complex], twiddle: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut acc = Complex::ZERO;
        for (k, &xk) in x.iter().enumerate() {
            // Exact index reduction keeps the twiddle angle exact for all i·k.
            acc = xk.mul_add(twiddle[(i * k) % n], acc);
        }
        out.push(acc);
    }
    out
}

fn bit_reversal(n: usize) -> Vec<u32> {
    let bits = n.trailing_zeros();
    if bits == 0 {
        return vec![0];
    }
    (0..n as u32).map(|i| i.reverse_bits() >> (32 - bits)).collect()
}

fn radix2_in_place(buf: &mut [Complex], rev: &[u32], twiddle: &[Complex]) {
    let n = buf.len();
    for (i, &r) in rev.iter().enumerate() {
        let j = r as usize;
        if i < j {
            buf.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let stride = n / len;
        let half = len / 2;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let w = twiddle[k * stride];
                let a = buf[start + k];
                let b = buf[start + k + half] * w;
                buf[start + k] = a + b;
                buf[start + k + half] = a - b;
            }
        }
        len <<= 1;
    }
}

impl Bluestein {
    fn new(n: usize) -> Self {
        let m = (2 * n - 1).next_power_of_two();
        // w_j = e^{-πj j²/n}; reduce j² mod 2n exactly so the angle argument
        // stays small (j² overflows the accurate range of f64 trig quickly).
        let chirp: Vec<Complex> = (0..n)
            .map(|j| {
                let jj = ((j as u128 * j as u128) % (2 * n as u128)) as f64;
                Complex::cis(-PI * jj / n as f64)
            })
            .collect();
        let mut kernel = vec![Complex::ZERO; m];
        kernel[0] = chirp[0].conj();
        for j in 1..n {
            let c = chirp[j].conj();
            kernel[j] = c;
            kernel[m - j] = c;
        }
        let inner = Dft::new(m);
        let kernel_fft = inner.forward(&kernel);
        Bluestein { chirp, kernel_fft, inner, m }
    }

    fn forward(&self, x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        let mut a = vec![Complex::ZERO; self.m];
        for j in 0..n {
            a[j] = x[j] * self.chirp[j];
        }
        let mut fa = self.inner.forward(&a);
        for (v, k) in fa.iter_mut().zip(&self.kernel_fft) {
            *v *= *k;
        }
        let conv = self.inner.inverse(&fa);
        (0..n).map(|k| conv[k] * self.chirp[k]).collect()
    }
}

/// Direct forward DFT in double-double precision (test oracle).
///
/// Twiddles come from [`DdComplex::cis_fraction`], accurate to ~1e-26, so
/// the result is trustworthy far below the f64 round-off floor.
pub fn dft_direct_dd(x: &[DdComplex]) -> Vec<DdComplex> {
    let n = x.len() as i64;
    (0..n)
        .map(|i| {
            let mut acc = DdComplex::ZERO;
            for (k, &xk) in x.iter().enumerate() {
                let tw = DdComplex::cis_fraction(-(i * k as i64), n);
                acc += xk * tw;
            }
            acc
        })
        .collect()
}

/// The `K` unit-circle interpolation points `s_k = e^{2πjk/K}` of eq. (5).
///
/// The lower half-circle is generated as **exact bitwise conjugates** of the
/// upper half: `s_{K−i} = conj(s_i)` for `0 < i < K/2`. Mathematically the
/// two are identical; computing `cos`/`sin` at the two angles separately
/// would differ in the last bits, while negating the imaginary part is
/// exact. This is what lets conjugate-symmetric samplers (real-coefficient
/// systems, where `D(s̄) = conj(D(s))`) solve only the closed upper half of
/// a point set and mirror the rest bit-identically.
pub fn unit_circle_points(k: usize) -> Vec<Complex> {
    let mut pts: Vec<Complex> =
        (0..k).map(|i| Complex::cis(2.0 * PI * (i as f64) / (k as f64))).collect();
    // For even K the half-circle point i = K/2 is its own partner; it keeps
    // its directly computed value (`cis(π)` sits a ULP above the real axis,
    // which conveniently keeps samples off exact negative-real-axis
    // polynomial roots) and is never mirrored.
    for i in 1..k.div_ceil(2) {
        pts[k - i] = pts[i].conj();
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dd::Dd;

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max)
    }

    /// Reference naive DFT without twiddle tables.
    fn naive(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|i| {
                (0..n)
                    .map(|k| x[k] * Complex::cis(-2.0 * PI * (i as f64) * (k as f64) / (n as f64)))
                    .sum()
            })
            .collect()
    }

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        // Small deterministic LCG; avoids a rand dependency in unit tests.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
        };
        (0..n).map(|_| Complex::new(next(), next())).collect()
    }

    #[test]
    fn impulse_transforms_to_ones() {
        for n in [1, 2, 5, 8, 49, 97, 128, 200] {
            let mut x = vec![Complex::ZERO; n];
            x[0] = Complex::ONE;
            let plan = Dft::new(n);
            let spec = plan.forward(&x);
            for z in spec {
                assert!((z - Complex::ONE).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn matches_naive_all_algorithms() {
        for n in [3, 4, 7, 16, 31, 49, 64, 97, 120, 130, 257] {
            let x = random_signal(n, n as u64);
            let plan = Dft::new(n);
            let got = plan.forward(&x);
            let want = naive(&x);
            let scale: f64 = x.iter().map(|z| z.abs()).sum();
            assert!(max_err(&got, &want) < 1e-11 * scale.max(1.0), "n={n}");
        }
    }

    #[test]
    fn forward_inverse_round_trip() {
        for n in [1, 2, 6, 8, 49, 100, 129, 256] {
            let x = random_signal(n, 7 * n as u64 + 1);
            let plan = Dft::new(n);
            let back = plan.inverse(&plan.forward(&x));
            assert!(max_err(&back, &x) < 1e-11, "n={n}");
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 97;
        let x = random_signal(n, 42);
        let plan = Dft::new(n);
        let spec = plan.forward(&x);
        let et: f64 = x.iter().map(|z| z.abs_sq()).sum();
        let ef: f64 = spec.iter().map(|z| z.abs_sq()).sum::<f64>() / n as f64;
        assert!((et - ef).abs() < 1e-10 * et);
    }

    #[test]
    fn polynomial_coefficient_recovery() {
        // P(s) = 3 - 2s + 0.5 s² sampled on the unit circle; eq. (5) recovers
        // its coefficients via forward/n.
        let coeffs = [Complex::real(3.0), Complex::real(-2.0), Complex::real(0.5)];
        let k = coeffs.len();
        let pts = unit_circle_points(k);
        let samples: Vec<Complex> = pts
            .iter()
            .map(|&s| coeffs.iter().rev().fold(Complex::ZERO, |acc, &c| acc * s + c))
            .collect();
        let plan = Dft::new(k);
        let rec = plan.forward(&samples);
        for (i, &c) in coeffs.iter().enumerate() {
            assert!((rec[i].scale(1.0 / k as f64) - c).abs() < 1e-13);
        }
    }

    #[test]
    fn oversampled_recovery_pads_zeros() {
        // K > n+1: higher coefficients must be ~0 (the paper's order test).
        let coeffs = [Complex::real(1.0), Complex::real(4.0)];
        let k = 9;
        let pts = unit_circle_points(k);
        let samples: Vec<Complex> = pts.iter().map(|&s| coeffs[0] + coeffs[1] * s).collect();
        let rec = Dft::new(k).forward(&samples);
        for (i, z) in rec.iter().enumerate().skip(2) {
            assert!(z.abs() / (k as f64) < 1e-13, "i={i}");
        }
    }

    #[test]
    fn dd_oracle_matches_f64_within_floor() {
        let n = 49;
        let x = random_signal(n, 5);
        let xd: Vec<DdComplex> = x.iter().map(|z| DdComplex::from_f64(z.re, z.im)).collect();
        let f = Dft::new(n).forward(&x);
        let d = dft_direct_dd(&xd);
        for (a, b) in f.iter().zip(&d) {
            let err = ((a.re - b.re.to_f64()).powi(2) + (a.im - b.im.to_f64()).powi(2)).sqrt();
            assert!(err < 1e-12, "err={err}");
        }
    }

    #[test]
    fn dd_oracle_exposes_f64_error_floor() {
        // Plant coefficients spanning 20 decades; the f64 DFT loses the small
        // ones (error ~1e-16·max) while the dd oracle keeps them. This is the
        // paper's §2.2 phenomenon in miniature.
        let n = 8;
        let coeffs: Vec<f64> = (0..n).map(|i| 10f64.powi(-(3 * i as i32))).collect();
        let pts = unit_circle_points(n);
        let samples: Vec<Complex> = pts
            .iter()
            .map(|&s| coeffs.iter().rev().fold(Complex::ZERO, |acc, &c| acc * s + Complex::real(c)))
            .collect();
        let samples_dd: Vec<DdComplex> = (0..n)
            .map(|k| {
                // dd-accurate interpolation points: the oracle must not
                // inherit the f64 points' ~1e-17 angle error.
                let sd = DdComplex::cis_fraction(k as i64, n as i64);
                let mut acc = DdComplex::ZERO;
                for &c in coeffs.iter().rev() {
                    acc = acc * sd + DdComplex::new(Dd::from(c), Dd::ZERO);
                }
                acc
            })
            .collect();
        let f = Dft::new(n).forward(&samples);
        let d = dft_direct_dd(&samples_dd);
        // dd recovers the 1e-21 coefficient to good relative accuracy...
        let c7_dd = d[7].re.to_f64() / n as f64;
        assert!((c7_dd - 1e-21).abs() / 1e-21 < 1e-6, "dd got {c7_dd}");
        // ...while f64 drowns it in round-off from the 1e0 coefficient.
        let c7_f64 = f[7].re / n as f64;
        assert!((c7_f64 - 1e-21).abs() / 1e-21 > 1e-2, "f64 got {c7_f64}");
    }

    #[test]
    fn unit_circle_points_are_unit() {
        for &s in &unit_circle_points(49) {
            assert!((s.abs() - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn unit_circle_points_are_exactly_conjugate_paired() {
        for k in [1usize, 2, 3, 4, 7, 8, 9, 41] {
            let pts = unit_circle_points(k);
            for i in 1..k {
                if 2 * i == k {
                    // The half-circle point is its own partner and is
                    // never mirrored.
                    continue;
                }
                let (a, b) = (pts[i], pts[k - i]);
                // Bitwise equality, not approximate: mirroring depends on it.
                assert_eq!(a.re.to_bits(), b.conj().re.to_bits(), "k={k}, i={i}");
                assert_eq!(a.im.to_bits(), b.conj().im.to_bits(), "k={k}, i={i}");
                // …and the points still match their defining angles.
                let theta = 2.0 * PI * (i as f64) / (k as f64);
                assert!((a - Complex::cis(theta)).abs() < 1e-15, "k={k}, i={i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        Dft::new(8).forward(&[Complex::ZERO; 4]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_size_panics() {
        Dft::new(0);
    }
}
