//! Double-double arithmetic (~106-bit significand, ≈31 decimal digits).
//!
//! The paper's entire premise is that 16-digit arithmetic caps the dynamic
//! range one interpolation can resolve at ~13 decades (eq. (12)). To *test*
//! the reproduction we need an independent higher-precision oracle: ladder
//! transfer-function recurrences and small DFTs evaluated in [`Dd`] provide
//! reference coefficients accurate to ~31 digits against which the f64
//! pipeline's error floor can be measured.
//!
//! The implementation uses the classical error-free transformations
//! (`two_sum`, `two_prod` via FMA) of Dekker and Knuth.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-double number: an unevaluated sum `hi + lo` with `|lo| ≤ ulp(hi)/2`.
///
/// ```
/// use refgen_numeric::Dd;
/// let third = Dd::from(1.0) / Dd::from(3.0);
/// let one = third * Dd::from(3.0);
/// assert!((one - Dd::from(1.0)).abs().hi() < 1e-31);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Dd {
    hi: f64,
    lo: f64,
}

/// Error-free sum: returns `(s, e)` with `s = fl(a+b)` and `a+b = s+e` exactly.
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Error-free sum assuming `|a| ≥ |b|`.
#[inline]
fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Error-free product via FMA: `a·b = p + e` exactly.
#[inline]
fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    (p, e)
}

impl Dd {
    /// Zero.
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };
    /// One.
    pub const ONE: Dd = Dd { hi: 1.0, lo: 0.0 };
    /// π to double-double precision.
    pub const PI: Dd = Dd { hi: std::f64::consts::PI, lo: 1.2246467991473532e-16 };

    /// Creates from high and low parts (renormalizing).
    pub fn new(hi: f64, lo: f64) -> Self {
        let (s, e) = two_sum(hi, lo);
        Dd { hi: s, lo: e }
    }

    /// The high (leading) component.
    #[inline]
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// The low (trailing) component.
    #[inline]
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Converts to `f64` (drops the low part).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.hi + self.lo
    }

    /// Absolute value.
    pub fn abs(self) -> Self {
        if self.hi < 0.0 || (self.hi == 0.0 && self.lo < 0.0) {
            -self
        } else {
            self
        }
    }

    /// Returns `true` if exactly zero.
    pub fn is_zero(self) -> bool {
        self.hi == 0.0 && self.lo == 0.0
    }

    /// Square root (one Newton step on the f64 estimate — full dd accuracy).
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn sqrt(self) -> Self {
        assert!(self.hi >= 0.0, "sqrt of negative Dd");
        if self.is_zero() {
            return Dd::ZERO;
        }
        let x = 1.0 / self.hi.sqrt();
        let ax = Dd::from(self.hi * x);
        ax + (self - ax * ax) * Dd::from(x * 0.5)
    }

    /// Integer power by binary exponentiation.
    pub fn powi(self, n: i32) -> Self {
        if n == 0 {
            return Dd::ONE;
        }
        let mut base = if n < 0 { Dd::ONE / self } else { self };
        let mut k = n.unsigned_abs();
        let mut acc = Dd::ONE;
        while k > 0 {
            if k & 1 == 1 {
                acc *= base;
            }
            base *= base;
            k >>= 1;
        }
        acc
    }
}

impl From<f64> for Dd {
    fn from(x: f64) -> Self {
        Dd { hi: x, lo: 0.0 }
    }
}

impl Neg for Dd {
    type Output = Dd;
    #[inline]
    fn neg(self) -> Dd {
        Dd { hi: -self.hi, lo: -self.lo }
    }
}

impl Add for Dd {
    type Output = Dd;
    fn add(self, rhs: Dd) -> Dd {
        let (s, e) = two_sum(self.hi, rhs.hi);
        let e = e + self.lo + rhs.lo;
        let (hi, lo) = quick_two_sum(s, e);
        Dd { hi, lo }
    }
}

impl Sub for Dd {
    type Output = Dd;
    #[inline]
    fn sub(self, rhs: Dd) -> Dd {
        self + (-rhs)
    }
}

impl Mul for Dd {
    type Output = Dd;
    fn mul(self, rhs: Dd) -> Dd {
        let (p, e) = two_prod(self.hi, rhs.hi);
        let e = e + self.hi * rhs.lo + self.lo * rhs.hi;
        let (hi, lo) = quick_two_sum(p, e);
        Dd { hi, lo }
    }
}

impl Div for Dd {
    type Output = Dd;
    fn div(self, rhs: Dd) -> Dd {
        let q1 = self.hi / rhs.hi;
        let r = self - rhs * Dd::from(q1);
        let q2 = r.hi / rhs.hi;
        let r2 = r - rhs * Dd::from(q2);
        let q3 = r2.hi / rhs.hi;
        let (hi, lo) = quick_two_sum(q1, q2);
        Dd::new(hi, lo + q3)
    }
}

impl AddAssign for Dd {
    fn add_assign(&mut self, rhs: Dd) {
        *self = *self + rhs;
    }
}

impl SubAssign for Dd {
    fn sub_assign(&mut self, rhs: Dd) {
        *self = *self - rhs;
    }
}

impl MulAssign for Dd {
    fn mul_assign(&mut self, rhs: Dd) {
        *self = *self * rhs;
    }
}

impl DivAssign for Dd {
    fn div_assign(&mut self, rhs: Dd) {
        *self = *self / rhs;
    }
}

impl Sum for Dd {
    fn sum<I: Iterator<Item = Dd>>(iter: I) -> Dd {
        iter.fold(Dd::ZERO, |a, b| a + b)
    }
}

impl PartialEq for Dd {
    fn eq(&self, other: &Self) -> bool {
        self.hi == other.hi && self.lo == other.lo
    }
}

impl PartialOrd for Dd {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.hi.partial_cmp(&other.hi) {
            Some(Ordering::Equal) => self.lo.partial_cmp(&other.lo),
            ord => ord,
        }
    }
}

impl fmt::Display for Dd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:e}{:+e}", self.hi, self.lo)
    }
}

/// Half π in dd.
const PI_2: Dd = Dd { hi: std::f64::consts::FRAC_PI_2, lo: 6.123233995736766e-17 };

/// Sine and cosine of a dd angle with |θ| ≲ π, via reduction to |r| ≤ π/4
/// and dd Taylor series.
fn dd_sin_cos(theta: Dd) -> (Dd, Dd) {
    // θ = q·(π/2) + r, q ∈ {-2..2}, |r| ≤ π/4 (+ tiny slack).
    let q = (theta.to_f64() / std::f64::consts::FRAC_PI_2).round();
    let r = theta - PI_2 * Dd::from(q);
    let (sr, cr) = sin_cos_taylor(r);
    match (q as i64).rem_euclid(4) {
        0 => (sr, cr),
        1 => (cr, -sr),
        2 => (-sr, -cr),
        _ => (-cr, sr),
    }
}

/// Taylor-series sine and cosine for |r| ≤ π/4 + ε, in dd.
fn sin_cos_taylor(r: Dd) -> (Dd, Dd) {
    let r2 = r * r;
    // sin(r) = r · Σ (-1)^k r^{2k} / (2k+1)!
    let mut sin_acc = Dd::ONE;
    let mut cos_acc = Dd::ONE;
    let mut sin_term = Dd::ONE;
    let mut cos_term = Dd::ONE;
    // 20 terms: (π/4)^40/40! ≈ 1e-52, ample margin below dd epsilon.
    for k in 1..=20u32 {
        let k2 = (2 * k) as f64;
        sin_term = -sin_term * r2 / Dd::from(k2 * (k2 + 1.0));
        cos_term = -cos_term * r2 / Dd::from(k2 * (k2 - 1.0));
        sin_acc += sin_term;
        cos_acc += cos_term;
        if sin_term.abs().hi < 1e-35 && cos_term.abs().hi < 1e-35 {
            break;
        }
    }
    (r * sin_acc, cos_acc)
}

/// A complex number with [`Dd`] components, for high-precision DFT oracles.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DdComplex {
    /// Real part.
    pub re: Dd,
    /// Imaginary part.
    pub im: Dd,
}

impl DdComplex {
    /// Zero.
    pub const ZERO: DdComplex = DdComplex { re: Dd::ZERO, im: Dd::ZERO };

    /// Creates from components.
    pub fn new(re: Dd, im: Dd) -> Self {
        DdComplex { re, im }
    }

    /// Creates from `f64` components.
    pub fn from_f64(re: f64, im: f64) -> Self {
        DdComplex { re: Dd::from(re), im: Dd::from(im) }
    }

    /// `e^{j·2πk/n}` to full double-double accuracy.
    ///
    /// The fraction `k/n` is reduced exactly in integers, the angle is formed
    /// in dd, and sine/cosine are evaluated with dd argument reduction plus a
    /// dd Taylor series — accurate to ~1e-31, far below the f64 round-off
    /// floor the oracle must expose.
    pub fn cis_fraction(k: i64, n: i64) -> Self {
        // Reduce k/n to [-1/2, 1/2) exactly in rationals.
        let mut kk = k.rem_euclid(n);
        if 2 * kk >= n {
            kk -= n;
        }
        let theta = Dd::PI * Dd::from(2.0) * (Dd::from(kk as f64) / Dd::from(n as f64));
        let (s, c) = dd_sin_cos(theta);
        DdComplex { re: c, im: s }
    }

    /// Magnitude squared.
    pub fn abs_sq(self) -> Dd {
        self.re * self.re + self.im * self.im
    }
}

impl Add for DdComplex {
    type Output = DdComplex;
    fn add(self, rhs: DdComplex) -> DdComplex {
        DdComplex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for DdComplex {
    type Output = DdComplex;
    fn sub(self, rhs: DdComplex) -> DdComplex {
        DdComplex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for DdComplex {
    type Output = DdComplex;
    fn mul(self, rhs: DdComplex) -> DdComplex {
        DdComplex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl AddAssign for DdComplex {
    fn add_assign(&mut self, rhs: DdComplex) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_free_transforms() {
        let (s, e) = two_sum(1.0, 1e-20);
        assert_eq!(s, 1.0);
        assert_eq!(e, 1e-20);
        let (p, e) = two_prod(1.0 + 2f64.powi(-30), 1.0 + 2f64.powi(-30));
        assert_eq!(
            p + e,
            (Dd::from(1.0 + 2f64.powi(-30)) * Dd::from(1.0 + 2f64.powi(-30))).to_f64()
        );
    }

    #[test]
    fn one_third_times_three() {
        let third = Dd::ONE / Dd::from(3.0);
        let err = (third * Dd::from(3.0) - Dd::ONE).abs();
        assert!(err.hi < 1e-31, "err = {}", err.hi);
    }

    #[test]
    fn precision_beyond_f64() {
        // (1 + 1e-20) - 1 == 1e-20 in dd, 0 in f64.
        let x = Dd::ONE + Dd::from(1e-20);
        let d = x - Dd::ONE;
        assert_eq!(d.to_f64(), 1e-20);
    }

    #[test]
    fn division_accuracy() {
        let a = Dd::from(355.0);
        let b = Dd::from(113.0);
        let q = a / b;
        let back = q * b - a;
        assert!(back.abs().hi < 1e-28);
    }

    #[test]
    fn sqrt_newton() {
        let two = Dd::from(2.0);
        let r = two.sqrt();
        let err = (r * r - two).abs();
        assert!(err.hi < 1e-30, "err = {}", err.hi);
    }

    #[test]
    fn powi_matches() {
        let x = Dd::from(1.5);
        assert!((x.powi(10).to_f64() - 1.5f64.powi(10)).abs() < 1e-10);
        let inv = x.powi(-3) * x.powi(3);
        assert!((inv - Dd::ONE).abs().hi < 1e-30);
    }

    #[test]
    fn ordering() {
        assert!(Dd::from(1.0) < Dd::from(2.0));
        assert!(Dd::new(1.0, 1e-20) > Dd::ONE);
        assert!(Dd::new(1.0, -1e-20) < Dd::ONE);
    }

    #[test]
    fn cis_fraction_unit_magnitude() {
        for n in [3i64, 7, 16, 49] {
            for k in 0..n {
                let z = DdComplex::cis_fraction(k, n);
                let err = (z.abs_sq() - Dd::ONE).abs();
                assert!(err.hi < 1e-25, "n={n} k={k} err={}", err.hi);
            }
        }
    }

    #[test]
    fn cis_fraction_roots_of_unity_sum_to_zero() {
        let n = 12;
        let mut s = DdComplex::ZERO;
        for k in 0..n {
            s += DdComplex::cis_fraction(k, n);
        }
        assert!(s.re.abs().hi < 1e-24 && s.im.abs().hi < 1e-24);
    }

    #[test]
    #[should_panic(expected = "sqrt of negative")]
    fn dd_sqrt_negative_panics() {
        let _ = Dd::from(-1.0).sqrt();
    }
}
