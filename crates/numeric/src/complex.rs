//! Double-precision complex numbers.
//!
//! Implemented locally (rather than pulling a numerics crate) so the whole
//! reproduction is self-contained; the LU factorization, DFT, and polynomial
//! evaluation all run on this type.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// ```
/// use refgen_numeric::Complex;
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// ```
// `repr(C)` pins the (re, im) field order so slices of `Complex` can be
// reinterpreted as interleaved `f64` pairs by vectorized kernels downstream.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{jθ}` — a point on the unit circle. These are the interpolation
    /// points of the paper's eq. (5).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude `|z|`, computed with `hypot` to avoid premature
    /// overflow/underflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Uses Smith's algorithm to stay accurate when the components have very
    /// different magnitudes.
    #[inline]
    pub fn inv(self) -> Self {
        Complex::ONE / self
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Complex::ONE;
        }
        let mut base = if n < 0 { self.inv() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Complex::ONE;
        let mut k = n as u32;
        while k > 0 {
            if k & 1 == 1 {
                acc *= base;
            }
            base *= base;
            k >>= 1;
        }
        acc
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return Complex::ZERO;
        }
        let r = self.abs();
        let re = ((r + self.re) / 2.0).sqrt();
        let im_mag = ((r - self.re) / 2.0).sqrt();
        Complex::new(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Fused multiply-add: `self * b + c`, with `mul_add` on the components
    /// for one fewer rounding per component pair.
    #[inline]
    pub fn mul_add(self, b: Complex, c: Complex) -> Self {
        Complex::new(
            self.re.mul_add(b.re, (-self.im).mul_add(b.im, c.re)),
            self.re.mul_add(b.im, self.im.mul_add(b.re, c.im)),
        )
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Div for Complex {
    type Output = Complex;
    /// Smith's algorithm: scale by the larger component of the divisor.
    fn div(self, rhs: Complex) -> Complex {
        if rhs.re.abs() >= rhs.im.abs() {
            if rhs.re == 0.0 && rhs.im == 0.0 {
                return Complex::new(self.re / 0.0, self.im / 0.0);
            }
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl Product for Complex {
    fn product<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ONE, |a, b| a * b)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 || self.im.is_nan() {
            write!(f, "{}+j{}", self.re, self.im)
        } else {
            write!(f, "{}-j{}", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        assert_eq!(a * b, Complex::new(-4.0, -5.5));
        assert!(close((a / b) * b, a, 1e-15));
    }

    #[test]
    fn division_by_zero_gives_non_finite() {
        let z = Complex::ONE / Complex::ZERO;
        assert!(!z.is_finite());
    }

    #[test]
    fn conjugate_and_abs() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.abs_sq(), 25.0);
    }

    #[test]
    fn abs_avoids_overflow() {
        let z = Complex::new(1e200, 1e200);
        assert!((z.abs() / (1e200 * std::f64::consts::SQRT_2) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.5, 1.0);
        assert!((z.abs() - 2.5).abs() < 1e-14);
        assert!((z.arg() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn cis_on_unit_circle() {
        for k in 0..17 {
            let theta = 2.0 * std::f64::consts::PI * (k as f64) / 17.0;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex::new(0.8, 0.6);
        let mut acc = Complex::ONE;
        for n in 0..12 {
            assert!(close(z.powi(n), acc, 1e-13));
            acc *= z;
        }
        assert!(close(z.powi(-3), (z * z * z).inv(), 1e-13));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-4.0, 0.0), (1.0, 1.0), (-2.0, -3.0), (0.0, 2.0)] {
            let z = Complex::new(re, im);
            let r = z.sqrt();
            assert!(close(r * r, z, 1e-14), "sqrt({z}) = {r}");
            assert!(r.re >= 0.0 || (r.re == 0.0 && r.im >= 0.0) || r.re.abs() < 1e-300);
        }
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        let z = Complex::new(0.0, std::f64::consts::PI).exp();
        assert!(close(z, Complex::new(-1.0, 0.0), 1e-14));
    }

    #[test]
    fn inv_of_tiny_and_huge() {
        let tiny = Complex::new(1e-300, 0.0);
        assert!((tiny.inv().re - 1e300).abs() / 1e300 < 1e-12);
        let z = Complex::new(1e200, -1e200);
        assert!(close(z.inv() * z, Complex::ONE, 1e-12));
    }

    #[test]
    fn sum_and_product_impls() {
        let v = [Complex::new(1.0, 1.0), Complex::new(2.0, -1.0)];
        let s: Complex = v.iter().copied().sum();
        let p: Complex = v.iter().copied().product();
        assert_eq!(s, Complex::new(3.0, 0.0));
        assert_eq!(p, Complex::new(3.0, 1.0));
    }

    #[test]
    fn display_format() {
        assert_eq!(Complex::new(1.5, -2.0).to_string(), "1.5-j2");
        assert_eq!(Complex::new(-1.0, 0.5).to_string(), "-1+j0.5");
    }

    #[test]
    fn mul_add_matches_naive() {
        let a = Complex::new(1.25, -0.5);
        let b = Complex::new(2.0, 3.0);
        let c = Complex::new(-1.0, 4.0);
        assert!(close(a.mul_add(b, c), a * b + c, 1e-15));
    }
}
