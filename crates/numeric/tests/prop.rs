//! Property-based tests for the numeric substrate.

use proptest::prelude::*;
use refgen_numeric::dft::{unit_circle_points, Dft};
use refgen_numeric::{Complex, ExtComplex, ExtFloat, Poly};

fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e12f64..1e12,
        -1.0f64..1.0,
        (-300f64..300.0).prop_map(|e| 10f64.powf(e)),
        (-300f64..300.0).prop_map(|e| -(10f64.powf(e))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn extfloat_round_trip(x in finite_f64()) {
        let e = ExtFloat::from_f64(x);
        prop_assert_eq!(e.to_f64(), x);
        if x != 0.0 {
            prop_assert!(e.mantissa().abs() >= 1.0 && e.mantissa().abs() < 2.0);
        }
    }

    #[test]
    fn extfloat_mul_matches_f64(a in -1e100f64..1e100, b in -1e100f64..1e100) {
        let p = ExtFloat::from_f64(a) * ExtFloat::from_f64(b);
        let want = a * b;
        if want != 0.0 && want.is_finite() {
            prop_assert!(((p.to_f64() - want) / want).abs() < 1e-15);
        }
    }

    #[test]
    fn extfloat_add_commutes_and_matches(a in finite_f64(), b in finite_f64()) {
        let ea = ExtFloat::from_f64(a);
        let eb = ExtFloat::from_f64(b);
        let s1 = ea + eb;
        let s2 = eb + ea;
        prop_assert_eq!(s1.to_f64(), s2.to_f64());
        let want = a + b;
        if want != 0.0 {
            prop_assert!(((s1.to_f64() - want) / want).abs() < 1e-12,
                "{a} + {b}: got {}, want {want}", s1.to_f64());
        }
    }

    #[test]
    fn extfloat_ordering_matches_f64(a in finite_f64(), b in finite_f64()) {
        let ea = ExtFloat::from_f64(a);
        let eb = ExtFloat::from_f64(b);
        prop_assert_eq!(ea.partial_cmp(&eb), a.partial_cmp(&b));
    }

    #[test]
    fn extfloat_mul_div_inverse(a in finite_f64(), b in finite_f64()) {
        prop_assume!(a != 0.0 && b != 0.0);
        let q = ExtFloat::from_f64(a) * ExtFloat::from_f64(b) / ExtFloat::from_f64(b);
        prop_assert!(((q.to_f64() - a) / a).abs() < 1e-14);
    }

    #[test]
    fn extcomplex_field_ops(ar in -1e3f64..1e3, ai in -1e3f64..1e3,
                            br in -1e3f64..1e3, bi in -1e3f64..1e3) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        prop_assume!(b.abs() > 1e-6);
        let ea = ExtComplex::from_complex(a);
        let eb = ExtComplex::from_complex(b);
        let prod = (ea * eb).to_complex();
        prop_assert!((prod - a * b).abs() <= 1e-12 * (a * b).abs().max(1e-12));
        let quot = (ea / eb).to_complex();
        prop_assert!((quot - a / b).abs() <= 1e-12 * (a / b).abs().max(1e-12));
        let sum = (ea + eb).to_complex();
        prop_assert!((sum - (a + b)).abs() <= 1e-12 * (a + b).abs().max(1e-9));
    }

    #[test]
    fn dft_round_trip_any_size(n in 1usize..48, seed in 0u64..10_000) {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
        };
        let x: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        let plan = Dft::new(n);
        let back = plan.inverse(&plan.forward(&x));
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn polynomial_coefficients_recover_from_samples(
        coeffs in prop::collection::vec(-100f64..100.0, 1..20)
    ) {
        let k = coeffs.len();
        let pts = unit_circle_points(k);
        let poly = Poly::from_real(&coeffs);
        let samples: Vec<Complex> = pts.iter().map(|&s| poly.eval(s)).collect();
        let spectrum = Dft::new(k).forward(&samples);
        let scale: f64 = coeffs.iter().map(|c| c.abs()).fold(1.0, f64::max);
        for (i, &c) in coeffs.iter().enumerate() {
            let got = spectrum[i].scale(1.0 / k as f64);
            prop_assert!((got.re - c).abs() < 1e-10 * scale.max(1.0));
            prop_assert!(got.im.abs() < 1e-10 * scale.max(1.0));
        }
    }

    #[test]
    fn roots_reconstruct_monic_polynomial(
        roots in prop::collection::vec(-50f64..50.0, 1..8)
    ) {
        // Build ∏(s - r_k), find roots, compare as multisets.
        prop_assume!({
            // Keep roots pairwise separated for stable comparison.
            let mut ok = true;
            for i in 0..roots.len() {
                for j in 0..i {
                    if (roots[i] - roots[j]).abs() < 0.5 { ok = false; }
                }
            }
            ok
        });
        // Build ascending coefficients of ∏(s - r_k):
        // new_k = old_{k-1} − r·old_k.
        let mut coeffs = vec![Complex::ONE];
        for &r in &roots {
            let mut next = vec![Complex::ZERO; coeffs.len() + 1];
            for (i, &c) in coeffs.iter().enumerate() {
                next[i + 1] += c;
                next[i] -= c.scale(r);
            }
            coeffs = next;
        }
        let p = Poly::new(coeffs);
        let mut got: Vec<f64> = p.roots(1e-12, 400).iter().map(|z| z.re).collect();
        let mut want = roots.clone();
        got.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        want.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-5 * (1.0 + w.abs()), "{g} vs {w}");
        }
    }
}
