//! The [`Circuit`] container: named nodes, elements, structural queries.

use crate::element::{Element, ElementKind};
use crate::waveform::Waveform;
use std::collections::HashMap;
use std::fmt;

/// An index into a circuit's node table. `NodeId(0)` is always ground.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Errors from circuit construction or validation.
#[derive(Clone, Debug, PartialEq)]
pub enum CircuitError {
    /// An element value was zero, negative, or non-finite where a positive
    /// value is required.
    InvalidValue {
        /// Element name.
        element: String,
        /// The offending value.
        value: f64,
    },
    /// Two elements share a name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A controlled source references an unknown branch.
    UnknownControlBranch {
        /// Element that holds the dangling reference.
        element: String,
        /// The missing branch name.
        branch: String,
    },
    /// A controlled source's control branch is not an independent V source.
    ControlBranchNotVsource {
        /// Element that holds the reference.
        element: String,
        /// The referenced branch name.
        branch: String,
    },
    /// A node is connected to fewer than two element terminals, or the
    /// circuit has no elements at all.
    FloatingNode {
        /// Offending node name.
        node: String,
    },
    /// Both terminals of an element land on the same node.
    ShortedElement {
        /// Element name.
        element: String,
    },
    /// A waveform was attached to something that is not an independent
    /// V/I source (or does not exist).
    WaveformTarget {
        /// The offending element name.
        element: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidValue { element, value } => {
                write!(f, "element {element} has invalid value {value}")
            }
            CircuitError::DuplicateName { name } => {
                write!(f, "duplicate element name {name}")
            }
            CircuitError::UnknownControlBranch { element, branch } => {
                write!(f, "element {element} references unknown control branch {branch}")
            }
            CircuitError::ControlBranchNotVsource { element, branch } => {
                write!(
                    f,
                    "control branch {branch} of {element} is not an independent voltage source"
                )
            }
            CircuitError::FloatingNode { node } => write!(f, "node {node} is floating"),
            CircuitError::ShortedElement { element } => {
                write!(f, "element {element} has both terminals on the same node")
            }
            CircuitError::WaveformTarget { element } => {
                write!(f, "waveform target {element} is not an independent V/I source")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// A linear small-signal circuit: a node table and a list of elements.
///
/// Nodes are created on demand by name; `"0"` and `"gnd"` (any case) map to
/// the ground node.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_index: HashMap<String, NodeId>,
    elements: Vec<Element>,
    name_index: HashMap<String, usize>,
    waveforms: HashMap<String, Waveform>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: vec!["0".to_string()],
            node_index: HashMap::new(),
            elements: Vec::new(),
            name_index: HashMap::new(),
            waveforms: HashMap::new(),
        };
        c.node_index.insert("0".to_string(), NodeId::GROUND);
        c.node_index.insert("gnd".to_string(), NodeId::GROUND);
        c
    }

    /// Interns a node name, creating it if new. `"0"`/`"gnd"` are ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        let key = name.to_ascii_lowercase();
        if let Some(&id) = self.node_index.get(&key) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.node_index.insert(key, id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_index.get(&name.to_ascii_lowercase()).copied()
    }

    /// The printable name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// All elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Looks up an element by name.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.name_index.get(name).map(|&i| &self.elements[i])
    }

    /// Removes an element by name, returning it. Used by the SBG simplifier.
    pub fn remove_element(&mut self, name: &str) -> Option<Element> {
        let idx = self.name_index.remove(name)?;
        self.waveforms.remove(name);
        let el = self.elements.remove(idx);
        // Reindex the tail.
        for (i, e) in self.elements.iter().enumerate().skip(idx) {
            self.name_index.insert(e.name.clone(), i);
        }
        Some(el)
    }

    /// Attaches a time-domain [`Waveform`] to an existing independent V/I
    /// source. The transient engine drives the source from it; the
    /// frequency-domain paths keep using the source's AC amplitude.
    ///
    /// # Errors
    ///
    /// [`CircuitError::WaveformTarget`] when `name` is not an independent
    /// V/I source.
    pub fn set_waveform(&mut self, name: &str, wave: Waveform) -> Result<(), CircuitError> {
        match self.element(name) {
            Some(el)
                if matches!(el.kind, ElementKind::VSource { .. } | ElementKind::ISource { .. }) =>
            {
                self.waveforms.insert(name.to_string(), wave);
                Ok(())
            }
            _ => Err(CircuitError::WaveformTarget { element: name.to_string() }),
        }
    }

    /// The waveform attached to a source, if any. Sources without one are
    /// driven at their constant AC amplitude in transient analyses.
    pub fn waveform(&self, name: &str) -> Option<&Waveform> {
        self.waveforms.get(name)
    }

    /// `(source name, waveform)` pairs in element order — the transient
    /// engine's drive table.
    pub fn waveforms(&self) -> impl Iterator<Item = (&str, &Waveform)> {
        self.elements
            .iter()
            .filter_map(|e| self.waveforms.get(&e.name).map(|w| (e.name.as_str(), w)))
    }

    fn push_element(&mut self, el: Element) -> Result<(), CircuitError> {
        if self.name_index.contains_key(&el.name) {
            return Err(CircuitError::DuplicateName { name: el.name });
        }
        self.name_index.insert(el.name.clone(), self.elements.len());
        self.elements.push(el);
        Ok(())
    }

    fn check_positive(name: &str, value: f64) -> Result<(), CircuitError> {
        if !(value.is_finite() && value > 0.0) {
            return Err(CircuitError::InvalidValue { element: name.to_string(), value });
        }
        Ok(())
    }

    fn check_finite(name: &str, value: f64) -> Result<(), CircuitError> {
        if !value.is_finite() {
            return Err(CircuitError::InvalidValue { element: name.to_string(), value });
        }
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidValue`] for non-positive values,
    /// [`CircuitError::DuplicateName`] if the name is taken.
    pub fn add_resistor(
        &mut self,
        name: &str,
        p: &str,
        m: &str,
        ohms: f64,
    ) -> Result<(), CircuitError> {
        Self::check_positive(name, ohms)?;
        let nodes = (self.node(p), self.node(m));
        self.push_element(Element {
            name: name.to_string(),
            nodes,
            kind: ElementKind::Resistor { ohms },
        })
    }

    /// Adds an explicit conductance.
    ///
    /// # Errors
    ///
    /// As for [`Circuit::add_resistor`].
    pub fn add_conductance(
        &mut self,
        name: &str,
        p: &str,
        m: &str,
        siemens: f64,
    ) -> Result<(), CircuitError> {
        Self::check_positive(name, siemens)?;
        let nodes = (self.node(p), self.node(m));
        self.push_element(Element {
            name: name.to_string(),
            nodes,
            kind: ElementKind::Conductance { siemens },
        })
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// As for [`Circuit::add_resistor`].
    pub fn add_capacitor(
        &mut self,
        name: &str,
        p: &str,
        m: &str,
        farads: f64,
    ) -> Result<(), CircuitError> {
        Self::check_positive(name, farads)?;
        let nodes = (self.node(p), self.node(m));
        self.push_element(Element {
            name: name.to_string(),
            nodes,
            kind: ElementKind::Capacitor { farads },
        })
    }

    /// Adds an inductor.
    ///
    /// # Errors
    ///
    /// As for [`Circuit::add_resistor`].
    pub fn add_inductor(
        &mut self,
        name: &str,
        p: &str,
        m: &str,
        henries: f64,
    ) -> Result<(), CircuitError> {
        Self::check_positive(name, henries)?;
        let nodes = (self.node(p), self.node(m));
        self.push_element(Element {
            name: name.to_string(),
            nodes,
            kind: ElementKind::Inductor { henries },
        })
    }

    /// Adds a voltage-controlled current source
    /// (`i(p→m) = gm·(v(cp) − v(cm))`).
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidValue`] for non-finite `gm`,
    /// [`CircuitError::DuplicateName`] if the name is taken.
    pub fn add_vccs(
        &mut self,
        name: &str,
        p: &str,
        m: &str,
        cp: &str,
        cm: &str,
        gm: f64,
    ) -> Result<(), CircuitError> {
        Self::check_finite(name, gm)?;
        let nodes = (self.node(p), self.node(m));
        let control = (self.node(cp), self.node(cm));
        self.push_element(Element {
            name: name.to_string(),
            nodes,
            kind: ElementKind::Vccs { gm, control },
        })
    }

    /// Adds a voltage-controlled voltage source.
    ///
    /// # Errors
    ///
    /// As for [`Circuit::add_vccs`].
    pub fn add_vcvs(
        &mut self,
        name: &str,
        p: &str,
        m: &str,
        cp: &str,
        cm: &str,
        gain: f64,
    ) -> Result<(), CircuitError> {
        Self::check_finite(name, gain)?;
        let nodes = (self.node(p), self.node(m));
        let control = (self.node(cp), self.node(cm));
        self.push_element(Element {
            name: name.to_string(),
            nodes,
            kind: ElementKind::Vcvs { gain, control },
        })
    }

    /// Adds a current-controlled current source; `branch` names an
    /// independent voltage source whose current is sensed.
    ///
    /// # Errors
    ///
    /// As for [`Circuit::add_vccs`] (the branch reference is checked by
    /// [`Circuit::validate`]).
    pub fn add_cccs(
        &mut self,
        name: &str,
        p: &str,
        m: &str,
        branch: &str,
        gain: f64,
    ) -> Result<(), CircuitError> {
        Self::check_finite(name, gain)?;
        let nodes = (self.node(p), self.node(m));
        self.push_element(Element {
            name: name.to_string(),
            nodes,
            kind: ElementKind::Cccs { gain, control_branch: branch.to_string() },
        })
    }

    /// Adds a current-controlled voltage source.
    ///
    /// # Errors
    ///
    /// As for [`Circuit::add_cccs`].
    pub fn add_ccvs(
        &mut self,
        name: &str,
        p: &str,
        m: &str,
        branch: &str,
        ohms: f64,
    ) -> Result<(), CircuitError> {
        Self::check_finite(name, ohms)?;
        let nodes = (self.node(p), self.node(m));
        self.push_element(Element {
            name: name.to_string(),
            nodes,
            kind: ElementKind::Ccvs { ohms, control_branch: branch.to_string() },
        })
    }

    /// Adds an independent voltage source with AC amplitude `ac`.
    ///
    /// # Errors
    ///
    /// As for [`Circuit::add_vccs`].
    pub fn add_vsource(
        &mut self,
        name: &str,
        p: &str,
        m: &str,
        ac: f64,
    ) -> Result<(), CircuitError> {
        Self::check_finite(name, ac)?;
        let nodes = (self.node(p), self.node(m));
        self.push_element(Element {
            name: name.to_string(),
            nodes,
            kind: ElementKind::VSource { ac },
        })
    }

    /// Adds an independent current source with AC amplitude `ac`.
    ///
    /// # Errors
    ///
    /// As for [`Circuit::add_vccs`].
    pub fn add_isource(
        &mut self,
        name: &str,
        p: &str,
        m: &str,
        ac: f64,
    ) -> Result<(), CircuitError> {
        Self::check_finite(name, ac)?;
        let nodes = (self.node(p), self.node(m));
        self.push_element(Element {
            name: name.to_string(),
            nodes,
            kind: ElementKind::ISource { ac },
        })
    }

    /// All capacitor values, in element order — the paper's first frequency
    /// scale factor is `1/mean(capacitors)`.
    pub fn capacitor_values(&self) -> Vec<f64> {
        self.elements.iter().filter_map(|e| e.capacitance_value()).collect()
    }

    /// All conductance-like values (1/R, G, |gm|) — the paper's first
    /// conductance scale factor is `1/mean(conductances)`.
    pub fn conductance_values(&self) -> Vec<f64> {
        self.elements.iter().filter_map(|e| e.conductance_value()).collect()
    }

    /// Number of reactive elements — an upper bound on the network-function
    /// polynomial order, used to pick the interpolation point count `K`.
    pub fn reactive_count(&self) -> usize {
        self.elements.iter().filter(|e| e.is_reactive()).count()
    }

    /// All inductor values, in element order.
    pub fn inductor_values(&self) -> Vec<f64> {
        self.elements
            .iter()
            .filter_map(|e| match e.kind {
                ElementKind::Inductor { henries } => Some(henries),
                _ => None,
            })
            .collect()
    }

    /// `true` if any element is an inductor.
    pub fn has_inductors(&self) -> bool {
        self.elements.iter().any(|e| matches!(e.kind, ElementKind::Inductor { .. }))
    }

    /// Structural sanity checks: dangling control branches, floating nodes,
    /// shorted elements.
    ///
    /// # Errors
    ///
    /// The first problem found, as a [`CircuitError`].
    pub fn validate(&self) -> Result<(), CircuitError> {
        // Control branches must name independent V sources.
        for el in &self.elements {
            let branch = match &el.kind {
                ElementKind::Cccs { control_branch, .. }
                | ElementKind::Ccvs { control_branch, .. } => Some(control_branch),
                _ => None,
            };
            if let Some(b) = branch {
                match self.element(b) {
                    None => {
                        return Err(CircuitError::UnknownControlBranch {
                            element: el.name.clone(),
                            branch: b.clone(),
                        })
                    }
                    Some(ctrl) if !matches!(ctrl.kind, ElementKind::VSource { .. }) => {
                        return Err(CircuitError::ControlBranchNotVsource {
                            element: el.name.clone(),
                            branch: b.clone(),
                        })
                    }
                    _ => {}
                }
            }
        }
        // Shorted elements.
        for el in &self.elements {
            if el.nodes.0 == el.nodes.1 {
                return Err(CircuitError::ShortedElement { element: el.name.clone() });
            }
        }
        // Every non-ground node must touch at least two terminals (sources
        // count; control terminals do not inject current and so do not count
        // toward connectivity).
        let mut touch = vec![0usize; self.node_count()];
        for el in &self.elements {
            touch[el.nodes.0 .0] += 1;
            touch[el.nodes.1 .0] += 1;
        }
        for (i, &t) in touch.iter().enumerate().skip(1) {
            if t < 2 {
                return Err(CircuitError::FloatingNode { node: self.node_names[i].clone() });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit: {} nodes, {} elements ({} reactive)",
            self.node_count(),
            self.elements.len(),
            self.reactive_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc() -> Circuit {
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "out", 1e3).unwrap();
        c.add_capacitor("C1", "out", "0", 1e-9).unwrap();
        c
    }

    #[test]
    fn node_interning() {
        let mut c = Circuit::new();
        let a = c.node("A");
        assert_eq!(c.node("a"), a, "case-insensitive");
        assert_eq!(c.node("0"), NodeId::GROUND);
        assert_eq!(c.node("GND"), NodeId::GROUND);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_name(a), "A");
    }

    #[test]
    fn build_and_query() {
        let c = rc();
        assert_eq!(c.capacitor_values(), vec![1e-9]);
        assert_eq!(c.conductance_values(), vec![1e-3]);
        assert_eq!(c.reactive_count(), 1);
        assert!(!c.has_inductors());
        assert!(c.element("R1").is_some());
        assert!(c.element("R9").is_none());
        c.validate().unwrap();
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut c = rc();
        let err = c.add_resistor("R1", "x", "y", 1.0).unwrap_err();
        assert!(matches!(err, CircuitError::DuplicateName { .. }));
    }

    #[test]
    fn invalid_values_rejected() {
        let mut c = Circuit::new();
        assert!(matches!(
            c.add_resistor("R1", "a", "b", 0.0),
            Err(CircuitError::InvalidValue { .. })
        ));
        assert!(matches!(
            c.add_capacitor("C1", "a", "b", -1e-12),
            Err(CircuitError::InvalidValue { .. })
        ));
        assert!(matches!(
            c.add_vccs("G1", "a", "b", "c", "d", f64::NAN),
            Err(CircuitError::InvalidValue { .. })
        ));
        // Negative gm is allowed (inverting transconductance).
        c.add_vccs("G2", "a", "b", "c", "d", -1e-3).unwrap();
    }

    #[test]
    fn validate_detects_floating_node() {
        let mut c = Circuit::new();
        c.add_resistor("R1", "a", "0", 1.0).unwrap();
        let err = c.validate().unwrap_err();
        assert!(matches!(err, CircuitError::FloatingNode { .. }));
    }

    #[test]
    fn validate_detects_short() {
        let mut c = rc();
        c.add_resistor("R2", "out", "out", 1.0).unwrap();
        assert!(matches!(c.validate(), Err(CircuitError::ShortedElement { .. })));
    }

    #[test]
    fn validate_control_branches() {
        let mut c = rc();
        c.add_cccs("F1", "out", "0", "VMISSING", 2.0).unwrap();
        assert!(matches!(c.validate(), Err(CircuitError::UnknownControlBranch { .. })));
        let mut c2 = rc();
        c2.add_cccs("F1", "out", "0", "R1", 2.0).unwrap();
        assert!(matches!(c2.validate(), Err(CircuitError::ControlBranchNotVsource { .. })));
        let mut c3 = rc();
        c3.add_cccs("F1", "out", "0", "VIN", 2.0).unwrap();
        c3.validate().unwrap();
    }

    #[test]
    fn remove_element_reindexes() {
        let mut c = rc();
        let el = c.remove_element("R1").unwrap();
        assert_eq!(el.name, "R1");
        assert!(c.element("R1").is_none());
        assert_eq!(c.element("C1").unwrap().name, "C1");
        assert!(c.remove_element("R1").is_none());
    }

    #[test]
    fn waveforms_attach_to_sources_only() {
        let mut c = rc();
        c.set_waveform("VIN", Waveform::Dc { value: 1.0 }).unwrap();
        assert_eq!(c.waveform("VIN"), Some(&Waveform::Dc { value: 1.0 }));
        assert_eq!(c.waveforms().count(), 1);
        assert!(matches!(
            c.set_waveform("R1", Waveform::Dc { value: 1.0 }),
            Err(CircuitError::WaveformTarget { .. })
        ));
        assert!(matches!(
            c.set_waveform("VMISSING", Waveform::Dc { value: 1.0 }),
            Err(CircuitError::WaveformTarget { .. })
        ));
        // Removing the source drops its waveform.
        c.remove_element("VIN").unwrap();
        assert!(c.waveform("VIN").is_none());
        assert_eq!(c.waveforms().count(), 0);
    }
}
