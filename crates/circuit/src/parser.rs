//! SPICE-like netlist parsing and writing.
//!
//! Statements are case-insensitive; `*` starts a comment line, `;` an
//! inline comment, `+` a continuation of the previous logical line, and
//! `.end` (optionally) terminates the file:
//!
//! ```text
//! R<name> n+ n- value               resistor
//! C<name> n+ n- value               capacitor
//! L<name> n+ n- value               inductor
//! G<name> n+ n- value               two-terminal conductance (siemens)
//! G<name> n+ n- nc+ nc- gm          VCCS
//! E<name> n+ n- nc+ nc- gain        VCVS
//! F<name> n+ n- vname gain          CCCS (controlled by V source current)
//! H<name> n+ n- vname ohms          CCVS
//! V<name> n+ n- [DC v] [AC] value [wave]   independent voltage source
//! I<name> n+ n- [DC v] [AC] value [wave]   independent current source
//! Q<name> c b e model               BJT, expanded via its small-signal model
//! M<name> d g s b model             MOSFET, expanded likewise
//! X<name> n1 … subckt [k=v …]       subcircuit instance
//! .subckt NAME p1 … [k=v …]         subcircuit definition, until .ends
//! .ends [NAME]                      closes the innermost .subckt
//! .param k=v …                      parameter assignment (lexically scoped)
//! .model NAME KIND(k=v …)           transistor model card (global)
//! .ac dec|oct|lin N fstart fstop    AC sweep card  → [`AnalysisSpec`]
//! .tf V(out[,ref]) SOURCE           transfer-function card → [`AnalysisSpec`]
//! .tran tstep tstop [tstart]        transient card → [`AnalysisSpec`]
//! .end                              optional end of netlist
//! ```
//!
//! A V/I source line may end with a time-domain waveform spec —
//! `PULSE(v1 v2 [delay [rise [fall [width [period]]]]])`,
//! `SIN(vo va freq [delay [theta]])`, or `PWL(t1 v1 t2 v2 …)` — whose
//! arguments may be separated by spaces or commas; a `DC v` field without
//! one becomes a constant [`Waveform::Dc`] drive. The transient engine
//! reads the waveform; the frequency-domain paths keep using the `AC`
//! amplitude. A second analysis card of a kind already seen (`.AC` twice,
//! `.TRAN` twice) is a typed [`ParseError::DuplicateAnalysis`], not a
//! silent last-wins.
//!
//! # Hierarchy
//!
//! `.SUBCKT` bodies are flattened at parse time. Instance `X1` of a block
//! containing `R3` and internal node `n5` produces element `X1.R3` on node
//! `X1.n5`; nesting composes (`X1.X2.n5`). Port nodes map to the instance's
//! connection nodes, `0`/`gnd` always mean ground, and recursive
//! instantiation is rejected with [`ParseError::SubcktRecursion`].
//! Definitions live in one global namespace (nested definitions are
//! hoisted) and must precede nothing — an `X` line may reference a block
//! defined later in the file.
//!
//! # Parameters
//!
//! `.SUBCKT` headers may declare `k=v` defaults; `X` lines may override
//! them after the block name. Element values can then reference a
//! parameter by bare name or in braces (`R1 a b {r}`); `.param` assigns or
//! reassigns parameters in the current scope. Defaults and overrides are
//! evaluated in the *caller's* scope, so a default may reference an outer
//! parameter.
//!
//! # Transistors
//!
//! Devices are linearized at parse time: this is a small-signal analysis
//! library, so the model card carries the *operating point* (`ic`/`id`)
//! alongside the process parameters, and the device line expands into the
//! hybrid-π / saturation model of [`crate::models`]. Unspecified
//! parameters take textbook defaults.
//!
//! # Values
//!
//! Values accept plain scientific notation (`1e-9`) or an engineering
//! scale factor `f p n u m k meg g t` followed by an optional unit word
//! (`30p`, `2.5MEG`, `30pF`, `1kOhm`). At most one scale factor is
//! consumed: `3.3kk` is an error, not 3300.
//!
//! # Writing
//!
//! [`to_spice`] is an inverse of [`parse_spice`] over the supported
//! element set: `parse_spice(to_spice(c))` reproduces every element name,
//! kind, and node of `c`. Elements whose API name does not begin with
//! their SPICE type letter are written with a `<letter>@<name>` head
//! (`V@SRC1 in 0 AC 1`), which the parser strips back to `SRC1`.

use crate::analysis::{AcCard, AnalysisCard, AnalysisSpec, SweepGrid, TfCard, TfOutput, TranCard};
use crate::element::ElementKind;
use crate::models::{BjtSmallSignal, MosSmallSignal};
use crate::netlist::{Circuit, CircuitError};
use crate::waveform::Waveform;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Errors from netlist parsing.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number in the input.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The parsed element was rejected by the circuit builder.
    Circuit {
        /// 1-based line number in the input.
        line: usize,
        /// Underlying builder error.
        source: CircuitError,
    },
    /// A device line references a model card that was never defined.
    UnknownModel {
        /// 1-based line number of the device.
        line: usize,
        /// The missing model name.
        model: String,
    },
    /// An `X` line references a subcircuit that was never defined.
    UnknownSubckt {
        /// 1-based line number of the instance.
        line: usize,
        /// The missing subcircuit name.
        name: String,
    },
    /// A subcircuit instantiates itself, directly or through other blocks.
    SubcktRecursion {
        /// 1-based line number of the instance that closes the cycle.
        line: usize,
        /// The subcircuit whose expansion is already in progress.
        name: String,
    },
    /// An `X` line connects the wrong number of nodes for its subcircuit.
    PortCountMismatch {
        /// 1-based line number of the instance.
        line: usize,
        /// The subcircuit name.
        subckt: String,
        /// Ports the definition declares.
        expected: usize,
        /// Nodes the instance supplied.
        found: usize,
    },
    /// A `.SUBCKT` definition is never closed by `.ENDS`.
    UnterminatedSubckt {
        /// 1-based line number of the `.SUBCKT` card.
        line: usize,
        /// The unterminated definition's name.
        name: String,
    },
    /// A second analysis card of a kind the netlist already carries
    /// (`.AC` twice, `.TRAN` twice, …) — rejected instead of silently
    /// letting the last card win.
    DuplicateAnalysis {
        /// 1-based line number of the second card.
        line: usize,
        /// The directive kind (`".AC"`, `".TF"`, `".TRAN"`).
        kind: &'static str,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Circuit { line, source } => write!(f, "line {line}: {source}"),
            ParseError::UnknownModel { line, model } => {
                write!(f, "line {line}: device references unknown model `{model}`")
            }
            ParseError::UnknownSubckt { line, name } => {
                write!(f, "line {line}: instance references unknown subcircuit `{name}`")
            }
            ParseError::SubcktRecursion { line, name } => {
                write!(f, "line {line}: recursive instantiation of subcircuit `{name}`")
            }
            ParseError::PortCountMismatch { line, subckt, expected, found } => {
                write!(
                    f,
                    "line {line}: subcircuit `{subckt}` declares {expected} ports, \
                     instance connects {found} nodes"
                )
            }
            ParseError::UnterminatedSubckt { line, name } => {
                write!(f, "line {line}: .subckt `{name}` is never closed by .ends")
            }
            ParseError::DuplicateAnalysis { line, kind } => {
                write!(f, "line {line}: duplicate {kind} card (only one per netlist)")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Circuit { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Engineering scale factors, single letter each (`meg` is handled apart).
const SCALE_FACTORS: &[(char, f64)] = &[
    ('t', 1e12),
    ('g', 1e9),
    ('k', 1e3),
    ('m', 1e-3),
    ('u', 1e-6),
    ('n', 1e-9),
    ('p', 1e-12),
    ('f', 1e-15),
];

/// Unit words a value may carry after its (optional) scale factor. These
/// are ignored: `30pF` is 30 pF, `1kOhm` is 1 kΩ, `30q` is 30.
const UNIT_WORDS: &[&str] = &[
    "f", "h", "hz", "v", "a", "s", "q", "ohm", "ohms", "mho", "mhos", "farad", "farads", "henry",
    "henries", "henrys", "amp", "amps", "volt", "volts", "sec", "siemens",
];

/// Parses an engineering-notation value like `30p`, `1k`, `2.5MEG`, `1e-9`.
///
/// At most one scale factor is consumed, after which only a known unit
/// word may follow — `30pF` and `1kOhm` are values, `3.3kk` is not.
///
/// Returns `None` if the token is not a valid value.
pub fn parse_value(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    if t.is_empty() {
        return None;
    }
    // Plain float first (covers 1e-9, 3.5; rejects inf/nan below).
    if let Ok(v) = t.parse::<f64>() {
        return v.is_finite().then_some(v);
    }
    let (num, rest) = split_numeric_prefix(&t)?;
    // `rest` is nonempty (the full-string parse failed): consume at most
    // one scale factor, `meg` before `m`.
    let (mult, unit) = if let Some(unit) = rest.strip_prefix("meg") {
        (1e6, unit)
    } else {
        let first = rest.chars().next().expect("nonempty suffix");
        match SCALE_FACTORS.iter().find(|(c, _)| *c == first) {
            Some((_, mult)) => (*mult, &rest[1..]),
            None => (1.0, rest),
        }
    };
    if !unit.is_empty() && !UNIT_WORDS.contains(&unit) {
        return None;
    }
    let v = num * mult;
    v.is_finite().then_some(v)
}

/// Splits the longest prefix of `t` that parses as a finite float.
fn split_numeric_prefix(t: &str) -> Option<(f64, &str)> {
    for end in (1..=t.len()).rev() {
        if !t.is_char_boundary(end) {
            continue;
        }
        if let Ok(v) = t[..end].parse::<f64>() {
            if v.is_finite() {
                return Some((v, &t[end..]));
            }
        }
    }
    None
}

fn syntax(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax { line, message: message.into() }
}

/// A fully parsed netlist: the flattened circuit plus any analysis cards.
#[derive(Clone, Debug)]
pub struct Netlist {
    /// The flattened circuit.
    pub circuit: Circuit,
    /// `.AC` / `.TF` / `.TRAN` cards, in file order.
    pub analysis: AnalysisSpec,
}

/// Parses a SPICE-like netlist into a [`Circuit`], discarding analysis
/// cards. See [`parse_netlist`] for the full result.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for syntax errors,
/// circuit-builder rejections (duplicate names, bad values, …), and
/// subcircuit errors (unknown block, port-count mismatch, recursion,
/// unterminated definition).
pub fn parse_spice(input: &str) -> Result<Circuit, ParseError> {
    parse_netlist(input).map(|n| n.circuit)
}

/// Parses a SPICE-like netlist into a flattened [`Circuit`] plus the typed
/// [`AnalysisSpec`] of its `.AC`/`.TF` cards.
///
/// # Errors
///
/// As for [`parse_spice`].
pub fn parse_netlist(input: &str) -> Result<Netlist, ParseError> {
    let logical = logical_lines(input)?;
    let scan = scan_statements(logical)?;
    let mut expander = Expander {
        subckts: &scan.subckts,
        models: &scan.models,
        circuit: Circuit::new(),
        active: Vec::new(),
    };
    let mut root = Frame::root();
    expander.expand_block(&scan.main, &mut root)?;
    Ok(Netlist { circuit: expander.circuit, analysis: scan.analysis })
}

/// Joins continuation lines and strips comments, remembering original
/// line numbers.
fn logical_lines(input: &str) -> Result<Vec<(usize, String)>, ParseError> {
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let without_comment = match raw.find(';') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let trimmed = without_comment.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(cont) = trimmed.strip_prefix('+') {
            match logical.last_mut() {
                Some((_, prev)) => {
                    prev.push(' ');
                    prev.push_str(cont.trim());
                }
                None => return Err(syntax(line_no, "continuation with no previous line")),
            }
            continue;
        }
        logical.push((line_no, trimmed.to_string()));
    }
    Ok(logical)
}

/// A `.SUBCKT` definition collected by the scan phase.
struct SubcktDef {
    /// Name as written (lookup is case-insensitive).
    name: String,
    /// Line of the `.SUBCKT` card.
    line: usize,
    /// Port names, lowercased.
    ports: Vec<String>,
    /// `k=v` defaults from the header, key lowercased, value unparsed.
    defaults: Vec<(String, String)>,
    /// Body statements with original line numbers.
    body: Vec<(usize, String)>,
}

/// Result of the statement scan: main-body lines, definitions, models,
/// analysis cards.
struct Scan {
    main: Vec<(usize, String)>,
    subckts: HashMap<String, SubcktDef>,
    models: HashMap<String, ModelCard>,
    analysis: AnalysisSpec,
}

fn scan_statements(logical: Vec<(usize, String)>) -> Result<Scan, ParseError> {
    let mut scan = Scan {
        main: Vec::new(),
        subckts: HashMap::new(),
        models: HashMap::new(),
        analysis: AnalysisSpec::default(),
    };
    // Definitions currently open; nested definitions are hoisted into the
    // single global namespace when their `.ends` closes them.
    let mut stack: Vec<SubcktDef> = Vec::new();
    for (line_no, stmt) in logical {
        if !stmt.starts_with('.') {
            match stack.last_mut() {
                Some(def) => def.body.push((line_no, stmt)),
                None => scan.main.push((line_no, stmt)),
            }
            continue;
        }
        let tokens: Vec<&str> = stmt.split_whitespace().collect();
        let directive = tokens[0][1..].to_ascii_lowercase();
        match directive.as_str() {
            "subckt" => stack.push(parse_subckt_header(line_no, &tokens)?),
            "ends" => {
                let def = stack
                    .pop()
                    .ok_or_else(|| syntax(line_no, ".ends without a matching .subckt"))?;
                if let Some(tag) = tokens.get(1) {
                    if !tag.eq_ignore_ascii_case(&def.name) {
                        return Err(syntax(
                            line_no,
                            format!(".ends {tag} does not close .subckt {}", def.name),
                        ));
                    }
                }
                let (dline, dname) = (def.line, def.name.clone());
                if scan.subckts.insert(dname.to_ascii_lowercase(), def).is_some() {
                    return Err(syntax(dline, format!("duplicate .subckt definition `{dname}`")));
                }
            }
            "end" => {
                if let Some(def) = stack.last() {
                    return Err(ParseError::UnterminatedSubckt {
                        line: def.line,
                        name: def.name.clone(),
                    });
                }
                break;
            }
            "model" => {
                let (name, card) = parse_model_card(line_no, &stmt)?;
                scan.models.insert(name, card);
            }
            "ac" | "tf" | "tran" => {
                if let Some(def) = stack.last() {
                    return Err(syntax(
                        line_no,
                        format!(".{directive}: analysis card inside .subckt {}", def.name),
                    ));
                }
                let card = match directive.as_str() {
                    "ac" => AnalysisCard::Ac(parse_ac_card(line_no, &tokens)?),
                    "tf" => AnalysisCard::Tf(parse_tf_card(line_no, &tokens)?),
                    _ => AnalysisCard::Tran(parse_tran_card(line_no, &tokens)?),
                };
                if scan.analysis.cards.iter().any(|c| c.kind_name() == card.kind_name()) {
                    return Err(ParseError::DuplicateAnalysis {
                        line: line_no,
                        kind: card.kind_name(),
                    });
                }
                scan.analysis.cards.push(card);
            }
            // `.param` is scoped: defer it to the expansion phase.
            "param" => match stack.last_mut() {
                Some(def) => def.body.push((line_no, stmt.clone())),
                None => scan.main.push((line_no, stmt.clone())),
            },
            _ => {} // other directives are ignored
        }
    }
    if let Some(def) = stack.last() {
        return Err(ParseError::UnterminatedSubckt { line: def.line, name: def.name.clone() });
    }
    Ok(scan)
}

/// Parses `.subckt NAME port… [k=v …]`.
fn parse_subckt_header(line: usize, tokens: &[&str]) -> Result<SubcktDef, ParseError> {
    if tokens.len() < 3 || tokens[1].contains('=') {
        return Err(syntax(line, ".subckt: expected `.SUBCKT NAME port… [k=v …]`"));
    }
    let name = tokens[1].to_string();
    let mut ports: Vec<String> = Vec::new();
    let mut defaults: Vec<(String, String)> = Vec::new();
    for tok in &tokens[2..] {
        match tok.split_once('=') {
            Some((k, v)) => {
                if k.is_empty() || v.is_empty() {
                    return Err(syntax(line, format!(".subckt: bad parameter default `{tok}`")));
                }
                defaults.push((k.to_ascii_lowercase(), v.to_string()));
            }
            None => {
                if !defaults.is_empty() {
                    return Err(syntax(
                        line,
                        format!(".subckt: port `{tok}` after parameter defaults"),
                    ));
                }
                let lc = tok.to_ascii_lowercase();
                if lc == "0" || lc == "gnd" {
                    return Err(syntax(line, "ground cannot be a subcircuit port"));
                }
                if ports.contains(&lc) {
                    return Err(syntax(line, format!(".subckt: duplicate port `{tok}`")));
                }
                ports.push(lc);
            }
        }
    }
    if ports.is_empty() {
        return Err(syntax(line, ".subckt: expected at least one port"));
    }
    Ok(SubcktDef { name, line, ports, defaults, body: Vec::new() })
}

/// Parses `.ac dec|oct|lin N fstart fstop`.
fn parse_ac_card(line: usize, tokens: &[&str]) -> Result<AcCard, ParseError> {
    if tokens.len() < 5 {
        return Err(syntax(line, ".ac: expected `.AC dec|oct|lin N fstart fstop`"));
    }
    let grid = match tokens[1].to_ascii_lowercase().as_str() {
        "dec" => SweepGrid::Decade,
        "oct" => SweepGrid::Octave,
        "lin" => SweepGrid::Linear,
        other => {
            return Err(syntax(line, format!(".ac: unknown grid `{other}` (dec, oct, or lin)")));
        }
    };
    let points =
        parse_value(tokens[2]).filter(|p| (1.0..=1e6).contains(p) && p.fract() == 0.0).ok_or_else(
            || syntax(line, format!(".ac: point count `{}` is not a positive integer", tokens[2])),
        )?;
    let value = |tok: &str| {
        parse_value(tok).ok_or_else(|| syntax(line, format!(".ac: invalid frequency `{tok}`")))
    };
    let fstart = value(tokens[3])?;
    let fstop = value(tokens[4])?;
    if fstart < 0.0 || fstop < fstart {
        return Err(syntax(line, ".ac: need 0 <= fstart <= fstop"));
    }
    if grid != SweepGrid::Linear && fstart <= 0.0 {
        return Err(syntax(line, ".ac: logarithmic sweeps need fstart > 0"));
    }
    Ok(AcCard { grid, points: points as usize, fstart_hz: fstart, fstop_hz: fstop })
}

/// Parses `.tf V(out[,ref]) SOURCE` (whitespace inside `V(…)` allowed).
fn parse_tf_card(line: usize, tokens: &[&str]) -> Result<TfCard, ParseError> {
    if tokens.len() < 3 {
        return Err(syntax(line, ".tf: expected `.TF V(out[,ref]) SOURCE`"));
    }
    let source = tokens[tokens.len() - 1].to_string();
    let expr = tokens[1..tokens.len() - 1].concat();
    let well_formed = expr.get(..2).is_some_and(|p| p.eq_ignore_ascii_case("v("))
        && expr.ends_with(')')
        && expr.len() > 3;
    if !well_formed {
        return Err(syntax(line, format!(".tf: malformed output `{expr}` (expected V(node))")));
    }
    let body = &expr[2..expr.len() - 1];
    let parts: Vec<&str> = body.split(',').map(str::trim).collect();
    let output = match parts.as_slice() {
        [one] if !one.is_empty() => TfOutput::Node((*one).to_string()),
        [p, m] if !p.is_empty() && !m.is_empty() => {
            TfOutput::Differential((*p).to_string(), (*m).to_string())
        }
        _ => {
            return Err(syntax(line, format!(".tf: malformed output `{expr}`")));
        }
    };
    Ok(TfCard { output, source })
}

/// Parses `.tran tstep tstop [tstart]`.
fn parse_tran_card(line: usize, tokens: &[&str]) -> Result<TranCard, ParseError> {
    if !(3..=4).contains(&tokens.len()) {
        return Err(syntax(line, ".tran: expected `.TRAN tstep tstop [tstart]`"));
    }
    let value = |tok: &str| {
        parse_value(tok).ok_or_else(|| syntax(line, format!(".tran: invalid time `{tok}`")))
    };
    let tstep = value(tokens[1])?;
    let tstop = value(tokens[2])?;
    let tstart = tokens.get(3).map(|t| value(t)).transpose()?.unwrap_or(0.0);
    if tstep <= 0.0 {
        return Err(syntax(line, ".tran: need tstep > 0"));
    }
    if tstart < 0.0 || tstop <= tstart {
        return Err(syntax(line, ".tran: need 0 <= tstart < tstop"));
    }
    Ok(TranCard { tstep, tstop, tstart })
}

/// Parses a joined `PULSE(…)` / `SIN(…)` / `PWL(…)` argument list into a
/// [`Waveform`]. Arguments may be separated by spaces or commas and may be
/// parameter references (resolved through `frame`).
fn parse_waveform(
    line: usize,
    head: &str,
    spec: &str,
    frame: &Frame,
) -> Result<Waveform, ParseError> {
    let open = spec.find('(').unwrap_or(spec.len());
    let kind = spec[..open].to_ascii_lowercase();
    let body = spec[open..]
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| syntax(line, format!("{head}: malformed waveform `{spec}`")))?;
    let args = body
        .split(|c: char| c.is_whitespace() || c == ',')
        .filter(|t| !t.is_empty())
        .map(|t| frame.resolve_value(line, t))
        .collect::<Result<Vec<f64>, ParseError>>()?;
    match kind.as_str() {
        "pulse" => {
            if !(2..=7).contains(&args.len()) {
                return Err(syntax(
                    line,
                    format!("{head}: PULSE needs v1 v2 [delay [rise [fall [width [period]]]]]"),
                ));
            }
            let opt = |i: usize, default: f64| args.get(i).copied().unwrap_or(default);
            let wave = Waveform::Pulse {
                v1: args[0],
                v2: args[1],
                delay: opt(2, 0.0),
                rise: opt(3, 0.0),
                fall: opt(4, 0.0),
                width: opt(5, f64::INFINITY),
                period: opt(6, f64::INFINITY),
            };
            if let Waveform::Pulse { delay, rise, fall, width, period, .. } = &wave {
                if *delay < 0.0 || *rise < 0.0 || *fall < 0.0 || *width < 0.0 || *period < 0.0 {
                    return Err(syntax(line, format!("{head}: PULSE times must be >= 0")));
                }
            }
            Ok(wave)
        }
        "sin" => {
            if !(3..=5).contains(&args.len()) {
                return Err(syntax(line, format!("{head}: SIN needs vo va freq [delay [theta]]")));
            }
            Ok(Waveform::Sin {
                vo: args[0],
                va: args[1],
                freq_hz: args[2],
                delay: args.get(3).copied().unwrap_or(0.0),
                theta: args.get(4).copied().unwrap_or(0.0),
            })
        }
        "pwl" => {
            if args.len() < 2 || args.len() % 2 != 0 {
                return Err(syntax(line, format!("{head}: PWL needs t1 v1 [t2 v2 …] pairs")));
            }
            let points: Vec<(f64, f64)> = args.chunks(2).map(|p| (p[0], p[1])).collect();
            if points.windows(2).any(|w| w[1].0 <= w[0].0) {
                return Err(syntax(line, format!("{head}: PWL times must be strictly increasing")));
            }
            Ok(Waveform::Pwl { points })
        }
        other => Err(syntax(line, format!("{head}: unknown waveform `{other}`"))),
    }
}

/// One level of subcircuit expansion: name prefix, port→node mapping, and
/// the parameters visible to element values.
struct Frame {
    /// `""` at top level, `"X1."` / `"X1.X2."` inside instances.
    prefix: String,
    /// Lowercased port name → already-resolved outer node name.
    node_map: HashMap<String, String>,
    /// Lowercased parameter name → value.
    params: HashMap<String, f64>,
}

impl Frame {
    fn root() -> Self {
        Frame { prefix: String::new(), node_map: HashMap::new(), params: HashMap::new() }
    }

    /// Maps a node token to its flattened name: ground stays ground, ports
    /// map to the caller's nodes, internal nodes gain the instance prefix.
    fn resolve_node(&self, name: &str) -> String {
        let lc = name.to_ascii_lowercase();
        if lc == "0" || lc == "gnd" {
            return "0".to_string();
        }
        if let Some(mapped) = self.node_map.get(&lc) {
            return mapped.clone();
        }
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}{}", self.prefix, name)
        }
    }

    /// Evaluates a value token: a literal, or a parameter reference (bare
    /// or in braces).
    fn resolve_value(&self, line: usize, tok: &str) -> Result<f64, ParseError> {
        let t = tok.strip_prefix('{').and_then(|r| r.strip_suffix('}')).unwrap_or(tok);
        if let Some(v) = parse_value(t) {
            return Ok(v);
        }
        if let Some(v) = self.params.get(&t.trim().to_ascii_lowercase()) {
            return Ok(*v);
        }
        Err(syntax(line, format!("invalid value or unknown parameter `{tok}`")))
    }

    /// Prefixes an element or control-branch name with the instance path.
    fn resolve_name(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}{}", self.prefix, name)
        }
    }
}

/// The expansion phase: walks statement lists, flattening instances into
/// `circuit`.
struct Expander<'a> {
    subckts: &'a HashMap<String, SubcktDef>,
    models: &'a HashMap<String, ModelCard>,
    circuit: Circuit,
    /// Lowercased names of definitions currently being expanded (cycle
    /// detection).
    active: Vec<String>,
}

impl Expander<'_> {
    fn expand_block(
        &mut self,
        lines: &[(usize, String)],
        frame: &mut Frame,
    ) -> Result<(), ParseError> {
        for (line_no, stmt) in lines {
            let line_no = *line_no;
            let tokens: Vec<&str> = stmt.split_whitespace().collect();
            let head = tokens[0];
            if head.starts_with('.') {
                apply_param(line_no, &tokens, frame)?;
            } else if head.starts_with('X') || head.starts_with('x') {
                self.expand_instance(line_no, &tokens, frame)?;
            } else {
                self.build_element(line_no, &tokens, frame)?;
            }
        }
        Ok(())
    }

    fn expand_instance(
        &mut self,
        line: usize,
        tokens: &[&str],
        frame: &Frame,
    ) -> Result<(), ParseError> {
        let inst = tokens[0];
        let mut positional: Vec<&str> = Vec::new();
        let mut overrides: Vec<(&str, &str)> = Vec::new();
        for tok in &tokens[1..] {
            match tok.split_once('=') {
                Some((k, v)) => {
                    if k.is_empty() || v.is_empty() {
                        return Err(syntax(
                            line,
                            format!("{inst}: bad parameter override `{tok}`"),
                        ));
                    }
                    overrides.push((k, v));
                }
                None if overrides.is_empty() => positional.push(tok),
                None => {
                    return Err(syntax(
                        line,
                        format!("{inst}: positional field `{tok}` after parameter overrides"),
                    ));
                }
            }
        }
        let Some((sub_name, nodes)) = positional.split_last() else {
            return Err(syntax(line, format!("{inst}: expected `X<name> nodes… subckt [k=v …]`")));
        };
        let key = sub_name.to_ascii_lowercase();
        let subckts = self.subckts;
        let Some(def) = subckts.get(&key) else {
            return Err(ParseError::UnknownSubckt { line, name: (*sub_name).to_string() });
        };
        if nodes.len() != def.ports.len() {
            return Err(ParseError::PortCountMismatch {
                line,
                subckt: def.name.clone(),
                expected: def.ports.len(),
                found: nodes.len(),
            });
        }
        if self.active.contains(&key) {
            return Err(ParseError::SubcktRecursion { line, name: def.name.clone() });
        }
        let mut child = Frame {
            prefix: format!("{}{inst}.", frame.prefix),
            node_map: HashMap::new(),
            params: frame.params.clone(),
        };
        for (port, arg) in def.ports.iter().zip(nodes) {
            child.node_map.insert(port.clone(), frame.resolve_node(arg));
        }
        // Defaults and overrides both evaluate in the caller's scope, so
        // they may reference outer parameters; overrides win.
        for (k, vtok) in &def.defaults {
            child.params.insert(k.clone(), frame.resolve_value(line, vtok)?);
        }
        for (k, vtok) in &overrides {
            child.params.insert(k.to_ascii_lowercase(), frame.resolve_value(line, vtok)?);
        }
        self.active.push(key);
        let result = self.expand_block(&def.body, &mut child);
        self.active.pop();
        result
    }

    fn build_element(
        &mut self,
        line_no: usize,
        tokens: &[&str],
        frame: &Frame,
    ) -> Result<(), ParseError> {
        let head = tokens[0];
        let (kind_letter, base_name) = parse_head(line_no, head)?;
        let name = frame.resolve_name(base_name);
        let need = |n: usize| -> Result<(), ParseError> {
            if tokens.len() < n {
                Err(syntax(line_no, format!("{head}: expected at least {} fields", n - 1)))
            } else {
                Ok(())
            }
        };
        let value = |tok: &str| frame.resolve_value(line_no, tok);
        let node = |tok: &str| frame.resolve_node(tok);
        let models = self.models;
        let circuit = &mut self.circuit;
        let build: Result<(), CircuitError> = match kind_letter {
            'R' => {
                need(4)?;
                circuit.add_resistor(&name, &node(tokens[1]), &node(tokens[2]), value(tokens[3])?)
            }
            'C' => {
                need(4)?;
                circuit.add_capacitor(&name, &node(tokens[1]), &node(tokens[2]), value(tokens[3])?)
            }
            'L' => {
                need(4)?;
                circuit.add_inductor(&name, &node(tokens[1]), &node(tokens[2]), value(tokens[3])?)
            }
            'G' if tokens.len() == 4 => circuit.add_conductance(
                &name,
                &node(tokens[1]),
                &node(tokens[2]),
                value(tokens[3])?,
            ),
            'G' => {
                if tokens.len() < 6 {
                    return Err(syntax(
                        line_no,
                        format!("{head}: expected 3 fields (conductance) or 5 fields (VCCS)"),
                    ));
                }
                circuit.add_vccs(
                    &name,
                    &node(tokens[1]),
                    &node(tokens[2]),
                    &node(tokens[3]),
                    &node(tokens[4]),
                    value(tokens[5])?,
                )
            }
            'E' => {
                need(6)?;
                circuit.add_vcvs(
                    &name,
                    &node(tokens[1]),
                    &node(tokens[2]),
                    &node(tokens[3]),
                    &node(tokens[4]),
                    value(tokens[5])?,
                )
            }
            'F' => {
                need(5)?;
                circuit.add_cccs(
                    &name,
                    &node(tokens[1]),
                    &node(tokens[2]),
                    &frame.resolve_name(tokens[3]),
                    value(tokens[4])?,
                )
            }
            'H' => {
                need(5)?;
                circuit.add_ccvs(
                    &name,
                    &node(tokens[1]),
                    &node(tokens[2]),
                    &frame.resolve_name(tokens[3]),
                    value(tokens[4])?,
                )
            }
            'V' | 'I' => {
                need(4)?;
                // "V1 a b 1", "V1 a b AC 1", "V1 a b DC 0 AC 1", optionally
                // ending in a PULSE/SIN/PWL waveform spec; a second
                // amplitude (bare or AC), DC value, or waveform is an
                // error, not last-wins.
                let mut ac: Option<f64> = None;
                let mut dc: Option<f64> = None;
                let mut wave: Option<Waveform> = None;
                let mut duplicate = false;
                let mut rest = &tokens[3..];
                while !rest.is_empty() {
                    let lead = rest[0].to_ascii_lowercase();
                    if lead == "ac" {
                        need_field(line_no, head, rest, 2)?;
                        duplicate |= ac.replace(value(rest[1])?).is_some();
                        rest = &rest[2..];
                    } else if lead == "dc" {
                        need_field(line_no, head, rest, 2)?;
                        duplicate |= dc.replace(value(rest[1])?).is_some();
                        rest = &rest[2..];
                    } else if lead.starts_with("pulse(")
                        || lead.starts_with("sin(")
                        || lead.starts_with("pwl(")
                    {
                        // The argument list may span several whitespace
                        // tokens; join through the closing parenthesis.
                        let end = rest.iter().position(|t| t.ends_with(')')).ok_or_else(|| {
                            syntax(line_no, format!("{head}: unterminated waveform `{}`", rest[0]))
                        })?;
                        let spec = rest[..=end].join(" ");
                        duplicate |=
                            wave.replace(parse_waveform(line_no, head, &spec, frame)?).is_some();
                        rest = &rest[end + 1..];
                    } else {
                        duplicate |= ac.replace(value(rest[0])?).is_some();
                        rest = &rest[1..];
                    }
                }
                if duplicate {
                    return Err(syntax(line_no, format!("{head}: duplicate amplitude")));
                }
                let ac = ac.unwrap_or(0.0);
                let add = if kind_letter == 'V' {
                    circuit.add_vsource(&name, &node(tokens[1]), &node(tokens[2]), ac)
                } else {
                    circuit.add_isource(&name, &node(tokens[1]), &node(tokens[2]), ac)
                };
                // A PULSE/SIN/PWL spec wins over a plain DC value (SPICE
                // transient semantics); a lone DC value becomes a constant
                // drive so the writer round-trip stays lossless.
                match (add, wave.or(dc.map(|value| Waveform::Dc { value }))) {
                    (Ok(()), Some(w)) => circuit.set_waveform(&name, w),
                    (r, _) => r,
                }
            }
            'Q' => {
                need(5)?;
                let card = models.get(&tokens[4].to_ascii_lowercase()).ok_or_else(|| {
                    ParseError::UnknownModel { line: line_no, model: tokens[4].to_string() }
                })?;
                let ModelCard::Bjt(bjt) = card else {
                    return Err(syntax(
                        line_no,
                        format!("{head}: Q device needs an NPN/PNP model"),
                    ));
                };
                bjt.expand(circuit, &name, &node(tokens[1]), &node(tokens[2]), &node(tokens[3]))
            }
            'M' => {
                need(6)?;
                let card = models.get(&tokens[5].to_ascii_lowercase()).ok_or_else(|| {
                    ParseError::UnknownModel { line: line_no, model: tokens[5].to_string() }
                })?;
                let ModelCard::Mos(mos) = card else {
                    return Err(syntax(
                        line_no,
                        format!("{head}: M device needs an NMOS/PMOS model"),
                    ));
                };
                mos.expand(
                    circuit,
                    &name,
                    &node(tokens[1]),
                    &node(tokens[2]),
                    &node(tokens[3]),
                    &node(tokens[4]),
                )
            }
            other => {
                return Err(syntax(line_no, format!("unknown element type `{other}`")));
            }
        };
        build.map_err(|source| ParseError::Circuit { line: line_no, source })
    }
}

/// Applies a `.param k=v …` card to the current frame. Non-`.param`
/// directives reaching the expansion phase are ignored.
fn apply_param(line: usize, tokens: &[&str], frame: &mut Frame) -> Result<(), ParseError> {
    if !tokens[0][1..].eq_ignore_ascii_case("param") {
        return Ok(());
    }
    if tokens.len() < 2 {
        return Err(syntax(line, ".param: expected `key=value` assignments"));
    }
    for tok in &tokens[1..] {
        let Some((k, v)) = tok.split_once('=') else {
            return Err(syntax(line, format!(".param: bad assignment `{tok}`")));
        };
        if k.is_empty() || v.is_empty() {
            return Err(syntax(line, format!(".param: bad assignment `{tok}`")));
        }
        let value = frame.resolve_value(line, v)?;
        frame.params.insert(k.to_ascii_lowercase(), value);
    }
    Ok(())
}

/// Splits an element head token into `(type letter, name)`, handling the
/// `<letter>@<name>` escape for names that do not begin with their type
/// letter.
fn parse_head(line: usize, head: &str) -> Result<(char, &str), ParseError> {
    let bytes = head.as_bytes();
    if bytes.len() >= 2 && bytes[1] == b'@' && bytes[0].is_ascii_alphabetic() {
        if bytes.len() == 2 {
            return Err(syntax(line, format!("`{head}`: missing element name after `@`")));
        }
        return Ok(((bytes[0] as char).to_ascii_uppercase(), &head[2..]));
    }
    Ok((head.chars().next().expect("nonempty token").to_ascii_uppercase(), head))
}

fn need_field(line: usize, name: &str, rest: &[&str], n: usize) -> Result<(), ParseError> {
    if rest.len() < n {
        Err(syntax(line, format!("{name}: incomplete source specification")))
    } else {
        Ok(())
    }
}

/// A parsed `.model` card.
#[derive(Clone, Debug)]
enum ModelCard {
    Bjt(BjtSmallSignal),
    Mos(MosSmallSignal),
}

/// Parses `.model NAME KIND(key=value …)`.
fn parse_model_card(line: usize, stmt: &str) -> Result<(String, ModelCard), ParseError> {
    // Everything after ".model": "NAME KIND ( key = value ... )".
    let body = stmt[".model".len()..].trim();
    let (name, rest) = body
        .split_once(char::is_whitespace)
        .ok_or_else(|| syntax(line, ".model: expected `.model NAME KIND(params)`"))?;
    let rest = rest.trim();
    let (kind, params_src) = match rest.find('(') {
        Some(pos) => {
            let close =
                rest.rfind(')').ok_or_else(|| syntax(line, ".model: unbalanced parentheses"))?;
            (rest[..pos].trim(), &rest[pos + 1..close])
        }
        None => (rest, ""),
    };
    let mut params: HashMap<String, f64> = HashMap::new();
    // Parameters separated by whitespace and/or commas, `key=value`.
    for tok in params_src.split(|c: char| c.is_whitespace() || c == ',') {
        if tok.is_empty() {
            continue;
        }
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| syntax(line, format!(".model: bad parameter `{tok}`")))?;
        let value =
            parse_value(v).ok_or_else(|| syntax(line, format!(".model: bad value `{v}`")))?;
        params.insert(k.trim().to_ascii_lowercase(), value);
    }
    let get = |key: &str, default: f64| params.get(key).copied().unwrap_or(default);
    let card = match kind.to_ascii_uppercase().as_str() {
        "NPN" => ModelCard::Bjt(
            BjtSmallSignal::from_bias(
                get("ic", 100e-6),
                get("beta", 200.0),
                get("va", 100.0),
                get("ft", 400e6),
                get("cmu", 0.5e-12),
            )
            .with_base_resistance(get("rb", 200.0)),
        ),
        "PNP" => ModelCard::Bjt(
            BjtSmallSignal::from_bias(
                get("ic", 100e-6),
                get("beta", 50.0),
                get("va", 50.0),
                get("ft", 5e6),
                get("cmu", 1e-12),
            )
            .with_base_resistance(get("rb", 300.0)),
        ),
        "NMOS" | "PMOS" => ModelCard::Mos(
            MosSmallSignal::from_operating_point(
                get("id", 100e-6),
                get("vov", 0.2),
                get("lambda", 0.05),
                get("cgg", 20e-15),
            )
            .with_gate_resistance(get("rg", 0.0)),
        ),
        other => {
            return Err(syntax(line, format!(".model: unknown device kind `{other}`")));
        }
    };
    Ok((name.to_ascii_lowercase(), card))
}

/// Writes the element head for `name`, prefixing `<letter>@` when the name
/// does not already begin with the SPICE type letter (or would be
/// misread as an escape itself).
fn spice_head(letter: char, name: &str) -> String {
    let starts_right =
        name.as_bytes().first().is_some_and(|b| b.eq_ignore_ascii_case(&(letter as u8)));
    let looks_escaped = name.as_bytes().get(1) == Some(&b'@');
    if starts_right && !looks_escaped {
        name.to_string()
    } else {
        format!("{letter}@{name}")
    }
}

/// Writes a circuit back to SPICE-like text — an inverse of
/// [`parse_spice`] over the supported element set: re-parsing reproduces
/// every element name, kind, and node, including conductances, arbitrarily
/// named sources, and source waveforms (`DC` / `PULSE` / `SIN` / `PWL`).
pub fn to_spice(circuit: &Circuit) -> String {
    let mut out = String::from("* netlist written by refgen\n");
    for el in circuit.elements() {
        let p = circuit.node_name(el.nodes.0);
        let m = circuit.node_name(el.nodes.1);
        let head = spice_head(el.kind.type_letter(), &el.name);
        let line = match &el.kind {
            ElementKind::Resistor { ohms } => format!("{head} {p} {m} {ohms:e}"),
            ElementKind::Conductance { siemens } => format!("{head} {p} {m} {siemens:e}"),
            ElementKind::Capacitor { farads } => format!("{head} {p} {m} {farads:e}"),
            ElementKind::Inductor { henries } => format!("{head} {p} {m} {henries:e}"),
            ElementKind::Vccs { gm, control } => format!(
                "{head} {p} {m} {} {} {gm:e}",
                circuit.node_name(control.0),
                circuit.node_name(control.1),
            ),
            ElementKind::Vcvs { gain, control } => format!(
                "{head} {p} {m} {} {} {gain:e}",
                circuit.node_name(control.0),
                circuit.node_name(control.1),
            ),
            ElementKind::Cccs { gain, control_branch } => {
                format!("{head} {p} {m} {control_branch} {gain:e}")
            }
            ElementKind::Ccvs { ohms, control_branch } => {
                format!("{head} {p} {m} {control_branch} {ohms:e}")
            }
            ElementKind::VSource { ac } | ElementKind::ISource { ac } => {
                let mut s = format!("{head} {p} {m} AC {ac:e}");
                match circuit.waveform(&el.name) {
                    Some(Waveform::Dc { value }) => {
                        write!(s, " DC {value:e}").expect("write to string");
                    }
                    Some(w) => {
                        let args = w.to_spice_args().expect("non-DC waveform has an arg list");
                        write!(s, " {args}").expect("write to string");
                    }
                    None => {}
                }
                s
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    mod value_roundtrip_props {
        use super::*;
        use proptest::prelude::*;

        /// Magnitudes the writer can legitimately emit: the full normal
        /// range out to ±1e±300, subnormal-adjacent dust, and ordinary
        /// engineering values, both signs.
        fn extreme_value() -> impl Strategy<Value = f64> {
            prop_oneof![
                // ±m·10^e across (almost) the whole normal range.
                (-300i32..=300, 0.1f64..10.0, any::<bool>()).prop_map(|(e, m, neg)| {
                    let v = m * 10f64.powi(e);
                    if neg {
                        -v
                    } else {
                        v
                    }
                }),
                // Subnormal-adjacent: multiples of the smallest normal.
                (-4.0f64..4.0).prop_map(|m| m * f64::MIN_POSITIVE),
                // The exact extremes the satellite calls out.
                Just(1e300),
                Just(-1e300),
                Just(1e-300),
                Just(-1e-300),
                Just(f64::MAX),
                Just(f64::MIN_POSITIVE),
                // Ordinary values.
                -1e4f64..1e4,
            ]
        }

        /// Folds a sampled magnitude into the builders' accepted domain
        /// (strictly positive, finite).
        fn positive(v: f64) -> f64 {
            let a = v.abs();
            if a > 0.0 {
                a
            } else {
                1.0
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

            /// The writer's value syntax (`{:e}`) must re-parse through
            /// [`parse_value`] to the **identical bits** — never a
            /// non-finite token, never a different value. This is the
            /// token-level half of the `to_spice` ↔ `parse_spice`
            /// round-trip contract.
            #[test]
            fn written_value_reparses_bit_exact(v in extreme_value()) {
                let token = format!("{v:e}");
                let back = parse_value(&token);
                prop_assert_eq!(
                    back.map(f64::to_bits),
                    Some(v.to_bits()),
                    "token {} parsed to {:?}",
                    token,
                    back
                );
            }

            /// A whole element line survives the write → parse cycle at
            /// extreme magnitudes (positive values only: builders reject
            /// non-positive R/C).
            #[test]
            fn element_roundtrip_at_extremes(
                r in extreme_value().prop_map(positive),
                c in extreme_value().prop_map(positive),
                gain in extreme_value(),
            ) {
                let mut circuit = Circuit::new();
                circuit.add_vsource("VIN", "in", "0", 1.0).unwrap();
                circuit.add_resistor("R1", "in", "out", r).unwrap();
                circuit.add_capacitor("C1", "out", "0", c).unwrap();
                circuit.add_vcvs("E1", "aux", "0", "out", "0", gain).unwrap();
                let text = to_spice(&circuit);
                let back = parse_spice(&text).expect("writer output must re-parse");
                let mut seen = 0;
                for el in back.elements() {
                    let want = match &el.kind {
                        ElementKind::Resistor { ohms } => (*ohms, r),
                        ElementKind::Capacitor { farads } => (*farads, c),
                        ElementKind::Vcvs { gain: g, .. } => (*g, gain),
                        _ => continue,
                    };
                    prop_assert_eq!(want.0.to_bits(), want.1.to_bits(), "{:?}", el.name);
                    seen += 1;
                }
                prop_assert_eq!(seen, 3);
            }
        }
    }

    #[test]
    fn value_suffixes() {
        assert_eq!(parse_value("1k"), Some(1e3));
        assert_eq!(parse_value("30p"), Some(30e-12));
        assert_eq!(parse_value("2.5MEG"), Some(2.5e6));
        assert_eq!(parse_value("1e-9"), Some(1e-9));
        let v = parse_value("100n").unwrap();
        assert!((v - 100e-9).abs() < 1e-22);
        assert_eq!(parse_value("3u"), Some(3e-6));
        assert_eq!(parse_value("2m"), Some(2e-3));
        assert_eq!(parse_value("1.5g"), Some(1.5e9));
        assert_eq!(parse_value("4t"), Some(4e12));
        let v = parse_value("5f").unwrap();
        assert!((v - 5e-15).abs() < 1e-28);
        let v = parse_value("30pF").unwrap();
        assert!((v - 30e-12).abs() < 1e-25);
        assert_eq!(parse_value("-3k"), Some(-3e3));
        assert_eq!(parse_value("1e3k"), Some(1e6));
        assert_eq!(parse_value("1a"), Some(1.0)); // amp unit, no scale
        assert_eq!(parse_value("junk"), None);
        assert_eq!(parse_value(""), None);
    }

    #[test]
    fn double_scale_suffix_rejected() {
        // Regression: the old trailing-letter strip re-entered the suffix
        // match and accepted a second scale factor.
        assert_eq!(parse_value("3.3kk"), None);
        assert_eq!(parse_value("1kM"), None);
        assert_eq!(parse_value("2megk"), None);
        assert_eq!(parse_value("10pn"), None);
        // ...while one scale factor plus a unit word still works.
        assert_eq!(parse_value("1kOhm"), Some(1e3));
        assert_eq!(parse_value("2kOhms"), Some(2e3));
        let v = parse_value("4.7uF").unwrap();
        assert!((v - 4.7e-6).abs() < 1e-18);
        assert_eq!(parse_value("30q"), Some(30.0)); // `q` is a unit, not a scale
        assert_eq!(parse_value("100Hz"), Some(100.0));
        // Non-finite prefixes and malformed mantissas stay rejected.
        assert_eq!(parse_value("infk"), None);
        assert_eq!(parse_value("nan"), None);
        assert_eq!(parse_value("--5n"), None);
        assert_eq!(parse_value("1.2.3n"), None);
        assert_eq!(parse_value("k"), None);
    }

    #[test]
    fn parse_basic_rc() {
        let c =
            parse_spice("* low-pass\nVIN in 0 AC 1\nR1 in out 1k\nC1 out 0 1n\n.end\n").unwrap();
        assert_eq!(c.elements().len(), 3);
        assert_eq!(c.capacitor_values(), vec![1e-9]);
        c.validate().unwrap();
    }

    #[test]
    fn parse_controlled_sources() {
        let c = parse_spice(
            "V1 a 0 AC 1\n\
             R1 a b 1k\n\
             GM1 out 0 b 0 2m\n\
             RL out 0 10k\n\
             E1 x 0 out 0 -3\n\
             RX x 0 1k\n\
             F1 y 0 V1 2\n\
             RY y 0 1k\n\
             H1 z 0 V1 50\n\
             RZ z 0 1k\n",
        )
        .unwrap();
        assert_eq!(c.elements().len(), 10);
        match &c.element("GM1").unwrap().kind {
            ElementKind::Vccs { gm, .. } => assert_eq!(*gm, 2e-3),
            other => panic!("{other:?}"),
        }
        match &c.element("H1").unwrap().kind {
            ElementKind::Ccvs { ohms, control_branch } => {
                assert_eq!(*ohms, 50.0);
                assert_eq!(control_branch, "V1");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn conductance_element_grammar() {
        // Four fields: a two-terminal conductance.
        let c = parse_spice("G1 a 0 2m\nR1 a 0 1k\n").unwrap();
        match &c.element("G1").unwrap().kind {
            ElementKind::Conductance { siemens } => assert_eq!(*siemens, 2e-3),
            other => panic!("{other:?}"),
        }
        // Six fields: a VCCS.
        let c = parse_spice("V1 b 0 AC 1\nG1 a 0 b 0 2m\nR1 a 0 1k\n").unwrap();
        assert!(matches!(c.element("G1").unwrap().kind, ElementKind::Vccs { .. }));
        // Five fields: ambiguous, rejected.
        let err = parse_spice("G1 a 0 b 2m\n").unwrap_err();
        match err {
            ParseError::Syntax { line: 1, message } => {
                assert!(message.contains("conductance"), "{message}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn continuation_and_comments() {
        let c = parse_spice("R1 a b\n+ 2k ; the resistor\n* a comment line\nC1 b 0 1p\n").unwrap();
        match &c.element("R1").unwrap().kind {
            ElementKind::Resistor { ohms } => assert_eq!(*ohms, 2e3),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.elements().len(), 2);
    }

    #[test]
    fn source_variants() {
        let c =
            parse_spice("V1 a 0 1\nV2 b 0 AC 2\nV3 c 0 DC 5 AC 3\nR1 a b 1\nR2 b c 1\nR3 c 0 1\n")
                .unwrap();
        for (name, amp) in [("V1", 1.0), ("V2", 2.0), ("V3", 3.0)] {
            match &c.element(name).unwrap().kind {
                ElementKind::VSource { ac } => assert_eq!(*ac, amp, "{name}"),
                other => panic!("{other:?}"),
            }
        }
        // DC only: zero AC amplitude.
        let c = parse_spice("V4 d 0 DC 5\nR4 d 0 1\n").unwrap();
        assert!(matches!(c.element("V4").unwrap().kind, ElementKind::VSource { ac } if ac == 0.0));
    }

    #[test]
    fn duplicate_amplitude_is_syntax_error() {
        for bad in [
            "V1 a 0 1 2\nR1 a 0 1k\n",
            "V1 a 0 AC 1 2\n",
            "V1 a 0 AC 1 AC 2\n",
            "V1 a 0 1 AC 2\n",
            "I1 a 0 2 DC 1 AC 3\n",
        ] {
            match parse_spice(bad).unwrap_err() {
                ParseError::Syntax { line: 1, message } => {
                    assert!(message.contains("duplicate amplitude"), "{bad:?}: {message}")
                }
                other => panic!("{bad:?}: expected Syntax, got {other:?}"),
            }
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        // An instance of an undefined block is a typed UnknownSubckt error.
        let err = parse_spice("R1 a b 1k\nX1 c b e sub\n").unwrap_err();
        match err {
            ParseError::UnknownSubckt { line, name } => {
                assert_eq!(line, 2);
                assert_eq!(name, "sub");
            }
            other => panic!("{other:?}"),
        }
        let err = parse_spice("R1 a b notanumber\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 1, .. }));
        let err = parse_spice("R1 a b 1k\nR1 c d 2k\n").unwrap_err();
        assert!(matches!(err, ParseError::Circuit { line: 2, .. }));
    }

    #[test]
    fn model_card_bjt_expansion() {
        let c = parse_spice(
            "* common-emitter stage\n\
             .model qfast NPN(ic=1m beta=150 va=80 ft=600meg cmu=0.3p rb=120)\n\
             VIN in 0 AC 1\n\
             RB in b 10k\n\
             Q1 c b 0 QFAST\n\
             RC c 0 4.7k\n",
        )
        .unwrap();
        c.validate().unwrap();
        // Hybrid-π expansion present.
        assert!(c.element("gm_Q1").is_some());
        assert!(c.element("cpi_Q1").is_some());
        assert!(c.element("cmu_Q1").is_some());
        assert!(c.element("rb_Q1").is_some());
        assert!(c.find_node("Q1_b").is_some());
        // gm = ic/VT with ic = 1 mA.
        match &c.element("gm_Q1").unwrap().kind {
            ElementKind::Vccs { gm, .. } => {
                assert!((gm - 1e-3 / crate::models::VT).abs() / gm < 1e-12)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn model_card_mos_expansion_and_defaults() {
        let c = parse_spice(
            "M1 d g s 0 NCH\n\
             .model NCH NMOS(id=200u vov=0.25)\n\
             VIN g 0 AC 1\n\
             RD d 0 10k\n\
             RS s 0 1k\n",
        )
        .unwrap();
        // Model card after the device line works (two-pass).
        assert!(c.element("gm_M1").is_some());
        match &c.element("gm_M1").unwrap().kind {
            ElementKind::Vccs { gm, .. } => {
                assert!((gm - 2.0 * 200e-6 / 0.25).abs() / gm < 1e-12)
            }
            other => panic!("{other:?}"),
        }
        // Defaults applied: lambda default 0.05 → gds = 10 µS.
        match &c.element("gds_M1").unwrap().kind {
            ElementKind::Conductance { siemens } => {
                assert!((siemens - 0.05 * 200e-6).abs() < 1e-12)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn model_errors() {
        let err = parse_spice("Q1 c b e NOSUCH\nR1 c 0 1k\n").unwrap_err();
        assert!(matches!(err, ParseError::UnknownModel { line: 1, .. }));
        let err = parse_spice(".model X JFET(beta=1)\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { .. }));
        let err = parse_spice(".model QQ NPN(ic=1m)\nM1 d g s 0 QQ\nR1 d 0 1k\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }));
        let err = parse_spice(".model NN NPN(ic=oops)\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { .. }));
    }

    #[test]
    fn end_stops_parsing() {
        let c = parse_spice("R1 a 0 1k\nR2 a 0 1k\n.end\nR3 zz 0 broken\n").unwrap();
        assert_eq!(c.elements().len(), 2);
    }

    #[test]
    fn subckt_flattens_with_prefixes() {
        let c = parse_spice(
            ".subckt lpf in out\n\
             R1 in n1 1k\n\
             C1 n1 0 1n\n\
             R2 n1 out 1k\n\
             .ends lpf\n\
             VIN a 0 AC 1\n\
             X1 a b lpf\n\
             X2 b c lpf\n\
             RL c 0 1meg\n\
             .end\n",
        )
        .unwrap();
        c.validate().unwrap();
        assert_eq!(c.elements().len(), 8);
        // Deterministic flattened naming and per-instance internal nodes.
        for name in ["X1.R1", "X1.C1", "X1.R2", "X2.R1", "X2.C1", "X2.R2"] {
            assert!(c.element(name).is_some(), "{name}");
        }
        assert!(c.find_node("X1.n1").is_some());
        assert!(c.find_node("X2.n1").is_some());
        // Ports map to the caller's nodes: X1's `out` is node `b`.
        let r2 = c.element("X1.R2").unwrap();
        assert_eq!(c.node_name(r2.nodes.1), "b");
    }

    #[test]
    fn nested_subckt_naming() {
        let c = parse_spice(
            ".subckt inner p q\n\
             R1 p q 1k\n\
             .ends\n\
             .subckt outer a b\n\
             X2 a m inner\n\
             X3 m b inner\n\
             .ends\n\
             VIN in 0 AC 1\n\
             X1 in out outer\n\
             RL out 0 1k\n",
        )
        .unwrap();
        c.validate().unwrap();
        assert!(c.element("X1.X2.R1").is_some());
        assert!(c.element("X1.X3.R1").is_some());
        // `m` is internal to `outer`, so it flattens to X1.m.
        assert!(c.find_node("X1.m").is_some());
    }

    #[test]
    fn subckt_params_defaults_overrides() {
        let c = parse_spice(
            ".subckt sec in out r=1k c=1n\n\
             R1 in out {r}\n\
             C1 out 0 c\n\
             .ends\n\
             .param cbig=4n\n\
             VIN in 0 AC 1\n\
             X1 in mid sec\n\
             X2 mid out sec r=2k c={cbig}\n\
             RL out 0 1meg\n",
        )
        .unwrap();
        c.validate().unwrap();
        let ohms = |name: &str| match c.element(name).unwrap().kind {
            ElementKind::Resistor { ohms } => ohms,
            ref other => panic!("{other:?}"),
        };
        let farads = |name: &str| match c.element(name).unwrap().kind {
            ElementKind::Capacitor { farads } => farads,
            ref other => panic!("{other:?}"),
        };
        assert_eq!(ohms("X1.R1"), 1e3);
        assert_eq!(farads("X1.C1"), 1e-9);
        assert_eq!(ohms("X2.R1"), 2e3);
        assert_eq!(farads("X2.C1"), 4e-9);
    }

    #[test]
    fn subckt_default_references_outer_param() {
        let c = parse_spice(
            ".subckt g a b r={base}\n\
             R1 a b {r}\n\
             .ends\n\
             .param base=5k\n\
             VIN x 0 AC 1\n\
             X1 x 0 g\n",
        )
        .unwrap();
        match c.element("X1.R1").unwrap().kind {
            ElementKind::Resistor { ohms } => assert_eq!(ohms, 5e3),
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subckt_sources_and_controls_are_prefixed() {
        let c = parse_spice(
            ".subckt probe a b\n\
             VS a m AC 0\n\
             F1 m b VS 2\n\
             .ends\n\
             VIN in 0 AC 1\n\
             X1 in out probe\n\
             RL out 0 1k\n",
        )
        .unwrap();
        assert!(c.element("X1.VS").is_some());
        match &c.element("X1.F1").unwrap().kind {
            ElementKind::Cccs { control_branch, .. } => assert_eq!(control_branch, "X1.VS"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn analysis_cards_parsed() {
        let n = parse_netlist(
            "VIN in 0 AC 1\n\
             R1 in out 1k\n\
             C1 out 0 1n\n\
             .ac dec 10 1 100k\n\
             .tf V(out) VIN\n\
             .end\n",
        )
        .unwrap();
        let ac = n.analysis.ac().unwrap();
        assert_eq!(ac.grid, SweepGrid::Decade);
        assert_eq!(ac.points, 10);
        assert_eq!(ac.fstart_hz, 1.0);
        assert_eq!(ac.fstop_hz, 1e5);
        let tf = n.analysis.tf().unwrap();
        assert_eq!(tf.output, TfOutput::Node("out".to_string()));
        assert_eq!(tf.source, "VIN");
        // Differential output with whitespace inside V(…).
        let n = parse_netlist("VIN in 0 AC 1\nR1 in p 1k\nR2 p 0 1k\n.tf V(p, in) VIN\n").unwrap();
        assert_eq!(
            n.analysis.tf().unwrap().output,
            TfOutput::Differential("p".to_string(), "in".to_string())
        );
        // No cards → empty spec, and `parse_spice` still works.
        let n = parse_netlist("R1 a 0 1k\nR2 a 0 1k\n").unwrap();
        assert!(n.analysis.is_empty());
    }

    #[test]
    fn analysis_card_errors() {
        for (bad, needle) in [
            (".ac dec 10 1\n", "expected"),
            (".ac log 10 1 1k\n", "unknown grid"),
            (".ac dec 2.5 1 1k\n", "point count"),
            (".ac dec 0 1 1k\n", "point count"),
            (".ac dec 10 1k 1\n", "fstart"),
            (".ac dec 10 0 1k\n", "fstart > 0"),
            (".tf V(out)\n", "expected"),
            (".tf out VIN\n", "malformed output"),
            (".tf V() VIN\n", "malformed output"),
            (".tf V(a,b,c) VIN\n", "malformed output"),
        ] {
            match parse_netlist(bad).unwrap_err() {
                ParseError::Syntax { line: 1, message } => {
                    assert!(message.contains(needle), "{bad:?}: {message}")
                }
                other => panic!("{bad:?}: expected Syntax, got {other:?}"),
            }
        }
        // Analysis cards are top-level only.
        let err = parse_netlist(".subckt s a b\n.ac dec 10 1 1k\n.ends\n").unwrap_err();
        match err {
            ParseError::Syntax { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("inside .subckt"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tran_card_parsed() {
        let n = parse_netlist(
            "VIN in 0 AC 1 PULSE(0 1)\nR1 in out 1k\nC1 out 0 1n\n.tran 1u 10u\n.end\n",
        )
        .unwrap();
        let tran = n.analysis.tran().unwrap();
        assert_eq!(tran.tstep, 1e-6);
        // Engineering suffixes multiply (1 part in 2⁵² noise allowed).
        assert!((tran.tstop - 1e-5).abs() < 1e-19);
        assert_eq!(tran.tstart, 0.0);
        // Optional tstart, with binary-exact times.
        let n = parse_netlist("R1 a 0 1k\nR2 a 0 1k\n.tran 0.25 2 1\n").unwrap();
        let tran = n.analysis.tran().unwrap();
        assert_eq!((tran.tstep, tran.tstop, tran.tstart), (0.25, 2.0, 1.0));
        assert_eq!(tran.times(), vec![1.0, 1.25, 1.5, 1.75, 2.0]);
    }

    #[test]
    fn tran_card_errors() {
        for (bad, needle) in [
            (".tran 1u\n", "expected"),
            (".tran 1u 10u 0 extra\n", "expected"),
            (".tran abc 10u\n", "invalid time"),
            (".tran 0 10u\n", "tstep > 0"),
            (".tran -1u 10u\n", "tstep > 0"),
            (".tran 1u 10u 10u\n", "tstart < tstop"),
            (".tran 1u 10u -1u\n", "0 <= tstart"),
        ] {
            match parse_netlist(bad).unwrap_err() {
                ParseError::Syntax { line: 1, message } => {
                    assert!(message.contains(needle), "{bad:?}: {message}")
                }
                other => panic!("{bad:?}: expected Syntax, got {other:?}"),
            }
        }
    }

    #[test]
    fn ac_card_degenerate_grid_corpus() {
        // Every degenerate `.AC` form either parses to a card whose grid
        // is a sane single point, or is rejected as a typed Syntax error —
        // never NaN, duplicate, or zero-step frequencies (and never a
        // hang materializing the grid).
        let parse_ac = |card: &str| {
            parse_netlist(&format!("R1 a 0 1k\n{card}\n"))
                .map(|n| n.analysis.ac().cloned().expect("card present"))
        };
        // Accepted single-point forms.
        for card in [".ac lin 1 1k 1k", ".ac lin 1 1k 2k", ".ac dec 10 1k 1k", ".ac oct 5 5 5"] {
            let f = parse_ac(card).unwrap_or_else(|e| panic!("{card}: {e}")).frequencies();
            assert_eq!(f.len(), 1, "{card}: {f:?}");
            assert!(f[0].is_finite() && f[0] > 0.0, "{card}: {f:?}");
        }
        // Sub-decade / sub-octave spans: in-span, strictly ascending.
        for card in [".ac dec 10 100 150", ".ac oct 3 100 110", ".ac dec 1 100 101"] {
            let c = parse_ac(card).unwrap_or_else(|e| panic!("{card}: {e}"));
            let f = c.frequencies();
            assert!(!f.is_empty(), "{card}");
            assert!(f.windows(2).all(|w| w[1] > w[0]), "{card}: {f:?}");
            assert!(
                f.iter().all(|&x| x >= c.fstart_hz && x <= c.fstop_hz * (1.0 + 1e-9)),
                "{card}: {f:?}"
            );
        }
        // Rejected forms, each a typed error naming the problem.
        for (card, needle) in [
            (".ac dec 10 0 1k", "fstart > 0"),
            (".ac oct 10 0 1k", "fstart > 0"),
            (".ac dec 10 -1 1k", "0 <= fstart"),
            (".ac lin 10 5k 1k", "fstart <= fstop"),
            (".ac lin 0 1 1k", "positive integer"),
            (".ac dec 2.5 1 1k", "positive integer"),
            (".ac lin 10 nan 1k", "invalid frequency"),
            (".ac lin 10 1 1e400", "invalid frequency"),
        ] {
            match parse_ac(card) {
                Err(ParseError::Syntax { line: 2, message }) => {
                    assert!(message.contains(needle), "{card:?}: {message}")
                }
                other => panic!("{card:?}: expected Syntax error, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_analysis_card_is_typed_error() {
        // Second card of the same kind is rejected with its line number —
        // not silently last-wins.
        let err = parse_netlist("R1 a 0 1k\nR2 a 0 1k\n.ac dec 10 1 1k\n.ac dec 20 1 1meg\n")
            .unwrap_err();
        assert_eq!(err, ParseError::DuplicateAnalysis { line: 4, kind: ".AC" });
        assert!(err.to_string().contains("duplicate .AC card"), "{err}");
        let err = parse_netlist("R1 a 0 1k\n.tran 1u 10u\n.tran 2u 20u\n").unwrap_err();
        assert_eq!(err, ParseError::DuplicateAnalysis { line: 3, kind: ".TRAN" });
        let err =
            parse_netlist("VIN a 0 AC 1\nR1 a 0 1k\n.tf V(a) VIN\n.tf V(a) VIN\n").unwrap_err();
        assert_eq!(err, ParseError::DuplicateAnalysis { line: 4, kind: ".TF" });
        // One card of each kind coexists.
        let n = parse_netlist(
            "VIN in 0 AC 1\nR1 in out 1k\nC1 out 0 1n\n\
             .ac dec 10 1 1k\n.tf V(out) VIN\n.tran 1u 10u\n",
        )
        .unwrap();
        assert_eq!(n.analysis.cards.len(), 3);
    }

    #[test]
    fn waveform_sources_parse() {
        let c = parse_spice(
            "VIN in 0 AC 1 PULSE(0 1 2e-6 3e-9 4e-9 5e-6 1e-5)\n\
             VS s 0 SIN(0 5 1e3 1e-6 100)\n\
             IP p 0 PWL(0,0 1e-6,1 2e-6,-1)\n\
             VD d 0 DC 5\n\
             R1 in s 1k\nR2 s p 1k\nR3 p d 1k\nR4 d 0 1k\n",
        )
        .unwrap();
        assert_eq!(
            c.waveform("VIN"),
            Some(&Waveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 2e-6,
                rise: 3e-9,
                fall: 4e-9,
                width: 5e-6,
                period: 1e-5,
            })
        );
        assert_eq!(
            c.waveform("VS"),
            Some(&Waveform::Sin { vo: 0.0, va: 5.0, freq_hz: 1e3, delay: 1e-6, theta: 100.0 })
        );
        assert_eq!(
            c.waveform("IP"),
            Some(&Waveform::Pwl { points: vec![(0.0, 0.0), (1e-6, 1.0), (2e-6, -1.0)] })
        );
        assert_eq!(c.waveform("VD"), Some(&Waveform::Dc { value: 5.0 }));
        // Trailing PULSE arguments default: an ideal never-falling step.
        let c = parse_spice("V1 a 0 PULSE(0 1)\nR1 a 0 1k\n").unwrap();
        assert_eq!(
            c.waveform("V1"),
            Some(&Waveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 0.0,
                fall: 0.0,
                width: f64::INFINITY,
                period: f64::INFINITY,
            })
        );
        // The AC amplitude still parses alongside the waveform.
        assert!(matches!(c.element("V1").unwrap().kind, ElementKind::VSource { ac } if ac == 0.0));
        // Waveform arguments resolve subcircuit parameters.
        let c = parse_spice(
            ".subckt drv a\nVS a 0 PULSE(0 {amp})\n.ends\n\
             .param amp=2.5\nX1 n drv\nR1 n 0 1k\n",
        )
        .unwrap();
        assert!(matches!(
            c.waveform("X1.VS"),
            Some(&Waveform::Pulse { v2, .. }) if v2 == 2.5
        ));
    }

    #[test]
    fn waveform_errors() {
        for (bad, needle) in [
            ("V1 a 0 PULSE(0 1\nR1 a 0 1k\n", "unterminated waveform"),
            ("V1 a 0 PULSE(0)\n", "PULSE needs"),
            ("V1 a 0 PULSE(0 1 -1u)\n", "PULSE times"),
            ("V1 a 0 SIN(0 1)\n", "SIN needs"),
            ("V1 a 0 PWL(0 0 1u)\n", "PWL needs"),
            ("V1 a 0 PWL(1u 0 0 1)\n", "strictly increasing"),
            ("V1 a 0 PULSE(0 1) SIN(0 1 1k)\n", "duplicate amplitude"),
            ("V1 a 0 RAMP(0 1)\n", "invalid value"),
        ] {
            match parse_spice(bad).unwrap_err() {
                ParseError::Syntax { line: 1, message } => {
                    assert!(message.contains(needle), "{bad:?}: {message}")
                }
                other => panic!("{bad:?}: expected Syntax, got {other:?}"),
            }
        }
    }

    #[test]
    fn round_trip_preserves_waveforms() {
        let src = "VIN in 0 AC 1 PULSE(0 1 0 1n 1n 5u 10u)\n\
                   VS s 0 SIN(0 5 1k)\n\
                   IP 0 p PWL(0 0 1u 1)\n\
                   VD d 0 DC 5 AC 2\n\
                   R1 in s 1k\nR2 s p 1k\nR3 p d 1k\nR4 d 0 1k\n";
        let c1 = parse_spice(src).unwrap();
        let c2 = parse_spice(&to_spice(&c1)).unwrap();
        for name in ["VIN", "VS", "IP", "VD"] {
            assert_eq!(c1.waveform(name), c2.waveform(name), "{name}");
            assert!(c2.waveform(name).is_some(), "{name}");
        }
        assert!(matches!(c2.element("VD").unwrap().kind, ElementKind::VSource { ac } if ac == 2.0));
    }

    #[test]
    fn subckt_error_corpus() {
        // Unterminated definition, at end of input and at `.end`.
        let err = parse_spice("VIN in 0 AC 1\n.subckt s a b\nR1 a b 1k\n").unwrap_err();
        assert_eq!(err, ParseError::UnterminatedSubckt { line: 2, name: "s".to_string() });
        let err = parse_spice(".subckt s a b\nR1 a b 1k\n.end\n").unwrap_err();
        assert_eq!(err, ParseError::UnterminatedSubckt { line: 1, name: "s".to_string() });
        // Port-count mismatch.
        let err = parse_spice(".subckt s a b\nR1 a b 1k\n.ends\nX1 x s\nR2 x 0 1k\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::PortCountMismatch {
                line: 4,
                subckt: "s".to_string(),
                expected: 2,
                found: 1
            }
        );
        // Unknown subcircuit.
        let err = parse_spice("X1 a b nosuch\n").unwrap_err();
        assert_eq!(err, ParseError::UnknownSubckt { line: 1, name: "nosuch".to_string() });
        // Direct recursion: the error points at the body line closing the
        // cycle.
        let err = parse_spice(".subckt s a b\nX1 a b s\n.ends\nX9 x y s\n").unwrap_err();
        assert_eq!(err, ParseError::SubcktRecursion { line: 2, name: "s".to_string() });
        // Mutual recursion.
        let err = parse_spice(
            ".subckt a p q\nX1 p q b\n.ends\n.subckt b p q\nX1 p q a\n.ends\nXT x y a\n",
        )
        .unwrap_err();
        assert_eq!(err, ParseError::SubcktRecursion { line: 5, name: "a".to_string() });
        // Structural errors are plain syntax errors with line numbers.
        assert!(matches!(
            parse_spice("R1 a 0 1k\n.ends\n"),
            Err(ParseError::Syntax { line: 2, .. })
        ));
        assert!(matches!(
            parse_spice(".subckt s a b\nR1 a b 1k\n.ends t\n"),
            Err(ParseError::Syntax { line: 3, .. })
        ));
        assert!(matches!(
            parse_spice(".subckt s a b\nR1 a b 1k\n.ends\n.subckt s c d\nR2 c d 1k\n.ends\n"),
            Err(ParseError::Syntax { line: 4, .. })
        ));
        assert!(matches!(
            parse_spice(".subckt s a 0\nR1 a 0 1k\n.ends\n"),
            Err(ParseError::Syntax { line: 1, .. })
        ));
        assert!(matches!(
            parse_spice(".subckt s a a\nR1 a 0 1k\n.ends\n"),
            Err(ParseError::Syntax { line: 1, .. })
        ));
        // Positional field after a parameter override.
        let err = parse_spice(".subckt s a b r=1\nR1 a b {r}\n.ends\nX1 a r=2 b s\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 4, .. }), "{err:?}");
        // Errors display with their line numbers.
        let err = parse_spice("X1 a b nosuch\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn escape_prefix_names_elements() {
        let c = parse_spice("V@SRC1 in 0 AC 1\nR1 in 0 1k\n").unwrap();
        let el = c.element("SRC1").unwrap();
        assert!(matches!(el.kind, ElementKind::VSource { ac } if ac == 1.0));
        // Escapes with no name are rejected, not panicked on.
        assert!(matches!(parse_spice("V@ in 0 AC 1\n"), Err(ParseError::Syntax { line: 1, .. })));
    }

    #[test]
    fn round_trip_through_writer() {
        let src = "VIN in 0 AC 1\nR1 in out 1k\nC1 out 0 1n\nGM out 0 in 0 5m\n";
        let c1 = parse_spice(src).unwrap();
        let written = to_spice(&c1);
        let c2 = parse_spice(&written).unwrap();
        assert_eq!(c1.elements().len(), c2.elements().len());
        for (a, b) in c1.elements().iter().zip(c2.elements()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn round_trip_preserves_conductances_and_names() {
        // Conductances (e.g. every MOS expansion's gds_*) and elements
        // whose names do not start with their type letter must survive
        // parse → write → parse with name and kind intact.
        let mut c1 = Circuit::new();
        c1.add_vsource("SRC1", "in", "0", 1.0).unwrap();
        c1.add_conductance("gds_M1", "in", "out", 1e-5).unwrap();
        c1.add_resistor("load", "out", "0", 1e3).unwrap();
        c1.add_capacitor("C1", "out", "0", 1e-12).unwrap();
        c1.add_vccs("GM", "out", "0", "in", "0", 5e-3).unwrap();
        c1.add_isource("pump", "0", "out", 2e-3).unwrap();
        c1.add_cccs("F1", "out", "0", "SRC1", 2.0).unwrap();
        let written = to_spice(&c1);
        let c2 = parse_spice(&written).unwrap();
        assert_eq!(c1.elements().len(), c2.elements().len());
        for (a, b) in c1.elements().iter().zip(c2.elements()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            assert_eq!(c1.node_name(a.nodes.0), c2.node_name(b.nodes.0), "{}: + node", a.name);
            assert_eq!(c1.node_name(a.nodes.1), c2.node_name(b.nodes.1), "{}: - node", a.name);
        }
        // A second round trip is a fixed point.
        assert_eq!(written, to_spice(&c2));
    }

    #[test]
    fn round_trip_of_flattened_hierarchy() {
        // Flattened names contain dots and start with `X`, so the writer
        // must escape them.
        let c1 = parse_spice(
            ".subckt lpf in out\nR1 in out 1k\nC1 out 0 1n\n.ends\n\
             VIN a 0 AC 1\nX1 a b lpf\nRL b 0 1meg\n",
        )
        .unwrap();
        let c2 = parse_spice(&to_spice(&c1)).unwrap();
        for (a, b) in c1.elements().iter().zip(c2.elements()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn missing_node_is_typed_syntax_error() {
        // Two-terminal element with a node token missing.
        let err = parse_spice("R1 in 1k\n").unwrap_err();
        match err {
            ParseError::Syntax { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("expected at least 3 fields"), "{message}");
            }
            other => panic!("expected Syntax, got {other:?}"),
        }
        // VCVS missing one control node.
        let err = parse_spice("R1 a 0 1k\nE1 out 0 b -3\n").unwrap_err();
        match err {
            ParseError::Syntax { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("expected at least 5 fields"), "{message}");
            }
            other => panic!("expected Syntax, got {other:?}"),
        }
        // Independent source with a dangling AC keyword and no amplitude.
        let err = parse_spice("V1 a 0 AC\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 1, .. }), "expected Syntax, got {err:?}");
    }

    #[test]
    fn bad_value_suffix_is_typed_syntax_error() {
        // SPICE convention: trailing unit letters after a number or scale
        // factor are ignored, so these are values, not errors.
        assert_eq!(parse_value("1kOhm"), Some(1e3));
        assert_eq!(parse_value("30q"), Some(30.0)); // `q` is a unit, not a scale
        for netlist in [
            "R1 a b 1.2.3n\n",  // malformed mantissa under a real suffix
            "C1 out 0 .\n",     // bare decimal point
            "R1 a b k\n",       // suffix with no mantissa
            "R1 a b 3.3kk\n",   // double scale factor
            "L1 a b --5n\n",    // doubled sign
            "V1 a 0 AC oops\n", // source amplitude
        ] {
            let err = parse_spice(netlist).unwrap_err();
            match err {
                ParseError::Syntax { line: 1, message } => {
                    assert!(
                        message.contains("invalid value") || message.contains("incomplete"),
                        "{netlist:?}: {message}"
                    );
                }
                other => panic!("{netlist:?}: expected Syntax, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_element_is_typed_circuit_error() {
        let err = parse_spice("C1 a 0 1n\nR1 a 0 1k\nC1 b 0 2n\n").unwrap_err();
        match err {
            ParseError::Circuit { line, source: CircuitError::DuplicateName { name } } => {
                assert_eq!(line, 3);
                assert_eq!(name, "C1");
            }
            other => panic!("expected DuplicateName, got {other:?}"),
        }
        // Duplicates across element kinds collide too, and the error chains
        // through std::error::Error::source.
        let err = parse_spice("R1 a 0 1k\nV1 a 0 AC 1\nV1 b 0 AC 2\n").unwrap_err();
        assert!(matches!(
            err,
            ParseError::Circuit { line: 3, source: CircuitError::DuplicateName { .. } }
        ));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn malformed_netlists_never_panic() {
        // A grab-bag of malformed inputs: every one must produce a typed
        // error (or an empty circuit), never a panic.
        for netlist in [
            "",
            "\n\n",
            "* only a comment\n",
            ".end\n",
            ".model\n",
            ".model X\n",
            ".model X NPN(ic=1m\n",
            ".model X NPN ic=1m)\n",
            "R1\n",
            "R1 a\n",
            "Q1 c b\n",
            "M1 d g s\n",
            "?wat a b 1\n",
            "R1 a b 1k extra tokens here\n",
            "V1 a 0 DC\n",
            ".subckt\n",
            ".subckt s\n",
            ".subckt s =\n",
            ".subckt s a r=\n",
            ".ends\n",
            ".ends s\n",
            "X1\n",
            "X1 sub\n",
            "X1 a b sub r=\n",
            ".ac\n",
            ".ac dec\n",
            ".ac dec ten 1 1k\n",
            ".tf\n",
            ".tf V(out) VIN extra\n",
            ".tran\n",
            ".tran 1u\n",
            ".tran 0 0\n",
            ".tran 1u 10u\n.tran 1u 10u\n",
            "V1 a 0 PULSE\n",
            "V1 a 0 PULSE(\n",
            "V1 a 0 PULSE()\n",
            "V1 a 0 PULSE(0 1))\n",
            "V1 a 0 SIN(,,)\n",
            "V1 a 0 PWL(0)\n",
            "V1 a 0 PWL(0 0 0 1)\n",
            ".param\n",
            ".param x\n",
            ".param =1\n",
            "V@\n",
            "R@ a b 1k\n",
            ".\n",
        ] {
            let _ = parse_netlist(netlist);
        }
    }

    #[test]
    fn stray_continuation_is_error() {
        assert!(matches!(parse_spice("+ 2k\n"), Err(ParseError::Syntax { line: 1, .. })));
    }
}
