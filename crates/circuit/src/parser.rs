//! SPICE-like netlist parsing and writing.
//!
//! Supported statements (case-insensitive, `*` comments, `+` continuations,
//! `;` inline comments, optional `.end`):
//!
//! ```text
//! R<name> n+ n- value          resistor
//! C<name> n+ n- value          capacitor
//! L<name> n+ n- value          inductor
//! G<name> n+ n- nc+ nc- gm     VCCS
//! E<name> n+ n- nc+ nc- gain   VCVS
//! F<name> n+ n- vname gain     CCCS (controlled by V source current)
//! H<name> n+ n- vname ohms     CCVS
//! V<name> n+ n- [AC] value     independent voltage source
//! I<name> n+ n- [AC] value     independent current source
//! Q<name> c b e model          BJT, expanded via its small-signal model
//! M<name> d g s b model        MOSFET, expanded likewise
//! .model <name> NPN|PNP(ic=… beta=… va=… ft=… cmu=… rb=…)
//! .model <name> NMOS|PMOS(id=… vov=… lambda=… cgg=… rg=…)
//! ```
//!
//! Transistors are linearized at parse time: this is a small-signal
//! analysis library, so the model card carries the *operating point*
//! (`ic`/`id`) alongside the process parameters, and the device line
//! expands into the hybrid-π / saturation model of
//! [`crate::models`]. Unspecified parameters take textbook defaults.
//!
//! Values accept engineering suffixes `f p n u m k meg g t` and plain
//! scientific notation (`30p`, `2.5MEG`, `1e-9`).

use crate::element::ElementKind;
use crate::models::{BjtSmallSignal, MosSmallSignal};
use crate::netlist::{Circuit, CircuitError};
use std::collections::HashMap;
use std::fmt;

/// Errors from netlist parsing.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number in the input.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The parsed element was rejected by the circuit builder.
    Circuit {
        /// 1-based line number in the input.
        line: usize,
        /// Underlying builder error.
        source: CircuitError,
    },
    /// A device line references a model card that was never defined.
    UnknownModel {
        /// 1-based line number of the device.
        line: usize,
        /// The missing model name.
        model: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Circuit { line, source } => write!(f, "line {line}: {source}"),
            ParseError::UnknownModel { line, model } => {
                write!(f, "line {line}: device references unknown model `{model}`")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Circuit { source, .. } => Some(source),
            ParseError::Syntax { .. } | ParseError::UnknownModel { .. } => None,
        }
    }
}

/// Parses an engineering-notation value like `30p`, `1k`, `2.5MEG`, `1e-9`.
///
/// Returns `None` if the token is not a valid value.
pub fn parse_value(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    if t.is_empty() {
        return None;
    }
    // Try plain float first (covers 1e-9, 3.5, inf rejection below).
    if let Ok(v) = t.parse::<f64>() {
        return v.is_finite().then_some(v);
    }
    // Split off the longest suffix that parses.
    const SUFFIXES: &[(&str, f64)] = &[
        ("meg", 1e6),
        ("t", 1e12),
        ("g", 1e9),
        ("k", 1e3),
        ("m", 1e-3),
        ("u", 1e-6),
        ("n", 1e-9),
        ("p", 1e-12),
        ("f", 1e-15),
    ];
    for &(suffix, mult) in SUFFIXES {
        if let Some(num) = t.strip_suffix(suffix) {
            // SPICE allows trailing unit letters after the scale factor
            // (e.g. "30pF"); we handle the common `meg` vs `m` ambiguity by
            // checking `meg` first and otherwise requiring the remainder to
            // parse as a number.
            if let Ok(v) = num.parse::<f64>() {
                let r = v * mult;
                return r.is_finite().then_some(r);
            }
        }
    }
    // Trailing unit letter after a scale factor: strip alphabetics from the
    // right down to a parsable "number + one-suffix" core, e.g. "30pf".
    let stripped: &str = t.trim_end_matches(|c: char| c.is_ascii_alphabetic());
    if stripped.len() < t.len() && !stripped.is_empty() {
        let rest = &t[stripped.len()..];
        // Re-attach the first letter as a potential scale factor.
        let mut candidate = stripped.to_string();
        candidate.push_str(&rest[..1]);
        if candidate != t {
            return parse_value(&candidate);
        }
        return parse_value(stripped);
    }
    None
}

fn syntax(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax { line, message: message.into() }
}

/// Parses a SPICE-like netlist into a [`Circuit`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for syntax errors or
/// circuit-builder rejections (duplicate names, bad values, …).
pub fn parse_spice(input: &str) -> Result<Circuit, ParseError> {
    let mut circuit = Circuit::new();
    // Join continuation lines, remembering original line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let without_comment = match raw.find(';') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let trimmed = without_comment.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(cont) = trimmed.strip_prefix('+') {
            match logical.last_mut() {
                Some((_, prev)) => {
                    prev.push(' ');
                    prev.push_str(cont.trim());
                }
                None => return Err(syntax(line_no, "continuation with no previous line")),
            }
            continue;
        }
        logical.push((line_no, trimmed.to_string()));
    }

    let mut models: HashMap<String, ModelCard> = HashMap::new();
    // Device lines are expanded after the scan so model cards may appear
    // anywhere in the file.
    let mut devices: Vec<(usize, Vec<String>)> = Vec::new();
    for (line_no, stmt) in logical {
        let tokens: Vec<&str> = stmt.split_whitespace().collect();
        let head = tokens[0];
        if let Some(directive) = head.strip_prefix('.') {
            if directive.eq_ignore_ascii_case("end") {
                break;
            }
            if directive.eq_ignore_ascii_case("model") {
                let (name, card) = parse_model_card(line_no, &stmt)?;
                models.insert(name, card);
            }
            continue; // other directives are ignored
        }
        let kind_letter = head.chars().next().unwrap().to_ascii_uppercase();
        let name = head;
        let need = |n: usize| -> Result<(), ParseError> {
            if tokens.len() < n {
                Err(syntax(line_no, format!("{name}: expected at least {} fields", n - 1)))
            } else {
                Ok(())
            }
        };
        let value = |tok: &str| -> Result<f64, ParseError> {
            parse_value(tok).ok_or_else(|| syntax(line_no, format!("invalid value `{tok}`")))
        };
        let build: Result<(), CircuitError> = match kind_letter {
            'R' => {
                need(4)?;
                circuit.add_resistor(name, tokens[1], tokens[2], value(tokens[3])?)
            }
            'C' => {
                need(4)?;
                circuit.add_capacitor(name, tokens[1], tokens[2], value(tokens[3])?)
            }
            'L' => {
                need(4)?;
                circuit.add_inductor(name, tokens[1], tokens[2], value(tokens[3])?)
            }
            'G' => {
                need(6)?;
                circuit.add_vccs(
                    name,
                    tokens[1],
                    tokens[2],
                    tokens[3],
                    tokens[4],
                    value(tokens[5])?,
                )
            }
            'E' => {
                need(6)?;
                circuit.add_vcvs(
                    name,
                    tokens[1],
                    tokens[2],
                    tokens[3],
                    tokens[4],
                    value(tokens[5])?,
                )
            }
            'F' => {
                need(5)?;
                circuit.add_cccs(name, tokens[1], tokens[2], tokens[3], value(tokens[4])?)
            }
            'H' => {
                need(5)?;
                circuit.add_ccvs(name, tokens[1], tokens[2], tokens[3], value(tokens[4])?)
            }
            'V' | 'I' => {
                need(4)?;
                // Accept "V1 a b 1", "V1 a b AC 1", "V1 a b DC 0 AC 1".
                let mut ac = 0.0;
                let mut rest = &tokens[3..];
                let mut found = false;
                while !rest.is_empty() {
                    if rest[0].eq_ignore_ascii_case("ac") {
                        need_field(line_no, name, rest, 2)?;
                        ac = value(rest[1])?;
                        found = true;
                        rest = &rest[2..];
                    } else if rest[0].eq_ignore_ascii_case("dc") {
                        need_field(line_no, name, rest, 2)?;
                        rest = &rest[2..];
                    } else {
                        ac = value(rest[0])?;
                        found = true;
                        rest = &rest[1..];
                    }
                }
                if !found {
                    ac = 0.0;
                }
                if kind_letter == 'V' {
                    circuit.add_vsource(name, tokens[1], tokens[2], ac)
                } else {
                    circuit.add_isource(name, tokens[1], tokens[2], ac)
                }
            }
            'Q' => {
                need(5)?;
                devices.push((line_no, tokens.iter().map(|t| t.to_string()).collect()));
                Ok(())
            }
            'M' => {
                need(6)?;
                devices.push((line_no, tokens.iter().map(|t| t.to_string()).collect()));
                Ok(())
            }
            other => {
                return Err(syntax(line_no, format!("unknown element type `{other}`")));
            }
        };
        build.map_err(|source| ParseError::Circuit { line: line_no, source })?;
    }

    // Expand transistor devices through their small-signal models.
    for (line, tokens) in devices {
        let name = &tokens[0];
        let kind_letter = name.chars().next().expect("nonempty").to_ascii_uppercase();
        let model_name_idx = if kind_letter == 'Q' { 4 } else { 5 };
        let model_key = tokens[model_name_idx].to_ascii_lowercase();
        let card = models.get(&model_key).ok_or_else(|| ParseError::UnknownModel {
            line,
            model: tokens[model_name_idx].clone(),
        })?;
        let result = match (kind_letter, card) {
            ('Q', ModelCard::Bjt(bjt)) => {
                bjt.expand(&mut circuit, name, &tokens[1], &tokens[2], &tokens[3])
            }
            ('M', ModelCard::Mos(mos)) => {
                mos.expand(&mut circuit, name, &tokens[1], &tokens[2], &tokens[3], &tokens[4])
            }
            ('Q', ModelCard::Mos(_)) => {
                return Err(syntax(line, format!("{name}: Q device needs an NPN/PNP model")));
            }
            ('M', ModelCard::Bjt(_)) => {
                return Err(syntax(line, format!("{name}: M device needs an NMOS/PMOS model")));
            }
            _ => unreachable!("only Q/M reach the device list"),
        };
        result.map_err(|source| ParseError::Circuit { line, source })?;
    }
    Ok(circuit)
}

fn need_field(line: usize, name: &str, rest: &[&str], n: usize) -> Result<(), ParseError> {
    if rest.len() < n {
        Err(syntax(line, format!("{name}: incomplete source specification")))
    } else {
        Ok(())
    }
}

/// A parsed `.model` card.
#[derive(Clone, Debug)]
enum ModelCard {
    Bjt(BjtSmallSignal),
    Mos(MosSmallSignal),
}

/// Parses `.model NAME KIND(key=value …)`.
fn parse_model_card(line: usize, stmt: &str) -> Result<(String, ModelCard), ParseError> {
    // Everything after ".model": "NAME KIND ( key = value ... )".
    let body = stmt[".model".len()..].trim();
    let (name, rest) = body
        .split_once(char::is_whitespace)
        .ok_or_else(|| syntax(line, ".model: expected `.model NAME KIND(params)`"))?;
    let rest = rest.trim();
    let (kind, params_src) = match rest.find('(') {
        Some(pos) => {
            let close =
                rest.rfind(')').ok_or_else(|| syntax(line, ".model: unbalanced parentheses"))?;
            (rest[..pos].trim(), &rest[pos + 1..close])
        }
        None => (rest, ""),
    };
    let mut params: HashMap<String, f64> = HashMap::new();
    // Parameters separated by whitespace and/or commas, `key=value`.
    for tok in params_src.split(|c: char| c.is_whitespace() || c == ',') {
        if tok.is_empty() {
            continue;
        }
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| syntax(line, format!(".model: bad parameter `{tok}`")))?;
        let value =
            parse_value(v).ok_or_else(|| syntax(line, format!(".model: bad value `{v}`")))?;
        params.insert(k.trim().to_ascii_lowercase(), value);
    }
    let get = |key: &str, default: f64| params.get(key).copied().unwrap_or(default);
    let card = match kind.to_ascii_uppercase().as_str() {
        "NPN" => ModelCard::Bjt(
            BjtSmallSignal::from_bias(
                get("ic", 100e-6),
                get("beta", 200.0),
                get("va", 100.0),
                get("ft", 400e6),
                get("cmu", 0.5e-12),
            )
            .with_base_resistance(get("rb", 200.0)),
        ),
        "PNP" => ModelCard::Bjt(
            BjtSmallSignal::from_bias(
                get("ic", 100e-6),
                get("beta", 50.0),
                get("va", 50.0),
                get("ft", 5e6),
                get("cmu", 1e-12),
            )
            .with_base_resistance(get("rb", 300.0)),
        ),
        "NMOS" | "PMOS" => ModelCard::Mos(
            MosSmallSignal::from_operating_point(
                get("id", 100e-6),
                get("vov", 0.2),
                get("lambda", 0.05),
                get("cgg", 20e-15),
            )
            .with_gate_resistance(get("rg", 0.0)),
        ),
        other => {
            return Err(syntax(line, format!(".model: unknown device kind `{other}`")));
        }
    };
    Ok((name.to_ascii_lowercase(), card))
}

/// Writes a circuit back to SPICE-like text (inverse of [`parse_spice`] for
/// the supported element set).
pub fn to_spice(circuit: &Circuit) -> String {
    let mut out = String::from("* netlist written by refgen\n");
    for el in circuit.elements() {
        let p = circuit.node_name(el.nodes.0);
        let m = circuit.node_name(el.nodes.1);
        let line = match &el.kind {
            ElementKind::Resistor { ohms } => format!("{} {} {} {:e}", el.name, p, m, ohms),
            ElementKind::Conductance { siemens } => {
                // Emitted as a degenerate VCCS sensing its own terminals.
                format!("{} {} {} {} {} {:e}", el.name, p, m, p, m, siemens)
            }
            ElementKind::Capacitor { farads } => {
                format!("{} {} {} {:e}", el.name, p, m, farads)
            }
            ElementKind::Inductor { henries } => {
                format!("{} {} {} {:e}", el.name, p, m, henries)
            }
            ElementKind::Vccs { gm, control } => format!(
                "{} {} {} {} {} {:e}",
                el.name,
                p,
                m,
                circuit.node_name(control.0),
                circuit.node_name(control.1),
                gm
            ),
            ElementKind::Vcvs { gain, control } => format!(
                "{} {} {} {} {} {:e}",
                el.name,
                p,
                m,
                circuit.node_name(control.0),
                circuit.node_name(control.1),
                gain
            ),
            ElementKind::Cccs { gain, control_branch } => {
                format!("{} {} {} {} {:e}", el.name, p, m, control_branch, gain)
            }
            ElementKind::Ccvs { ohms, control_branch } => {
                format!("{} {} {} {} {:e}", el.name, p, m, control_branch, ohms)
            }
            ElementKind::VSource { ac } => format!("{} {} {} AC {:e}", el.name, p, m, ac),
            ElementKind::ISource { ac } => format!("{} {} {} AC {:e}", el.name, p, m, ac),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_suffixes() {
        assert_eq!(parse_value("1k"), Some(1e3));
        assert_eq!(parse_value("30p"), Some(30e-12));
        assert_eq!(parse_value("2.5MEG"), Some(2.5e6));
        assert_eq!(parse_value("1e-9"), Some(1e-9));
        let v = parse_value("100n").unwrap();
        assert!((v - 100e-9).abs() < 1e-22);
        assert_eq!(parse_value("3u"), Some(3e-6));
        assert_eq!(parse_value("2m"), Some(2e-3));
        assert_eq!(parse_value("1.5g"), Some(1.5e9));
        assert_eq!(parse_value("4t"), Some(4e12));
        let v = parse_value("5f").unwrap();
        assert!((v - 5e-15).abs() < 1e-28);
        let v = parse_value("30pF").unwrap();
        assert!((v - 30e-12).abs() < 1e-25);
        assert_eq!(parse_value("junk"), None);
        assert_eq!(parse_value(""), None);
    }

    #[test]
    fn parse_basic_rc() {
        let c =
            parse_spice("* low-pass\nVIN in 0 AC 1\nR1 in out 1k\nC1 out 0 1n\n.end\n").unwrap();
        assert_eq!(c.elements().len(), 3);
        assert_eq!(c.capacitor_values(), vec![1e-9]);
        c.validate().unwrap();
    }

    #[test]
    fn parse_controlled_sources() {
        let c = parse_spice(
            "V1 a 0 AC 1\n\
             R1 a b 1k\n\
             GM1 out 0 b 0 2m\n\
             RL out 0 10k\n\
             E1 x 0 out 0 -3\n\
             RX x 0 1k\n\
             F1 y 0 V1 2\n\
             RY y 0 1k\n\
             H1 z 0 V1 50\n\
             RZ z 0 1k\n",
        )
        .unwrap();
        assert_eq!(c.elements().len(), 10);
        match &c.element("GM1").unwrap().kind {
            ElementKind::Vccs { gm, .. } => assert_eq!(*gm, 2e-3),
            other => panic!("{other:?}"),
        }
        match &c.element("H1").unwrap().kind {
            ElementKind::Ccvs { ohms, control_branch } => {
                assert_eq!(*ohms, 50.0);
                assert_eq!(control_branch, "V1");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn continuation_and_comments() {
        let c = parse_spice("R1 a b\n+ 2k ; the resistor\n* a comment line\nC1 b 0 1p\n").unwrap();
        match &c.element("R1").unwrap().kind {
            ElementKind::Resistor { ohms } => assert_eq!(*ohms, 2e3),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.elements().len(), 2);
    }

    #[test]
    fn source_variants() {
        let c =
            parse_spice("V1 a 0 1\nV2 b 0 AC 2\nV3 c 0 DC 5 AC 3\nR1 a b 1\nR2 b c 1\nR3 c 0 1\n")
                .unwrap();
        for (name, amp) in [("V1", 1.0), ("V2", 2.0), ("V3", 3.0)] {
            match &c.element(name).unwrap().kind {
                ElementKind::VSource { ac } => assert_eq!(*ac, amp, "{name}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_spice("R1 a b 1k\nX1 c b e sub\n").unwrap_err();
        match err {
            ParseError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
        let err = parse_spice("R1 a b notanumber\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 1, .. }));
        let err = parse_spice("R1 a b 1k\nR1 c d 2k\n").unwrap_err();
        assert!(matches!(err, ParseError::Circuit { line: 2, .. }));
    }

    #[test]
    fn model_card_bjt_expansion() {
        let c = parse_spice(
            "* common-emitter stage\n\
             .model qfast NPN(ic=1m beta=150 va=80 ft=600meg cmu=0.3p rb=120)\n\
             VIN in 0 AC 1\n\
             RB in b 10k\n\
             Q1 c b 0 QFAST\n\
             RC c 0 4.7k\n",
        )
        .unwrap();
        c.validate().unwrap();
        // Hybrid-π expansion present.
        assert!(c.element("gm_Q1").is_some());
        assert!(c.element("cpi_Q1").is_some());
        assert!(c.element("cmu_Q1").is_some());
        assert!(c.element("rb_Q1").is_some());
        assert!(c.find_node("Q1_b").is_some());
        // gm = ic/VT with ic = 1 mA.
        match &c.element("gm_Q1").unwrap().kind {
            ElementKind::Vccs { gm, .. } => {
                assert!((gm - 1e-3 / crate::models::VT).abs() / gm < 1e-12)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn model_card_mos_expansion_and_defaults() {
        let c = parse_spice(
            "M1 d g s 0 NCH\n\
             .model NCH NMOS(id=200u vov=0.25)\n\
             VIN g 0 AC 1\n\
             RD d 0 10k\n\
             RS s 0 1k\n",
        )
        .unwrap();
        // Model card after the device line works (two-pass).
        assert!(c.element("gm_M1").is_some());
        match &c.element("gm_M1").unwrap().kind {
            ElementKind::Vccs { gm, .. } => {
                assert!((gm - 2.0 * 200e-6 / 0.25).abs() / gm < 1e-12)
            }
            other => panic!("{other:?}"),
        }
        // Defaults applied: lambda default 0.05 → gds = 10 µS.
        match &c.element("gds_M1").unwrap().kind {
            ElementKind::Conductance { siemens } => {
                assert!((siemens - 0.05 * 200e-6).abs() < 1e-12)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn model_errors() {
        let err = parse_spice("Q1 c b e NOSUCH\nR1 c 0 1k\n").unwrap_err();
        assert!(matches!(err, ParseError::UnknownModel { line: 1, .. }));
        let err = parse_spice(".model X JFET(beta=1)\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { .. }));
        let err = parse_spice(".model QQ NPN(ic=1m)\nM1 d g s 0 QQ\nR1 d 0 1k\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }));
        let err = parse_spice(".model NN NPN(ic=oops)\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { .. }));
    }

    #[test]
    fn end_stops_parsing() {
        let c = parse_spice("R1 a 0 1k\nR2 a 0 1k\n.end\nR3 zz 0 broken\n").unwrap();
        assert_eq!(c.elements().len(), 2);
    }

    #[test]
    fn round_trip_through_writer() {
        let src = "VIN in 0 AC 1\nR1 in out 1k\nC1 out 0 1n\nGM out 0 in 0 5m\n";
        let c1 = parse_spice(src).unwrap();
        let written = to_spice(&c1);
        let c2 = parse_spice(&written).unwrap();
        assert_eq!(c1.elements().len(), c2.elements().len());
        for (a, b) in c1.elements().iter().zip(c2.elements()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn missing_node_is_typed_syntax_error() {
        // Two-terminal element with a node token missing.
        let err = parse_spice("R1 in 1k\n").unwrap_err();
        match err {
            ParseError::Syntax { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("expected at least 3 fields"), "{message}");
            }
            other => panic!("expected Syntax, got {other:?}"),
        }
        // Controlled source missing one control node.
        let err = parse_spice("R1 a 0 1k\nG1 out 0 b 2m\n").unwrap_err();
        match err {
            ParseError::Syntax { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("expected at least 5 fields"), "{message}");
            }
            other => panic!("expected Syntax, got {other:?}"),
        }
        // Independent source with a dangling AC keyword and no amplitude.
        let err = parse_spice("V1 a 0 AC\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 1, .. }), "expected Syntax, got {err:?}");
    }

    #[test]
    fn bad_value_suffix_is_typed_syntax_error() {
        // SPICE convention: trailing unit letters after a number or scale
        // factor are ignored, so these are values, not errors.
        assert_eq!(parse_value("1kOhm"), Some(1e3));
        assert_eq!(parse_value("30q"), Some(30.0)); // `q` is a unit, not a scale
        for netlist in [
            "R1 a b 1.2.3n\n",  // malformed mantissa under a real suffix
            "C1 out 0 .\n",     // bare decimal point
            "R1 a b k\n",       // suffix with no mantissa
            "L1 a b --5n\n",    // doubled sign
            "V1 a 0 AC oops\n", // source amplitude
        ] {
            let err = parse_spice(netlist).unwrap_err();
            match err {
                ParseError::Syntax { line: 1, message } => {
                    assert!(
                        message.contains("invalid value") || message.contains("incomplete"),
                        "{netlist:?}: {message}"
                    );
                }
                other => panic!("{netlist:?}: expected Syntax, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_element_is_typed_circuit_error() {
        let err = parse_spice("C1 a 0 1n\nR1 a 0 1k\nC1 b 0 2n\n").unwrap_err();
        match err {
            ParseError::Circuit { line, source: CircuitError::DuplicateName { name } } => {
                assert_eq!(line, 3);
                assert_eq!(name, "C1");
            }
            other => panic!("expected DuplicateName, got {other:?}"),
        }
        // Duplicates across element kinds collide too, and the error chains
        // through std::error::Error::source.
        let err = parse_spice("R1 a 0 1k\nV1 a 0 AC 1\nV1 b 0 AC 2\n").unwrap_err();
        assert!(matches!(
            err,
            ParseError::Circuit { line: 3, source: CircuitError::DuplicateName { .. } }
        ));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn malformed_netlists_never_panic() {
        // A grab-bag of malformed inputs: every one must produce a typed
        // error (or an empty circuit), never a panic.
        for netlist in [
            "",
            "\n\n",
            "* only a comment\n",
            ".end\n",
            ".model\n",
            ".model X\n",
            ".model X NPN(ic=1m\n",
            ".model X NPN ic=1m)\n",
            "R1\n",
            "R1 a\n",
            "Q1 c b\n",
            "M1 d g s\n",
            "?wat a b 1\n",
            "R1 a b 1k extra tokens here\n",
            "V1 a 0 DC\n",
        ] {
            let _ = parse_spice(netlist);
        }
    }

    #[test]
    fn stray_continuation_is_error() {
        assert!(matches!(parse_spice("+ 2k\n"), Err(ParseError::Syntax { line: 1, .. })));
    }
}
