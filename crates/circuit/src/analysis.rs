//! Typed analysis cards parsed from netlist directives.
//!
//! The SPICE front end ([`crate::parser`]) surfaces `.AC`, `.TF` and
//! `.TRAN` directives as an [`AnalysisSpec`] so a whole analysis — circuit,
//! transfer-function specification, frequency grid or time axis — can be
//! driven from one netlist file. The `refgen_mna`/`refgen_core` layers
//! consume these cards (`TransferSpec: From<&TfCard>`,
//! `AcAnalysis::sweep_card`, `Session::analysis`, `Session::transient`);
//! this module only carries the data.

/// Spacing of an `.AC` frequency sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepGrid {
    /// `dec` — logarithmic, [`AcCard::points`] per decade.
    Decade,
    /// `oct` — logarithmic, [`AcCard::points`] per octave.
    Octave,
    /// `lin` — [`AcCard::points`] total, evenly spaced.
    Linear,
}

/// An `.AC dec|oct|lin N fstart fstop` card.
#[derive(Clone, Debug, PartialEq)]
pub struct AcCard {
    /// Grid spacing.
    pub grid: SweepGrid,
    /// Points per decade/octave (logarithmic grids) or in total (linear).
    pub points: usize,
    /// First frequency in hertz (> 0 for logarithmic grids).
    pub fstart_hz: f64,
    /// Last frequency in hertz (≥ `fstart_hz`).
    pub fstop_hz: f64,
}

impl AcCard {
    /// Materializes the card's frequency grid in hertz, ascending.
    ///
    /// Logarithmic grids step `fstart·10^(k/N)` (resp. `2^(k/N)`) and stop
    /// at the last point not beyond `fstop` (within one part in 10⁹, so a
    /// sweep spanning whole decades includes its endpoint). A linear grid
    /// places all `points` values inclusively between the endpoints.
    ///
    /// The grid is **total and finite for any card** — the parser rejects
    /// degenerate `.AC` lines up front ([`crate::ParseError`]), but a card
    /// built directly from fields must not hang or emit NaN/duplicate
    /// frequencies either:
    ///
    /// * non-finite endpoints produce an empty grid;
    /// * a collapsed (`fstop == fstart`) or inverted (`fstop < fstart`)
    ///   span produces the single start frequency, as does `lin` with one
    ///   point;
    /// * a logarithmic sweep from a non-positive start cannot step (the
    ///   grid `fstart·baseᵏ` never moves from 0, and never reaches a
    ///   positive `fstop` from a negative start) and produces the single
    ///   start frequency;
    /// * a sub-decade/sub-octave span keeps every grid point inside it —
    ///   possibly just `fstart`, never a zero step;
    /// * exact consecutive duplicates (a linear span so small the step
    ///   underflows) are collapsed.
    pub fn frequencies(&self) -> Vec<f64> {
        let n = self.points.max(1);
        if !self.fstart_hz.is_finite() || !self.fstop_hz.is_finite() {
            return Vec::new();
        }
        if self.fstop_hz <= self.fstart_hz {
            return vec![self.fstart_hz];
        }
        match self.grid {
            SweepGrid::Linear => {
                if n == 1 {
                    return vec![self.fstart_hz];
                }
                let step = (self.fstop_hz - self.fstart_hz) / (n - 1) as f64;
                let mut freqs: Vec<f64> =
                    (0..n).map(|k| self.fstart_hz + step * k as f64).collect();
                freqs.dedup();
                freqs
            }
            SweepGrid::Decade => self.log_grid(10.0),
            SweepGrid::Octave => self.log_grid(2.0),
        }
    }

    fn log_grid(&self, base: f64) -> Vec<f64> {
        // `frequencies` guarantees finite endpoints with fstart < fstop; a
        // non-positive start still cannot step multiplicatively.
        if self.fstart_hz <= 0.0 {
            return vec![self.fstart_hz];
        }
        let n = self.points.max(1) as f64;
        let limit = self.fstop_hz * (1.0 + 1e-9);
        let mut freqs = Vec::new();
        let mut k = 0u32;
        loop {
            let f = self.fstart_hz * base.powf(f64::from(k) / n);
            if f > limit {
                break;
            }
            freqs.push(f);
            k += 1;
        }
        freqs
    }
}

/// Output observable of a `.TF` card (voltage outputs only — this is a
/// small-signal transfer-function library).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TfOutput {
    /// `V(node)` — node voltage w.r.t. ground.
    Node(String),
    /// `V(p,m)` — differential voltage `v(p) − v(m)`.
    Differential(String, String),
}

/// A `.TF V(out[,ref]) <source>` card: which independent source excites the
/// circuit and what is observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TfCard {
    /// Observed output.
    pub output: TfOutput,
    /// Input: an independent source name (`VIN`) or a node to which exactly
    /// one source is attached. Element-name matching is case-sensitive.
    pub source: String,
}

/// A `.TRAN tstep tstop [tstart]` card: the time axis of a transient
/// analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct TranCard {
    /// Time step Δt, seconds (> 0).
    pub tstep: f64,
    /// Final time, seconds (> `tstart`).
    pub tstop: f64,
    /// First time, seconds (defaults to 0).
    pub tstart: f64,
}

impl TranCard {
    /// Number of uniform `tstep` integration steps covering
    /// `tstart..tstop`. The step size is never shortened — a fixed Δt is
    /// what lets the transient engine compile one factorization program for
    /// the whole run — so a span that is not an integer multiple of `tstep`
    /// rounds the step count up (within a one-part-in-10⁹ tolerance so an
    /// exact multiple is not over-counted by floating-point noise).
    pub fn steps(&self) -> usize {
        let raw = (self.tstop - self.tstart) / self.tstep;
        (raw * (1.0 - 1e-9)).ceil().max(1.0) as usize
    }

    /// Materializes the uniform time axis `tstart + k·tstep` for
    /// `k = 0..=steps()`. The last entry is `tstop` when the span divides
    /// evenly, otherwise it overshoots `tstop` by less than one step.
    pub fn times(&self) -> Vec<f64> {
        (0..=self.steps()).map(|k| self.tstart + self.tstep * k as f64).collect()
    }
}

/// One parsed analysis directive.
#[derive(Clone, Debug, PartialEq)]
pub enum AnalysisCard {
    /// An `.AC` sweep request.
    Ac(AcCard),
    /// A `.TF` transfer-function request.
    Tf(TfCard),
    /// A `.TRAN` time-stepping request.
    Tran(TranCard),
}

impl AnalysisCard {
    /// A short label for the directive kind (`".AC"`, `".TF"`, `".TRAN"`)
    /// — used by duplicate-card diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            AnalysisCard::Ac(_) => ".AC",
            AnalysisCard::Tf(_) => ".TF",
            AnalysisCard::Tran(_) => ".TRAN",
        }
    }
}

/// Every analysis card of a netlist, in file order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AnalysisSpec {
    /// The cards, in the order they appeared.
    pub cards: Vec<AnalysisCard>,
}

impl AnalysisSpec {
    /// The first `.AC` card, if any.
    pub fn ac(&self) -> Option<&AcCard> {
        self.cards.iter().find_map(|c| match c {
            AnalysisCard::Ac(ac) => Some(ac),
            _ => None,
        })
    }

    /// The first `.TF` card, if any.
    pub fn tf(&self) -> Option<&TfCard> {
        self.cards.iter().find_map(|c| match c {
            AnalysisCard::Tf(tf) => Some(tf),
            _ => None,
        })
    }

    /// The first `.TRAN` card, if any.
    pub fn tran(&self) -> Option<&TranCard> {
        self.cards.iter().find_map(|c| match c {
            AnalysisCard::Tran(tr) => Some(tr),
            _ => None,
        })
    }

    /// `true` when the netlist carried no analysis directives.
    pub fn is_empty(&self) -> bool {
        self.cards.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decade_grid_includes_endpoints() {
        let card = AcCard { grid: SweepGrid::Decade, points: 10, fstart_hz: 1.0, fstop_hz: 1000.0 };
        let f = card.frequencies();
        assert_eq!(f.len(), 31); // 3 decades × 10 + endpoint
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[30] - 1000.0).abs() / 1000.0 < 1e-9);
        assert!(f.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn octave_grid_steps_by_two() {
        let card = AcCard { grid: SweepGrid::Octave, points: 1, fstart_hz: 100.0, fstop_hz: 800.0 };
        let f = card.frequencies();
        assert_eq!(f.len(), 4);
        assert!((f[3] - 800.0).abs() / 800.0 < 1e-9);
    }

    #[test]
    fn linear_grid_is_inclusive() {
        let card = AcCard { grid: SweepGrid::Linear, points: 5, fstart_hz: 0.0, fstop_hz: 100.0 };
        assert_eq!(card.frequencies(), vec![0.0, 25.0, 50.0, 75.0, 100.0]);
        let one = AcCard { grid: SweepGrid::Linear, points: 1, fstart_hz: 42.0, fstop_hz: 99.0 };
        assert_eq!(one.frequencies(), vec![42.0]);
    }

    #[test]
    fn degenerate_grids_are_total_and_sane() {
        let check = |card: &AcCard| {
            let f = card.frequencies();
            assert!(f.iter().all(|x| x.is_finite()), "{card:?}: {f:?}");
            assert!(f.windows(2).all(|w| w[1] > w[0]), "{card:?} not strictly ascending: {f:?}");
            f
        };
        // Collapsed span: one point, every grid kind.
        for grid in [SweepGrid::Decade, SweepGrid::Octave, SweepGrid::Linear] {
            let card = AcCard { grid, points: 10, fstart_hz: 1e3, fstop_hz: 1e3 };
            assert_eq!(check(&card), vec![1e3]);
        }
        // lin with a single requested point.
        let card = AcCard { grid: SweepGrid::Linear, points: 1, fstart_hz: 10.0, fstop_hz: 20.0 };
        assert_eq!(check(&card), vec![10.0]);
        // Sub-decade and sub-octave spans: points stay inside the span.
        let card =
            AcCard { grid: SweepGrid::Decade, points: 10, fstart_hz: 100.0, fstop_hz: 150.0 };
        let f = check(&card);
        assert!(!f.is_empty() && f.iter().all(|&x| (100.0..=150.0 * (1.0 + 1e-9)).contains(&x)));
        let card = AcCard { grid: SweepGrid::Octave, points: 3, fstart_hz: 100.0, fstop_hz: 110.0 };
        let f = check(&card);
        assert!(!f.is_empty() && f.iter().all(|&x| (100.0..=110.0 * (1.0 + 1e-9)).contains(&x)));
        // A span smaller than one grid step still yields its start.
        let card = AcCard { grid: SweepGrid::Decade, points: 1, fstart_hz: 100.0, fstop_hz: 101.0 };
        assert_eq!(check(&card), vec![100.0]);
        // Direct-constructed cards the parser would reject must terminate:
        // a zero/negative log start cannot step multiplicatively (this
        // looped forever before), an inverted span collapses.
        let card = AcCard { grid: SweepGrid::Decade, points: 10, fstart_hz: 0.0, fstop_hz: 1e6 };
        assert_eq!(check(&card), vec![0.0]);
        let card = AcCard { grid: SweepGrid::Octave, points: 4, fstart_hz: -5.0, fstop_hz: 1e3 };
        assert_eq!(check(&card), vec![-5.0]);
        let card = AcCard { grid: SweepGrid::Linear, points: 7, fstart_hz: 2e3, fstop_hz: 1e3 };
        assert_eq!(check(&card), vec![2e3]);
        // Non-finite endpoints: no frequencies at all, never NaN.
        for (a, b) in [(f64::NAN, 1e3), (1.0, f64::INFINITY), (f64::NEG_INFINITY, f64::NAN)] {
            let card = AcCard { grid: SweepGrid::Linear, points: 5, fstart_hz: a, fstop_hz: b };
            assert!(card.frequencies().is_empty(), "{card:?}");
            let card = AcCard { grid: SweepGrid::Decade, points: 5, fstart_hz: a, fstop_hz: b };
            assert!(card.frequencies().is_empty(), "{card:?}");
        }
        // A linear span so tight the step underflows collapses duplicates.
        let f0 = 1.0;
        let f1 = f0 + f64::EPSILON;
        let card = AcCard { grid: SweepGrid::Linear, points: 1000, fstart_hz: f0, fstop_hz: f1 };
        check(&card);
    }

    #[test]
    fn spec_accessors() {
        let ac = AcCard { grid: SweepGrid::Decade, points: 5, fstart_hz: 1.0, fstop_hz: 10.0 };
        let tf = TfCard { output: TfOutput::Node("out".into()), source: "VIN".into() };
        let tran = TranCard { tstep: 1e-6, tstop: 1e-3, tstart: 0.0 };
        let spec = AnalysisSpec {
            cards: vec![
                AnalysisCard::Ac(ac.clone()),
                AnalysisCard::Tf(tf.clone()),
                AnalysisCard::Tran(tran.clone()),
            ],
        };
        assert_eq!(spec.ac(), Some(&ac));
        assert_eq!(spec.tf(), Some(&tf));
        assert_eq!(spec.tran(), Some(&tran));
        assert!(!spec.is_empty());
        assert!(AnalysisSpec::default().is_empty());
        assert!(AnalysisSpec::default().ac().is_none());
        assert!(AnalysisSpec::default().tran().is_none());
    }

    #[test]
    fn tran_card_time_axis() {
        let card = TranCard { tstep: 1e-6, tstop: 4e-6, tstart: 0.0 };
        assert_eq!(card.steps(), 4);
        assert_eq!(card.times(), vec![0.0, 1e-6, 2e-6, 3e-6, 4e-6]);
        assert_eq!(AnalysisCard::Tran(card.clone()).kind_name(), ".TRAN");
        // Non-integer span: a uniform axis covers tstop by rounding up.
        let ragged = TranCard { tstep: 1e-6, tstop: 2.5e-6, tstart: 0.0 };
        assert_eq!(ragged.steps(), 3);
        assert_eq!(*ragged.times().last().unwrap(), 3e-6);
        // Offset start.
        let off = TranCard { tstep: 0.5, tstop: 2.0, tstart: 1.0 };
        assert_eq!(off.times(), vec![1.0, 1.5, 2.0]);
    }
}
