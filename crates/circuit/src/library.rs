//! Benchmark circuit generators.
//!
//! Two of these reproduce the paper's examples:
//!
//! * [`positive_feedback_ota`] — the cross-coupled OTA of **Fig. 1**, built
//!   so its voltage-gain denominator is 9th order (the paper's "estimate on
//!   the upper bound of the polynomial order for this circuit is 9").
//! * [`ua741`] — a transistor-level µA741-class operational amplifier
//!   (19 BJTs, 30 pF Miller compensation), the paper's large example whose
//!   denominator coefficients span hundreds of decades (Tables 2–3).
//!
//! The paper's exact device data is not published; parameters here come from
//! textbook operating points (see `DESIGN.md` for the substitution
//! rationale). The rest are scalability workloads: RC ladders of arbitrary
//! order, active filters, and randomized RC meshes.
//!
//! # Conventions
//!
//! Every generator drives the circuit with an independent source named
//! `VIN` (or `IIN`), places the input at node `in` and the observable output
//! at node `out`, so a single transfer-function specification
//! (`v(out)/v(in)`) works across the library.

use crate::models::{BjtSmallSignal, MosSmallSignal};
use crate::netlist::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An `n`-section RC ladder low-pass: `in —R— l1 —R— … —R— out`, one
/// capacitor to ground per section. The voltage-gain denominator has order
/// exactly `n`, which makes the ladder the calibration workload for the
/// interpolation engine (its exact coefficients are independently computable
/// by an ABCD recurrence).
///
/// # Panics
///
/// Panics if `n == 0` or values are not positive.
pub fn rc_ladder(n: usize, r_ohms: f64, c_farads: f64) -> Circuit {
    assert!(n > 0, "ladder needs at least one section");
    assert!(r_ohms > 0.0 && c_farads > 0.0);
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).expect("fresh circuit");
    let mut prev = "in".to_string();
    for k in 1..=n {
        let node = if k == n { "out".to_string() } else { format!("l{k}") };
        c.add_resistor(&format!("R{k}"), &prev, &node, r_ohms).expect("unique");
        c.add_capacitor(&format!("C{k}"), &node, "0", c_farads).expect("unique");
        prev = node;
    }
    c
}

/// An RC ladder whose section values spread geometrically (`R_k = R·ρ^k`,
/// `C_k = C·γ^k`) — used to stress the adaptive algorithm with
/// monotonically drifting coefficient ratios.
///
/// # Panics
///
/// Panics if `n == 0` or any value is not positive.
pub fn graded_rc_ladder(n: usize, r0: f64, c0: f64, r_ratio: f64, c_ratio: f64) -> Circuit {
    assert!(n > 0 && r0 > 0.0 && c0 > 0.0 && r_ratio > 0.0 && c_ratio > 0.0);
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).expect("fresh circuit");
    let mut prev = "in".to_string();
    let mut r = r0;
    let mut cap = c0;
    for k in 1..=n {
        let node = if k == n { "out".to_string() } else { format!("l{k}") };
        c.add_resistor(&format!("R{k}"), &prev, &node, r).expect("unique");
        c.add_capacitor(&format!("C{k}"), &node, "0", cap).expect("unique");
        prev = node;
        r *= r_ratio;
        cap *= c_ratio;
    }
    c
}

/// The positive-feedback OTA of the paper's **Fig. 1**, expanded to its
/// small-signal equivalent.
///
/// Topology: differential pair (M1/M2, gate resistances create internal
/// gate nodes), cascodes (M1C/M2C), diode loads (M3/M4) with a
/// cross-coupled positive-feedback pair (M5/M6, `gm5 < gm3` keeping the net
/// load conductance positive), a common-source second stage (M7) with
/// current-source load (M9) and Miller capacitor, and a source-follower
/// output (M8) driving the load.
///
/// The inverting input is AC-grounded, so `v(out)/v(in)` is the
/// differential voltage gain of the paper's Table 1. The denominator is
/// 9th order: states at `M1_g`, `M2_g`, `tail`, `y1`, `y2`, `x1`, `x2`,
/// `o1`, `out`.
pub fn positive_feedback_ota() -> Circuit {
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).expect("fresh circuit");

    // Input differential pair: 10 µA per side, 200 mV overdrive.
    let pair =
        MosSmallSignal::from_operating_point(10e-6, 0.2, 0.05, 30e-15).with_gate_resistance(1e3);
    pair.expand(&mut c, "M1", "y1", "in", "tail", "0").expect("expand M1");
    pair.expand(&mut c, "M2", "y2", "0", "tail", "0").expect("expand M2");

    // Tail current source: output conductance and junction capacitance.
    c.add_conductance("gtail", "tail", "0", 1e-6).expect("unique");
    c.add_capacitor("ctail", "tail", "0", 50e-15).expect("unique");

    // Cascodes (gates at AC ground).
    let casc = MosSmallSignal::from_operating_point(10e-6, 0.2, 0.05, 25e-15);
    casc.expand(&mut c, "M1C", "x1", "0", "y1", "0").expect("expand M1C");
    casc.expand(&mut c, "M2C", "x2", "0", "y2", "0").expect("expand M2C");

    // Diode-connected loads.
    let load = MosSmallSignal::from_operating_point(10e-6, 0.25, 0.04, 20e-15);
    load.expand(&mut c, "M3", "x1", "x1", "0", "0").expect("expand M3");
    load.expand(&mut c, "M4", "x2", "x2", "0", "0").expect("expand M4");

    // Cross-coupled positive-feedback pair (the "positive feedback" of the
    // paper's OTA): partial cancellation of the diode loads.
    let cross = MosSmallSignal::from_operating_point(8e-6, 0.25, 0.04, 18e-15);
    cross.expand(&mut c, "M5", "x1", "x2", "0", "0").expect("expand M5");
    cross.expand(&mut c, "M6", "x2", "x1", "0", "0").expect("expand M6");

    // Second stage: common source with current-source load.
    let cs = MosSmallSignal::from_operating_point(100e-6, 0.25, 0.08, 100e-15);
    cs.expand(&mut c, "M7", "o1", "x2", "0", "0").expect("expand M7");
    let csload = MosSmallSignal::from_operating_point(100e-6, 0.3, 0.08, 80e-15);
    csload.expand(&mut c, "M9", "o1", "0", "0", "0").expect("expand M9");
    c.add_capacitor("CC", "x2", "o1", 1e-12).expect("unique");

    // Source-follower output buffer into the load.
    let buf = MosSmallSignal::from_operating_point(200e-6, 0.25, 0.06, 120e-15);
    buf.expand(&mut c, "M8", "0", "o1", "out", "0").expect("expand M8");
    c.add_conductance("glbias", "out", "0", 8e-4).expect("unique");
    c.add_capacitor("CL", "out", "0", 10e-12).expect("unique");

    c
}

/// BJT process corners used by [`ua741`]: 1960s bipolar — fast vertical
/// NPNs, slow lateral PNPs (the PNP `fT` of a few MHz is what sets the 741's
/// phase margin story).
struct BjtProcess;

impl BjtProcess {
    fn npn(ic: f64) -> BjtSmallSignal {
        BjtSmallSignal::from_bias(ic, 200.0, 100.0, 400e6, 0.5e-12).with_base_resistance(200.0)
    }
    fn pnp(ic: f64) -> BjtSmallSignal {
        BjtSmallSignal::from_bias(ic, 50.0, 50.0, 5e6, 1.0e-12).with_base_resistance(300.0)
    }
}

/// A transistor-level µA741-class operational amplifier, linearized at its
/// textbook operating point, in the unity-feedback-free open-loop
/// configuration the paper analyzes (voltage gain `v(out)/v(in)`, inverting
/// input AC-grounded).
///
/// Device inventory (19 BJTs — protection devices Q15/Q21–Q24, off at the
/// quiescent point, are omitted):
///
/// * input stage: Q1/Q2 (NPN followers), Q3/Q4 (lateral PNP common base),
///   Q5/Q6/Q7 (mirror load with 1 kΩ degeneration, R3 = 50 kΩ);
/// * bias: Q8/Q9 (PNP mirror), Q10 (Widlar, R4 = 5 kΩ), Q11/Q12 (diodes),
///   R5 = 39 kΩ;
/// * gain stage: Q16 (EF, R9 = 50 kΩ), Q17 (CE, R10 = 100 Ω) with the
///   famous 30 pF Miller capacitor;
/// * output: Q13 (PNP current-source load), VBE multiplier Q18/Q19
///   (R11 = 4.5 kΩ, R12 = 7.5 kΩ), class-AB pair Q14/Q20 with 27 Ω / 22 Ω
///   emitter resistors, 2 kΩ‖50 pF load.
///
/// Every transistor contributes `cπ + cµ` behind a base resistance, so the
/// denominator order lands in the forties — the same size class as the
/// paper's 48th-order µA741 denominator (Tables 2–3).
pub fn ua741() -> Circuit {
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).expect("fresh circuit");

    // --- Input stage ------------------------------------------------------
    // Q1/Q2 emitter followers into the PNP common-base pair Q3/Q4.
    BjtProcess::npn(9.5e-6).expand(&mut c, "Q1", "c18", "in", "e1").expect("Q1");
    BjtProcess::npn(9.5e-6).expand(&mut c, "Q2", "c18", "0", "e2").expect("Q2");
    BjtProcess::pnp(9.5e-6).expand(&mut c, "Q3", "x1", "bq3", "e1").expect("Q3");
    BjtProcess::pnp(9.5e-6).expand(&mut c, "Q4", "x2", "bq3", "e2").expect("Q4");
    // Mirror load Q5/Q6 with emitter degeneration, helper Q7.
    BjtProcess::npn(9.5e-6).expand(&mut c, "Q5", "x1", "bq56", "e5").expect("Q5");
    BjtProcess::npn(9.5e-6).expand(&mut c, "Q6", "x2", "bq56", "e6").expect("Q6");
    BjtProcess::npn(10e-6).expand(&mut c, "Q7", "0", "x1", "bq56").expect("Q7");
    c.add_resistor("R1", "e5", "0", 1e3).expect("R1");
    c.add_resistor("R2", "e6", "0", 1e3).expect("R2");
    c.add_resistor("R3", "bq56", "0", 50e3).expect("R3");

    // --- Bias network -----------------------------------------------------
    BjtProcess::pnp(19e-6).expand(&mut c, "Q8", "c18", "c18", "0").expect("Q8");
    BjtProcess::pnp(19e-6).expand(&mut c, "Q9", "bq3", "c18", "0").expect("Q9");
    BjtProcess::npn(19e-6).expand(&mut c, "Q10", "bq3", "b1011", "e10").expect("Q10");
    BjtProcess::npn(730e-6).expand(&mut c, "Q11", "b1011", "b1011", "0").expect("Q11");
    BjtProcess::pnp(730e-6).expand(&mut c, "Q12", "b1213", "b1213", "0").expect("Q12");
    c.add_resistor("R4", "e10", "0", 5e3).expect("R4");
    c.add_resistor("R5", "b1213", "b1011", 39e3).expect("R5");

    // --- Gain stage -------------------------------------------------------
    BjtProcess::npn(16e-6).expand(&mut c, "Q16", "0", "x2", "b17").expect("Q16");
    BjtProcess::npn(550e-6).expand(&mut c, "Q17", "t2", "b17", "e17").expect("Q17");
    c.add_resistor("R9", "b17", "0", 50e3).expect("R9");
    c.add_resistor("R10", "e17", "0", 100.0).expect("R10");
    // Miller compensation: base of Q16 to collector of Q17.
    c.add_capacitor("CC", "x2", "t2", 30e-12).expect("CC");

    // --- Output stage -----------------------------------------------------
    BjtProcess::pnp(550e-6).expand(&mut c, "Q13", "t1", "b1213", "0").expect("Q13");
    // VBE multiplier between the two output-device bases.
    BjtProcess::npn(165e-6).expand(&mut c, "Q18", "t1", "n18", "t2").expect("Q18");
    BjtProcess::npn(15e-6).expand(&mut c, "Q19", "t1", "t1", "n18").expect("Q19");
    c.add_resistor("R11", "t1", "n18", 4.5e3).expect("R11");
    c.add_resistor("R12", "n18", "t2", 7.5e3).expect("R12");
    // Class-AB output pair.
    BjtProcess::npn(150e-6).expand(&mut c, "Q14", "0", "t1", "e14").expect("Q14");
    BjtProcess::pnp(150e-6).expand(&mut c, "Q20", "0", "t2", "e20").expect("Q20");
    c.add_resistor("R6", "e14", "out", 27.0).expect("R6");
    c.add_resistor("R7", "e20", "out", 22.0).expect("R7");
    c.add_resistor("RL", "out", "0", 2e3).expect("RL");
    c.add_capacitor("CL", "out", "0", 50e-12).expect("CL");

    c
}

/// A Tow-Thomas biquad band-pass/low-pass filter realized with three
/// finite-gain inverting amplifiers (VCVS of gain `−a0`). `f0` is the pole
/// frequency, `q` the quality factor. Output `out` is the band-pass node.
///
/// Exercises the VCVS branch-equation path of the MNA and interpolation
/// engines (the denominator stays 2nd order for large `a0`, with parasitic
/// high-order terms created by the finite gains).
///
/// # Panics
///
/// Panics unless `f0 > 0`, `q > 0`, `a0 > 0`.
pub fn tow_thomas_biquad(f0: f64, q: f64, a0: f64) -> Circuit {
    assert!(f0 > 0.0 && q > 0.0 && a0 > 0.0);
    let cap = 1e-9;
    let r = 1.0 / (2.0 * std::f64::consts::PI * f0 * cap);
    let rq = q * r;
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).expect("fresh circuit");
    // Amplifier 1: lossy integrator (band-pass output at `out`).
    c.add_resistor("R1", "in", "m1", r).expect("R1");
    c.add_resistor("RQ", "out", "m1", rq).expect("RQ");
    c.add_resistor("R3", "v3", "m1", r).expect("R3");
    c.add_capacitor("C1", "m1", "out", cap).expect("C1");
    c.add_vcvs("E1", "out", "0", "0", "m1", a0).expect("E1");
    // Amplifier 2: integrator (low-pass output v2).
    c.add_resistor("R2", "out", "m2", r).expect("R2");
    c.add_capacitor("C2", "m2", "v2", cap).expect("C2");
    c.add_vcvs("E2", "v2", "0", "0", "m2", a0).expect("E2");
    // Amplifier 3: unity inverter closing the loop.
    c.add_resistor("RI1", "v2", "m3", r).expect("RI1");
    c.add_resistor("RI2", "v3", "m3", r).expect("RI2");
    c.add_vcvs("E3", "v3", "0", "0", "m3", a0).expect("E3");
    c
}

/// A Sallen-Key low-pass section with a unity-gain VCVS buffer.
///
/// # Panics
///
/// Panics unless `f0 > 0` and `q > 0`.
pub fn sallen_key_lowpass(f0: f64, q: f64) -> Circuit {
    assert!(f0 > 0.0 && q > 0.0);
    // Equal-R design: C1 = 2Q/(ω0·R), C2 = 1/(2Q·ω0·R).
    let r = 10e3;
    let w0 = 2.0 * std::f64::consts::PI * f0;
    let c1 = 2.0 * q / (w0 * r);
    let c2 = 1.0 / (2.0 * q * w0 * r);
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).expect("fresh circuit");
    c.add_resistor("R1", "in", "a", r).expect("R1");
    c.add_resistor("R2", "a", "b", r).expect("R2");
    c.add_capacitor("C1", "a", "out", c1).expect("C1");
    c.add_capacitor("C2", "b", "0", c2).expect("C2");
    c.add_vcvs("E1", "out", "0", "b", "0", 1.0).expect("E1");
    c
}

/// A classic two-stage Miller-compensated CMOS opamp (five-transistor first
/// stage + common-source second stage), linearized at its operating point,
/// in open loop with the inverting input AC-grounded.
///
/// The canonical teaching example for pole splitting: the Miller capacitor
/// `cc` sets the dominant pole at `≈ gm1/(A2·cc)` and pushes the output
/// pole to `≈ gm6/CL`, with a right-half-plane zero at `gm6/cc` — all of
/// which fall out of the recovered coefficients.
///
/// # Panics
///
/// Panics unless `cc` and `cl` are positive.
pub fn miller_two_stage_opamp(cc: f64, cl: f64) -> Circuit {
    assert!(cc > 0.0 && cl > 0.0);
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).expect("fresh circuit");
    // Differential pair M1/M2 (10 µA per side) with mirror load M3/M4.
    let pair = MosSmallSignal::from_operating_point(10e-6, 0.2, 0.04, 40e-15);
    pair.expand(&mut c, "M1", "x1", "in", "tail", "0").expect("M1");
    pair.expand(&mut c, "M2", "x2", "0", "tail", "0").expect("M2");
    let mirror = MosSmallSignal::from_operating_point(10e-6, 0.25, 0.04, 30e-15);
    mirror.expand(&mut c, "M3", "x1", "x1", "0", "0").expect("M3");
    mirror.expand(&mut c, "M4", "x2", "x1", "0", "0").expect("M4");
    // Tail current source output impedance.
    c.add_conductance("gtail", "tail", "0", 0.8e-6).expect("unique");
    c.add_capacitor("ctail", "tail", "0", 40e-15).expect("unique");
    // Second stage: common source M6 with current-source load M7.
    let cs = MosSmallSignal::from_operating_point(100e-6, 0.25, 0.06, 150e-15);
    cs.expand(&mut c, "M6", "out", "x2", "0", "0").expect("M6");
    let load = MosSmallSignal::from_operating_point(100e-6, 0.3, 0.06, 100e-15);
    load.expand(&mut c, "M7", "out", "0", "0", "0").expect("M7");
    // Miller compensation and load.
    c.add_capacitor("CC", "x2", "out", cc).expect("unique");
    c.add_capacitor("CL", "out", "0", cl).expect("unique");
    c
}

/// A doubly-terminated Butterworth LC-ladder low-pass of order `n` with
/// cutoff `f_cutoff` (hertz) and termination `r_term` on both ports.
///
/// Prototype values follow the classical `g_k = 2·sin((2k−1)π/2n)` formula;
/// the DC gain through the matched divider is 1/2 and
/// `|H(jω)| = ½/√(1+(ω/ωc)^{2n})` — maximally flat, which the tests verify.
/// Exercises the frequency-only scaling mode of the interpolation engine
/// (inductors break admittance homogeneity).
///
/// # Panics
///
/// Panics unless `n ≥ 1`, `r_term > 0`, `f_cutoff > 0`.
pub fn lc_ladder_lowpass(n: usize, r_term: f64, f_cutoff: f64) -> Circuit {
    assert!(n >= 1 && r_term > 0.0 && f_cutoff > 0.0);
    let wc = 2.0 * std::f64::consts::PI * f_cutoff;
    // Chain nodes: the last one (carrying the load) is named `out`.
    let last = n / 2;
    let node_name = |i: usize| if i == last { "out".to_string() } else { format!("n{i}") };
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).expect("fresh circuit");
    c.add_resistor("RS", "in", &node_name(0), r_term).expect("unique");
    let mut node = 0usize;
    for k in 1..=n {
        let g = 2.0 * ((2 * k - 1) as f64 * std::f64::consts::PI / (2 * n) as f64).sin();
        if k % 2 == 1 {
            // Odd positions: shunt capacitor at the current node.
            c.add_capacitor(&format!("C{k}"), &node_name(node), "0", g / (r_term * wc))
                .expect("unique");
        } else {
            // Even positions: series inductor to the next node.
            c.add_inductor(
                &format!("L{k}"),
                &node_name(node),
                &node_name(node + 1),
                g * r_term / wc,
            )
            .expect("unique");
            node += 1;
        }
    }
    c.add_resistor("RL", "out", "0", r_term).expect("unique");
    c
}

/// A randomized RC mesh: a chain backbone from `in` to `out` guaranteeing
/// connectivity, plus `extra_edges` random resistors and one grounded
/// capacitor per internal node, with values log-uniform over IC-like ranges
/// (`R ∈ [1 kΩ, 1 MΩ]`, `C ∈ [10 fF, 10 pF]`). Deterministic in `seed`.
///
/// Used by property tests (coefficient recovery must hold on arbitrary RC
/// topologies) and scalability benches.
///
/// # Panics
///
/// Panics if `nodes < 2`.
pub fn random_rc_mesh(nodes: usize, extra_edges: usize, seed: u64) -> Circuit {
    assert!(nodes >= 2, "need at least in and out");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).expect("fresh circuit");
    let name_of = |i: usize, n: usize| -> String {
        if i == 0 {
            "in".to_string()
        } else if i == n - 1 {
            "out".to_string()
        } else {
            format!("n{i}")
        }
    };
    let log_uniform = |rng: &mut StdRng, lo: f64, hi: f64| -> f64 {
        let l = rng.gen_range(lo.ln()..hi.ln());
        l.exp()
    };
    for i in 1..nodes {
        let a = name_of(i - 1, nodes);
        let b = name_of(i, nodes);
        let r = log_uniform(&mut rng, 1e3, 1e6);
        c.add_resistor(&format!("Rb{i}"), &a, &b, r).expect("unique");
    }
    for i in 1..nodes {
        let node = name_of(i, nodes);
        let cap = log_uniform(&mut rng, 10e-15, 10e-12);
        c.add_capacitor(&format!("Cg{i}"), &node, "0", cap).expect("unique");
    }
    for k in 0..extra_edges {
        let i = rng.gen_range(0..nodes);
        let j = rng.gen_range(0..nodes);
        if i == j {
            continue;
        }
        let a = name_of(i, nodes);
        let b = name_of(j, nodes);
        let r = log_uniform(&mut rng, 1e3, 1e6);
        c.add_resistor(&format!("Rx{k}"), &a, &b, r).expect("unique");
    }
    c
}

/// A `rows × cols` two-dimensional RC grid — the mesh-scale ordering
/// stress case. Every grid point carries a grounded capacitor; horizontal
/// and vertical neighbors are joined by resistors (values log-uniform over
/// the same IC-like ranges as [`random_rc_mesh`]). `VIN` drives the
/// `(0, 0)` corner (`in`); the response is read at the opposite corner
/// (`out`).
///
/// Unlike [`random_rc_mesh`] — whose chain backbone keeps even large
/// instances nearly tree-like — the five-point grid pattern is the classic
/// case where greedy Markowitz ordering fills super-linearly while nested-
/// dissection-like orders (which approximate minimum degree discovers) stay
/// near `O(n log n)`. Construction is `O(rows · cols)`. Deterministic in
/// `seed`.
///
/// # Panics
///
/// Panics unless `rows ≥ 1`, `cols ≥ 1` and `rows · cols ≥ 2`.
pub fn grid_rc_mesh(rows: usize, cols: usize, seed: u64) -> Circuit {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2, "grid needs at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new();
    c.add_vsource("VIN", "in", "0", 1.0).expect("fresh circuit");
    let name_of = |r: usize, cc: usize| -> String {
        if (r, cc) == (0, 0) {
            "in".to_string()
        } else if (r, cc) == (rows - 1, cols - 1) {
            "out".to_string()
        } else {
            format!("n{r}_{cc}")
        }
    };
    let log_uniform = |rng: &mut StdRng, lo: f64, hi: f64| -> f64 {
        let l = rng.gen_range(lo.ln()..hi.ln());
        l.exp()
    };
    for r in 0..rows {
        for cc in 0..cols {
            let here = name_of(r, cc);
            if cc + 1 < cols {
                let right = name_of(r, cc + 1);
                let res = log_uniform(&mut rng, 1e3, 1e6);
                c.add_resistor(&format!("Rh{r}_{cc}"), &here, &right, res).expect("unique");
            }
            if r + 1 < rows {
                let down = name_of(r + 1, cc);
                let res = log_uniform(&mut rng, 1e3, 1e6);
                c.add_resistor(&format!("Rv{r}_{cc}"), &here, &down, res).expect("unique");
            }
            let cap = log_uniform(&mut rng, 10e-15, 10e-12);
            c.add_capacitor(&format!("Cg{r}_{cc}"), &here, "0", cap).expect("unique");
        }
    }
    c
}

/// Parameterized `.SUBCKT` building blocks for netlist-defined workloads.
///
/// Prepend this text to a top-level fragment (see [`netlist_with_library`])
/// to instantiate:
///
/// * `opamp inp inn out` — single-pole opamp macromodel
///   (`gm=1m rp=100meg cp=159p`): DC gain `gm·rp = 1e5`, dominant pole
///   ≈ 10 Hz, unity-gain bandwidth ≈ 1 MHz, ideal output buffer.
/// * `sallen_key in out` — unity-gain Sallen-Key low-pass biquad
///   (`r1=10k r2=10k c1=4n c2=390p`): f₀ ≈ 12.7 kHz, Q ≈ 1.6, built on a
///   nested `opamp` instance.
/// * `rc_lowpass in out` — four-section RC ladder (`r=1k c=1n`).
/// * `rlc_lowpass in out` — third-order Butterworth LC ladder
///   (`rs=50 rl=50 c1=31.83n l2=159.15u c3=31.83n`, cutoff 100 kHz).
///   Contains inductors, so it is a workload for the independent AC path,
///   not the interpolation engine.
pub const SUBCKT_LIBRARY: &str = "\
* refgen .SUBCKT building-block library
.subckt opamp inp inn out gm=1m rp=100meg cp=159p
RIN inp inn 10meg
G1 0 p inp inn {gm}
RP p 0 {rp}
CP p 0 {cp}
EOUT out 0 p 0 1
.ends opamp
.subckt sallen_key in out r1=10k r2=10k c1=4n c2=390p
R1 in a {r1}
R2 a b {r2}
C1 a out {c1}
C2 b 0 {c2}
XOP b out out opamp
.ends sallen_key
.subckt rc_lowpass in out r=1k c=1n
R1 in n1 {r}
C1 n1 0 {c}
R2 n1 n2 {r}
C2 n2 0 {c}
R3 n2 n3 {r}
C3 n3 0 {c}
R4 n3 out {r}
C4 out 0 {c}
.ends rc_lowpass
.subckt rlc_lowpass in out rs=50 rl=50 c1=31.83n l2=159.15u c3=31.83n
RS in a {rs}
C1 a 0 {c1}
L2 a out {l2}
C3 out 0 {c3}
RL out 0 {rl}
.ends rlc_lowpass
";

/// Prepends [`SUBCKT_LIBRARY`] to a top-level netlist fragment, yielding a
/// complete netlist for [`crate::parser::parse_netlist`].
pub fn netlist_with_library(top: &str) -> String {
    let mut out = String::with_capacity(SUBCKT_LIBRARY.len() + top.len() + 1);
    out.push_str(SUBCKT_LIBRARY);
    out.push_str(top);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementKind;
    use crate::parser::parse_spice;

    #[test]
    fn ladder_structure() {
        let c = rc_ladder(6, 1e3, 1e-9);
        c.validate().unwrap();
        assert_eq!(c.capacitor_values().len(), 6);
        assert_eq!(c.conductance_values().len(), 6);
        assert!(c.find_node("out").is_some());
        assert_eq!(c.reactive_count(), 6);
    }

    #[test]
    fn grid_mesh_structure() {
        let c = grid_rc_mesh(8, 8, 42);
        c.validate().unwrap();
        // 64 grid points: one grounded cap each, 2·8·7 neighbor resistors.
        assert_eq!(c.capacitor_values().len(), 64);
        assert_eq!(c.conductance_values().len(), 112);
        assert!(c.find_node("in").is_some());
        assert!(c.find_node("out").is_some());
        // Deterministic in the seed.
        let d = grid_rc_mesh(8, 8, 42);
        assert_eq!(c.capacitor_values(), d.capacitor_values());
        let e = grid_rc_mesh(8, 8, 43);
        assert_ne!(c.capacitor_values(), e.capacitor_values());
        // Degenerate shapes stay valid.
        grid_rc_mesh(1, 2, 0).validate().unwrap();
        grid_rc_mesh(2, 1, 0).validate().unwrap();
    }

    #[test]
    fn graded_ladder_values_drift() {
        let c = graded_rc_ladder(4, 1e3, 1e-12, 2.0, 0.5);
        let caps = c.capacitor_values();
        assert!((caps[0] / caps[3] - 8.0).abs() < 1e-9);
        c.validate().unwrap();
    }

    #[test]
    fn ota_is_ninth_order_by_capacitor_nodes() {
        let c = positive_feedback_ota();
        c.validate().unwrap();
        // 9 state nodes as documented; capacitor count exceeds the order
        // (parallel caps merge), but each of the 9 nodes carries capacitance.
        for node in ["M1_g", "M2_g", "tail", "y1", "y2", "x1", "x2", "o1", "out"] {
            assert!(c.find_node(node).is_some(), "missing state node {node}");
        }
        assert!(c.capacitor_values().len() >= 9);
        // Element magnitudes in the IC ranges the paper quotes (ratios of
        // consecutive coefficients land in 1e6..1e12).
        for g in c.conductance_values() {
            assert!(g > 1e-7 && g < 1e-1, "conductance {g}");
        }
        for cap in c.capacitor_values() {
            assert!(cap > 1e-15 && cap < 1e-10, "capacitance {cap}");
        }
    }

    #[test]
    fn ua741_structure() {
        let c = ua741();
        c.validate().unwrap();
        // 19 BJTs × (cπ + cµ) + CC + CL. Diode-connected devices keep their
        // cµ because the base resistance separates b′ from the collector.
        assert_eq!(c.capacitor_values().len(), 19 * 2 + 2);
        // 30 pF Miller cap present.
        assert!(c.capacitor_values().iter().any(|&v| (v - 30e-12).abs() < 1e-18));
        // Conductances span the µA-to-mA decades.
        let gs = c.conductance_values();
        let min = gs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = gs.iter().cloned().fold(0.0, f64::max);
        assert!(min < 1e-5 && max > 1e-3, "range {min}..{max}");
    }

    #[test]
    fn biquad_and_sallen_key_validate() {
        let b = tow_thomas_biquad(10e3, 5.0, 1e5);
        b.validate().unwrap();
        assert_eq!(b.capacitor_values().len(), 2);
        let s = sallen_key_lowpass(1e3, 0.707);
        s.validate().unwrap();
        assert_eq!(s.capacitor_values().len(), 2);
    }

    #[test]
    fn miller_opamp_structure() {
        let c = miller_two_stage_opamp(2e-12, 5e-12);
        c.validate().unwrap();
        assert!(c.capacitor_values().iter().any(|&v| (v - 2e-12).abs() < 1e-20));
        // State nodes: tail, x1, x2, out.
        for node in ["tail", "x1", "x2", "out"] {
            assert!(c.find_node(node).is_some(), "{node}");
        }
        assert!(!c.has_inductors());
    }

    #[test]
    fn lc_ladder_structure() {
        for n in [1usize, 2, 3, 5, 6] {
            let c = lc_ladder_lowpass(n, 50.0, 1e6);
            c.validate().unwrap();
            assert_eq!(c.reactive_count(), n, "n={n}");
            assert_eq!(c.capacitor_values().len(), n.div_ceil(2));
            assert_eq!(c.inductor_values().len(), n / 2);
            assert!(c.has_inductors() == (n >= 2));
            assert!(c.find_node("out").is_some());
        }
    }

    #[test]
    fn random_mesh_deterministic_and_valid() {
        let a = random_rc_mesh(12, 8, 42);
        let b = random_rc_mesh(12, 8, 42);
        a.validate().unwrap();
        assert_eq!(a.elements().len(), b.elements().len());
        for (x, y) in a.elements().iter().zip(b.elements()) {
            assert_eq!(x.kind, y.kind);
        }
        let c = random_rc_mesh(12, 8, 43);
        // Different seed ⇒ different values (overwhelmingly likely).
        let same = a.elements().iter().zip(c.elements()).all(|(x, y)| x.kind == y.kind);
        assert!(!same);
    }

    #[test]
    #[should_panic(expected = "at least one section")]
    fn empty_ladder_panics() {
        rc_ladder(0, 1.0, 1.0);
    }

    #[test]
    fn subckt_library_blocks_parse_and_validate() {
        for top in [
            "VIN in 0 AC 1\nX1 in out sallen_key\nRL out 0 1meg\n",
            "VIN in 0 AC 1\nX1 in out rc_lowpass\nRL out 0 1meg\n",
            "VIN in 0 AC 1\nX1 in out rlc_lowpass\n",
            "VIN in 0 AC 1\nRG in inn 10k\nRF out inn 10k\nXA 0 inn out opamp\n",
        ] {
            let c = parse_spice(&netlist_with_library(top)).unwrap();
            c.validate().unwrap();
        }
    }

    #[test]
    fn sallen_key_block_structure() {
        let top = "VIN in 0 AC 1\nX1 in out sallen_key\nRL out 0 1meg\n";
        let c = parse_spice(&netlist_with_library(top)).unwrap();
        // The biquad nests an opamp instance: flattened names compose.
        for name in ["X1.R1", "X1.C2", "X1.XOP.RP", "X1.XOP.EOUT"] {
            assert!(c.element(name).is_some(), "{name}");
        }
        assert!(c.find_node("X1.a").is_some());
        assert!(c.find_node("X1.XOP.p").is_some());
    }

    #[test]
    fn subckt_library_overrides_apply() {
        let top = "VIN in 0 AC 1\nX1 in out sallen_key c1=8n r2=20k\nRL out 0 1meg\n";
        let c = parse_spice(&netlist_with_library(top)).unwrap();
        match c.element("X1.C1").unwrap().kind {
            ElementKind::Capacitor { farads } => assert_eq!(farads, 8e-9),
            ref other => panic!("{other:?}"),
        }
        match c.element("X1.R2").unwrap().kind {
            ElementKind::Resistor { ohms } => assert_eq!(ohms, 2e4),
            ref other => panic!("{other:?}"),
        }
        // Untouched defaults stay put.
        match c.element("X1.C2").unwrap().kind {
            ElementKind::Capacitor { farads } => assert!((farads - 390e-12).abs() < 1e-24),
            ref other => panic!("{other:?}"),
        }
    }
}
