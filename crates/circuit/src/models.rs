//! Small-signal device models.
//!
//! The paper's benchmark circuits are transistor-level analog ICs; for AC
//! analysis each transistor is replaced by its linearized model built from
//! primitive elements (conductances, capacitors, VCCS). The expansions here
//! follow the standard hybrid-π (BJT) and saturation small-signal (MOS)
//! models, with parameters derived from the DC operating point.

use crate::netlist::{Circuit, CircuitError};

/// Thermal voltage at room temperature (about 26 mV).
pub const VT: f64 = 0.02585;

/// MOS transistor small-signal model (saturation region).
///
/// Expansion (`d`, `g`, `s`, `b` terminals):
///
/// * `gm` VCCS `d→s` controlled by `(g, s)`;
/// * `gmb` VCCS `d→s` controlled by `(b, s)` (omitted when zero);
/// * `gds` conductance `d–s`;
/// * capacitors `cgs`, `cgd`, `cdb`, `csb` (each omitted when zero);
/// * optional gate resistance `rg` creating an internal gate node
///   `<name>_g` (adds one state to the network — used by the OTA generator
///   to reach the paper's 9th-order denominator).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MosSmallSignal {
    /// Gate transconductance (S).
    pub gm: f64,
    /// Bulk transconductance (S); 0 disables.
    pub gmb: f64,
    /// Output conductance (S).
    pub gds: f64,
    /// Gate–source capacitance (F).
    pub cgs: f64,
    /// Gate–drain (overlap/Miller) capacitance (F).
    pub cgd: f64,
    /// Drain–bulk junction capacitance (F).
    pub cdb: f64,
    /// Source–bulk junction capacitance (F).
    pub csb: f64,
    /// Physical gate resistance (Ω); 0 disables the internal gate node.
    pub rg: f64,
}

impl MosSmallSignal {
    /// Derives parameters from the operating point: drain current `id`,
    /// overdrive `vov = Vgs − Vt`, channel-length modulation `lambda`, and a
    /// characteristic gate capacitance `cgg` split 2:1 between `cgs` and
    /// `cgd`, with junction capacitances at a third of `cgs`.
    ///
    /// # Panics
    ///
    /// Panics unless `id`, `vov`, `cgg` are positive and `lambda` is
    /// non-negative.
    pub fn from_operating_point(id: f64, vov: f64, lambda: f64, cgg: f64) -> Self {
        assert!(id > 0.0 && vov > 0.0 && cgg > 0.0 && lambda >= 0.0);
        let gm = 2.0 * id / vov;
        MosSmallSignal {
            gm,
            gmb: 0.2 * gm,
            gds: lambda * id,
            cgs: cgg * 2.0 / 3.0,
            cgd: cgg / 3.0,
            cdb: cgg * 2.0 / 9.0,
            csb: cgg * 2.0 / 9.0,
            rg: 0.0,
        }
    }

    /// Adds a gate resistance (creates the internal gate node on expansion).
    pub fn with_gate_resistance(mut self, rg: f64) -> Self {
        self.rg = rg;
        self
    }

    /// Expands the model into `circuit` for instance `name` with terminals
    /// drain/gate/source/bulk. Element names are prefixed with the instance
    /// name (`gm_<name>`, `cgs_<name>`, …).
    ///
    /// # Errors
    ///
    /// Propagates builder errors (duplicate names, invalid derived values).
    pub fn expand(
        &self,
        circuit: &mut Circuit,
        name: &str,
        d: &str,
        g: &str,
        s: &str,
        b: &str,
    ) -> Result<(), CircuitError> {
        // Internal gate node when rg is present.
        let gate_owned;
        let gate: &str = if self.rg > 0.0 {
            gate_owned = format!("{name}_g");
            circuit.add_resistor(&format!("rg_{name}"), g, &gate_owned, self.rg)?;
            &gate_owned
        } else {
            g
        };
        // Coincident-node guards keep diode-connected and AC-grounded
        // configurations legal: an element whose two terminals merge to the
        // same node contributes nothing and is skipped.
        let same = same_node;
        if !same(gate, s) {
            circuit.add_vccs(&format!("gm_{name}"), d, s, gate, s, self.gm)?;
        }
        if self.gmb != 0.0 && !same(b, s) {
            circuit.add_vccs(&format!("gmb_{name}"), d, s, b, s, self.gmb)?;
        }
        if self.gds > 0.0 && !same(d, s) {
            circuit.add_conductance(&format!("gds_{name}"), d, s, self.gds)?;
        }
        if self.cgs > 0.0 && !same(gate, s) {
            circuit.add_capacitor(&format!("cgs_{name}"), gate, s, self.cgs)?;
        }
        if self.cgd > 0.0 && !same(gate, d) {
            circuit.add_capacitor(&format!("cgd_{name}"), gate, d, self.cgd)?;
        }
        if self.cdb > 0.0 && !same(d, b) {
            circuit.add_capacitor(&format!("cdb_{name}"), d, b, self.cdb)?;
        }
        if self.csb > 0.0 && !same(s, b) {
            circuit.add_capacitor(&format!("csb_{name}"), s, b, self.csb)?;
        }
        Ok(())
    }
}

/// `true` when two terminal names refer to the same node (case-insensitive;
/// `0`/`gnd` are synonyms).
fn same_node(a: &str, b: &str) -> bool {
    let ground = |x: &str| x == "0" || x.eq_ignore_ascii_case("gnd");
    a.eq_ignore_ascii_case(b) || (ground(a) && ground(b))
}

/// BJT hybrid-π small-signal model.
///
/// Expansion (`c`, `b`, `e` terminals):
///
/// * optional base resistance `rb` creating internal node `<name>_b`;
/// * `gpi = gm/β` conductance `b′–e`;
/// * `gm` VCCS `c→e` controlled by `(b′, e)`;
/// * `go = Ic/VA` conductance `c–e`;
/// * capacitors `cpi` (`b′–e`) and `cmu` (`b′–c`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BjtSmallSignal {
    /// Transconductance `Ic/VT` (S).
    pub gm: f64,
    /// Input conductance `gm/β` (S).
    pub gpi: f64,
    /// Output conductance `Ic/VA` (S).
    pub go: f64,
    /// Base–emitter diffusion + junction capacitance (F).
    pub cpi: f64,
    /// Base–collector junction capacitance (F).
    pub cmu: f64,
    /// Base spreading resistance (Ω); 0 disables the internal node.
    pub rb: f64,
}

impl BjtSmallSignal {
    /// Derives parameters from the DC operating point: collector current
    /// `ic`, current gain `beta`, Early voltage `va`, transition frequency
    /// `ft`, and base–collector capacitance `cmu`.
    ///
    /// `cpi = gm/(2π·fT) − cmu` (clamped to a small positive floor).
    ///
    /// # Panics
    ///
    /// Panics unless all arguments are positive.
    pub fn from_bias(ic: f64, beta: f64, va: f64, ft: f64, cmu: f64) -> Self {
        assert!(ic > 0.0 && beta > 0.0 && va > 0.0 && ft > 0.0 && cmu > 0.0);
        let gm = ic / VT;
        let ctot = gm / (2.0 * std::f64::consts::PI * ft);
        let cpi = (ctot - cmu).max(0.05e-12);
        BjtSmallSignal { gm, gpi: gm / beta, go: ic / va, cpi, cmu, rb: 0.0 }
    }

    /// Adds a base spreading resistance.
    pub fn with_base_resistance(mut self, rb: f64) -> Self {
        self.rb = rb;
        self
    }

    /// Expands the model into `circuit` for instance `name` with terminals
    /// collector/base/emitter.
    ///
    /// # Errors
    ///
    /// Propagates builder errors.
    pub fn expand(
        &self,
        circuit: &mut Circuit,
        name: &str,
        c: &str,
        b: &str,
        e: &str,
    ) -> Result<(), CircuitError> {
        let base_owned;
        let base: &str = if self.rb > 0.0 {
            base_owned = format!("{name}_b");
            circuit.add_resistor(&format!("rb_{name}"), b, &base_owned, self.rb)?;
            &base_owned
        } else {
            b
        };
        circuit.add_conductance(&format!("gpi_{name}"), base, e, self.gpi)?;
        circuit.add_vccs(&format!("gm_{name}"), c, e, base, e, self.gm)?;
        if self.go > 0.0 && !same_node(c, e) {
            circuit.add_conductance(&format!("go_{name}"), c, e, self.go)?;
        }
        circuit.add_capacitor(&format!("cpi_{name}"), base, e, self.cpi)?;
        if !same_node(base, c) {
            circuit.add_capacitor(&format!("cmu_{name}"), base, c, self.cmu)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mos_operating_point_relations() {
        let m = MosSmallSignal::from_operating_point(100e-6, 0.2, 0.05, 20e-15);
        assert!((m.gm - 1e-3).abs() < 1e-12);
        assert!((m.gds - 5e-6).abs() < 1e-15);
        assert!(m.cgs > m.cgd);
    }

    #[test]
    fn mos_expansion_elements() {
        let mut c = Circuit::new();
        let m = MosSmallSignal::from_operating_point(100e-6, 0.2, 0.05, 20e-15);
        m.expand(&mut c, "M1", "d", "g", "s", "0").unwrap();
        assert!(c.element("gm_M1").is_some());
        assert!(c.element("gds_M1").is_some());
        assert!(c.element("cgs_M1").is_some());
        assert!(c.element("cgd_M1").is_some());
        // s == "s" != bulk "0" → csb present
        assert!(c.element("csb_M1").is_some());
        assert_eq!(c.capacitor_values().len(), 4);
    }

    #[test]
    fn mos_gate_resistance_adds_node() {
        let mut c = Circuit::new();
        let m = MosSmallSignal::from_operating_point(100e-6, 0.2, 0.05, 20e-15)
            .with_gate_resistance(200.0);
        m.expand(&mut c, "M1", "d", "g", "s", "0").unwrap();
        assert!(c.find_node("M1_g").is_some());
        assert!(c.element("rg_M1").is_some());
    }

    #[test]
    fn mos_grounded_bulk_drain_skips_cdb() {
        let mut c = Circuit::new();
        let m = MosSmallSignal::from_operating_point(1e-4, 0.2, 0.0, 10e-15);
        // drain tied to bulk: no cdb, and gds == 0 when lambda == 0.
        m.expand(&mut c, "M1", "0", "g", "s", "0").unwrap();
        assert!(c.element("cdb_M1").is_none());
        assert!(c.element("gds_M1").is_none());
    }

    #[test]
    fn bjt_bias_relations() {
        let q = BjtSmallSignal::from_bias(1e-3, 200.0, 100.0, 400e6, 0.5e-12);
        assert!((q.gm - 1e-3 / VT).abs() / q.gm < 1e-12);
        assert!((q.gpi - q.gm / 200.0).abs() / q.gpi < 1e-12);
        assert!((q.go - 1e-5).abs() < 1e-12);
        assert!(q.cpi > 0.0);
    }

    #[test]
    fn bjt_expansion_with_rb() {
        let mut c = Circuit::new();
        let q = BjtSmallSignal::from_bias(1e-3, 200.0, 100.0, 400e6, 0.5e-12)
            .with_base_resistance(250.0);
        q.expand(&mut c, "Q1", "c", "b", "e").unwrap();
        assert!(c.find_node("Q1_b").is_some());
        assert!(c.element("cpi_Q1").is_some());
        assert!(c.element("cmu_Q1").is_some());
        assert_eq!(c.capacitor_values().len(), 2);
    }

    #[test]
    fn cpi_floor_applies() {
        // Huge cmu relative to gm/(2πfT): cpi clamps to the floor.
        let q = BjtSmallSignal::from_bias(1e-6, 100.0, 100.0, 500e6, 5e-12);
        assert!((q.cpi - 0.05e-12).abs() < 1e-18);
    }

    #[test]
    #[should_panic]
    fn bjt_rejects_nonpositive_bias() {
        BjtSmallSignal::from_bias(-1e-3, 200.0, 100.0, 400e6, 0.5e-12);
    }
}
