//! Circuit representation for the `refgen` workspace.
//!
//! Provides everything between "a schematic on paper" and "an MNA matrix":
//!
//! * [`element`] — linear(ized) circuit elements: R, G, C, L, independent
//!   V/I sources and all four controlled sources.
//! * [`netlist`] — the [`Circuit`] container: named nodes, element list,
//!   structural queries (element-value statistics drive the paper's initial
//!   scale-factor heuristics) and validation.
//! * [`parser`] — a SPICE-like netlist reader/writer with hierarchical
//!   `.SUBCKT`/`X` flattening and `.AC`/`.TF`/`.TRAN` analysis cards.
//! * [`analysis`] — the typed [`AnalysisSpec`] those cards parse into.
//! * [`waveform`] — time-domain source drives ([`Waveform`]: DC, PULSE,
//!   SIN, PWL) for the transient engine, attached to V/I sources.
//! * [`models`] — MOS and BJT small-signal models that expand into primitive
//!   elements, plus operating-point constructors.
//! * [`library`] — generators for the paper's benchmark circuits (the
//!   positive-feedback OTA of Fig. 1 and a µA741-class opamp) and for
//!   scalability workloads (RC ladders, meshes, biquads).
//! * [`perturb`] — tolerance perturbation ([`perturb::Perturbation`]) and
//!   seeded same-topology variant fleets ([`perturb::VariantSet`]) for
//!   Monte-Carlo and sensitivity batch sessions.
//!
//! # Example
//!
//! ```
//! use refgen_circuit::Circuit;
//!
//! # fn main() -> Result<(), refgen_circuit::CircuitError> {
//! let mut c = Circuit::new();
//! c.add_resistor("R1", "in", "out", 1e3)?;
//! c.add_capacitor("C1", "out", "0", 1e-9)?;
//! c.add_vsource("VIN", "in", "0", 1.0)?;
//! c.validate()?;
//! assert_eq!(c.capacitor_values().len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod element;
pub mod library;
pub mod models;
pub mod netlist;
pub mod parser;
pub mod perturb;
pub mod waveform;

pub use analysis::{AcCard, AnalysisCard, AnalysisSpec, SweepGrid, TfCard, TfOutput, TranCard};
pub use element::{Element, ElementKind};
pub use netlist::{Circuit, CircuitError, NodeId};
pub use parser::{parse_netlist, parse_spice, to_spice, Netlist, ParseError};
pub use perturb::{scaled_variant, ElementClass, Perturbation, Tolerance, VariantSet};
pub use waveform::Waveform;
