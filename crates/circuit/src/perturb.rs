//! Tolerance perturbation and variant-fleet generation.
//!
//! Monte-Carlo tolerance analysis and sensitivity ranking both consume the
//! same raw material: a fleet of circuits that share one **topology**
//! (identical node and element structure, hence identical MNA sparsity
//! pattern) and differ only in element *values*. That structural guarantee
//! is what lets the solver layers reuse one compiled
//! `SweepPlan`/pivot order across the whole fleet, so this module is
//! deliberately strict: variants are rebuilt element-by-element in base
//! order, never by mutation, and only values ever change.
//!
//! * [`Perturbation`] — a set of per-[element-class](ElementClass)
//!   tolerance rules ([`Tolerance::Relative`] fraction or
//!   [`Tolerance::Absolute`] delta), applied with uniform deviates from
//!   the vendored `rand` shim.
//! * [`VariantSet`] — a seeded recipe for `count` independent variants;
//!   the batch-session layer consumes it directly.
//! * [`scaled_variant`] — one-element deterministic scaling, the building
//!   block of finite-difference sensitivity fleets.
//!
//! # Example
//!
//! ```
//! use refgen_circuit::library::rc_ladder;
//! use refgen_circuit::perturb::{ElementClass, Perturbation, VariantSet};
//!
//! # fn main() -> Result<(), refgen_circuit::CircuitError> {
//! let base = rc_ladder(4, 1e3, 1e-9);
//! let tolerances = Perturbation::new()
//!     .relative(ElementClass::Resistors, 0.05)
//!     .relative(ElementClass::Capacitors, 0.10);
//! let fleet = VariantSet::new(tolerances, 32).seed(7).generate(&base)?;
//! assert_eq!(fleet.len(), 32);
//! // Same topology, different values.
//! assert_eq!(fleet[0].elements().len(), base.elements().len());
//! assert_ne!(
//!     fleet[0].element("R1").unwrap().kind,
//!     base.element("R1").unwrap().kind,
//! );
//! # Ok(())
//! # }
//! ```

use crate::element::ElementKind;
use crate::netlist::{Circuit, CircuitError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The value classes a [`Perturbation`] rule can target. Independent
/// sources and dimensionless controlled-source gains (VCVS, CCCS) plus
/// CCVS transresistances are never perturbed: they model drive and ideal
/// amplification, not toleranced components.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElementClass {
    /// Resistors (ohms).
    Resistors,
    /// Explicit conductances (siemens).
    Conductances,
    /// Capacitors (farads).
    Capacitors,
    /// Inductors (henries).
    Inductors,
    /// VCCS transconductances (siemens; sign preserved).
    Transconductances,
}

impl ElementClass {
    /// All perturbable classes.
    pub const ALL: [ElementClass; 5] = [
        ElementClass::Resistors,
        ElementClass::Conductances,
        ElementClass::Capacitors,
        ElementClass::Inductors,
        ElementClass::Transconductances,
    ];

    fn matches(self, kind: &ElementKind) -> bool {
        matches!(
            (self, kind),
            (ElementClass::Resistors, ElementKind::Resistor { .. })
                | (ElementClass::Conductances, ElementKind::Conductance { .. })
                | (ElementClass::Capacitors, ElementKind::Capacitor { .. })
                | (ElementClass::Inductors, ElementKind::Inductor { .. })
                | (ElementClass::Transconductances, ElementKind::Vccs { .. })
        )
    }
}

/// How far one rule lets a value stray from its base.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Tolerance {
    /// Uniform multiplicative spread: the value becomes
    /// `base·(1 + frac·u)` with `u ~ U[−1, 1)`. `frac` must be in
    /// `(0, 1)`, so perturbed values keep their sign (and positivity where
    /// the [`Circuit`] builders require it).
    Relative(f64),
    /// Uniform additive spread: the value becomes `base + delta·u` with
    /// `u ~ U[−1, 1)`. A delta that can cross zero (or flip a
    /// must-be-positive value) surfaces as the builders'
    /// [`CircuitError::InvalidValue`] at generation time rather than as a
    /// silently clamped fleet.
    Absolute(f64),
}

impl Tolerance {
    fn apply(self, base: f64, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.gen_range(-1.0..1.0);
        match self {
            Tolerance::Relative(frac) => base * (1.0 + frac * u),
            Tolerance::Absolute(delta) => base + delta * u,
        }
    }
}

/// A set of per-class tolerance rules. Rules are matched in insertion
/// order with **the last matching rule winning**, so a broad
/// [`Perturbation::all_relative`] can be refined by a later class-specific
/// rule. Elements with no matching rule are copied verbatim.
#[derive(Clone, Debug, Default)]
pub struct Perturbation {
    rules: Vec<(ElementClass, Tolerance)>,
}

impl Perturbation {
    /// No rules: every variant is a verbatim copy.
    pub fn new() -> Perturbation {
        Perturbation::default()
    }

    /// Uniform relative tolerance on every perturbable class — the
    /// "everything has the same process spread" shorthand.
    ///
    /// # Panics
    ///
    /// Panics unless `frac` is in `(0, 1)`.
    pub fn all_relative(frac: f64) -> Perturbation {
        ElementClass::ALL.into_iter().fold(Perturbation::new(), |p, class| p.relative(class, frac))
    }

    /// Adds a relative-tolerance rule for `class`.
    ///
    /// # Panics
    ///
    /// Panics unless `frac` is in `(0, 1)` (values must keep their sign).
    #[must_use]
    pub fn relative(mut self, class: ElementClass, frac: f64) -> Perturbation {
        assert!(
            frac.is_finite() && frac > 0.0 && frac < 1.0,
            "relative tolerance must be in (0, 1), got {frac}"
        );
        self.rules.push((class, Tolerance::Relative(frac)));
        self
    }

    /// Adds an absolute-tolerance rule for `class`.
    ///
    /// # Panics
    ///
    /// Panics unless `delta` is finite and positive.
    #[must_use]
    pub fn absolute(mut self, class: ElementClass, delta: f64) -> Perturbation {
        assert!(
            delta.is_finite() && delta > 0.0,
            "absolute tolerance must be positive, got {delta}"
        );
        self.rules.push((class, Tolerance::Absolute(delta)));
        self
    }

    /// `true` when no rule is registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    fn rule_for(&self, kind: &ElementKind) -> Option<Tolerance> {
        self.rules.iter().rev().find(|(class, _)| class.matches(kind)).map(|&(_, tol)| tol)
    }

    /// Builds one perturbed variant of `base`, drawing one deviate per
    /// matched element from `rng`. The variant has identical node and
    /// element ordering (hence an identical MNA pattern); only matched
    /// values change.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidValue`] when an absolute rule pushes a value
    /// out of its legal range (see [`Tolerance::Absolute`]).
    pub fn apply(&self, base: &Circuit, rng: &mut StdRng) -> Result<Circuit, CircuitError> {
        rebuild(base, |el, value| match self.rule_for(&el.kind) {
            Some(tol) => tol.apply(value, rng),
            None => value,
        })
    }
}

/// A seeded fleet recipe: `count` independent [`Perturbation::apply`]
/// draws from one deterministically seeded generator, so a fixed seed
/// yields a bit-identical fleet on every machine — the property the
/// Monte-Carlo oracle tests rely on.
#[derive(Clone, Debug)]
pub struct VariantSet {
    perturbation: Perturbation,
    count: usize,
    seed: u64,
}

impl VariantSet {
    /// A fleet of `count` variants under `perturbation`, seed 0.
    pub fn new(perturbation: Perturbation, count: usize) -> VariantSet {
        VariantSet { perturbation, count, seed: 0 }
    }

    /// Replaces the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> VariantSet {
        self.seed = seed;
        self
    }

    /// Number of variants this set generates.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The tolerance rules.
    pub fn perturbation(&self) -> &Perturbation {
        &self.perturbation
    }

    /// Generates the fleet, in order, from the seeded generator.
    ///
    /// # Errors
    ///
    /// See [`Perturbation::apply`].
    pub fn generate(&self, base: &Circuit) -> Result<Vec<Circuit>, CircuitError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.count).map(|_| self.perturbation.apply(base, &mut rng)).collect()
    }
}

/// One-element deterministic variant: `base` with element `name`'s value
/// multiplied by `factor` — the up/down probe of a finite-difference
/// sensitivity fleet. Elements without a perturbable value (sources,
/// VCVS/CCCS/CCVS) are rejected.
///
/// # Errors
///
/// [`CircuitError::DuplicateName`] never (the rebuild preserves names);
/// [`CircuitError::InvalidValue`] when `factor` pushes the value out of
/// range, or when `name` does not exist or is not perturbable (reported
/// with the offending factor).
pub fn scaled_variant(base: &Circuit, name: &str, factor: f64) -> Result<Circuit, CircuitError> {
    let perturbable = base
        .element(name)
        .is_some_and(|el| ElementClass::ALL.iter().any(|class| class.matches(&el.kind)));
    if !perturbable {
        return Err(CircuitError::InvalidValue { element: name.to_string(), value: factor });
    }
    rebuild(base, |el, value| if el.name == name { value * factor } else { value })
}

/// Rebuilds `base` element by element, passing each perturbable value
/// through `map` (kinds without a perturbable value — sources, VCVS,
/// CCCS, CCVS — are copied verbatim and never reach `map`). Node names and
/// element order are preserved exactly, so the result shares the base's
/// MNA topology.
fn rebuild(
    base: &Circuit,
    mut map: impl FnMut(&crate::element::Element, f64) -> f64,
) -> Result<Circuit, CircuitError> {
    let mut out = Circuit::new();
    for el in base.elements() {
        let p = base.node_name(el.nodes.0).to_string();
        let m = base.node_name(el.nodes.1).to_string();
        copy_element(&mut out, base, el, &p, &m, |v| map(el, v))?;
    }
    Ok(out)
}

/// Re-adds one element of `base` into `out` with its value passed through
/// `map` (the map is the identity for kinds that carry no perturbable
/// value).
fn copy_element(
    out: &mut Circuit,
    base: &Circuit,
    el: &crate::element::Element,
    p: &str,
    m: &str,
    map: impl FnOnce(f64) -> f64,
) -> Result<(), CircuitError> {
    let name = &el.name;
    match &el.kind {
        ElementKind::Resistor { ohms } => out.add_resistor(name, p, m, map(*ohms)),
        ElementKind::Conductance { siemens } => out.add_conductance(name, p, m, map(*siemens)),
        ElementKind::Capacitor { farads } => out.add_capacitor(name, p, m, map(*farads)),
        ElementKind::Inductor { henries } => out.add_inductor(name, p, m, map(*henries)),
        ElementKind::Vccs { gm, control } => {
            let cp = base.node_name(control.0).to_string();
            let cm = base.node_name(control.1).to_string();
            out.add_vccs(name, p, m, &cp, &cm, map(*gm))
        }
        ElementKind::Vcvs { gain, control } => {
            let cp = base.node_name(control.0).to_string();
            let cm = base.node_name(control.1).to_string();
            out.add_vcvs(name, p, m, &cp, &cm, *gain)
        }
        ElementKind::Cccs { gain, control_branch } => {
            out.add_cccs(name, p, m, control_branch, *gain)
        }
        ElementKind::Ccvs { ohms, control_branch } => {
            out.add_ccvs(name, p, m, control_branch, *ohms)
        }
        ElementKind::VSource { ac } => out.add_vsource(name, p, m, *ac),
        ElementKind::ISource { ac } => out.add_isource(name, p, m, *ac),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{rc_ladder, ua741};

    #[test]
    fn variants_preserve_topology_and_ordering() {
        let base = ua741();
        let fleet =
            VariantSet::new(Perturbation::all_relative(0.05), 8).seed(42).generate(&base).unwrap();
        assert_eq!(fleet.len(), 8);
        for v in &fleet {
            assert_eq!(v.node_count(), base.node_count());
            assert_eq!(v.elements().len(), base.elements().len());
            for (a, b) in v.elements().iter().zip(base.elements()) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.nodes, b.nodes, "{}", a.name);
            }
            v.validate().unwrap();
        }
    }

    #[test]
    fn fixed_seed_is_bit_reproducible_and_seeds_differ() {
        let base = rc_ladder(5, 1e3, 1e-9);
        let vs = VariantSet::new(Perturbation::all_relative(0.1), 4).seed(99);
        let a = vs.generate(&base).unwrap();
        let b = vs.generate(&base).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{:?}", x.elements()), format!("{:?}", y.elements()));
        }
        let c = VariantSet::new(Perturbation::all_relative(0.1), 4).seed(100).generate(&base);
        assert_ne!(format!("{:?}", a[0].elements()), format!("{:?}", c.unwrap()[0].elements()));
    }

    #[test]
    fn relative_rules_bound_the_spread_and_respect_class() {
        let base = rc_ladder(6, 1e3, 1e-9);
        let rules = Perturbation::new().relative(ElementClass::Capacitors, 0.2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..16 {
            let v = rules.apply(&base, &mut rng).unwrap();
            for (el, b) in v.elements().iter().zip(base.elements()) {
                match (&el.kind, &b.kind) {
                    (
                        ElementKind::Capacitor { farads },
                        ElementKind::Capacitor { farads: base_f },
                    ) => {
                        let ratio = farads / base_f;
                        assert!((0.8..1.2).contains(&ratio), "cap ratio {ratio}");
                    }
                    _ => assert_eq!(el.kind, b.kind, "untargeted {} must not move", el.name),
                }
            }
        }
    }

    #[test]
    fn later_rules_override_earlier_ones() {
        let rules = Perturbation::all_relative(0.5).relative(ElementClass::Resistors, 0.01);
        let base = rc_ladder(3, 1e3, 1e-9);
        let mut rng = StdRng::seed_from_u64(8);
        let v = rules.apply(&base, &mut rng).unwrap();
        for (el, b) in v.elements().iter().zip(base.elements()) {
            if let (ElementKind::Resistor { ohms }, ElementKind::Resistor { ohms: base_r }) =
                (&el.kind, &b.kind)
            {
                let ratio = ohms / base_r;
                assert!((0.99..1.01).contains(&ratio), "resistor ratio {ratio}");
            }
        }
    }

    #[test]
    fn absolute_rule_can_fail_loudly() {
        // A delta larger than the base value can cross zero; the builder's
        // positivity check must surface, not a clamped value.
        let mut base = Circuit::new();
        base.add_vsource("VIN", "in", "0", 1.0).unwrap();
        base.add_resistor("R1", "in", "out", 1.0).unwrap();
        base.add_capacitor("C1", "out", "0", 1e-9).unwrap();
        let rules = Perturbation::new().absolute(ElementClass::Resistors, 10.0);
        let mut failures = 0;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            if matches!(rules.apply(&base, &mut rng), Err(CircuitError::InvalidValue { .. })) {
                failures += 1;
            }
        }
        assert!(failures > 0, "±10 Ω on a 1 Ω resistor must sometimes go non-positive");
    }

    #[test]
    fn negative_transconductances_keep_their_sign() {
        let mut base = Circuit::new();
        base.add_vsource("VIN", "in", "0", 1.0).unwrap();
        base.add_resistor("R1", "in", "a", 1e3).unwrap();
        base.add_capacitor("C1", "a", "0", 1e-9).unwrap();
        base.add_vccs("G1", "a", "0", "in", "0", -2e-3).unwrap();
        let rules = Perturbation::new().relative(ElementClass::Transconductances, 0.3);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..16 {
            let v = rules.apply(&base, &mut rng).unwrap();
            match v.element("G1").unwrap().kind {
                ElementKind::Vccs { gm, .. } => assert!(gm < 0.0, "gm flipped: {gm}"),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn scaled_variant_touches_exactly_one_element() {
        let base = rc_ladder(4, 1e3, 1e-9);
        let up = scaled_variant(&base, "C2", 1.02).unwrap();
        for (el, b) in up.elements().iter().zip(base.elements()) {
            if el.name == "C2" {
                assert_eq!(el.capacitance_value().unwrap(), 1e-9 * 1.02);
            } else {
                assert_eq!(el.kind, b.kind, "{} must not move", el.name);
            }
        }
        // Sources and unknown names are rejected.
        assert!(scaled_variant(&base, "VIN", 1.1).is_err());
        assert!(scaled_variant(&base, "R99", 1.1).is_err());
    }

    #[test]
    #[should_panic(expected = "relative tolerance must be in (0, 1)")]
    fn relative_rule_rejects_full_spread() {
        let _ = Perturbation::new().relative(ElementClass::Resistors, 1.0);
    }
}
