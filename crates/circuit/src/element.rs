//! Linear(ized) circuit elements.
//!
//! Small-signal analysis of analog integrated circuits reduces every device
//! to the elements here: conductances, capacitors and transconductances
//! (VCCS) from transistor models, plus independent sources and the
//! remaining controlled-source types for macromodels.
//!
//! Each element knows whether it is an *admittance-type* element — one whose
//! value enters the system matrix multiplied into node equations. The
//! interpolation engine's conductance/frequency scaling (paper eq. (11))
//! rescales exactly those values.

use crate::netlist::NodeId;
use std::fmt;

/// The kind and parameters of a circuit element.
///
/// Node pairs follow SPICE polarity conventions: current flows from the
/// first (`+`) node through the element to the second (`−`) node.
#[derive(Clone, Debug, PartialEq)]
pub enum ElementKind {
    /// Resistor (value in ohms); stamped as the conductance `1/R`.
    Resistor {
        /// Resistance in ohms (must be > 0).
        ohms: f64,
    },
    /// Explicit conductance (siemens). Transistor output conductances are
    /// expressed directly in this form.
    Conductance {
        /// Conductance in siemens (must be > 0).
        siemens: f64,
    },
    /// Capacitor (farads): admittance `s·C`.
    Capacitor {
        /// Capacitance in farads (must be > 0).
        farads: f64,
    },
    /// Inductor (henries). Supported by the AC simulator (branch equation
    /// `v = s·L·i`); the interpolation engine rejects it, per the paper's
    /// scope ("capacitors as the only frequency-dependent element";
    /// inductive circuits are handled by transformation methods).
    Inductor {
        /// Inductance in henries (must be > 0).
        henries: f64,
    },
    /// Voltage-controlled current source: `i = gm·(v(cp) − v(cn))` flowing
    /// from `nodes.0` to `nodes.1`. The transistor transconductance.
    Vccs {
        /// Transconductance in siemens (may be negative for inverting gain).
        gm: f64,
        /// Controlling node pair `(cp, cn)`.
        control: (NodeId, NodeId),
    },
    /// Voltage-controlled voltage source: `v = µ·(v(cp) − v(cn))`.
    Vcvs {
        /// Voltage gain (dimensionless).
        gain: f64,
        /// Controlling node pair.
        control: (NodeId, NodeId),
    },
    /// Current-controlled current source: `i = β·i(branch)`, where the
    /// controlling branch is a named independent voltage source.
    Cccs {
        /// Current gain (dimensionless).
        gain: f64,
        /// Name of the controlling voltage source.
        control_branch: String,
    },
    /// Current-controlled voltage source: `v = r·i(branch)`.
    ///
    /// Supported by the AC simulator; rejected by the interpolation engine —
    /// a transresistance scales as `1/g` and would break the uniform
    /// admittance-degree assumption behind eq. (11).
    Ccvs {
        /// Transresistance in ohms.
        ohms: f64,
        /// Name of the controlling voltage source.
        control_branch: String,
    },
    /// Independent voltage source with the given AC amplitude.
    VSource {
        /// Small-signal AC amplitude in volts.
        ac: f64,
    },
    /// Independent current source with the given AC amplitude, flowing from
    /// `nodes.0` through the source to `nodes.1`.
    ISource {
        /// Small-signal AC amplitude in amperes.
        ac: f64,
    },
}

impl ElementKind {
    /// Short SPICE-style type prefix (`R`, `C`, `G`, …).
    pub fn type_letter(&self) -> char {
        match self {
            ElementKind::Resistor { .. } => 'R',
            ElementKind::Conductance { .. } => 'G',
            ElementKind::Capacitor { .. } => 'C',
            ElementKind::Inductor { .. } => 'L',
            ElementKind::Vccs { .. } => 'G',
            ElementKind::Vcvs { .. } => 'E',
            ElementKind::Cccs { .. } => 'F',
            ElementKind::Ccvs { .. } => 'H',
            ElementKind::VSource { .. } => 'V',
            ElementKind::ISource { .. } => 'I',
        }
    }
}

/// One instance of an element in a circuit.
#[derive(Clone, Debug, PartialEq)]
pub struct Element {
    /// Unique instance name (e.g. `"R1"`, `"gm_M3"`).
    pub name: String,
    /// Terminal node pair `(+, −)`.
    pub nodes: (NodeId, NodeId),
    /// Kind and parameters.
    pub kind: ElementKind,
}

impl Element {
    /// The element's conductance-like value if it is a *resistive admittance*
    /// (conductance, resistor as `1/R`, or transconductance magnitude);
    /// `None` otherwise.
    ///
    /// These are the "conductances" whose mean drives the paper's initial
    /// conductance scale factor (§3.2) and which the `g` scale factor
    /// multiplies in eq. (11).
    pub fn conductance_value(&self) -> Option<f64> {
        match &self.kind {
            ElementKind::Resistor { ohms } => Some(1.0 / ohms),
            ElementKind::Conductance { siemens } => Some(*siemens),
            ElementKind::Vccs { gm, .. } => Some(gm.abs()),
            _ => None,
        }
    }

    /// The capacitance if this is a capacitor, `None` otherwise.
    pub fn capacitance_value(&self) -> Option<f64> {
        match &self.kind {
            ElementKind::Capacitor { farads } => Some(*farads),
            _ => None,
        }
    }

    /// `true` if this element contributes a frequency-dependent admittance.
    pub fn is_reactive(&self) -> bool {
        matches!(self.kind, ElementKind::Capacitor { .. } | ElementKind::Inductor { .. })
    }

    /// `true` for independent sources.
    pub fn is_source(&self) -> bool {
        matches!(self.kind, ElementKind::VSource { .. } | ElementKind::ISource { .. })
    }

    /// `true` if the element forces an extra MNA branch equation
    /// (voltage-defined elements).
    pub fn needs_branch(&self) -> bool {
        matches!(
            self.kind,
            ElementKind::VSource { .. }
                | ElementKind::Vcvs { .. }
                | ElementKind::Ccvs { .. }
                | ElementKind::Inductor { .. }
        )
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:?})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn conductance_values() {
        let r = Element {
            name: "R1".into(),
            nodes: (n(1), n(0)),
            kind: ElementKind::Resistor { ohms: 1e3 },
        };
        assert_eq!(r.conductance_value(), Some(1e-3));
        let g = Element {
            name: "G1".into(),
            nodes: (n(1), n(0)),
            kind: ElementKind::Vccs { gm: -2e-3, control: (n(2), n(0)) },
        };
        assert_eq!(g.conductance_value(), Some(2e-3));
        let c = Element {
            name: "C1".into(),
            nodes: (n(1), n(0)),
            kind: ElementKind::Capacitor { farads: 1e-12 },
        };
        assert_eq!(c.conductance_value(), None);
        assert_eq!(c.capacitance_value(), Some(1e-12));
    }

    #[test]
    fn classification() {
        let v = Element {
            name: "V1".into(),
            nodes: (n(1), n(0)),
            kind: ElementKind::VSource { ac: 1.0 },
        };
        assert!(v.is_source());
        assert!(v.needs_branch());
        let l = Element {
            name: "L1".into(),
            nodes: (n(1), n(0)),
            kind: ElementKind::Inductor { henries: 1e-6 },
        };
        assert!(l.is_reactive());
        assert!(l.needs_branch());
        let e = Element {
            name: "E1".into(),
            nodes: (n(1), n(0)),
            kind: ElementKind::Vcvs { gain: 1e5, control: (n(2), n(3)) },
        };
        assert!(e.needs_branch());
        assert!(!e.is_source());
    }

    #[test]
    fn type_letters() {
        assert_eq!(ElementKind::Resistor { ohms: 1.0 }.type_letter(), 'R');
        assert_eq!(ElementKind::VSource { ac: 1.0 }.type_letter(), 'V');
        assert_eq!(ElementKind::Cccs { gain: 2.0, control_branch: "V1".into() }.type_letter(), 'F');
    }
}
