//! Time-domain waveform descriptions for independent sources.
//!
//! A [`Waveform`] describes the drive value of an independent V/I source as
//! a function of time — the transient counterpart of the single AC
//! amplitude the frequency-domain paths use. Sources carry waveforms
//! through a side table on [`Circuit`](crate::Circuit)
//! ([`set_waveform`](crate::Circuit::set_waveform) /
//! [`waveform`](crate::Circuit::waveform)); the parser attaches them from
//! `PULSE(...)`, `SIN(...)` and `PWL(...)` argument lists and the writer
//! reproduces those lists losslessly.
//!
//! Evaluation semantics follow SPICE:
//!
//! * [`Waveform::Pulse`] holds `v1` up to and including `delay`, ramps
//!   linearly over `rise`, holds `v2` for `width`, ramps back over `fall`,
//!   and repeats with `period` (an infinite width or period means "hold
//!   forever" / "no repetition").
//! * [`Waveform::Sin`] holds the offset `vo` for `t < delay`, then runs
//!   `vo + va·e^(−θ(t−delay))·sin(2πf(t−delay))`.
//! * [`Waveform::Pwl`] clamps before the first and after the last
//!   breakpoint and interpolates linearly in between.

/// The drive value of an independent source as a function of time.
#[derive(Clone, Debug, PartialEq)]
pub enum Waveform {
    /// A constant drive.
    Dc {
        /// The value, volts or amperes.
        value: f64,
    },
    /// A trapezoidal (rise / hold / fall) pulse train.
    Pulse {
        /// Initial value (held up to and including `delay`).
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Time of the first rising edge's start, seconds.
        delay: f64,
        /// Rise time, seconds (0 = ideal edge).
        rise: f64,
        /// Fall time, seconds (0 = ideal edge).
        fall: f64,
        /// Time at `v2` between the edges, seconds
        /// ([`f64::INFINITY`] = never falls — a step).
        width: f64,
        /// Repetition period, seconds ([`f64::INFINITY`] = one pulse).
        period: f64,
    },
    /// A (damped) sine: `vo + va·e^(−θ(t−delay))·sin(2πf(t−delay))`.
    Sin {
        /// Offset.
        vo: f64,
        /// Amplitude.
        va: f64,
        /// Frequency, hertz.
        freq_hz: f64,
        /// Start delay, seconds; the waveform holds `vo` before it.
        delay: f64,
        /// Damping factor θ, 1/seconds.
        theta: f64,
    },
    /// Piecewise-linear breakpoints `(time, value)`, times strictly
    /// increasing.
    Pwl {
        /// The breakpoints.
        points: Vec<(f64, f64)>,
    },
}

impl Waveform {
    /// The drive value at time `t` (seconds).
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc { value } => *value,
            Waveform::Pulse { v1, v2, delay, rise, fall, width, period } => {
                let mut tau = t - delay;
                if tau <= 0.0 {
                    return *v1;
                }
                if period.is_finite() && *period > 0.0 {
                    tau %= period;
                }
                if tau < *rise {
                    v1 + (v2 - v1) * tau / rise
                } else if tau <= rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    v2 + (v1 - v2) * (tau - rise - width) / fall
                } else {
                    *v1
                }
            }
            Waveform::Sin { vo, va, freq_hz, delay, theta } => {
                let tau = t - delay;
                if tau < 0.0 {
                    return *vo;
                }
                vo + va * (-theta * tau).exp() * (2.0 * std::f64::consts::PI * freq_hz * tau).sin()
            }
            Waveform::Pwl { points } => {
                let (first, last) = match (points.first(), points.last()) {
                    (Some(f), Some(l)) => (f, l),
                    _ => return 0.0,
                };
                if t <= first.0 {
                    return first.1;
                }
                if t >= last.0 {
                    return last.1;
                }
                let seg = points.windows(2).find(|w| t <= w[1].0).expect("t < last breakpoint");
                let ((t0, v0), (t1, v1)) = (seg[0], seg[1]);
                if t == t1 {
                    // Exact at breakpoints: v0 + (v1 − v0) rounds away
                    // from v1 in f64.
                    return v1;
                }
                v0 + (v1 - v0) * (t - t0) / (t1 - t0)
            }
        }
    }

    /// The value at `t = 0` — what a DC operating-point solve uses as the
    /// source drive when computing the transient initial condition.
    pub fn initial_value(&self) -> f64 {
        self.eval(0.0)
    }

    /// The SPICE argument-list form (`PULSE(…)`, `SIN(…)`, `PWL(…)`), or
    /// `None` for [`Waveform::Dc`] (written as a plain `DC` amplitude).
    /// Values use `{:e}` so the writer/parser round-trip is lossless;
    /// trailing pulse arguments that still hold their defaults are omitted
    /// (an infinite `width`/`period` has no finite spelling).
    pub fn to_spice_args(&self) -> Option<String> {
        use std::fmt::Write as _;
        match self {
            Waveform::Dc { .. } => None,
            Waveform::Pulse { v1, v2, delay, rise, fall, width, period } => {
                let mut s = format!("PULSE({v1:e} {v2:e} {delay:e} {rise:e} {fall:e}");
                if width.is_finite() {
                    write!(s, " {width:e}").expect("write to string");
                    if period.is_finite() {
                        write!(s, " {period:e}").expect("write to string");
                    }
                }
                s.push(')');
                Some(s)
            }
            Waveform::Sin { vo, va, freq_hz, delay, theta } => {
                Some(format!("SIN({vo:e} {va:e} {freq_hz:e} {delay:e} {theta:e})"))
            }
            Waveform::Pwl { points } => {
                let mut s = String::from("PWL(");
                for (i, (t, v)) in points.iter().enumerate() {
                    if i > 0 {
                        s.push(' ');
                    }
                    write!(s, "{t:e} {v:e}").expect("write to string");
                }
                s.push(')');
                Some(s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc { value: 2.5 };
        assert_eq!(w.eval(-1.0), 2.5);
        assert_eq!(w.eval(0.0), 2.5);
        assert_eq!(w.eval(1e9), 2.5);
        assert_eq!(w.to_spice_args(), None);
    }

    #[test]
    fn pulse_edges_and_repetition() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1.0,
            rise: 0.5,
            fall: 0.25,
            width: 2.0,
            period: 10.0,
        };
        assert_eq!(w.eval(0.0), 0.0);
        assert_eq!(w.eval(1.0), 0.0); // delay boundary holds v1
        assert!((w.eval(1.25) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.eval(2.0), 1.0); // plateau
        assert!((w.eval(3.625) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.eval(5.0), 0.0); // back at v1
        assert!((w.eval(11.25) - 0.5).abs() < 1e-12); // next period
    }

    #[test]
    fn ideal_step_pulse() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: f64::INFINITY,
            period: f64::INFINITY,
        };
        assert_eq!(w.eval(0.0), 0.0, "t = 0 holds the initial value");
        assert_eq!(w.eval(1e-15), 1.0, "any t > 0 is at v2");
        assert_eq!(w.eval(1e6), 1.0, "infinite width never falls");
        assert_eq!(w.initial_value(), 0.0);
    }

    #[test]
    fn sin_holds_then_oscillates() {
        let w = Waveform::Sin { vo: 1.0, va: 2.0, freq_hz: 50.0, delay: 0.1, theta: 3.0 };
        assert_eq!(w.eval(0.05), 1.0, "holds vo before delay");
        let t = 0.1 + 0.004;
        let expect =
            1.0 + 2.0 * (-3.0f64 * 0.004).exp() * (2.0 * std::f64::consts::PI * 50.0 * 0.004).sin();
        assert!((w.eval(t) - expect).abs() < 1e-12);
    }

    #[test]
    fn pwl_clamps_and_interpolates() {
        let w = Waveform::Pwl { points: vec![(0.0, 0.0), (1.0, 2.0), (3.0, -2.0)] };
        assert_eq!(w.eval(-5.0), 0.0);
        assert_eq!(w.eval(0.5), 1.0);
        assert_eq!(w.eval(1.0), 2.0);
        assert_eq!(w.eval(2.0), 0.0);
        assert_eq!(w.eval(99.0), -2.0);
    }

    #[test]
    fn spice_args_round_trip_shapes() {
        let step = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: f64::INFINITY,
            period: f64::INFINITY,
        };
        assert_eq!(step.to_spice_args().unwrap(), "PULSE(0e0 1e0 0e0 0e0 0e0)");
        let full = Waveform::Pulse {
            v1: 0.0,
            v2: 5.0,
            delay: 1e-6,
            rise: 1e-9,
            fall: 1e-9,
            width: 1e-6,
            period: 4e-6,
        };
        assert!(full.to_spice_args().unwrap().starts_with("PULSE(0e0 5e0 1e-6 1e-9 1e-9 1e-6"));
        let pwl = Waveform::Pwl { points: vec![(0.0, 0.0), (1e-6, 1.0)] };
        assert_eq!(pwl.to_spice_args().unwrap(), "PWL(0e0 0e0 1e-6 1e0)");
    }
}
