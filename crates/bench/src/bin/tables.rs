//! Prints every table and figure of the paper in paper-like format.
//!
//! ```text
//! cargo run --release -p refgen-bench --bin tables
//! ```

use refgen_bench::{
    ablation_grid_vs_adaptive, ablation_threads, compare_solvers, fig2, solver_roster,
    standard_spec, table1, tables_2_3,
};
use refgen_core::{PolyKind, RefgenConfig};

fn main() {
    print_table1();
    print_tables_2_3();
    print_fig2();
    print_ablation();
    print_thread_scaling();
    print_solver_comparison();
}

fn print_table1() {
    let t = table1();
    println!("==============================================================");
    println!("Table 1a — OTA transfer-function coefficients, interpolation");
    println!("points on the unit circle (NO scaling): round-off failure");
    println!("==============================================================");
    println!("{:>4} {:>28} {:>28}", "s^i", "Numerator", "Denominator");
    let n = t.unscaled.denominator.normalized.len();
    for i in 0..n {
        let num = t.unscaled.denormalized(PolyKind::Numerator, i);
        let den = t.unscaled.denormalized(PolyKind::Denominator, i);
        println!(
            "{:>4} {:>28} {:>28}",
            format!("s{i}"),
            num.map(|c| format!("{c:.4}")).unwrap_or_default(),
            den.map(|c| format!("{c:.4}")).unwrap_or_default(),
        );
    }
    let (lo, hi) = t.unscaled.denominator.region.expect("window exists");
    println!("--> valid region without scaling: p{lo}..p{hi} only\n");

    println!("==============================================================");
    println!("Table 1b — OTA normalized coefficients, frequency scale 1e9");
    println!("(* marks coefficients above the error level = valid)");
    println!("==============================================================");
    println!("{:>4}  {:>30} {:>30}", "s^i", "Numerator (normalized)", "Denominator (normalized)");
    for i in 0..n {
        let num = t.scaled.numerator.normalized_at(i);
        let den = t.scaled.denominator.normalized_at(i);
        let nv = t.scaled.numerator.is_valid(i);
        let dv = t.scaled.denominator.is_valid(i);
        println!(
            "{:>4}  {:>29}{} {:>29}{}",
            format!("s{i}"),
            num.map(|c| format!("{c:.4}")).unwrap_or_default(),
            if nv { "*" } else { " " },
            den.map(|c| format!("{c:.4}")).unwrap_or_default(),
            if dv { "*" } else { " " },
        );
    }
    let (lo, hi) = t.scaled.denominator.region.expect("window exists");
    println!("--> valid denominator region with f = 1e9: p{lo}..p{hi}\n");
}

fn print_tables_2_3() {
    let e = tables_2_3();
    println!("==============================================================");
    println!("Tables 2–3 — µA741 denominator coefficients per adaptive");
    println!("interpolation (normalized and denormalized)");
    println!("==============================================================");
    println!(
        "order bound {} → effective degree {:?}; admittance degree M = {}",
        e.network.report.denominator.order_bound,
        e.network.denominator.degree(),
        e.network.report.admittance_degree,
    );
    for (k, it) in e.iterations.iter().enumerate() {
        println!(
            "\n-- interpolation {} : f = {:.4e}, g = {:.4e}, {} points{} --",
            k + 1,
            it.scale.f,
            it.scale.g,
            it.points,
            if it.reduced { " (reduced, eq. 17)" } else { "" },
        );
        match it.region {
            Some((lo, hi)) => {
                println!("   valid region: s^{lo} .. s^{hi}");
                println!("{:>5} {:>28} {:>28}", "s^i", "Normalized", "Denormalized");
                for &(i, norm, den) in &it.coefficients {
                    println!(
                        "{:>5} {:>28} {:>28}",
                        format!("s{i}"),
                        format!("{:.5}", norm.re()),
                        format!("{:.5}", den.re()),
                    );
                }
            }
            None => println!("   no valid region (stall probe)"),
        }
    }
    println!(
        "\ntotal interpolation points: {} with reduction, {} without (§3.3)",
        e.points_with_reduction, e.points_without_reduction
    );
    println!();
}

fn print_fig2() {
    let f = fig2(100);
    println!("==============================================================");
    println!("Fig. 2 — µA741 voltage-gain Bode: interpolated vs simulator");
    println!("==============================================================");
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12}",
        "freq (Hz)", "mag_int(dB)", "mag_sim(dB)", "ph_int(deg)", "ph_sim(deg)"
    );
    for i in (0..f.interpolated.freqs_hz.len()).step_by(5) {
        println!(
            "{:>12.3e} {:>12.3} {:>12.3} {:>12.1} {:>12.1}",
            f.interpolated.freqs_hz[i],
            f.interpolated.mag_db[i],
            f.simulator.mag_db[i],
            f.interpolated.phase_deg[i],
            f.simulator.phase_deg[i],
        );
    }
    println!(
        "--> worst discrepancy: {:.3e} dB magnitude, {:.3e}° phase (\"perfect matching\")\n",
        f.max_mag_err_db, f.max_phase_err_deg
    );
}

fn print_ablation() {
    let pts = ablation_grid_vs_adaptive(&[8, 16, 24, 32, 40]);
    println!("==============================================================");
    println!("Ablation — adaptive (§3.2) vs multi-scale grid (§3.1), RC");
    println!("ladders, denominator recovery cost in interpolation points");
    println!("==============================================================");
    println!(
        "{:>6} {:>16} {:>16} {:>18} {:>12}",
        "order", "adaptive pts", "adaptive wins", "smallest full grid", "grid pts"
    );
    for p in pts {
        println!(
            "{:>6} {:>16} {:>16} {:>18} {:>12}",
            p.order,
            p.adaptive_points,
            p.adaptive_windows,
            p.grid_count.map(|c| c.to_string()).unwrap_or_else(|| "none ≤64".into()),
            p.grid_points.map(|c| c.to_string()).unwrap_or_else(|| "—".into()),
        );
    }
    println!();
}

fn print_thread_scaling() {
    let pts = ablation_threads(&[1, 2, 4, 0]);
    println!("==============================================================");
    println!("Thread scaling — µA741 denominator recovery on the batched");
    println!("plan/execute sampling engine (bit-identical output per row)");
    println!("==============================================================");
    println!(
        "{:>8} {:>12} {:>8} {:>14} {:>10}",
        "threads", "wall (ms)", "points", "refactor hits", "degree"
    );
    let base = pts[0].wall.as_secs_f64();
    for p in pts {
        let label = if p.threads == 0 { "auto".to_string() } else { p.threads.to_string() };
        println!(
            "{:>8} {:>12.2} {:>8} {:>14} {:>10}  ({:.2}x)",
            label,
            p.wall.as_secs_f64() * 1e3,
            p.total_points,
            p.refactor_hits,
            p.degree.map(|d| d.to_string()).unwrap_or_else(|| "zero".into()),
            base / p.wall.as_secs_f64(),
        );
    }
    println!();
}

fn print_solver_comparison() {
    println!("==============================================================");
    println!("Solver roster — every method on every benchmark circuit, via");
    println!("the common Solver trait (degree / points / pivot-order reuse");
    println!("/ typed failure)");
    println!("==============================================================");
    let spec = standard_spec();
    let roster = solver_roster(RefgenConfig::default());
    println!(
        "{:>14} {:>18} {:>10} {:>8} {:>8}  outcome",
        "circuit", "method", "degree", "points", "hits"
    );
    for (name, circuit) in [
        ("ladder12", refgen_circuit::library::rc_ladder(12, 1e3, 1e-9)),
        ("ota", refgen_circuit::library::positive_feedback_ota()),
        ("ua741", refgen_circuit::library::ua741()),
    ] {
        for o in compare_solvers(&circuit, &spec, &roster) {
            match &o.result {
                Ok(s) => println!(
                    "{:>14} {:>18} {:>10} {:>8} {:>8}  ok{}",
                    name,
                    o.method,
                    s.network
                        .denominator
                        .degree()
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "zero".into()),
                    s.total_points(),
                    s.refactor_hits(),
                    if s.warnings().next().is_some() { " (with warnings)" } else { "" },
                ),
                Err(e) => println!(
                    "{:>14} {:>18} {:>10} {:>8} {:>8}  failed: {e}",
                    name, o.method, "—", "—", "—"
                ),
            }
        }
    }
    println!();
}
