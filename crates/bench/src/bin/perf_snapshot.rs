//! Measures the sampling hot path and writes the perf trajectory to
//! `BENCH_sampling.json` at the repository root — the baseline future PRs
//! regress against.
//!
//! ```text
//! cargo run --release -p refgen_bench --bin perf_snapshot            # full run
//! cargo run --release -p refgen_bench --bin perf_snapshot -- --quick # smoke
//! cargo run --release -p refgen_bench --bin perf_snapshot -- out.json
//! ```

use refgen_bench::perf_snapshot;

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag} (supported: --quick [output-path])");
                std::process::exit(2);
            }
            path => out = Some(path.to_string()),
        }
    }
    // Default output: the repository root, independent of the invocation
    // directory (the manifest dir is crates/bench).
    let out =
        out.unwrap_or_else(|| format!("{}/../../BENCH_sampling.json", env!("CARGO_MANIFEST_DIR")));

    let snapshot = perf_snapshot(quick);
    println!("{:<38} {:>14} {:>8} {:>6}", "row", "ns/point", "points", "reps");
    for r in &snapshot.rows {
        println!("{:<38} {:>14.1} {:>8} {:>6}", r.name, r.median_ns_per_point, r.points, r.reps);
    }
    let ua741 =
        snapshot.ns("window_ua741_pr3_planned") / snapshot.ns("window_ua741_compiled_mirrored");
    println!("\nµA741 window sampling speedup vs PR 3 planned path: {ua741:.2}×");

    std::fs::write(&out, snapshot.to_json()).expect("write trajectory");
    println!("wrote {out}");
}
