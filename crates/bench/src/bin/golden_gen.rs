//! Regenerates the golden reference curves under `tests/golden/`.
//!
//! ```text
//! cargo run --release -p refgen_bench --bin golden_gen
//! ```
//!
//! Each golden case is a self-contained netlist (`<name>.sp`, built on the
//! `.SUBCKT` building-block library) whose `.AC` card fixes the frequency
//! grid and whose `.TF` card fixes the transfer function, plus a committed
//! JSON curve (`<name>.json`) computed by the independent per-frequency LU
//! path ([`AcAnalysis`]) — the trusted oracle the interpolation engine is
//! validated against throughout the workspace. The root test
//! `tests/golden_curves.rs` requires every `Solver` to reproduce these
//! curves within the stored tolerances.
//!
//! Regenerate only when a golden circuit is deliberately changed; the JSON
//! files are committed so CI compares against a fixed reference.

use refgen_circuit::library::netlist_with_library;
use refgen_circuit::parse_netlist;
use refgen_core::{AdaptiveInterpolator, RefgenConfig};
use refgen_mna::{AcAnalysis, TransferSpec};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Which solver set the golden test must run against a case.
enum SolverSet {
    /// Every `Solver` implementation, including the unit-circle baseline —
    /// only sensible for normalized circuits whose coefficient spread is
    /// within the unit circle's reach.
    All,
    /// The solvers designed for wide coefficient spread (adaptive,
    /// static-scaling, multi-scale-grid). The unit-circle baseline is the
    /// paper's designed round-off failure on such circuits and is excluded.
    Scaled,
    /// Only the independent per-frequency AC path (circuits with
    /// inductors, which the interpolation engine rejects by design).
    AcOnly,
}

struct GoldenCase {
    name: &'static str,
    /// Top-level fragment appended to the `.SUBCKT` library.
    top: &'static str,
    solvers: SolverSet,
    tol_mag_db: f64,
    tol_phase_deg: f64,
}

const CASES: &[GoldenCase] = &[
    GoldenCase {
        name: "sallen_key",
        top: "* Sallen-Key biquad on the opamp macromodel (f0 ~ 12.7 kHz)\n\
              VIN in 0 AC 1\n\
              X1 in out sallen_key\n\
              RL out 0 1meg\n\
              .ac dec 10 100 1meg\n\
              .tf V(out) VIN\n\
              .end\n",
        solvers: SolverSet::Scaled,
        tol_mag_db: 1e-9,
        tol_phase_deg: 1e-9,
    },
    GoldenCase {
        name: "rc_cascade",
        top: "* two cascaded 4-section RC ladders, staggered corners\n\
              VIN in 0 AC 1\n\
              X1 in mid rc_lowpass\n\
              X2 mid out rc_lowpass r=2k c=500p\n\
              .ac dec 10 1k 10meg\n\
              .tf V(out) VIN\n\
              .end\n",
        solvers: SolverSet::Scaled,
        tol_mag_db: 1e-9,
        tol_phase_deg: 1e-9,
    },
    GoldenCase {
        name: "rc_prototype",
        top: "* normalized 4-section RC ladder (1 rad/s sections): small\n\
              * coefficient spread, within the unit-circle baseline's reach\n\
              VIN in 0 AC 1\n\
              X1 in out rc_lowpass r=1 c=1\n\
              .ac dec 10 0.01 10\n\
              .tf V(out) VIN\n\
              .end\n",
        solvers: SolverSet::All,
        tol_mag_db: 1e-9,
        tol_phase_deg: 1e-9,
    },
    GoldenCase {
        name: "rlc_butterworth",
        top: "* 3rd-order Butterworth LC ladder, 100 kHz cutoff\n\
              VIN in 0 AC 1\n\
              X1 in out rlc_lowpass\n\
              .ac dec 10 1k 10meg\n\
              .tf V(out) VIN\n\
              .end\n",
        solvers: SolverSet::AcOnly,
        tol_mag_db: 1e-9,
        tol_phase_deg: 1e-9,
    },
];

/// A transient golden case: a self-contained netlist whose `.TRAN` card
/// fixes the time axis and whose `.TF` card names the transfer function;
/// the committed curve is the closed-form
/// [`PartialFractions::step_response`](refgen_core::PartialFractions::step_response)
/// of the symbolically recovered network function — the same oracle the
/// root transient tier converges against. The golden test requires the
/// companion-model stepper to track it within `tol_v`.
struct TranGoldenCase {
    name: &'static str,
    source: &'static str,
    tol_v: f64,
}

const TRAN_CASES: &[TranGoldenCase] = &[TranGoldenCase {
    name: "rc_step_tran",
    source: "* single-pole RC step: v(out) = 1 - e^(-t/tau), tau = 1 us\n\
             VIN in 0 AC 1 PULSE(0 1)\n\
             R1 in out 1k\n\
             C1 out 0 1n\n\
             .tran 5e-8 8e-6\n\
             .tf V(out) VIN\n\
             .end\n",
    tol_v: 1e-3,
}];

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn json_array(values: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "{v:e}").expect("write to string");
    }
    out.push(']');
    out
}

fn main() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for case in CASES {
        let source = netlist_with_library(case.top);
        let netlist = parse_netlist(&source).expect("golden netlist parses");
        netlist.circuit.validate().expect("golden netlist validates");
        let ac_card = netlist.analysis.ac().expect("golden netlist has .AC card");
        let tf_card = netlist.analysis.tf().expect("golden netlist has .TF card");
        let ac =
            AcAnalysis::new(&netlist.circuit, TransferSpec::from(tf_card)).expect("MNA assembly");
        let points = ac.sweep_card(ac_card).expect("AC sweep");

        let freq: Vec<f64> = points.iter().map(|p| p.freq_hz).collect();
        let mag: Vec<f64> = points.iter().map(|p| p.mag_db()).collect();
        let phase: Vec<f64> = points.iter().map(|p| p.phase_deg()).collect();
        let solvers = match case.solvers {
            SolverSet::All => "all",
            SolverSet::Scaled => "scaled",
            SolverSet::AcOnly => "ac",
        };
        let json = format!(
            "{{\n  \"schema\": \"refgen-golden/v1\",\n  \"name\": \"{}\",\n  \
             \"solvers\": \"{}\",\n  \"tol_mag_db\": {:e},\n  \"tol_phase_deg\": {:e},\n  \
             \"freq_hz\": {},\n  \"mag_db\": {},\n  \"phase_deg\": {}\n}}\n",
            case.name,
            solvers,
            case.tol_mag_db,
            case.tol_phase_deg,
            json_array(&freq),
            json_array(&mag),
            json_array(&phase),
        );
        std::fs::write(dir.join(format!("{}.sp", case.name)), &source).expect("write .sp");
        std::fs::write(dir.join(format!("{}.json", case.name)), &json).expect("write .json");
        println!("wrote {} ({} points, solvers={})", case.name, freq.len(), solvers);
    }

    for case in TRAN_CASES {
        let netlist = parse_netlist(case.source).expect("tran golden parses");
        netlist.circuit.validate().expect("tran golden validates");
        let tran = netlist.analysis.tran().expect("tran golden has .TRAN card");
        let tf_card = netlist.analysis.tf().expect("tran golden has .TF card");
        let pf = AdaptiveInterpolator::new(RefgenConfig::default())
            .network_function(&netlist.circuit, &TransferSpec::from(tf_card))
            .expect("symbolic solve")
            .partial_fractions()
            .expect("distinct poles");
        let times = tran.times();
        let v_out: Vec<f64> = times.iter().map(|&t| pf.step_response(t)).collect();
        let json = format!(
            "{{\n  \"schema\": \"refgen-golden-tran/v1\",\n  \"name\": \"{}\",\n  \
             \"tol_v\": {:e},\n  \"time_s\": {},\n  \"v_out\": {}\n}}\n",
            case.name,
            case.tol_v,
            json_array(&times),
            json_array(&v_out),
        );
        std::fs::write(dir.join(format!("{}.sp", case.name)), case.source).expect("write .sp");
        std::fs::write(dir.join(format!("{}.json", case.name)), &json).expect("write .json");
        println!("wrote {} ({} transient points)", case.name, times.len());
    }
}
