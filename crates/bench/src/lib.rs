//! Experiment runners regenerating every table and figure of the paper.
//!
//! Each function produces the data behind one artifact; the `tables` binary
//! prints them in paper format and the Criterion benches measure their
//! cost. Everything runs through the [`Solver`]/[`Session`] API of
//! `refgen_core`: the adaptive algorithm and the three conventional
//! baselines are interchangeable `&dyn Solver`s, and [`compare_solvers`]
//! is the one loop that runs any roster of methods over a circuit — the
//! experiment-specific runners below are thin wrappers around it plus the
//! window-level data the paper tables print. See `DESIGN.md` §5 for the
//! experiment index and `EXPERIMENTS.md` for recorded paper-vs-measured
//! outcomes.

use refgen_circuit::library::{positive_feedback_ota, rc_ladder, ua741};
use refgen_circuit::Circuit;
use refgen_core::baseline::{
    multi_scale_grid, MultiScaleGridSolver, StaticInterpolation, StaticScalingSolver,
    UnitCircleSolver,
};
use refgen_core::{
    NetworkFunction, PolyKind, RefgenConfig, RefgenError, Session, Solution, Solver,
};
use refgen_mna::{log_space, unwrap_phase, AcAnalysis, Scale, TransferSpec};
use refgen_numeric::ExtComplex;

/// The standard transfer spec used by every library circuit.
pub fn standard_spec() -> TransferSpec {
    TransferSpec::voltage_gain("VIN", "out")
}

/// The paper's iteration-structure configuration: `verify = false` mirrors
/// the paper exactly (it does not re-verify windows), keeping interpolation
/// counts comparable with Tables 2–3.
pub fn paper_config() -> RefgenConfig {
    RefgenConfig::builder().verify(false).build()
}

/// Every method this workspace implements, over one configuration — the
/// roster [`compare_solvers`] and the benches iterate.
///
/// The grid solver's span (1e3..1e15, 16 points) matches the ablation
/// experiments' historical choice.
pub fn solver_roster(config: RefgenConfig) -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(refgen_core::AdaptiveInterpolator::new(config)),
        Box::new(UnitCircleSolver::new(config)),
        Box::new(StaticScalingSolver::heuristic(config)),
        Box::new(MultiScaleGridSolver::new(1e3, 1e15, 16, config)),
    ]
}

/// One row of a solver comparison.
pub struct SolverOutcome {
    /// [`Solver::name`] of the method.
    pub method: &'static str,
    /// The solution, or the typed failure (baselines legitimately fail on
    /// circuits whose coefficient spread exceeds their reach).
    pub result: Result<Solution, RefgenError>,
}

impl SolverOutcome {
    /// Interpolation points spent, when the method succeeded.
    pub fn total_points(&self) -> Option<usize> {
        self.result.as_ref().ok().map(|s| s.total_points())
    }

    /// Sampling points that reused a recorded pivot order, when the method
    /// succeeded — the plan/execute engine's cheap-path share.
    pub fn refactor_hits(&self) -> Option<u64> {
        self.result.as_ref().ok().map(|s| s.refactor_hits())
    }
}

/// Runs every solver of `roster` on one circuit/spec — the single loop
/// that replaced the per-method copy-pasted runners.
pub fn compare_solvers(
    circuit: &Circuit,
    spec: &TransferSpec,
    roster: &[Box<dyn Solver>],
) -> Vec<SolverOutcome> {
    roster
        .iter()
        .map(|solver| SolverOutcome {
            method: solver.name(),
            result: Session::for_circuit(circuit).spec(spec.clone()).solver(solver).solve(),
        })
        .collect()
}

/// Table 1 data: the OTA's coefficients under (a) plain unit-circle
/// interpolation and (b) a fixed 1e9 frequency scaling.
pub struct Table1 {
    /// The circuit (Fig. 1 equivalent).
    pub circuit: Circuit,
    /// (a): unscaled interpolation of numerator and denominator.
    pub unscaled: StaticInterpolation,
    /// (b): frequency scale factor 1e9, conductance scale 1.
    pub scaled: StaticInterpolation,
}

/// Runs the Table 1 experiment through the two baseline solver types.
///
/// # Panics
///
/// Panics if the library OTA fails to interpolate (a bug, covered by tests).
pub fn table1() -> Table1 {
    let circuit = positive_feedback_ota();
    let spec = standard_spec();
    let cfg = RefgenConfig::default();
    let unscaled =
        UnitCircleSolver::new(cfg).interpolation(&circuit, &spec).expect("OTA interpolates");
    let scaled = StaticScalingSolver::with_scale(Scale::new(1e9, 1.0), cfg)
        .interpolation(&circuit, &spec)
        .expect("OTA interpolates");
    Table1 { circuit, unscaled, scaled }
}

/// One adaptive iteration of the Tables 2–3 experiment: the scale factors
/// chosen, the points spent, and the valid region's normalized and
/// denormalized coefficients.
pub struct Ua741Iteration {
    /// Scale factors of this interpolation.
    pub scale: Scale,
    /// Interpolation points spent (shrinks under eq. (17) reduction).
    pub points: usize,
    /// Whether reduction was applied.
    pub reduced: bool,
    /// Valid region (global indices).
    pub region: Option<(usize, usize)>,
    /// `(index, normalized, denormalized)` for the valid region.
    pub coefficients: Vec<(usize, ExtComplex, ExtComplex)>,
}

/// Tables 2–3 data: the µA741 denominator across adaptive iterations.
pub struct Ua741Experiment {
    /// The circuit.
    pub circuit: Circuit,
    /// Iterations in execution order.
    pub iterations: Vec<Ua741Iteration>,
    /// The final denominator.
    pub network: NetworkFunction,
    /// Total interpolation points with reduction on.
    pub points_with_reduction: usize,
    /// Total points with reduction off (the §3.3 comparison).
    pub points_without_reduction: usize,
}

/// Runs the Tables 2–3 experiment on the µA741-class opamp.
///
/// Uses [`paper_config`] so the interpolation count matches the paper's
/// structure.
///
/// # Panics
///
/// Panics if reference generation fails on the library µA741.
pub fn tables_2_3() -> Ua741Experiment {
    let circuit = ua741();
    let spec = standard_spec();
    let cfg = paper_config();
    let network = Session::for_circuit(&circuit)
        .spec(spec.clone())
        .config(cfg)
        .solve()
        .expect("µA741 interpolates")
        .network;

    // Re-run a full static interpolation at each recorded scale to obtain
    // the per-window coefficient values in paper-table form.
    let mut iterations = Vec::new();
    for w in &network.report.denominator.windows {
        let si = StaticScalingSolver::with_scale(w.scale, cfg)
            .interpolation(&circuit, &spec)
            .expect("window scale re-interpolates");
        let mut coefficients = Vec::new();
        if let Some((lo, hi)) = w.region {
            for i in lo..=hi {
                let norm = si.denominator.normalized_at(i).expect("in range");
                let den = si.denormalized(PolyKind::Denominator, i).expect("in range");
                coefficients.push((i, norm, den));
            }
        }
        iterations.push(Ua741Iteration {
            scale: w.scale,
            points: w.points,
            reduced: w.reduced,
            region: w.region,
            coefficients,
        });
    }

    let no_reduce = Session::for_circuit(&circuit)
        .spec(spec)
        .config(RefgenConfig::builder().verify(false).reduce(false).build())
        .solve_polynomial(PolyKind::Denominator)
        .expect("µA741 interpolates unreduced")
        .1;

    Ua741Experiment {
        circuit,
        points_with_reduction: network.report.denominator.total_points,
        points_without_reduction: no_reduce.total_points,
        iterations,
        network,
    }
}

/// One Bode series of the Fig. 2 experiment.
pub struct BodeSeries {
    /// Frequencies, hertz.
    pub freqs_hz: Vec<f64>,
    /// Magnitude, dB.
    pub mag_db: Vec<f64>,
    /// Unwrapped phase, degrees.
    pub phase_deg: Vec<f64>,
}

/// Fig. 2 data: µA741 voltage-gain Bode from interpolated coefficients and
/// from the independent AC simulator, 1 Hz – 100 MHz.
pub struct Fig2 {
    /// From the recovered `N(s)/D(s)`.
    pub interpolated: BodeSeries,
    /// From the AC simulator (the "commercial electrical simulator" stand-in).
    pub simulator: BodeSeries,
    /// Worst magnitude discrepancy, dB.
    pub max_mag_err_db: f64,
    /// Worst phase discrepancy, degrees.
    pub max_phase_err_deg: f64,
}

/// Runs the Fig. 2 experiment with `n` log-spaced points.
///
/// # Panics
///
/// Panics if either evaluation path fails on the library µA741.
pub fn fig2(n: usize) -> Fig2 {
    let circuit = ua741();
    let spec = standard_spec();
    let nf = Session::for_circuit(&circuit)
        .spec(spec.clone())
        .solve()
        .expect("µA741 interpolates")
        .network;
    let freqs = log_space(1.0, 1e8, n);
    let interp_raw = nf.bode(&freqs);
    let ac = AcAnalysis::new(&circuit, spec).expect("valid circuit");
    let sim_pts = ac.sweep(&freqs).expect("AC sweep succeeds");

    let interp_mag: Vec<f64> = interp_raw.iter().map(|&(_, m, _)| m).collect();
    let interp_phase = unwrap_phase(&interp_raw.iter().map(|&(_, _, p)| p).collect::<Vec<_>>());
    let sim_mag: Vec<f64> = sim_pts.iter().map(|p| p.mag_db()).collect();
    let sim_phase = unwrap_phase(&sim_pts.iter().map(|p| p.phase_deg()).collect::<Vec<_>>());

    let max_mag_err_db =
        interp_mag.iter().zip(&sim_mag).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
    let max_phase_err_deg =
        interp_phase.iter().zip(&sim_phase).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);

    Fig2 {
        interpolated: BodeSeries {
            freqs_hz: freqs.clone(),
            mag_db: interp_mag,
            phase_deg: interp_phase,
        },
        simulator: BodeSeries { freqs_hz: freqs, mag_db: sim_mag, phase_deg: sim_phase },
        max_mag_err_db,
        max_phase_err_deg,
    }
}

/// Ablation data point: adaptive vs. the §3.1 multi-scale grid on a ladder.
pub struct AblationPoint {
    /// Ladder order.
    pub order: usize,
    /// Adaptive: total interpolation points.
    pub adaptive_points: usize,
    /// Adaptive: number of interpolations.
    pub adaptive_windows: usize,
    /// Grid: points needed by the smallest complete grid (or `None` if no
    /// tried grid covered everything).
    pub grid_points: Option<usize>,
    /// Grid size that first achieved completeness.
    pub grid_count: Option<usize>,
}

/// Runs the grid-vs-adaptive ablation across ladder orders.
///
/// # Panics
///
/// Panics if the adaptive algorithm fails on a uniform ladder (covered by
/// tests).
pub fn ablation_grid_vs_adaptive(orders: &[usize]) -> Vec<AblationPoint> {
    let spec = standard_spec();
    let cfg = paper_config();
    orders
        .iter()
        .map(|&n| {
            let c = rc_ladder(n, 1e3, 1e-9);
            let rep = Session::for_circuit(&c)
                .spec(spec.clone())
                .config(cfg)
                .solve_polynomial(PolyKind::Denominator)
                .expect("ladder interpolates")
                .1;
            // Grow the grid until complete (or give up at 64).
            let mut grid_points = None;
            let mut grid_count = None;
            for count in 2..=64usize {
                let g = multi_scale_grid(&c, &spec, 1e3, 1e15, count, &cfg).expect("grid runs");
                if g.complete() {
                    grid_points = Some(g.total_points);
                    grid_count = Some(count);
                    break;
                }
            }
            AblationPoint {
                order: n,
                adaptive_points: rep.total_points,
                adaptive_windows: rep.windows.len(),
                grid_points,
                grid_count,
            }
        })
        .collect()
}

/// The dominant per-iteration cost of the Tables 2–3 experiment: `points`
/// sparse LU factorizations (one determinant per unit-circle sample) of the
/// µA741 MNA matrix at the given scale. Benchmarked at the actual point
/// counts of the three adaptive iterations (41 → ~24 → ~6 under eq. (17))
/// this reproduces the paper's decreasing per-iteration CPU times
/// (3.9 s / 2.3 s / 0.9 s on their SPARCstation-10).
///
/// This is the *unplanned* cost (a full Markowitz factorization per point,
/// what the engine paid before the plan/execute refactor); compare
/// [`ua741_sampling_cost_planned`].
///
/// Returns a checksum so the optimizer cannot elide the work.
///
/// # Panics
///
/// Panics if the system cannot be compiled (covered by tests).
pub fn ua741_sampling_cost(system: &refgen_mna::MnaSystem, scale: Scale, points: usize) -> f64 {
    let sigmas = refgen_numeric::dft::unit_circle_points(points);
    let mut acc = 0.0;
    for sigma in sigmas {
        let d = system.det(sigma, scale).expect("determinant evaluates");
        acc += d.norm().log2();
    }
    acc
}

/// Plan/execute variant of [`ua741_sampling_cost`]: the same determinant
/// samples through one compiled [`refgen_mna::SweepPlan`] (one pivot
/// search at plan build, numeric refactorization per point) executed on
/// `threads` scoped workers (`0` = available parallelism) with one
/// [`refgen_mna::SweepScratch`] each — exactly what the engine's window
/// sampling does. Returns the same checksum as the unplanned variant.
pub fn ua741_sampling_cost_planned(
    system: &refgen_mna::MnaSystem,
    scale: Scale,
    points: usize,
    threads: usize,
) -> f64 {
    let plan = refgen_mna::SweepPlan::for_determinant(system, scale);
    let sigmas = refgen_numeric::dft::unit_circle_points(points);
    let parts = refgen_exec::par_map_indexed(
        threads,
        &sigmas,
        refgen_mna::SweepScratch::new,
        |_, &sigma, scratch| plan.eval_det(sigma, scratch).norm().log2(),
    );
    parts.iter().sum()
}

/// One measurement of the thread-scaling ablation: a full µA741
/// denominator recovery at a fixed sampling thread count.
pub struct ThreadScalingPoint {
    /// The `RefgenConfig::threads` knob (`0` = auto).
    pub threads: usize,
    /// Wall-clock time of the recovery.
    pub wall: std::time::Duration,
    /// Total interpolation points spent (identical across thread counts).
    pub total_points: usize,
    /// Sampling points that reused a recorded pivot order (identical
    /// across thread counts — the counter is deterministic).
    pub refactor_hits: u64,
    /// Recovered degree (identical across thread counts).
    pub degree: Option<usize>,
}

/// Runs the thread-scaling ablation: the µA741 denominator recovery once
/// per requested thread count. Output polynomials are bit-identical across
/// counts (CI asserts this separately); only wall-clock time may differ.
///
/// # Panics
///
/// Panics if reference generation fails on the library µA741.
pub fn ablation_threads(thread_counts: &[usize]) -> Vec<ThreadScalingPoint> {
    let circuit = ua741();
    let spec = standard_spec();
    thread_counts
        .iter()
        .map(|&threads| {
            let cfg = RefgenConfig::builder().verify(false).threads(threads).build();
            let start = std::time::Instant::now();
            let (poly, report) = Session::for_circuit(&circuit)
                .spec(spec.clone())
                .config(cfg)
                .solve_polynomial(PolyKind::Denominator)
                .expect("µA741 interpolates");
            ThreadScalingPoint {
                threads,
                wall: start.elapsed(),
                total_points: report.total_points,
                refactor_hits: report.refactor_hits,
                degree: poly.degree(),
            }
        })
        .collect()
}

/// Compiles the µA741 MNA system once (bench setup helper).
///
/// # Panics
///
/// Panics if the library circuit is invalid (covered by tests).
pub fn ua741_system() -> refgen_mna::MnaSystem {
    refgen_mna::MnaSystem::new(&ua741()).expect("library circuit is valid")
}

/// A seeded same-topology fleet of `count` ±5 % variants of `base` (the
/// Monte-Carlo workload shape of the fleet bench).
///
/// # Panics
///
/// Panics if variant generation fails (impossible for relative
/// tolerances below 100 %).
pub fn fleet_variants(base: &Circuit, count: usize, seed: u64) -> Vec<Circuit> {
    refgen_circuit::perturb::VariantSet::new(
        refgen_circuit::perturb::Perturbation::all_relative(0.05),
        count,
    )
    .seed(seed)
    .generate(base)
    .expect("relative tolerances keep values legal")
}

/// Solves a fleet **naively**: one independent `Session` per variant, so
/// every variant pays its own thread spawns and pivot searches — the
/// pre-batch-session baseline the fleet bench compares against.
///
/// # Panics
///
/// Panics if any variant fails to solve (covered by tests).
pub fn fleet_naive(
    variants: &[Circuit],
    spec: &TransferSpec,
    config: RefgenConfig,
) -> Vec<Solution> {
    variants
        .iter()
        .map(|c| {
            Session::for_circuit(c)
                .spec(spec.clone())
                .config(config)
                .solve()
                .expect("fleet variant solves")
        })
        .collect()
}

/// Solves a fleet as one **batch session** under `config` (pass an
/// [`ExecutorKind::Pool`](refgen_core::ExecutorKind) config for the full
/// amortization story): a shared runtime across all variants means
/// threads spawn once and pivot searches stay at the single-solve count.
///
/// # Panics
///
/// Panics if the fleet fails to solve (covered by tests).
pub fn fleet_batched(
    base: &Circuit,
    variants: &[Circuit],
    spec: &TransferSpec,
    config: RefgenConfig,
) -> refgen_core::BatchRun {
    Session::for_circuit(base)
        .spec(spec.clone())
        .config(config)
        .variant_circuits(variants)
        .solve_all()
        .expect("fleet batch solves")
}

/// One row of the [`perf_snapshot`] trajectory: a named hot-path
/// measurement in nanoseconds per evaluated point.
#[derive(Clone, Debug)]
pub struct PerfRow {
    /// Stable row identifier (`refactor_ua741_workspace`, …).
    pub name: String,
    /// Median over reps of (elapsed / points).
    pub median_ns_per_point: f64,
    /// Points evaluated per rep.
    pub points: usize,
    /// Timed repetitions the median is taken over.
    pub reps: usize,
}

/// The execution environment a snapshot was measured in: the CPU features
/// the batched kernel's runtime dispatch saw, and the lane width the
/// batched rows ran at. Recorded in `BENCH_sampling.json` so a trajectory
/// row is never compared across machines that vectorize differently.
#[derive(Clone, Copy, Debug)]
pub struct PerfEnv {
    /// AVX available (the batched complex multiply-subtract kernel's
    /// requirement; without it every lane runs the scalar fallback).
    pub avx: bool,
    /// AVX2 available.
    pub avx2: bool,
    /// FMA available (detected for the record only — the kernel never
    /// contracts, preserving bit-identity with scalar execution).
    pub fma: bool,
    /// AVX-512F available.
    pub avx512f: bool,
    /// Lane width the batched fleet rows ran at
    /// (`RefgenConfig::default().lane_width`, honoring `REFGEN_TEST_LANES`).
    pub lane_width: usize,
}

impl PerfEnv {
    /// Detects the current machine's relevant CPU features and the
    /// configured lane width.
    pub fn detect() -> PerfEnv {
        #[cfg(target_arch = "x86_64")]
        let (avx, avx2, fma, avx512f) = (
            std::arch::is_x86_feature_detected!("avx"),
            std::arch::is_x86_feature_detected!("avx2"),
            std::arch::is_x86_feature_detected!("fma"),
            std::arch::is_x86_feature_detected!("avx512f"),
        );
        #[cfg(not(target_arch = "x86_64"))]
        let (avx, avx2, fma, avx512f) = (false, false, false, false);
        PerfEnv { avx, avx2, fma, avx512f, lane_width: RefgenConfig::default().lane_width }
    }
}

/// The perf trajectory this repository records against (see
/// [`perf_snapshot`] and the `perf_snapshot` binary).
#[derive(Clone, Debug)]
pub struct PerfSnapshot {
    /// The machine/configuration the rows were measured on.
    pub env: PerfEnv,
    /// Every measured row.
    pub rows: Vec<PerfRow>,
}

impl PerfSnapshot {
    /// Median ns/point of a named row.
    ///
    /// # Panics
    ///
    /// Panics if the row was not measured.
    pub fn ns(&self, name: &str) -> f64 {
        self.rows.iter().find(|r| r.name == name).expect("row measured").median_ns_per_point
    }

    /// Median ns/point of a named row, or `None` when it was not measured
    /// (quick snapshots skip the larger mesh sizes).
    pub fn ns_opt(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.name == name).map(|r| r.median_ns_per_point)
    }

    /// Serializes as the `BENCH_sampling.json` trajectory format: a
    /// versioned schema, the raw rows, and derived speedups future PRs
    /// regress against.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"refgen-bench-sampling/v1\",\n");
        s.push_str(&format!(
            "  \"env\": {{\"avx\": {}, \"avx2\": {}, \"fma\": {}, \"avx512f\": {}, \
             \"lane_width\": {}}},\n",
            self.env.avx, self.env.avx2, self.env.fma, self.env.avx512f, self.env.lane_width,
        ));
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns_per_point\": {:.1}, \
                 \"points\": {}, \"reps\": {}}}{}\n",
                r.name,
                r.median_ns_per_point,
                r.points,
                r.reps,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n  \"derived\": {\n");
        let speedup = |a: &str, b: &str| self.ns(a) / self.ns(b);
        let mut derived: Vec<(&str, f64)> = vec![
            (
                "ladder_refactor_speedup_compiled_vs_workspace",
                speedup("refactor_ladder16_workspace", "refactor_ladder16_compiled"),
            ),
            (
                "ua741_refactor_speedup_compiled_vs_workspace",
                speedup("refactor_ua741_workspace", "refactor_ua741_compiled"),
            ),
            (
                "ladder_window_speedup_vs_pr3",
                speedup("window_ladder16_pr3_planned", "window_ladder16_compiled_mirrored"),
            ),
            (
                "ua741_window_speedup_vs_pr3",
                speedup("window_ua741_pr3_planned", "window_ua741_compiled_mirrored"),
            ),
            (
                "ua741_session_speedup_mirror_on_vs_off",
                speedup("session_ua741_mirror_off", "session_ua741_mirror_on"),
            ),
            ("fleet_batched_speedup", speedup("fleet_ua741x64_scalar", "fleet_ua741x64_batched")),
        ];
        // Mesh-scaling ratios only exist on full snapshots (quick mode
        // measures mesh256 alone), so they are appended conditionally.
        for nodes in [256usize, 1024, 4096] {
            if let (Some(direct), Some(gmres)) = (
                self.ns_opt(&format!("mesh{nodes}_amd_direct")),
                self.ns_opt(&format!("mesh{nodes}_amd_gmres")),
            ) {
                let name: &str = match nodes {
                    256 => "mesh256_hybrid_speedup_vs_direct",
                    1024 => "mesh1024_hybrid_speedup_vs_direct",
                    _ => "mesh4096_hybrid_speedup_vs_direct",
                };
                derived.push((name, direct / gmres));
            }
        }
        if let (Some(markowitz), Some(amd)) =
            (self.ns_opt("mesh4096_markowitz_direct"), self.ns_opt("mesh4096_amd_direct"))
        {
            derived.push(("mesh4096_amd_speedup_vs_markowitz", markowitz / amd));
        }
        for (i, (name, value)) in derived.iter().enumerate() {
            s.push_str(&format!(
                "    \"{name}\": {value:.2}{}\n",
                if i + 1 == derived.len() { "" } else { "," }
            ));
        }
        s.push_str("  }\n}\n");
        s
    }
}

/// Median ns per transient time step of `circuit` at fixed `dt`, measured
/// on the steady-state compiled path: the first step (which pays the run's
/// one numeric factorization, plus the trapezoidal primer) executes before
/// timing starts, so the figure is the marginal stamp-history → replay →
/// back-substitute cost the `TransientPlan` contract promises.
///
/// # Panics
///
/// Panics if the circuit cannot be assembled or the companion matrix is
/// singular (covered by the workspace tests for the library circuits).
pub fn transient_ns_per_step(
    circuit: &Circuit,
    dt: f64,
    steps: usize,
    method: refgen_mna::IntegrationMethod,
    reps: usize,
) -> f64 {
    let sys = refgen_mna::MnaSystem::new(circuit).expect("library circuit compiles");
    let plan = refgen_mna::TransientPlan::new(&sys, dt, method).expect("plan compiles");
    let mut state = plan.initial_state(0.0);
    let mut scratch = refgen_mna::TransientScratch::new();
    let mut k = 0u64;
    k += 1;
    plan.step(dt * k as f64, &mut state, &mut scratch).expect("first step factors");
    let (ns, _) = median_ns_per_point(reps, steps, || {
        for _ in 0..steps {
            k += 1;
            plan.step(dt * k as f64, &mut state, &mut scratch).expect("steady-state step");
        }
        state.solution()[0].re
    });
    assert_eq!(scratch.stats().refactor_hits, 1, "steady-state steps must not refactor");
    assert_eq!(scratch.stats().fresh_factorizations, 0);
    ns
}

/// Median of (elapsed ns / points) over `reps` runs of `work` (one warmup
/// run first).
fn median_ns_per_point(reps: usize, points: usize, mut work: impl FnMut() -> f64) -> (f64, f64) {
    let mut sink = work();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            sink += work();
            t0.elapsed().as_nanos() as f64 / points as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[samples.len() / 2], sink)
}

/// The affine stamp pattern `A(s) = K₀ + s·K₁` of `(sys, scale)` — the
/// same two-sample extraction `SweepPlan` performs, rebuilt here so the
/// snapshot can time the PR 3 workspace path and the compiled kernel on
/// identical inputs.
fn bench_affine_pattern(
    sys: &refgen_mna::MnaSystem,
    scale: Scale,
) -> Vec<(usize, usize, refgen_numeric::Complex, refgen_numeric::Complex)> {
    use refgen_numeric::Complex;
    let t0 = sys.assemble(Complex::ZERO, scale);
    let t1 = sys.assemble(Complex::ONE, scale);
    t0.entries()
        .iter()
        .zip(t1.entries())
        .map(|(&(r, c, v0), &(_, _, v1))| (r, c, v0, v1 - v0))
        .collect()
}

/// Measures the perf trajectory of the sampling hot path and returns the
/// snapshot the `perf_snapshot` binary writes to `BENCH_sampling.json`:
///
/// * `refactor_{circuit}_{workspace,compiled}` — median ns per
///   determinant-only refactorization point (the denominator-sampling
///   cost): the PR 3 planned path (triplet scatter +
///   `SparseLu::refactor_into`) versus the compiled symbolic kernel
///   (`FactorProgram::refactor_values`), identical pivot order and
///   values, no RHS solve in either;
/// * `window_{circuit}_{pr3_planned,compiled_mirrored}` — median ns per
///   *window point* of a full conjugate-paired unit-circle window of
///   refactor+solve work (the numerator-sampling cost): the PR 3 path
///   solves every point through the workspace, the current path solves
///   the closed upper half on the compiled kernel and takes each
///   remaining point as the conjugate of its actual partner — the two
///   rows perform identical per-point work, so their ratio is the
///   like-for-like window speedup;
/// * `fleet_ua741x64_{scalar,batched}` — a 64-variant same-topology
///   µA741 fleet sampled over one 40-point window, ns per
///   (variant, point) solve: per-variant sequential evaluation versus the
///   variant-major `FleetSampler` (all 64 variants as lanes of one
///   instruction-stream replay per point);
/// * `session_ua741_mirror_{on,off}` — full adaptive `Session` solves of
///   the µA741, ns per interpolation point, mirroring on versus forced
///   off.
///
/// The snapshot also records the [`PerfEnv`] (CPU feature flags seen by
/// the batched kernel's runtime dispatch, configured lane width).
/// `quick` shrinks repetition counts for compile-smoke runs.
///
/// # Panics
///
/// Panics if a library circuit fails to compile or probe (covered by the
/// workspace tests).
pub fn perf_snapshot(quick: bool) -> PerfSnapshot {
    use refgen_numeric::Complex;
    use refgen_sparse::{FactorProgram, LuWorkspace, ProgramScratch, SparseLu, Triplets};

    let reps = if quick { 5 } else { 60 };
    let mut rows = Vec::new();

    let circuits: [(&str, Circuit); 2] =
        [("ladder16", rc_ladder(16, 1e3, 1e-9)), ("ua741", ua741())];
    for (name, circuit) in &circuits {
        let sys = refgen_mna::MnaSystem::new(circuit).expect("library circuit compiles");
        let scale = Scale::new(1e9, 1e3);
        let pattern = bench_affine_pattern(&sys, scale);
        let dim = sys.dim();
        let rhs = sys.rhs();
        let points = 40usize;
        let sigmas = refgen_numeric::dft::unit_circle_points(points);

        // One probe pivot search, shared by both measured paths.
        let probe = Complex::new(1f64.cos(), 1f64.sin());
        let mut t = Triplets::new(dim);
        for &(r, c, k0, k1) in &pattern {
            t.add(r, c, k0 + probe * k1);
        }
        let order = SparseLu::factor(&t).expect("probe factors").order().clone();
        let positions: Vec<(usize, usize)> = pattern.iter().map(|&(r, c, _, _)| (r, c)).collect();
        let program = FactorProgram::compile(dim, &positions, &order).expect("pattern compiles");

        // Determinant-only refactorization, PR 3 workspace path: triplet
        // scatter + pivot-order replay.
        let mut ws = LuWorkspace::new();
        let mut x = Vec::new();
        let mut tri = Triplets::new(dim);
        let (ns, _) = median_ns_per_point(reps, points, || {
            let mut acc = 0.0;
            for &sigma in &sigmas {
                tri.reset(dim);
                for &(r, c, k0, k1) in &pattern {
                    tri.add(r, c, k0 + sigma * k1);
                }
                SparseLu::refactor_into(&tri, &order, &mut ws).expect("replay succeeds");
                acc += ws.det().norm().log2();
            }
            acc
        });
        rows.push(PerfRow {
            name: format!("refactor_{name}_workspace"),
            median_ns_per_point: ns,
            points,
            reps,
        });

        // Determinant-only refactorization, compiled kernel: stamp straight
        // into slots + flat instruction-stream replay.
        let mut prog_scratch = ProgramScratch::new();
        let (ns, _) = median_ns_per_point(reps, points, || {
            let mut acc = 0.0;
            for &sigma in &sigmas {
                program
                    .refactor_values(
                        pattern.iter().map(|&(_, _, k0, k1)| k0 + sigma * k1),
                        &mut prog_scratch,
                    )
                    .expect("replay succeeds");
                acc += prog_scratch.det().norm().log2();
            }
            acc
        });
        rows.push(PerfRow {
            name: format!("refactor_{name}_compiled"),
            median_ns_per_point: ns,
            points,
            reps,
        });

        // Window-level refactor+solve comparison over one conjugate-paired
        // window. PR 3 solved every σ through the workspace…
        let (ns, _) = median_ns_per_point(reps, points, || {
            let mut acc = 0.0;
            for &sigma in &sigmas {
                tri.reset(dim);
                for &(r, c, k0, k1) in &pattern {
                    tri.add(r, c, k0 + sigma * k1);
                }
                SparseLu::refactor_into(&tri, &order, &mut ws).expect("replay succeeds");
                ws.solve_into(&rhs, &mut x);
                acc += x[0].re;
            }
            acc
        });
        rows.push(PerfRow {
            name: format!("window_{name}_pr3_planned"),
            median_ns_per_point: ns,
            points,
            reps,
        });
        // …the current engine solves only the closed upper half on the
        // compiled kernel and conjugates each remaining point from its
        // actual partner σ_{K−i} = conj(σ_i) (same work per point as the
        // row above, minus the mirrored solves).
        let mut solved: Vec<Complex> = vec![Complex::ZERO; points];
        let (ns, _) = median_ns_per_point(reps, points, || {
            let mut acc = 0.0;
            for (i, &sigma) in sigmas.iter().enumerate() {
                if sigma.im >= 0.0 {
                    program
                        .refactor_values(
                            pattern.iter().map(|&(_, _, k0, k1)| k0 + sigma * k1),
                            &mut prog_scratch,
                        )
                        .expect("replay succeeds");
                    program.solve_into(&mut prog_scratch, &rhs, &mut x);
                    solved[i] = x[0];
                } else {
                    // Mirror: one conjugation instead of a solve.
                    solved[i] = solved[points - i].conj();
                }
                acc += solved[i].re;
            }
            acc
        });
        rows.push(PerfRow {
            name: format!("window_{name}_compiled_mirrored"),
            median_ns_per_point: ns,
            points,
            reps,
        });
    }

    // Companion-model transient stepping: ns per step on the compiled
    // steady-state path (stamp history → replay → back-substitute), for
    // both integration methods. The ladder drives a real PULSE step so
    // the waveform evaluation cost is part of the row.
    {
        use refgen_circuit::Waveform;
        use refgen_mna::IntegrationMethod;
        let mut ladder = rc_ladder(16, 1e3, 1e-9);
        ladder
            .set_waveform(
                "VIN",
                Waveform::Pulse {
                    v1: 0.0,
                    v2: 1.0,
                    delay: 0.0,
                    rise: 0.0,
                    fall: 0.0,
                    width: f64::INFINITY,
                    period: f64::INFINITY,
                },
            )
            .expect("VIN is a source");
        let steps = 256usize;
        for (name, circuit) in [("ladder16", &ladder), ("ua741", &circuits[1].1)] {
            for method in [IntegrationMethod::BackwardEuler, IntegrationMethod::Trapezoidal] {
                let ns = transient_ns_per_step(circuit, 1e-9, steps, method, reps);
                rows.push(PerfRow {
                    name: format!("transient_{name}_{}", method.label().to_ascii_lowercase()),
                    median_ns_per_point: ns,
                    points: steps,
                    reps,
                });
            }
        }
    }

    // Variant-major fleet sampling: one conjugate-grid window's σ points
    // evaluated for 64 same-topology µA741 variants whose rebound plans
    // share one compiled kernel. The scalar row solves per (point,
    // variant) through the sequential path; the batched row drives all 64
    // variants as lanes of one instruction-stream replay per point
    // (`FleetSampler`). Identical work and bit-identical results, so the
    // ratio is the fleet-throughput speedup of variant-major batching.
    {
        use refgen_mna::{FleetSampler, SweepBatchScratch, SweepPlan, SweepScratch};
        let base = &circuits[1].1;
        let spec = standard_spec();
        let scale = Scale::new(1e9, 1e3);
        let base_sys = refgen_mna::MnaSystem::new(base).expect("µA741 compiles");
        let base_plan = SweepPlan::new(&base_sys, scale, &spec).expect("µA741 plans");
        let systems: Vec<refgen_mna::MnaSystem> = fleet_variants(base, 64, 20260808)
            .iter()
            .map(|c| refgen_mna::MnaSystem::new(c).expect("variant compiles"))
            .collect();
        let plans: Vec<SweepPlan> =
            systems.iter().map(|s| base_plan.rebind(s).expect("same topology")).collect();
        // Lane groups of the configured width: wider batches amortize
        // more instruction decode but grow the slot-major working set
        // linearly (slots × lanes complex values), so the engine's
        // default width — not the whole fleet — is the measured shape.
        let lane_width = RefgenConfig::default().lane_width.max(1);
        let samplers: Vec<FleetSampler<'_>> = plans
            .chunks(lane_width)
            .map(|group| FleetSampler::new(&group.iter().collect::<Vec<_>>()))
            .collect();
        let sigmas = refgen_numeric::dft::unit_circle_points(40);
        let evals = sigmas.len() * plans.len();
        let fleet_reps = if quick { 3 } else { 25 };

        let mut seq = SweepScratch::new();
        let (ns, _) = median_ns_per_point(fleet_reps, evals, || {
            let mut acc = 0.0;
            for &sigma in &sigmas {
                for plan in &plans {
                    acc += plan.eval_at(sigma, &mut seq).expect("variant solves").response.re;
                }
            }
            acc
        });
        rows.push(PerfRow {
            name: "fleet_ua741x64_scalar".to_string(),
            median_ns_per_point: ns,
            points: evals,
            reps: fleet_reps,
        });

        let mut batch = SweepBatchScratch::new();
        let (ns, _) = median_ns_per_point(fleet_reps, evals, || {
            let mut acc = 0.0;
            for &sigma in &sigmas {
                for sampler in &samplers {
                    for response in sampler.eval_at(sigma, &mut batch) {
                        acc += response.expect("variant solves").response.re;
                    }
                }
            }
            acc
        });
        rows.push(PerfRow {
            name: "fleet_ua741x64_batched".to_string(),
            median_ns_per_point: ns,
            points: evals,
            reps: fleet_reps,
        });
    }

    // Full adaptive Session solves of the µA741, mirroring on vs off.
    let session_reps = if quick { 2 } else { 9 };
    let ua741_circuit = ua741();
    for (label, mirror) in [("on", true), ("off", false)] {
        let cfg = RefgenConfig::builder().conjugate_mirror(mirror).build();
        let mut total_points = 0usize;
        let mut samples: Vec<f64> = Vec::with_capacity(session_reps);
        for _ in 0..session_reps {
            let t0 = std::time::Instant::now();
            let solution = Session::for_circuit(&ua741_circuit)
                .spec(standard_spec())
                .config(cfg)
                .solve()
                .expect("µA741 solves");
            total_points = solution.total_points();
            samples.push(t0.elapsed().as_nanos() as f64 / total_points as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        rows.push(PerfRow {
            name: format!("session_ua741_mirror_{label}"),
            median_ns_per_point: samples[samples.len() / 2],
            points: total_points,
            reps: session_reps,
        });
    }

    // Mesh-scaling rows: square grid RC meshes at 256 / 1024 / 4096 nodes,
    // swept over a dense log-frequency grid under both pivot orderings
    // (the probe-recorded Markowitz order vs. approximate minimum degree)
    // and both evaluation paths (per-point direct refactorization vs. the
    // anchored-GMRES hybrid). The hybrid's win condition is locality:
    // adjacent sweep points sit inside the re-anchor radius, so most
    // points cost a handful of preconditioned iterations instead of a
    // full refactorization. Quick mode measures mesh256 only.
    {
        use refgen_circuit::library::grid_rc_mesh;
        use refgen_mna::{HybridScratch, OrderingMode, SweepPlan, SweepScratch};
        let sides: &[usize] = if quick { &[16] } else { &[16, 32, 64] };
        let spec = standard_spec();
        for &side in sides {
            let nodes = side * side;
            let circuit = grid_rc_mesh(side, side, 9000 + nodes as u64);
            let sys = refgen_mna::MnaSystem::new(&circuit).expect("mesh compiles");
            let points = 96usize;
            // 1.5 decades over 96 points: ~2.7 % relative spacing, a few
            // interior points per hybrid anchor — dense enough that the
            // anchored path amortizes its refactorizations, which is the
            // regime the hybrid exists for.
            let freqs = log_space(1e6, 3e7, points);
            let mesh_reps = if quick {
                2
            } else {
                match side {
                    16 => 11,
                    32 => 5,
                    _ => 3,
                }
            };
            for (mode_label, mode) in
                [("markowitz", OrderingMode::Markowitz), ("amd", OrderingMode::Amd)]
            {
                let plan = SweepPlan::new_with_ordering(&sys, Scale::unit(), &spec, mode)
                    .expect("mesh plans");
                let mut direct = SweepScratch::new();
                let (ns, _) = median_ns_per_point(mesh_reps, points, || {
                    let mut acc = 0.0;
                    for &f in &freqs {
                        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * f);
                        acc += plan.eval_at(s, &mut direct).expect("mesh point solves").response.re;
                    }
                    acc
                });
                rows.push(PerfRow {
                    name: format!("mesh{nodes}_{mode_label}_direct"),
                    median_ns_per_point: ns,
                    points,
                    reps: mesh_reps,
                });

                let mut hybrid = HybridScratch::new();
                let (ns, _) = median_ns_per_point(mesh_reps, points, || {
                    let mut acc = 0.0;
                    for &f in &freqs {
                        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * f);
                        acc +=
                            plan.eval_at_iterative(s, &mut hybrid).expect("mesh point solves").re;
                    }
                    acc
                });
                rows.push(PerfRow {
                    name: format!("mesh{nodes}_{mode_label}_gmres"),
                    median_ns_per_point: ns,
                    points,
                    reps: mesh_reps,
                });
            }
        }
    }

    PerfSnapshot { env: PerfEnv::detect(), rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trajectory format is stable: every row name `to_json`'s derived
    /// ratios reference exists, and the output is structurally JSON.
    #[test]
    fn perf_snapshot_json_format() {
        let names = [
            "refactor_ladder16_workspace",
            "refactor_ladder16_compiled",
            "window_ladder16_pr3_planned",
            "window_ladder16_compiled_mirrored",
            "refactor_ua741_workspace",
            "refactor_ua741_compiled",
            "window_ua741_pr3_planned",
            "window_ua741_compiled_mirrored",
            "transient_ladder16_be",
            "transient_ladder16_tr",
            "transient_ua741_be",
            "transient_ua741_tr",
            "fleet_ua741x64_scalar",
            "fleet_ua741x64_batched",
            "session_ua741_mirror_on",
            "session_ua741_mirror_off",
            "mesh256_markowitz_direct",
            "mesh256_markowitz_gmres",
            "mesh256_amd_direct",
            "mesh256_amd_gmres",
            "mesh1024_markowitz_direct",
            "mesh1024_markowitz_gmres",
            "mesh1024_amd_direct",
            "mesh1024_amd_gmres",
            "mesh4096_markowitz_direct",
            "mesh4096_markowitz_gmres",
            "mesh4096_amd_direct",
            "mesh4096_amd_gmres",
        ];
        let snapshot = PerfSnapshot {
            env: PerfEnv::detect(),
            rows: names
                .iter()
                .enumerate()
                .map(|(i, n)| PerfRow {
                    name: n.to_string(),
                    median_ns_per_point: 100.0 * (i as f64 + 1.0),
                    points: 40,
                    reps: 3,
                })
                .collect(),
        };
        let json = snapshot.to_json();
        assert!(json.contains("\"schema\": \"refgen-bench-sampling/v1\""));
        assert!(json.contains("\"ua741_window_speedup_vs_pr3\""));
        assert!(json.contains("\"fleet_batched_speedup\""));
        assert!(json.contains("\"mesh1024_hybrid_speedup_vs_direct\""));
        assert!(json.contains("\"mesh4096_amd_speedup_vs_markowitz\""));
        assert!(json.contains("\"env\": {\"avx\": "));
        assert!(json.contains("\"lane_width\": "));
        assert_eq!(json.matches("{\"name\"").count(), names.len());
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser dependency.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(snapshot.ns("refactor_ua741_workspace"), 500.0);
        assert_eq!(snapshot.ns_opt("refactor_ua741_workspace"), Some(500.0));
        assert_eq!(snapshot.ns_opt("mesh8_missing_row"), None);
    }

    /// Quick snapshots carry only the mesh256 rows: the larger mesh ratios
    /// must be omitted from `derived` without breaking the JSON structure
    /// or leaving a trailing comma.
    #[test]
    fn quick_snapshot_json_omits_large_mesh_ratios() {
        let names = [
            "refactor_ladder16_workspace",
            "refactor_ladder16_compiled",
            "window_ladder16_pr3_planned",
            "window_ladder16_compiled_mirrored",
            "refactor_ua741_workspace",
            "refactor_ua741_compiled",
            "window_ua741_pr3_planned",
            "window_ua741_compiled_mirrored",
            "fleet_ua741x64_scalar",
            "fleet_ua741x64_batched",
            "session_ua741_mirror_on",
            "session_ua741_mirror_off",
            "mesh256_markowitz_direct",
            "mesh256_markowitz_gmres",
            "mesh256_amd_direct",
            "mesh256_amd_gmres",
        ];
        let snapshot = PerfSnapshot {
            env: PerfEnv::detect(),
            rows: names
                .iter()
                .enumerate()
                .map(|(i, n)| PerfRow {
                    name: n.to_string(),
                    median_ns_per_point: 10.0 * (i as f64 + 1.0),
                    points: 48,
                    reps: 2,
                })
                .collect(),
        };
        let json = snapshot.to_json();
        assert!(json.contains("\"mesh256_hybrid_speedup_vs_direct\""));
        assert!(!json.contains("mesh1024_hybrid_speedup_vs_direct"));
        assert!(!json.contains("mesh4096_amd_speedup_vs_markowitz"));
        // The last derived entry must not carry a trailing comma.
        assert!(!json.contains(",\n  }"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn table1_shapes() {
        let t = table1();
        let (ulo, uhi) = t.unscaled.denominator.region.expect("some window");
        let (slo, shi) = t.scaled.denominator.region.expect("some window");
        assert!(uhi - ulo < shi - slo, "scaling widens the window");
        assert_eq!(ulo, 0);
    }

    #[test]
    fn ua741_iteration_structure() {
        let e = tables_2_3();
        // Several iterations whose regions tile 0..=degree.
        assert!(e.iterations.len() >= 3);
        assert_eq!(e.network.denominator.degree(), Some(39));
        assert!(e.points_with_reduction < e.points_without_reduction);
        // Reduced iterations use strictly fewer points than the first.
        let first = e.iterations[0].points;
        for it in e.iterations.iter().filter(|i| i.reduced) {
            assert!(it.points <= first);
        }
        // Complete coverage: every coefficient of the effective degree is
        // inside some iteration's valid region.
        let degree = e.network.denominator.degree().expect("non-trivial");
        for i in 0..=degree {
            assert!(
                e.iterations
                    .iter()
                    .filter_map(|it| it.region)
                    .any(|(lo, hi)| (lo..=hi).contains(&i)),
                "coefficient {i} uncovered"
            );
        }
        // Denormalized coefficient magnitudes decrease monotonically —
        // the Tables 2–3 staircase.
        let coeffs = e.network.denominator.coeffs();
        for w in coeffs.windows(2) {
            assert!(w[0].norm() > w[1].norm());
        }
    }

    #[test]
    fn fig2_matches() {
        let f = fig2(80);
        assert!(f.max_mag_err_db < 1e-3, "mag err {}", f.max_mag_err_db);
        assert!(f.max_phase_err_deg < 0.1, "phase err {}", f.max_phase_err_deg);
        // The curve has the right shape: high DC gain, rolled off at 100 MHz.
        assert!(f.simulator.mag_db[0] > 80.0);
        assert!(*f.simulator.mag_db.last().expect("nonempty") < 0.0);
    }

    #[test]
    fn ablation_adaptive_beats_grid() {
        let pts = ablation_grid_vs_adaptive(&[12, 20]);
        for p in pts {
            if let Some(gp) = p.grid_points {
                assert!(
                    p.adaptive_points < gp,
                    "order {}: adaptive {} vs grid {}",
                    p.order,
                    p.adaptive_points,
                    gp
                );
            }
        }
    }

    #[test]
    fn thread_ablation_is_deterministic_and_reuses_pivots() {
        let pts = ablation_threads(&[1, 4]);
        assert_eq!(pts.len(), 2);
        let (one, four) = (&pts[0], &pts[1]);
        // Identical recovery structure at both thread counts…
        assert_eq!(one.degree, four.degree);
        assert_eq!(one.total_points, four.total_points);
        assert_eq!(one.refactor_hits, four.refactor_hits);
        // …with the pivot-reuse path active in both (the sequential path
        // must not fall back to per-point Markowitz searches).
        assert!(one.refactor_hits > 0, "pivot-order reuse inactive at threads = 1");
        // The vast majority of points ride the cheap path: only windows
        // whose plan probe hits a degenerate point ever fall back.
        assert!(
            one.refactor_hits as usize >= one.total_points / 2,
            "hits {} of {} points",
            one.refactor_hits,
            one.total_points
        );
    }

    #[test]
    fn planned_sampling_matches_unplanned_checksum() {
        let sys = ua741_system();
        let scale = Scale::new(1e9, 1e3);
        let plain = ua741_sampling_cost(&sys, scale, 17);
        for threads in [1, 4] {
            let planned = ua741_sampling_cost_planned(&sys, scale, 17, threads);
            assert!(
                (planned - plain).abs() < 1e-6 * plain.abs(),
                "threads {threads}: {planned} vs {plain}"
            );
        }
    }

    #[test]
    fn batched_fleet_matches_naive_and_amortizes_searches() {
        let base = rc_ladder(10, 1e3, 1e-9);
        let spec = standard_spec();
        let cfg = paper_config();
        let variants = fleet_variants(&base, 8, 77);
        let naive = fleet_naive(&variants, &spec, cfg);
        let pool_cfg =
            RefgenConfig::builder().verify(false).executor(refgen_core::ExecutorKind::Pool).build();
        let batched = fleet_batched(&base, &variants, &spec, pool_cfg);
        assert_eq!(naive.len(), batched.solutions().len());
        for (i, (a, b)) in naive.iter().zip(batched.solutions()).enumerate() {
            assert_eq!(
                a.network.denominator.degree(),
                b.network.denominator.degree(),
                "variant {i}"
            );
            // Shared pivot orders are an amortization, not a semantic
            // change: coefficients agree to interpolation accuracy (the
            // two paths may replay different—equally valid—orders, so
            // bit-identity is not required *across* modes, only within).
            for (x, y) in a.network.denominator.coeffs().iter().zip(b.network.denominator.coeffs())
            {
                let rel = ((*x - *y).norm() / y.norm()).to_f64();
                assert!(rel < 1e-9, "variant {i}: rel {rel:.2e}");
            }
        }
        // The whole 8-variant fleet paid the pivot searches of one solve.
        let single = fleet_batched(
            &base,
            &fleet_variants(&base, 1, 77),
            &spec,
            RefgenConfig::builder().verify(false).executor(refgen_core::ExecutorKind::Pool).build(),
        );
        assert_eq!(batched.report.pivot_searches, single.report.pivot_searches);
        assert!(batched.report.shared_plan_hits > single.report.shared_plan_hits);
    }

    #[test]
    fn roster_runs_every_method_on_a_small_ladder() {
        // A small, well-scaled ladder: every method that can see the whole
        // coefficient range must agree with the adaptive truth.
        let c = rc_ladder(6, 1e3, 1e-9);
        let spec = standard_spec();
        let outcomes = compare_solvers(&c, &spec, &solver_roster(RefgenConfig::default()));
        assert_eq!(outcomes.len(), 4);
        let adaptive = outcomes[0].result.as_ref().expect("adaptive always recovers");
        assert_eq!(outcomes[0].method, "adaptive");
        for o in &outcomes[1..] {
            if let Ok(s) = &o.result {
                if s.network.denominator.degree() == adaptive.network.denominator.degree() {
                    for (x, y) in s
                        .network
                        .denominator
                        .coeffs()
                        .iter()
                        .zip(adaptive.network.denominator.coeffs())
                    {
                        let rel = ((*x - *y).norm() / y.norm()).to_f64();
                        assert!(rel < 1e-5, "{}: rel {rel:.2e}", o.method);
                    }
                }
            }
        }
        // The unit-circle baseline must NOT see the whole range on
        // IC-valued elements (Table 1a's point): either a typed failure or
        // a truncated degree.
        let unit = outcomes.iter().find(|o| o.method == "unit-circle").expect("in roster");
        let truncated = match &unit.result {
            Ok(s) => s.network.denominator.degree() < adaptive.network.denominator.degree(),
            Err(_) => true,
        };
        assert!(truncated, "unit-circle interpolation cannot cover 6 decades per step");
    }
}
