//! Experiment runners regenerating every table and figure of the paper.
//!
//! Each function produces the data behind one artifact; the `tables` binary
//! prints them in paper format and the Criterion benches measure their
//! cost. See `DESIGN.md` §5 for the experiment index and `EXPERIMENTS.md`
//! for recorded paper-vs-measured outcomes.

use refgen_circuit::library::{positive_feedback_ota, rc_ladder, ua741};
use refgen_circuit::Circuit;
use refgen_core::baseline::{multi_scale_grid, static_interpolation, StaticInterpolation};
use refgen_core::{AdaptiveInterpolator, NetworkFunction, PolyKind, RefgenConfig};
use refgen_mna::{log_space, unwrap_phase, AcAnalysis, Scale, TransferSpec};
use refgen_numeric::ExtComplex;

/// The standard transfer spec used by every library circuit.
pub fn standard_spec() -> TransferSpec {
    TransferSpec::voltage_gain("VIN", "out")
}

/// Table 1 data: the OTA's coefficients under (a) plain unit-circle
/// interpolation and (b) a fixed 1e9 frequency scaling.
pub struct Table1 {
    /// The circuit (Fig. 1 equivalent).
    pub circuit: Circuit,
    /// (a): unscaled interpolation of numerator and denominator.
    pub unscaled: StaticInterpolation,
    /// (b): frequency scale factor 1e9, conductance scale 1.
    pub scaled: StaticInterpolation,
}

/// Runs the Table 1 experiment.
///
/// # Panics
///
/// Panics if the library OTA fails to interpolate (a bug, covered by tests).
pub fn table1() -> Table1 {
    let circuit = positive_feedback_ota();
    let spec = standard_spec();
    let cfg = RefgenConfig::default();
    let unscaled =
        static_interpolation(&circuit, &spec, Scale::unit(), &cfg).expect("OTA interpolates");
    let scaled = static_interpolation(&circuit, &spec, Scale::new(1e9, 1.0), &cfg)
        .expect("OTA interpolates");
    Table1 { circuit, unscaled, scaled }
}

/// One adaptive iteration of the Tables 2–3 experiment: the scale factors
/// chosen, the points spent, and the valid region's normalized and
/// denormalized coefficients.
pub struct Ua741Iteration {
    /// Scale factors of this interpolation.
    pub scale: Scale,
    /// Interpolation points spent (shrinks under eq. (17) reduction).
    pub points: usize,
    /// Whether reduction was applied.
    pub reduced: bool,
    /// Valid region (global indices).
    pub region: Option<(usize, usize)>,
    /// `(index, normalized, denormalized)` for the valid region.
    pub coefficients: Vec<(usize, ExtComplex, ExtComplex)>,
}

/// Tables 2–3 data: the µA741 denominator across adaptive iterations.
pub struct Ua741Experiment {
    /// The circuit.
    pub circuit: Circuit,
    /// Iterations in execution order.
    pub iterations: Vec<Ua741Iteration>,
    /// The final denominator.
    pub network: NetworkFunction,
    /// Total interpolation points with reduction on.
    pub points_with_reduction: usize,
    /// Total points with reduction off (the §3.3 comparison).
    pub points_without_reduction: usize,
}

/// Runs the Tables 2–3 experiment on the µA741-class opamp.
///
/// Uses `verify = false` so the interpolation count matches the paper's
/// structure (the paper does not re-verify windows).
///
/// # Panics
///
/// Panics if reference generation fails on the library µA741.
pub fn tables_2_3() -> Ua741Experiment {
    let circuit = ua741();
    let spec = standard_spec();
    let cfg = RefgenConfig { verify: false, ..Default::default() };
    let interp = AdaptiveInterpolator::new(cfg);
    let network = interp.network_function(&circuit, &spec).expect("µA741 interpolates");
    let m = network.report.admittance_degree;

    // Re-run a full static interpolation at each recorded scale to obtain
    // the per-window coefficient values in paper-table form.
    let mut iterations = Vec::new();
    for w in &network.report.denominator.windows {
        let si = static_interpolation(&circuit, &spec, w.scale, interp.config())
            .expect("window scale re-interpolates");
        let mut coefficients = Vec::new();
        if let Some((lo, hi)) = w.region {
            for i in lo..=hi {
                let norm = si.denominator.normalized_at(i).expect("in range");
                let den = si.denormalized(PolyKind::Denominator, i).expect("in range");
                coefficients.push((i, norm, den));
            }
        }
        let _ = m;
        iterations.push(Ua741Iteration {
            scale: w.scale,
            points: w.points,
            reduced: w.reduced,
            region: w.region,
            coefficients,
        });
    }

    let no_reduce = AdaptiveInterpolator::new(RefgenConfig {
        verify: false,
        reduce: false,
        ..Default::default()
    })
    .polynomial(&circuit, &spec, PolyKind::Denominator)
    .expect("µA741 interpolates unreduced")
    .1;

    Ua741Experiment {
        circuit,
        points_with_reduction: network.report.denominator.total_points,
        points_without_reduction: no_reduce.total_points,
        iterations,
        network,
    }
}

/// One Bode series of the Fig. 2 experiment.
pub struct BodeSeries {
    /// Frequencies, hertz.
    pub freqs_hz: Vec<f64>,
    /// Magnitude, dB.
    pub mag_db: Vec<f64>,
    /// Unwrapped phase, degrees.
    pub phase_deg: Vec<f64>,
}

/// Fig. 2 data: µA741 voltage-gain Bode from interpolated coefficients and
/// from the independent AC simulator, 1 Hz – 100 MHz.
pub struct Fig2 {
    /// From the recovered `N(s)/D(s)`.
    pub interpolated: BodeSeries,
    /// From the AC simulator (the "commercial electrical simulator" stand-in).
    pub simulator: BodeSeries,
    /// Worst magnitude discrepancy, dB.
    pub max_mag_err_db: f64,
    /// Worst phase discrepancy, degrees.
    pub max_phase_err_deg: f64,
}

/// Runs the Fig. 2 experiment with `n` log-spaced points.
///
/// # Panics
///
/// Panics if either evaluation path fails on the library µA741.
pub fn fig2(n: usize) -> Fig2 {
    let circuit = ua741();
    let spec = standard_spec();
    let nf = AdaptiveInterpolator::default()
        .network_function(&circuit, &spec)
        .expect("µA741 interpolates");
    let freqs = log_space(1.0, 1e8, n);
    let interp_raw = nf.bode(&freqs);
    let ac = AcAnalysis::new(&circuit, spec).expect("valid circuit");
    let sim_pts = ac.sweep(&freqs).expect("AC sweep succeeds");

    let interp_mag: Vec<f64> = interp_raw.iter().map(|&(_, m, _)| m).collect();
    let interp_phase = unwrap_phase(&interp_raw.iter().map(|&(_, _, p)| p).collect::<Vec<_>>());
    let sim_mag: Vec<f64> = sim_pts.iter().map(|p| p.mag_db()).collect();
    let sim_phase = unwrap_phase(&sim_pts.iter().map(|p| p.phase_deg()).collect::<Vec<_>>());

    let max_mag_err_db =
        interp_mag.iter().zip(&sim_mag).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
    let max_phase_err_deg =
        interp_phase.iter().zip(&sim_phase).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);

    Fig2 {
        interpolated: BodeSeries {
            freqs_hz: freqs.clone(),
            mag_db: interp_mag,
            phase_deg: interp_phase,
        },
        simulator: BodeSeries { freqs_hz: freqs, mag_db: sim_mag, phase_deg: sim_phase },
        max_mag_err_db,
        max_phase_err_deg,
    }
}

/// Ablation data point: adaptive vs. the §3.1 multi-scale grid on a ladder.
pub struct AblationPoint {
    /// Ladder order.
    pub order: usize,
    /// Adaptive: total interpolation points.
    pub adaptive_points: usize,
    /// Adaptive: number of interpolations.
    pub adaptive_windows: usize,
    /// Grid: points needed by the smallest complete grid (or `None` if no
    /// tried grid covered everything).
    pub grid_points: Option<usize>,
    /// Grid size that first achieved completeness.
    pub grid_count: Option<usize>,
}

/// Runs the grid-vs-adaptive ablation across ladder orders.
///
/// # Panics
///
/// Panics if the adaptive algorithm fails on a uniform ladder (covered by
/// tests).
pub fn ablation_grid_vs_adaptive(orders: &[usize]) -> Vec<AblationPoint> {
    let spec = standard_spec();
    let cfg = RefgenConfig { verify: false, ..Default::default() };
    orders
        .iter()
        .map(|&n| {
            let c = rc_ladder(n, 1e3, 1e-9);
            let rep = AdaptiveInterpolator::new(cfg)
                .polynomial(&c, &spec, PolyKind::Denominator)
                .expect("ladder interpolates")
                .1;
            // Grow the grid until complete (or give up at 64).
            let mut grid_points = None;
            let mut grid_count = None;
            for count in 2..=64usize {
                let g = multi_scale_grid(&c, &spec, 1e3, 1e15, count, &cfg).expect("grid runs");
                if g.complete() {
                    grid_points = Some(g.total_points);
                    grid_count = Some(count);
                    break;
                }
            }
            AblationPoint {
                order: n,
                adaptive_points: rep.total_points,
                adaptive_windows: rep.windows.len(),
                grid_points,
                grid_count,
            }
        })
        .collect()
}

/// The dominant per-iteration cost of the Tables 2–3 experiment: `points`
/// sparse LU factorizations (one determinant per unit-circle sample) of the
/// µA741 MNA matrix at the given scale. Benchmarked at the actual point
/// counts of the three adaptive iterations (41 → ~24 → ~6 under eq. (17))
/// this reproduces the paper's decreasing per-iteration CPU times
/// (3.9 s / 2.3 s / 0.9 s on their SPARCstation-10).
///
/// Returns a checksum so the optimizer cannot elide the work.
///
/// # Panics
///
/// Panics if the system cannot be compiled (covered by tests).
pub fn ua741_sampling_cost(system: &refgen_mna::MnaSystem, scale: Scale, points: usize) -> f64 {
    let sigmas = refgen_numeric::dft::unit_circle_points(points);
    let mut acc = 0.0;
    for sigma in sigmas {
        let d = system.det(sigma, scale).expect("determinant evaluates");
        acc += d.norm().log2();
    }
    acc
}

/// Compiles the µA741 MNA system once (bench setup helper).
///
/// # Panics
///
/// Panics if the library circuit is invalid (covered by tests).
pub fn ua741_system() -> refgen_mna::MnaSystem {
    refgen_mna::MnaSystem::new(&ua741()).expect("library circuit is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        let t = table1();
        let (ulo, uhi) = t.unscaled.denominator.region.expect("some window");
        let (slo, shi) = t.scaled.denominator.region.expect("some window");
        assert!(uhi - ulo < shi - slo, "scaling widens the window");
        assert_eq!(ulo, 0);
    }

    #[test]
    fn ua741_iteration_structure() {
        let e = tables_2_3();
        // Several iterations whose regions tile 0..=degree.
        assert!(e.iterations.len() >= 3);
        assert_eq!(e.network.denominator.degree(), Some(39));
        assert!(e.points_with_reduction < e.points_without_reduction);
        // Reduced iterations use strictly fewer points than the first.
        let first = e.iterations[0].points;
        for it in e.iterations.iter().filter(|i| i.reduced) {
            assert!(it.points <= first);
        }
        // Complete coverage: every coefficient of the effective degree is
        // inside some iteration's valid region.
        let degree = e.network.denominator.degree().expect("non-trivial");
        for i in 0..=degree {
            assert!(
                e.iterations
                    .iter()
                    .filter_map(|it| it.region)
                    .any(|(lo, hi)| (lo..=hi).contains(&i)),
                "coefficient {i} uncovered"
            );
        }
        // Denormalized coefficient magnitudes decrease monotonically —
        // the Tables 2–3 staircase.
        let coeffs = e.network.denominator.coeffs();
        for w in coeffs.windows(2) {
            assert!(w[0].norm() > w[1].norm());
        }
    }

    #[test]
    fn fig2_matches() {
        let f = fig2(80);
        assert!(f.max_mag_err_db < 1e-3, "mag err {}", f.max_mag_err_db);
        assert!(f.max_phase_err_deg < 0.1, "phase err {}", f.max_phase_err_deg);
        // The curve has the right shape: high DC gain, rolled off at 100 MHz.
        assert!(f.simulator.mag_db[0] > 80.0);
        assert!(*f.simulator.mag_db.last().expect("nonempty") < 0.0);
    }

    #[test]
    fn ablation_adaptive_beats_grid() {
        let pts = ablation_grid_vs_adaptive(&[12, 20]);
        for p in pts {
            if let Some(gp) = p.grid_points {
                assert!(
                    p.adaptive_points < gp,
                    "order {}: adaptive {} vs grid {}",
                    p.order,
                    p.adaptive_points,
                    gp
                );
            }
        }
    }
}
