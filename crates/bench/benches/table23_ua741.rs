//! Tables 2–3 bench: the µA741 adaptive run, its per-iteration sampling
//! cost at the actual point counts (reproducing the paper's decreasing
//! 3.9 s → 2.3 s → 0.9 s per-iteration CPU times on modern hardware), and
//! the full recovery with/without the eq. (17) reduction.

use criterion::{criterion_group, criterion_main, Criterion};
use refgen_bench::{standard_spec, tables_2_3, ua741_sampling_cost, ua741_system};
use refgen_circuit::library::ua741;
use refgen_core::{AdaptiveInterpolator, PolyKind, RefgenConfig};
use std::hint::black_box;

fn bench_iterations(c: &mut Criterion) {
    let e = tables_2_3();
    let sys = ua741_system();
    let mut group = c.benchmark_group("table23_per_iteration");
    group.sample_size(20);
    // Bench the real (scale, points) pair of each productive iteration.
    for (k, it) in e.iterations.iter().filter(|it| it.region.is_some()).take(4).enumerate() {
        let scale = it.scale;
        let points = it.points;
        group.bench_function(format!("iteration{}_{}pts", k + 1, points), |b| {
            b.iter(|| black_box(ua741_sampling_cost(&sys, scale, points)))
        });
    }
    group.finish();
}

fn bench_full_recovery(c: &mut Criterion) {
    let circuit = ua741();
    let spec = standard_spec();
    let mut group = c.benchmark_group("table23_full_recovery");
    group.sample_size(10);
    for (name, cfg) in [
        ("with_reduction", RefgenConfig { verify: false, ..Default::default() }),
        ("without_reduction", RefgenConfig { verify: false, reduce: false, ..Default::default() }),
        ("with_verification", RefgenConfig::default()),
    ] {
        group.bench_function(name, |b| {
            let interp = AdaptiveInterpolator::new(cfg);
            b.iter(|| {
                let (poly, _) = interp
                    .polynomial(black_box(&circuit), &spec, PolyKind::Denominator)
                    .expect("recovers");
                black_box(poly.degree())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_iterations, bench_full_recovery);
criterion_main!(benches);
