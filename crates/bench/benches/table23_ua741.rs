//! Tables 2–3 bench: the µA741 adaptive run, its per-iteration sampling
//! cost at the actual point counts (reproducing the paper's decreasing
//! 3.9 s → 2.3 s → 0.9 s per-iteration CPU times on modern hardware), and
//! the full recovery with/without the eq. (17) reduction.

use criterion::{criterion_group, criterion_main, Criterion};
use refgen_bench::{paper_config, standard_spec, tables_2_3, ua741_sampling_cost, ua741_system};
use refgen_circuit::library::ua741;
use refgen_core::{PolyKind, RefgenConfig, Session};
use std::hint::black_box;

fn bench_iterations(c: &mut Criterion) {
    let e = tables_2_3();
    let sys = ua741_system();
    let mut group = c.benchmark_group("table23_per_iteration");
    group.sample_size(20);
    // Bench the real (scale, points) pair of each productive iteration.
    for (k, it) in e.iterations.iter().filter(|it| it.region.is_some()).take(4).enumerate() {
        let scale = it.scale;
        let points = it.points;
        group.bench_function(format!("iteration{}_{}pts", k + 1, points), |b| {
            b.iter(|| black_box(ua741_sampling_cost(&sys, scale, points)))
        });
    }
    group.finish();
}

fn bench_full_recovery(c: &mut Criterion) {
    let circuit = ua741();
    let spec = standard_spec();
    let mut group = c.benchmark_group("table23_full_recovery");
    group.sample_size(10);
    for (name, cfg) in [
        ("with_reduction", paper_config()),
        ("without_reduction", RefgenConfig::builder().verify(false).reduce(false).build()),
        ("with_verification", RefgenConfig::default()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let (poly, _) = Session::for_circuit(black_box(&circuit))
                    .spec(spec.clone())
                    .config(cfg)
                    .solve_polynomial(PolyKind::Denominator)
                    .expect("recovers");
                black_box(poly.degree())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_iterations, bench_full_recovery);
criterion_main!(benches);
