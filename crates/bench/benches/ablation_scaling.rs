//! Ablation benches for the design choices `DESIGN.md` calls out:
//!
//! * adaptive scale selection (§3.2) vs. the naive multi-scale grid (§3.1);
//! * eq. (17) problem reduction on/off;
//! * window cross-verification on/off (our addition, not in the paper);
//! * scaling of recovery cost with circuit order.
//!
//! Every configuration is just a differently-built solver driven through
//! the one generic denominator-recovery closure — the `Solver` seam is
//! what lets a config ablation and a method ablation share a loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use refgen_bench::{paper_config, standard_spec};
use refgen_circuit::library::rc_ladder;
use refgen_circuit::Circuit;
use refgen_core::baseline::MultiScaleGridSolver;
use refgen_core::{AdaptiveInterpolator, PolyKind, RefgenConfig, Session, Solver};
use std::hint::black_box;

/// One denominator recovery through the `Solver` seam.
fn recover_denominator(solver: &dyn Solver, circuit: &Circuit) -> usize {
    let spec = standard_spec();
    Session::for_circuit(black_box(circuit))
        .spec(spec)
        .solver(solver)
        .solve_polynomial(PolyKind::Denominator)
        .expect("recovers")
        .1
        .total_points
}

fn bench_adaptive_vs_grid(c: &mut Criterion) {
    let circuit = rc_ladder(20, 1e3, 1e-9);
    let cfg = paper_config();
    let solvers: Vec<(&str, Box<dyn Solver>)> = vec![
        ("adaptive", Box::new(AdaptiveInterpolator::new(cfg))),
        ("grid16", Box::new(MultiScaleGridSolver::new(1e3, 1e15, 16, cfg))),
    ];
    let mut group = c.benchmark_group("ablation_adaptive_vs_grid_ladder20");
    group.sample_size(20);
    for (name, solver) in &solvers {
        group
            .bench_function(*name, |b| b.iter(|| black_box(recover_denominator(solver, &circuit))));
    }
    group.finish();
}

fn bench_config_ablations(c: &mut Criterion) {
    let circuit = rc_ladder(24, 1e3, 1e-9);
    let mut group = c.benchmark_group("ablation_config_ladder24");
    group.sample_size(20);
    for (name, cfg) in [
        ("baseline", paper_config()),
        ("no_reduction", RefgenConfig::builder().verify(false).reduce(false).build()),
        ("verified", RefgenConfig::default()),
        ("tuning_r2", RefgenConfig::builder().verify(false).tuning_r(2.0).build()),
    ] {
        let solver = AdaptiveInterpolator::new(cfg);
        group
            .bench_function(name, |b| b.iter(|| black_box(recover_denominator(&solver, &circuit))));
    }
    group.finish();
}

fn bench_order_scaling(c: &mut Criterion) {
    let solver = AdaptiveInterpolator::new(paper_config());
    let mut group = c.benchmark_group("ablation_order_scaling");
    group.sample_size(10);
    for n in [8usize, 16, 32, 48] {
        let circuit = rc_ladder(n, 1e3, 1e-9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| black_box(recover_denominator(&solver, circuit)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adaptive_vs_grid, bench_config_ablations, bench_order_scaling);
criterion_main!(benches);
