//! Ablation benches for the design choices `DESIGN.md` calls out:
//!
//! * adaptive scale selection (§3.2) vs. the naive multi-scale grid (§3.1);
//! * eq. (17) problem reduction on/off;
//! * window cross-verification on/off (our addition, not in the paper);
//! * scaling of recovery cost with circuit order.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use refgen_bench::standard_spec;
use refgen_circuit::library::rc_ladder;
use refgen_core::baseline::multi_scale_grid;
use refgen_core::{AdaptiveInterpolator, PolyKind, RefgenConfig};
use std::hint::black_box;

fn bench_adaptive_vs_grid(c: &mut Criterion) {
    let spec = standard_spec();
    let circuit = rc_ladder(20, 1e3, 1e-9);
    let cfg = RefgenConfig { verify: false, ..Default::default() };
    let mut group = c.benchmark_group("ablation_adaptive_vs_grid_ladder20");
    group.sample_size(20);
    group.bench_function("adaptive", |b| {
        let interp = AdaptiveInterpolator::new(cfg);
        b.iter(|| {
            black_box(
                interp
                    .polynomial(black_box(&circuit), &spec, PolyKind::Denominator)
                    .expect("recovers"),
            )
        })
    });
    group.bench_function("grid16", |b| {
        b.iter(|| {
            black_box(
                multi_scale_grid(black_box(&circuit), &spec, 1e3, 1e15, 16, &cfg)
                    .expect("grid runs"),
            )
        })
    });
    group.finish();
}

fn bench_config_ablations(c: &mut Criterion) {
    let spec = standard_spec();
    let circuit = rc_ladder(24, 1e3, 1e-9);
    let mut group = c.benchmark_group("ablation_config_ladder24");
    group.sample_size(20);
    for (name, cfg) in [
        ("baseline", RefgenConfig { verify: false, ..Default::default() }),
        ("no_reduction", RefgenConfig { verify: false, reduce: false, ..Default::default() }),
        ("verified", RefgenConfig::default()),
        ("tuning_r2", RefgenConfig { verify: false, tuning_r: 2.0, ..Default::default() }),
    ] {
        group.bench_function(name, |b| {
            let interp = AdaptiveInterpolator::new(cfg);
            b.iter(|| {
                black_box(
                    interp
                        .polynomial(black_box(&circuit), &spec, PolyKind::Denominator)
                        .expect("recovers"),
                )
            })
        });
    }
    group.finish();
}

fn bench_order_scaling(c: &mut Criterion) {
    let spec = standard_spec();
    let cfg = RefgenConfig { verify: false, ..Default::default() };
    let mut group = c.benchmark_group("ablation_order_scaling");
    group.sample_size(10);
    for n in [8usize, 16, 32, 48] {
        let circuit = rc_ladder(n, 1e3, 1e-9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            let interp = AdaptiveInterpolator::new(cfg);
            b.iter(|| {
                black_box(
                    interp
                        .polynomial(black_box(circuit), &spec, PolyKind::Denominator)
                        .expect("recovers"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adaptive_vs_grid, bench_config_ablations, bench_order_scaling);
criterion_main!(benches);
