//! Transient bench: ns per companion-model time step on the compiled path.
//!
//! A `TransientPlan` factors the companion matrix once — the first step —
//! and every later step is stamp-history → compiled replay →
//! back-substitute with zero allocation. This bench times that
//! steady-state step on the two headline circuits (the 16-stage RC ladder
//! under a real PULSE drive and the µA741 macromodel) for both
//! integration methods; `transient_ns_per_step` asserts the counter
//! contract (one factorization, no Markowitz fallback) inside the timed
//! harness, so a plan that silently refactors cannot post a time.

use criterion::{criterion_group, criterion_main, Criterion};
use refgen_bench::transient_ns_per_step;
use refgen_circuit::library::{rc_ladder, ua741};
use refgen_circuit::{Circuit, Waveform};
use refgen_mna::IntegrationMethod;
use std::hint::black_box;

fn step_ladder() -> Circuit {
    let mut ladder = rc_ladder(16, 1e3, 1e-9);
    ladder
        .set_waveform(
            "VIN",
            Waveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 0.0,
                fall: 0.0,
                width: f64::INFINITY,
                period: f64::INFINITY,
            },
        )
        .expect("VIN is a source");
    ladder
}

fn bench_circuit(c: &mut Criterion, label: &str, circuit: &Circuit) {
    let mut group = c.benchmark_group(format!("transient_{label}"));
    group.sample_size(10);
    for method in [IntegrationMethod::BackwardEuler, IntegrationMethod::Trapezoidal] {
        group.bench_function(method.label(), |b| {
            b.iter(|| transient_ns_per_step(black_box(circuit), 1e-9, 256, method, 3))
        });
    }
    group.finish();
}

fn bench_ladder(c: &mut Criterion) {
    bench_circuit(c, "ladder16", &step_ladder());
}

fn bench_ua741(c: &mut Criterion) {
    bench_circuit(c, "ua741", &ua741());
}

criterion_group!(benches, bench_ladder, bench_ua741);
criterion_main!(benches);
