//! Fig. 2 bench: evaluating the µA741 Bode diagram from interpolated
//! coefficients (cheap polynomial evaluation) versus the electrical
//! simulator (one sparse LU per frequency) — the payoff of having the
//! coefficients at all, which is what makes references usable inside
//! SBG/SDG inner loops.

use criterion::{criterion_group, criterion_main, Criterion};
use refgen_bench::standard_spec;
use refgen_circuit::library::ua741;
use refgen_core::Session;
use refgen_mna::{log_space, AcAnalysis};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let circuit = ua741();
    let spec = standard_spec();
    let nf = Session::for_circuit(&circuit)
        .spec(spec.clone())
        .solve()
        .expect("µA741 interpolates")
        .network;
    let ac = AcAnalysis::new(&circuit, spec).expect("valid circuit");
    let freqs = log_space(1.0, 1e8, 400);

    let mut group = c.benchmark_group("fig2_bode_400pts");
    group.bench_function("interpolated_polynomials", |b| {
        b.iter(|| black_box(nf.bode(black_box(&freqs))))
    });
    group.sample_size(20);
    group.bench_function("electrical_simulator", |b| {
        b.iter(|| black_box(ac.sweep(black_box(&freqs)).expect("sweeps")))
    });
    group.bench_function("electrical_simulator_reused_pivots", |b| {
        b.iter(|| black_box(ac.sweep_fast(black_box(&freqs)).expect("sweeps")))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
