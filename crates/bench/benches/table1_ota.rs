//! Table 1 bench: one unit-circle interpolation of the OTA, unscaled vs
//! frequency-scaled. Both cost the same (10 LU factorizations) — the point
//! of Table 1 is *accuracy*, and the accuracy outcome is printed by the
//! `tables` binary; this bench pins the cost of the conventional method the
//! adaptive algorithm builds on.

use criterion::{criterion_group, criterion_main, Criterion};
use refgen_bench::standard_spec;
use refgen_circuit::library::positive_feedback_ota;
use refgen_core::baseline::{StaticScalingSolver, UnitCircleSolver};
use refgen_core::RefgenConfig;
use refgen_mna::Scale;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let circuit = positive_feedback_ota();
    let spec = standard_spec();
    let cfg = RefgenConfig::default();
    let mut group = c.benchmark_group("table1_ota");
    group.bench_function("unit_circle_unscaled", |b| {
        let solver = UnitCircleSolver::new(cfg);
        b.iter(|| {
            let si = solver.interpolation(black_box(&circuit), &spec).expect("interpolates");
            black_box(si.denominator.region)
        })
    });
    group.bench_function("frequency_scaled_1e9", |b| {
        let solver = StaticScalingSolver::with_scale(Scale::new(1e9, 1.0), cfg);
        b.iter(|| {
            let si = solver.interpolation(black_box(&circuit), &spec).expect("interpolates");
            black_box(si.denominator.region)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
