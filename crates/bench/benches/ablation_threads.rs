//! Thread-scaling ablation for the plan/execute sampling engine.
//!
//! Two granularities, both on the µA741-class circuit (the paper's
//! Tables 2–3 workload):
//!
//! * **window sampling** — the 41-point determinant batch of the first
//!   adaptive iteration, unplanned (a Markowitz factorization per point,
//!   the pre-refactor cost) vs. planned (pivot-order replay) at 1/2/4/auto
//!   threads. This isolates the two tentpole claims: pivot reuse makes the
//!   single-threaded path faster, and the scoped-thread executor scales it.
//! * **full recovery** — the complete denominator recovery through
//!   `Session`, sweeping `RefgenConfig::threads`. Every run asserts
//!   `refactor_hits > 0` (the cheap path is actually active) and the
//!   recovered degree, so a silently broken engine cannot post a fast time.
//!
//! Interpreting the numbers: the planned-vs-unplanned gap is pure
//! pivot-order reuse (~an order of magnitude on the µA741). The
//! `planned_N` rows additionally need N hardware cores to separate — on a
//! single-CPU box (`std::thread::available_parallelism() == 1`, common in
//! build containers) they can only measure the executor's spawn overhead
//! (~100 µs per window at 4 workers), not a speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use refgen_bench::{standard_spec, ua741_sampling_cost, ua741_sampling_cost_planned, ua741_system};
use refgen_circuit::library::ua741;
use refgen_core::{PolyKind, RefgenConfig, Session};
use refgen_mna::Scale;
use std::hint::black_box;

fn bench_window_sampling(c: &mut Criterion) {
    let sys = ua741_system();
    let scale = Scale::new(1e9, 1e3);
    let points = 41; // the first µA741 iteration's K
    let mut group = c.benchmark_group("ablation_threads_window41");
    group.sample_size(20);
    group.bench_function("unplanned", |b| {
        b.iter(|| black_box(ua741_sampling_cost(&sys, scale, points)))
    });
    for threads in [1usize, 2, 4, 0] {
        let label = if threads == 0 { "planned_auto".into() } else { format!("planned_{threads}") };
        group.bench_function(label, |b| {
            b.iter(|| black_box(ua741_sampling_cost_planned(&sys, scale, points, threads)))
        });
    }
    group.finish();
}

fn bench_full_recovery(c: &mut Criterion) {
    let circuit = ua741();
    let spec = standard_spec();
    let mut group = c.benchmark_group("ablation_threads_full_recovery");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 0] {
        let cfg = RefgenConfig::builder().verify(false).threads(threads).build();
        let label = if threads == 0 { "auto".into() } else { format!("{threads}") };
        group.bench_function(label, |b| {
            b.iter(|| {
                let (poly, report) = Session::for_circuit(black_box(&circuit))
                    .spec(spec.clone())
                    .config(cfg)
                    .solve_polynomial(PolyKind::Denominator)
                    .expect("recovers");
                assert!(report.refactor_hits > 0, "pivot-order reuse must be active");
                black_box(poly.degree())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_window_sampling, bench_full_recovery);
criterion_main!(benches);
