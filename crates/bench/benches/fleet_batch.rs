//! Fleet bench: naive per-variant solving vs. the batch-session engine.
//!
//! The workload is the Monte-Carlo shape (a seeded fleet of ±5 %
//! same-topology variants), measured two ways per circuit:
//!
//! * **naive** — one independent `Session` per variant: every variant
//!   pays its own scoped-thread spawns and its own probe pivot searches
//!   (one per window, two with verify).
//! * **batched** — one `BatchSession` over a persistent worker pool with
//!   a shared plan cache: threads spawn once per fleet, pivot searches
//!   stay at the single-solve count regardless of fleet size. Measured
//!   twice: with lane width forced to 1 (per-point sampling) and at the
//!   default lane width (lane-batched instruction-stream replay), so the
//!   lane-amortization contribution is visible on its own.
//!
//! The gap isolates exactly the two amortizations this PR adds. Both
//! paths assert the recovered denominator degree, so a silently broken
//! engine cannot post a fast time. As with `ablation_threads`, the
//! parallel-executor component needs real cores to show up; on a
//! single-CPU container the difference is dominated by the pivot-search
//! amortization, which is hardware-independent.

use criterion::{criterion_group, criterion_main, Criterion};
use refgen_bench::{fleet_batched, fleet_naive, fleet_variants, standard_spec};
use refgen_circuit::library::{rc_ladder, ua741};
use refgen_circuit::Circuit;
use refgen_core::{ExecutorKind, RefgenConfig};
use std::hint::black_box;

fn bench_circuit(c: &mut Criterion, label: &str, base: &Circuit, fleet_size: usize, degree: usize) {
    let spec = standard_spec();
    let naive_cfg = RefgenConfig::builder().verify(false).build();
    // Lane width 1 forces per-point sampling inside every variant; the
    // default-width config batches `lane_width` unit-circle points per
    // instruction-stream replay. Results are bit-identical — the gap is
    // the lane-amortization (and AVX) contribution alone.
    let scalar_cfg =
        RefgenConfig::builder().verify(false).executor(ExecutorKind::Pool).lane_width(1).build();
    let pool_cfg = RefgenConfig::builder().verify(false).executor(ExecutorKind::Pool).build();
    let variants = fleet_variants(base, fleet_size, 4242);
    let mut group = c.benchmark_group(format!("fleet_{label}_{fleet_size}v"));
    group.sample_size(10);
    group.bench_function("naive_per_variant", |b| {
        b.iter(|| {
            let solutions = fleet_naive(black_box(&variants), &spec, naive_cfg);
            assert!(solutions.iter().all(|s| s.network.denominator.degree() == Some(degree)));
            solutions.len()
        })
    });
    group.bench_function("batched_pool_scalar_lanes", |b| {
        b.iter(|| {
            let run = fleet_batched(black_box(base), black_box(&variants), &spec, scalar_cfg);
            assert!(run.solutions().iter().all(|s| s.network.denominator.degree() == Some(degree)));
            run.report.pivot_searches
        })
    });
    group.bench_function("batched_pool_plan_reuse", |b| {
        b.iter(|| {
            let run = fleet_batched(black_box(base), black_box(&variants), &spec, pool_cfg);
            assert!(run.solutions().iter().all(|s| s.network.denominator.degree() == Some(degree)));
            run.report.pivot_searches
        })
    });
    group.finish();
}

fn bench_ladder_fleet(c: &mut Criterion) {
    bench_circuit(c, "ladder16", &rc_ladder(16, 1e3, 1e-9), 24, 16);
}

fn bench_ua741_fleet(c: &mut Criterion) {
    bench_circuit(c, "ua741", &ua741(), 8, 39);
}

criterion_group!(benches, bench_ladder_fleet, bench_ua741_fleet);
criterion_main!(benches);
