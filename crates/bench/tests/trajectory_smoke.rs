//! Mesh-scaling smoke over the committed perf trajectory: the
//! `BENCH_sampling.json` at the repository root must carry every
//! `mesh{256,1024,4096}_{markowitz,amd}_{direct,gmres}` row (a snapshot
//! regenerated with an older binary would silently drop them) and its
//! recorded mesh1024 hybrid ratio must show the anchored-GMRES path
//! beating per-point direct refactorization.

/// Extracts the numeric value following `"key": ` in the flat trajectory
/// JSON (the format is machine-written, so plain string scanning is
/// reliable and keeps the test dependency-free).
fn derived_value(json: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle).unwrap_or_else(|| panic!("derived entry {key} missing"));
    let rest = &json[at + needle.len()..];
    let end = rest.find([',', '\n', '}']).expect("value terminated");
    rest[..end].trim().parse().expect("numeric derived value")
}

#[test]
fn committed_trajectory_has_mesh_rows() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sampling.json");
    let json = std::fs::read_to_string(path).expect("committed BENCH_sampling.json readable");
    for nodes in [256, 1024, 4096] {
        for ordering in ["markowitz", "amd"] {
            for eval_path in ["direct", "gmres"] {
                let row = format!("\"mesh{nodes}_{ordering}_{eval_path}\"");
                assert!(json.contains(&row), "trajectory is missing the {row} mesh row");
            }
        }
    }
    let hybrid = derived_value(&json, "mesh1024_hybrid_speedup_vs_direct");
    assert!(
        hybrid > 1.0,
        "recorded mesh1024 hybrid path does not beat direct refactorization: {hybrid}"
    );
}
