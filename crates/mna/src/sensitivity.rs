//! Adjoint (Tellegen) sensitivity analysis.
//!
//! For `H(s) = cᵀ·Y⁻¹·E / amp`, the derivative with respect to any
//! parameter `p` entering the matrix linearly is
//!
//! ```text
//! ∂H/∂p = − x_aᵀ · (∂Y/∂p) · x / amp,    Y·x = E,   Yᵀ·x_a = c
//! ```
//!
//! — *one* extra (transposed) solve yields the sensitivity to **every**
//! element simultaneously. This is the classical adjoint-network method of
//! circuit theory, and the quantitative footing under SBG's notion of an
//! element's "contribution (appropriately measured) to the network
//! function" (paper §1).

use crate::error::MnaError;
use crate::system::{MnaSystem, Scale};
use crate::transfer::{OutputSpec, TransferSpec};
use refgen_circuit::ElementKind;
use refgen_numeric::Complex;
use refgen_sparse::{SparseLu, Triplets};

/// Sensitivity of `H` to one element's primary value.
#[derive(Clone, Debug)]
pub struct Sensitivity {
    /// Element name.
    pub element: String,
    /// `∂H/∂value` (value in the element's natural unit: ohms, farads,
    /// siemens, henries, or dimensionless gain).
    pub absolute: Complex,
    /// Normalized (relative) sensitivity `(value/H)·∂H/∂value` — the
    /// percent-for-percent measure designers compare across elements.
    pub normalized: Complex,
}

impl MnaSystem {
    /// Computes `∂H/∂value` for every element at complex frequency `s`.
    ///
    /// Uses two factorizations (forward and adjoint) regardless of the
    /// element count. Elements whose value does not enter the matrix
    /// (independent sources) are omitted.
    ///
    /// ```
    /// use refgen_circuit::Circuit;
    /// use refgen_mna::{MnaSystem, Scale, TransferSpec};
    /// use refgen_numeric::Complex;
    ///
    /// # fn main() -> Result<(), refgen_mna::MnaError> {
    /// let mut c = Circuit::new();
    /// c.add_vsource("VIN", "in", "0", 1.0).map_err(refgen_mna::MnaError::from)?;
    /// c.add_resistor("R1", "in", "out", 1e3).map_err(refgen_mna::MnaError::from)?;
    /// c.add_resistor("R2", "out", "0", 1e3).map_err(refgen_mna::MnaError::from)?;
    /// let sys = MnaSystem::new(&c)?;
    /// let spec = TransferSpec::voltage_gain("VIN", "out");
    /// let sens = sys.sensitivities(Complex::ZERO, Scale::unit(), &spec)?;
    /// // Matched divider: ±50% normalized sensitivity to each resistor.
    /// let r2 = sens.iter().find(|s| s.element == "R2").expect("present");
    /// assert!((r2.normalized.re - 0.5).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`MnaError::Singular`] if either system cannot be factored, plus the
    /// spec-resolution errors of
    /// [`MnaSystem::resolve_source`](crate::MnaSystem::resolve_source).
    pub fn sensitivities(
        &self,
        s: Complex,
        scale: Scale,
        spec: &TransferSpec,
    ) -> Result<Vec<Sensitivity>, MnaError> {
        let (_, amp) = self.resolve_source(&spec.input)?;
        // Forward solve.
        let triplets = self.assemble(s, scale);
        let lu = SparseLu::factor(&triplets)
            .map_err(|e| MnaError::from_factor(e, format!("s = {s}")))?;
        let x = lu.solve(&self.rhs());
        // Adjoint solve on Yᵀ with the output selector as excitation.
        let mut transposed = Triplets::new(self.dim());
        for &(r, c, v) in triplets.entries() {
            transposed.add(c, r, v);
        }
        let lu_t = SparseLu::factor(&transposed)
            .map_err(|e| MnaError::from_factor(e, format!("adjoint at s = {s}")))?;
        let mut c_vec = vec![Complex::ZERO; self.dim()];
        self.add_output_selector(&mut c_vec, &spec.output)?;
        let xa = lu_t.solve(&c_vec);

        let h = {
            let mut acc = Complex::ZERO;
            for (ci, xi) in c_vec.iter().zip(&x) {
                acc += *ci * *xi;
            }
            acc / amp
        };

        let diff = |vec: &[Complex], p: Option<usize>, m: Option<usize>| -> Complex {
            let vp = p.map(|i| vec[i]).unwrap_or(Complex::ZERO);
            let vm = m.map(|i| vec[i]).unwrap_or(Complex::ZERO);
            vp - vm
        };

        let mut out = Vec::new();
        for el in self.circuit().elements() {
            let (p, m) = el.nodes;
            let (rp, rm) = (self.node_row(p), self.node_row(m));
            // x_aᵀ·(∂Y/∂p)·x for the element's primary value.
            let (value, inner) = match &el.kind {
                ElementKind::Conductance { siemens } => {
                    (*siemens, diff(&xa, rp, rm) * diff(&x, rp, rm) * scale.g)
                }
                ElementKind::Resistor { ohms } => {
                    // Y holds g·(1/R): ∂Y/∂R = −g/R²·(pattern).
                    let g_el = diff(&xa, rp, rm) * diff(&x, rp, rm) * scale.g;
                    (*ohms, g_el * (-1.0 / (ohms * ohms)))
                }
                ElementKind::Capacitor { farads } => {
                    (*farads, diff(&xa, rp, rm) * diff(&x, rp, rm) * (s * scale.f))
                }
                ElementKind::Vccs { gm, control } => {
                    let (cp, cm) = (self.node_row(control.0), self.node_row(control.1));
                    (*gm, diff(&xa, rp, rm) * diff(&x, cp, cm) * scale.g)
                }
                ElementKind::Inductor { henries } => {
                    let row = self.branch_row(&el.name).expect("branch exists");
                    // ∂Y/∂L at (row,row) is −s·f.
                    (*henries, xa[row] * x[row] * (-(s * scale.f)))
                }
                ElementKind::Vcvs { gain, control } => {
                    let row = self.branch_row(&el.name).expect("branch exists");
                    let (cp, cm) = (self.node_row(control.0), self.node_row(control.1));
                    // Branch row holds −µ·(v_cp − v_cm).
                    (*gain, xa[row] * (-diff(&x, cp, cm)))
                }
                ElementKind::Cccs { gain, control_branch } => {
                    let col = self.branch_row(control_branch).expect("branch exists");
                    (*gain, diff(&xa, rp, rm) * x[col])
                }
                ElementKind::Ccvs { ohms, control_branch } => {
                    let row = self.branch_row(&el.name).expect("branch exists");
                    let col = self.branch_row(control_branch).expect("branch exists");
                    (*ohms, xa[row] * (-x[col]))
                }
                ElementKind::VSource { .. } | ElementKind::ISource { .. } => continue,
            };
            let absolute = -(inner) / amp;
            let normalized = if h == Complex::ZERO { Complex::ZERO } else { absolute * value / h };
            out.push(Sensitivity { element: el.name.clone(), absolute, normalized });
        }
        Ok(out)
    }

    fn add_output_selector(&self, c_vec: &mut [Complex], out: &OutputSpec) -> Result<(), MnaError> {
        let mut add = |name: &str, sign: f64| -> Result<(), MnaError> {
            let id = self
                .circuit()
                .find_node(name)
                .ok_or_else(|| MnaError::NoSuchNode { name: name.to_string() })?;
            if let Some(r) = self.node_row(id) {
                c_vec[r] += Complex::real(sign);
            }
            Ok(())
        };
        match out {
            OutputSpec::Node(n) => add(n, 1.0),
            OutputSpec::Differential(p, m) => {
                add(p, 1.0)?;
                add(m, -1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refgen_circuit::library::{positive_feedback_ota, rc_ladder};
    use refgen_circuit::{Circuit, ElementKind};

    fn spec() -> TransferSpec {
        TransferSpec::voltage_gain("VIN", "out")
    }

    /// Finite-difference oracle: perturb one element's value and re-solve.
    fn fd_sensitivity(circuit: &Circuit, name: &str, s: Complex, spec: &TransferSpec) -> Complex {
        let read = |c: &Circuit| -> f64 {
            match &c.element(name).expect("element exists").kind {
                ElementKind::Resistor { ohms } => *ohms,
                ElementKind::Conductance { siemens } => *siemens,
                ElementKind::Capacitor { farads } => *farads,
                ElementKind::Vccs { gm, .. } => *gm,
                ElementKind::Inductor { henries } => *henries,
                ElementKind::Vcvs { gain, .. } => *gain,
                other => panic!("unsupported {other:?}"),
            }
        };
        let with_value = |base: &Circuit, v: f64| -> Circuit {
            let mut c = Circuit::new();
            for el in base.elements() {
                let p = base.node_name(el.nodes.0).to_string();
                let m = base.node_name(el.nodes.1).to_string();
                let value = |orig: f64| if el.name == name { v } else { orig };
                match &el.kind {
                    ElementKind::Resistor { ohms } => {
                        c.add_resistor(&el.name, &p, &m, value(*ohms)).expect("copy")
                    }
                    ElementKind::Conductance { siemens } => {
                        c.add_conductance(&el.name, &p, &m, value(*siemens)).expect("copy")
                    }
                    ElementKind::Capacitor { farads } => {
                        c.add_capacitor(&el.name, &p, &m, value(*farads)).expect("copy")
                    }
                    ElementKind::Inductor { henries } => {
                        c.add_inductor(&el.name, &p, &m, value(*henries)).expect("copy")
                    }
                    ElementKind::Vccs { gm, control } => {
                        let cp = base.node_name(control.0).to_string();
                        let cm = base.node_name(control.1).to_string();
                        c.add_vccs(&el.name, &p, &m, &cp, &cm, value(*gm)).expect("copy")
                    }
                    ElementKind::Vcvs { gain, control } => {
                        let cp = base.node_name(control.0).to_string();
                        let cm = base.node_name(control.1).to_string();
                        c.add_vcvs(&el.name, &p, &m, &cp, &cm, value(*gain)).expect("copy")
                    }
                    ElementKind::VSource { ac } => {
                        c.add_vsource(&el.name, &p, &m, *ac).expect("copy")
                    }
                    ElementKind::ISource { ac } => {
                        c.add_isource(&el.name, &p, &m, *ac).expect("copy")
                    }
                    other => panic!("unsupported {other:?}"),
                }
            }
            c
        };
        let v0 = read(circuit);
        let h = 1e-6 * v0.abs();
        let hi = MnaSystem::new(&with_value(circuit, v0 + h)).expect("valid");
        let lo = MnaSystem::new(&with_value(circuit, v0 - h)).expect("valid");
        let h_hi = hi.transfer(s, Scale::unit(), spec).expect("solves").response;
        let h_lo = lo.transfer(s, Scale::unit(), spec).expect("solves").response;
        (h_hi - h_lo) / (2.0 * h)
    }

    #[test]
    fn divider_analytic_sensitivity() {
        // H = R2/(R1+R2) at DC: ∂H/∂R2 = R1/(R1+R2)², ∂H/∂R1 = −R2/(R1+R2)².
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "out", 1e3).unwrap();
        c.add_resistor("R2", "out", "0", 3e3).unwrap();
        c.add_capacitor("C1", "out", "0", 1e-12).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let sens = sys.sensitivities(Complex::ZERO, Scale::unit(), &spec()).unwrap();
        let get = |name: &str| sens.iter().find(|x| x.element == name).expect("present").absolute;
        let denom = 4e3f64 * 4e3;
        assert!((get("R2").re - 1e3 / denom).abs() < 1e-12, "{}", get("R2"));
        assert!((get("R1").re + 3e3 / denom).abs() < 1e-12, "{}", get("R1"));
        // Cap has no effect at DC.
        assert!(get("C1").abs() < 1e-20);
    }

    #[test]
    fn matches_finite_differences_on_ladder() {
        let c = rc_ladder(4, 1e3, 1e-9);
        let sys = MnaSystem::new(&c).unwrap();
        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * 2e5);
        let sens = sys.sensitivities(s, Scale::unit(), &spec()).unwrap();
        for item in &sens {
            let fd = fd_sensitivity(&c, &item.element, s, &spec());
            let denom = fd.abs().max(1e-15);
            assert!(
                (item.absolute - fd).abs() / denom < 1e-4,
                "{}: adjoint {} vs fd {fd}",
                item.element,
                item.absolute
            );
        }
    }

    #[test]
    fn matches_finite_differences_on_ota() {
        let c = positive_feedback_ota();
        let sys = MnaSystem::new(&c).unwrap();
        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * 1e6);
        let sens = sys.sensitivities(s, Scale::unit(), &spec()).unwrap();
        // Spot-check a conductance, a capacitor and a transconductance.
        for name in ["gds_M7", "cgs_M1", "gm_M7"] {
            let item = sens.iter().find(|x| x.element == name).expect("present");
            let fd = fd_sensitivity(&c, name, s, &spec());
            assert!(
                (item.absolute - fd).abs() / fd.abs() < 1e-3,
                "{name}: adjoint {} vs fd {fd}",
                item.absolute
            );
        }
    }

    #[test]
    fn inductor_and_vcvs_sensitivities() {
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_inductor("L1", "in", "a", 1e-3).unwrap();
        c.add_resistor("R1", "a", "0", 1e3).unwrap();
        c.add_vcvs("E1", "out", "0", "a", "0", -2.5).unwrap();
        c.add_resistor("R2", "out", "0", 1e3).unwrap();
        c.add_capacitor("C1", "out", "0", 1e-9).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let s = Complex::new(0.0, 5e5);
        let sens = sys.sensitivities(s, Scale::unit(), &spec()).unwrap();
        for name in ["L1", "E1"] {
            let item = sens.iter().find(|x| x.element == name).expect("present");
            let fd = fd_sensitivity(&c, name, s, &spec());
            assert!(
                (item.absolute - fd).abs() / fd.abs() < 1e-4,
                "{name}: adjoint {} vs fd {fd}",
                item.absolute
            );
        }
    }

    #[test]
    fn normalized_sensitivities_of_matched_divider_sum() {
        // For H = R2/(R1+R2): S_R2 + S_R1 = R1/(R1+R2) − R1/(R1+R2) … the
        // normalized sensitivities satisfy S_R2 = −S_R1 = R1/(R1+R2).
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "out", 2e3).unwrap();
        c.add_resistor("R2", "out", "0", 2e3).unwrap();
        c.add_capacitor("C1", "out", "0", 1e-15).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let sens = sys.sensitivities(Complex::ZERO, Scale::unit(), &spec()).unwrap();
        let get = |name: &str| sens.iter().find(|x| x.element == name).expect("present").normalized;
        assert!((get("R2").re - 0.5).abs() < 1e-12);
        assert!((get("R1").re + 0.5).abs() < 1e-12);
    }
}
