//! Deterministic fault injection for the sweep engine's recovery ladder.
//!
//! Real fleets die in ways a clean test corpus never exercises: a variant
//! whose perturbed values land on an exact zero pivot mid-replay, a NaN
//! creeping into a stamp, an iterative solve that stops converging, a
//! worker that panics outright. This module injects exactly those faults
//! **deterministically**, so the containment machinery
//! ([`SweepPlan`](crate::SweepPlan)'s singular-recovery ladder,
//! `refgen_core`'s `FaultPolicy::Contain`, `refgen_exec`'s panic
//! quarantine) can be proven to degrade gracefully — and to leave every
//! *unfaulted* result bit-identical to a fault-free run.
//!
//! # Model
//!
//! A [`FaultPlan`] is a passive description: which fleet variants fail in
//! which way ([`FaultKind`]), which evaluation points get NaN stamps, and
//! whether GMRES is forced to stagnate. Nothing fires until the plan is
//! [`install`]ed (a process-global slot, serialized across tests by a
//! guard) **and** the executing thread has armed a [`FaultScope`] naming
//! the variant it is solving. Both gates exist for hygiene: an installed
//! plan cannot perturb unrelated tests running concurrently in the same
//! process, and un-scoped product code pays one relaxed atomic load per
//! query.
//!
//! The `REFGEN_TEST_FAULTS` environment hook ([`env_seed`]) carries a seed
//! the fault-injection test tier feeds to [`FaultPlan::seeded_variants`],
//! so CI can re-run the whole suite under a different (but reproducible)
//! injection pattern without touching any other test.

use refgen_numeric::Complex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError, RwLock};

/// How a faulted variant fails. Kinds are ordered by how deep into the
/// singular-recovery ladder they reach.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Prescribed-order replays (compiled kernel or recorded pivot order)
    /// report a singular pivot; the fresh value-aware Markowitz
    /// factorization is untouched, so the ladder recovers at rung 1.
    ReplayZeroPivot,
    /// Replays *and* fresh Markowitz factorizations report singular; the
    /// alternate-ordering recompile is untouched, so the ladder recovers
    /// at rung 2.
    FreshSingular,
    /// Every factorization path reports singular: the ladder is exhausted
    /// and the variant dies with a typed per-point failure.
    Singular,
    /// The variant's solve job panics before doing any work (quarantined
    /// under `FaultPolicy::Contain`, propagated under `FailFast`).
    Panic,
}

/// A seeded, deterministic description of what to break. See the
/// [module docs](self) for the firing rules.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    variants: BTreeMap<usize, FaultKind>,
    /// Bit patterns of evaluation points whose stamps are poisoned.
    nan_points: Vec<(u64, u64)>,
    gmres_stagnate: bool,
}

impl FaultPlan {
    /// An empty plan (injects nothing until directives are added).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Marks fleet variant `variant` to fail as `kind`.
    #[must_use]
    pub fn fault_variant(mut self, variant: usize, kind: FaultKind) -> FaultPlan {
        self.variants.insert(variant, kind);
        self
    }

    /// Marks every variant in `variants` to fail as `kind`.
    #[must_use]
    pub fn fault_variants(mut self, variants: &[usize], kind: FaultKind) -> FaultPlan {
        for &v in variants {
            self.variants.insert(v, kind);
        }
        self
    }

    /// Poisons every matrix stamp of evaluations at exactly `s` (bit-wise
    /// match) with NaN — the injected-round-off scenario the hybrid
    /// sweep's stagnation fallback must survive.
    #[must_use]
    pub fn nan_stamp_at(mut self, s: Complex) -> FaultPlan {
        self.nan_points.push((s.re.to_bits(), s.im.to_bits()));
        self
    }

    /// Forces every GMRES interior solve to report stagnation, so each
    /// point of a hybrid sweep takes the direct re-anchor fallback.
    #[must_use]
    pub fn stagnate_gmres(mut self) -> FaultPlan {
        self.gmres_stagnate = true;
        self
    }

    /// Deterministically picks `count` distinct victim variants in
    /// `1..fleet` from `seed` (variant 0 is never picked: fleet sessions
    /// solve it first to warm the shared plan cache, and the containment
    /// oracle relies on that warm-up being identical with and without
    /// faults). Sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics unless `count < fleet` and `fleet > 1`.
    pub fn seeded_variants(seed: u64, fleet: usize, count: usize) -> Vec<usize> {
        assert!(fleet > 1 && count < fleet, "need count < fleet and fleet > 1");
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut picked: Vec<usize> = Vec::with_capacity(count);
        while picked.len() < count {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = 1 + ((state >> 33) as usize) % (fleet - 1);
            if !picked.contains(&idx) {
                picked.push(idx);
            }
        }
        picked.sort_unstable();
        picked
    }
}

/// The process-global installed plan. `None` almost always; fault tests
/// hold the slot through an [`InstalledFaults`] guard.
static PLAN: RwLock<Option<FaultPlan>> = RwLock::new(None);
/// Fast-path gate: product code pays one relaxed load when no plan is
/// installed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Serializes installers: two fault tests in one test binary take turns
/// instead of clobbering each other's plan.
static INSTALL: Mutex<()> = Mutex::new(());

thread_local! {
    /// The variant index the current thread is solving, when inside a
    /// [`FaultScope`].
    static SCOPE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Holds an installed [`FaultPlan`] active; dropping it disarms and clears
/// the global slot. Also holds the installer serialization lock, so keep
/// the guard alive for exactly the duration of the faulted run.
#[must_use = "faults fire only while the guard is alive"]
pub struct InstalledFaults {
    _serial: MutexGuard<'static, ()>,
}

/// Installs `plan` as the process-global fault plan and arms injection.
/// Blocks until any previously installed plan is dropped (installers are
/// serialized). Directives still fire only on threads inside a
/// [`FaultScope`].
pub fn install(plan: FaultPlan) -> InstalledFaults {
    let serial = INSTALL.lock().unwrap_or_else(PoisonError::into_inner);
    *PLAN.write().unwrap_or_else(PoisonError::into_inner) = Some(plan);
    ARMED.store(true, Ordering::SeqCst);
    InstalledFaults { _serial: serial }
}

impl Drop for InstalledFaults {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *PLAN.write().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Arms fault directives for one variant on the current thread; dropping
/// the scope restores the previous arming (scopes nest).
pub struct FaultScope {
    prev: Option<usize>,
}

impl FaultScope {
    /// Enters the scope of fleet variant `index` on this thread.
    pub fn variant(index: usize) -> FaultScope {
        let prev = SCOPE.with(|s| s.replace(Some(index)));
        FaultScope { prev }
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        let prev = self.prev;
        SCOPE.with(|s| s.set(prev));
    }
}

/// The seed carried by the `REFGEN_TEST_FAULTS` environment hook, if set
/// to a valid `u64` (read once per process). The fault test tier feeds it
/// to [`FaultPlan::seeded_variants`] so CI can vary the injection pattern.
pub fn env_seed() -> Option<u64> {
    static SEED: OnceLock<Option<u64>> = OnceLock::new();
    *SEED.get_or_init(|| std::env::var("REFGEN_TEST_FAULTS").ok().and_then(|v| v.parse().ok()))
}

/// The fault kind armed for the current thread's scope, if any.
fn active_kind() -> Option<FaultKind> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let variant = SCOPE.with(|s| s.get())?;
    PLAN.read()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
        .and_then(|p| p.variants.get(&variant).copied())
}

/// `true` when prescribed-order replays must report a singular pivot.
pub fn poison_replay() -> bool {
    matches!(
        active_kind(),
        Some(FaultKind::ReplayZeroPivot | FaultKind::FreshSingular | FaultKind::Singular)
    )
}

/// `true` when fresh Markowitz factorizations must report singular.
pub fn poison_fresh() -> bool {
    matches!(active_kind(), Some(FaultKind::FreshSingular | FaultKind::Singular))
}

/// `true` when the alternate-ordering recompile must report singular too.
pub fn poison_alternate() -> bool {
    matches!(active_kind(), Some(FaultKind::Singular))
}

/// `true` when the current variant's job is scripted to panic.
pub fn scripted_panic() -> bool {
    matches!(active_kind(), Some(FaultKind::Panic))
}

/// Poisons an evaluation point listed in the plan's NaN-stamp set: since
/// `NaN·0 = NaN` in IEEE arithmetic, returning an all-NaN `s` turns
/// **every** affine stamp `k₀ + s·k₁` non-finite, exactly as if the stamp
/// values themselves were corrupted. Unlisted (or un-scoped) points pass
/// through untouched.
pub fn poison_point(s: Complex) -> Complex {
    if !ARMED.load(Ordering::Relaxed) {
        return s;
    }
    if SCOPE.with(|sc| sc.get()).is_none() {
        return s;
    }
    let key = (s.re.to_bits(), s.im.to_bits());
    let hit = PLAN
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
        .is_some_and(|p| p.nan_points.contains(&key));
    if hit {
        Complex::new(f64::NAN, f64::NAN)
    } else {
        s
    }
}

/// `true` when GMRES interior solves must report stagnation.
pub fn gmres_stagnation() -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    if SCOPE.with(|sc| sc.get()).is_none() {
        return false;
    }
    PLAN.read().unwrap_or_else(PoisonError::into_inner).as_ref().is_some_and(|p| p.gmres_stagnate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_process_injects_nothing() {
        // No install, no scope: every query is inert.
        assert!(!poison_replay());
        assert!(!poison_fresh());
        assert!(!poison_alternate());
        assert!(!scripted_panic());
        assert!(!gmres_stagnation());
        let s = Complex::new(0.25, -1.5);
        assert_eq!(poison_point(s), s);
    }

    #[test]
    fn directives_fire_only_inside_matching_scope() {
        let plan = FaultPlan::new()
            .fault_variant(3, FaultKind::ReplayZeroPivot)
            .fault_variant(5, FaultKind::Singular)
            .nan_stamp_at(Complex::new(1.0, 2.0))
            .stagnate_gmres();
        let _guard = install(plan);
        // Armed but un-scoped: still inert.
        assert!(!poison_replay());
        assert!(!gmres_stagnation());
        {
            let _scope = FaultScope::variant(3);
            assert!(poison_replay());
            assert!(!poison_fresh());
            assert!(!poison_alternate());
            assert!(gmres_stagnation());
            assert!(poison_point(Complex::new(1.0, 2.0)).re.is_nan());
            let clean = Complex::new(1.0, 2.000000001);
            assert_eq!(poison_point(clean), clean);
            {
                let _inner = FaultScope::variant(5);
                assert!(poison_replay() && poison_fresh() && poison_alternate());
            }
            // Scope nesting restored.
            assert!(poison_replay() && !poison_fresh());
        }
        assert!(!poison_replay());
    }

    #[test]
    fn seeded_victims_are_deterministic_and_never_variant_zero() {
        let a = FaultPlan::seeded_variants(42, 64, 4);
        let b = FaultPlan::seeded_variants(42, 64, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, distinct: {a:?}");
        assert!(a.iter().all(|&v| (1..64).contains(&v)), "never variant 0: {a:?}");
        let c = FaultPlan::seeded_variants(43, 64, 4);
        assert_ne!(a, c, "different seeds pick different victims");
    }

    #[test]
    fn install_guard_disarms_on_drop() {
        {
            let _guard = install(FaultPlan::new().fault_variant(0, FaultKind::Panic));
            let _scope = FaultScope::variant(0);
            assert!(scripted_panic());
        }
        let _scope = FaultScope::variant(0);
        assert!(!scripted_panic());
    }
}
