//! MNA system assembly with element scaling.

use crate::error::MnaError;
use refgen_circuit::{Circuit, Element, ElementKind, NodeId};
use refgen_numeric::{Complex, ExtComplex};
use refgen_sparse::{SparseLu, Triplets};
use std::collections::HashMap;

/// Frequency and conductance scale factors applied during stamping.
///
/// Realizes the paper's eq. (11): capacitors stamp as `f·C`, resistive
/// admittances (conductances, resistors as `1/R`, transconductances) as
/// `g·G`. With samples taken on the unit circle, the interpolated
/// coefficients become `p'_i = p_i·f^i·g^{M-i}` where `M` is the system's
/// admittance degree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scale {
    /// Frequency (capacitance) scale factor `f`.
    pub f: f64,
    /// Conductance scale factor `g`.
    pub g: f64,
}

impl Scale {
    /// No scaling: `f = g = 1`.
    pub fn unit() -> Self {
        Scale { f: 1.0, g: 1.0 }
    }

    /// Creates a scale pair.
    ///
    /// # Panics
    ///
    /// Panics unless both factors are positive and finite.
    pub fn new(f: f64, g: f64) -> Self {
        assert!(f.is_finite() && f > 0.0, "frequency scale must be positive, got {f}");
        assert!(g.is_finite() && g > 0.0, "conductance scale must be positive, got {g}");
        Scale { f, g }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::unit()
    }
}

/// A compiled MNA view of a circuit: node/branch index maps plus assembly
/// and evaluation entry points.
///
/// Unknowns are ordered: non-ground node voltages first (`0..nodes−1`),
/// then one branch current per voltage-defined element (independent V
/// sources, VCVS, CCVS, inductors).
#[derive(Clone, Debug)]
pub struct MnaSystem {
    circuit: Circuit,
    /// Map from circuit node id to matrix row (ground absent).
    node_rows: HashMap<NodeId, usize>,
    /// Branch index by element name.
    branch_rows: HashMap<String, usize>,
    node_count: usize,
    dim: usize,
}

impl MnaSystem {
    /// Compiles a circuit into an MNA system.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::Circuit`] if the circuit fails validation.
    pub fn new(circuit: &Circuit) -> Result<Self, MnaError> {
        circuit.validate()?;
        let mut node_rows = HashMap::new();
        let mut next = 0usize;
        for idx in 0..circuit.node_count() {
            let id = NodeId(idx);
            if !id.is_ground() {
                node_rows.insert(id, next);
                next += 1;
            }
        }
        let node_count = next;
        let mut branch_rows = HashMap::new();
        for el in circuit.elements() {
            if el.needs_branch() {
                branch_rows.insert(el.name.clone(), node_count + branch_rows.len());
            }
        }
        let dim = node_count + branch_rows.len();
        Ok(MnaSystem { circuit: circuit.clone(), node_rows, branch_rows, node_count, dim })
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Total unknown count (node voltages + branch currents).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of node-voltage unknowns.
    pub fn node_unknowns(&self) -> usize {
        self.node_count
    }

    /// Number of branch-current unknowns.
    pub fn branch_unknowns(&self) -> usize {
        self.dim - self.node_count
    }

    /// Matrix row of a node's voltage unknown (`None` for ground).
    pub fn node_row(&self, id: NodeId) -> Option<usize> {
        self.node_rows.get(&id).copied()
    }

    /// Matrix row of an element's branch current.
    pub fn branch_row(&self, name: &str) -> Option<usize> {
        self.branch_rows.get(name).copied()
    }

    /// `true` if the circuit contains element kinds the *interpolation
    /// engine* cannot scale uniformly (inductors, CCVS). The AC simulator
    /// handles them fine.
    pub fn has_unscalable_elements(&self) -> bool {
        self.circuit
            .elements()
            .iter()
            .any(|e| matches!(e.kind, ElementKind::Inductor { .. } | ElementKind::Ccvs { .. }))
    }

    /// The structural admittance degree `M`: the number of admittance
    /// factors in every nonzero term of `det(Y_MNA)`.
    ///
    /// Every branch row is constant (±1 and dimensionless gains), and every
    /// branch column can only be covered by an incidence constant from a
    /// node row, so each of the `B` branches removes exactly two admittance
    /// factors: `M = dim − 2B = (#nodes − 1) − B`.
    ///
    /// Only meaningful when [`MnaSystem::has_unscalable_elements`] is false;
    /// CCVS branch rows carry a transresistance and break the argument.
    pub fn admittance_degree(&self) -> i64 {
        self.dim as i64 - 2 * (self.branch_unknowns() as i64)
    }

    /// Numerically measures `M` from `det(λ·Y)/det(Y) = λ^M` at a probe
    /// frequency, with `λ = 2` so the ratio is an exact power of two.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::Singular`] if the probe determinant vanishes.
    pub fn measured_admittance_degree(&self) -> Result<i64, MnaError> {
        // Probe at a frequency where caps matter: ω ≈ geometric centre of
        // the circuit's time constants, or 1 rad/s if capless.
        let caps = self.circuit.capacitor_values();
        let gs = self.circuit.conductance_values();
        let omega = if caps.is_empty() || gs.is_empty() {
            1.0
        } else {
            let gc = refgen_numeric::stats::geometric_mean(&gs).unwrap_or(1.0);
            let cc = refgen_numeric::stats::geometric_mean(&caps).unwrap_or(1.0);
            gc / cc
        };
        let s = Complex::new(0.3 * omega, omega); // off-axis: avoids jω zeros
        let d1 = self.det(s, Scale::unit())?;
        let d2 = self.det(s, Scale::new(2.0, 2.0))?;
        if d1.is_zero() || d2.is_zero() {
            return Err(MnaError::Singular { at: format!("probe s = {s}") });
        }
        let ratio_log2 = (d2.norm() / d1.norm()).log2();
        Ok(ratio_log2.round() as i64)
    }

    /// Assembles the MNA matrix at complex frequency `s` with scaling.
    pub fn assemble(&self, s: Complex, scale: Scale) -> Triplets {
        let mut t = Triplets::new(self.dim);
        for el in self.circuit.elements() {
            self.stamp(&mut t, el, s, scale);
        }
        t
    }

    /// Builds the excitation vector `E` from the independent sources.
    pub fn rhs(&self) -> Vec<Complex> {
        let mut e = vec![Complex::ZERO; self.dim];
        for el in self.circuit.elements() {
            match &el.kind {
                ElementKind::VSource { ac } => {
                    let row = self.branch_rows[&el.name];
                    e[row] += Complex::real(*ac);
                }
                ElementKind::ISource { ac } => {
                    // Positive current flows p → m through the source.
                    let (p, m) = el.nodes;
                    if let Some(r) = self.node_row(p) {
                        e[r] -= Complex::real(*ac);
                    }
                    if let Some(r) = self.node_row(m) {
                        e[r] += Complex::real(*ac);
                    }
                }
                _ => {}
            }
        }
        e
    }

    /// Factors the system at `s` and returns the LU (for solves and the
    /// determinant).
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::Singular`] if factorization fails.
    pub fn factor(&self, s: Complex, scale: Scale) -> Result<SparseLu, MnaError> {
        let t = self.assemble(s, scale);
        SparseLu::factor(&t).map_err(|e| MnaError::from_factor(e, format!("s = {s}")))
    }

    /// Determinant `D(s)` of the (scaled) MNA matrix — the denominator
    /// polynomial sample of the paper's eq. (9).
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::Singular`] only on dimension-zero pathologies;
    /// a structurally singular matrix yields `ExtComplex::ZERO`.
    pub fn det(&self, s: Complex, scale: Scale) -> Result<ExtComplex, MnaError> {
        match self.factor(s, scale) {
            Ok(lu) => Ok(lu.det()),
            Err(_) => Ok(ExtComplex::ZERO),
        }
    }

    fn stamp(&self, t: &mut Triplets, el: &Element, s: Complex, scale: Scale) {
        let (p, m) = el.nodes;
        let rp = self.node_row(p);
        let rm = self.node_row(m);
        match &el.kind {
            ElementKind::Resistor { ohms } => {
                self.stamp_admittance(t, rp, rm, Complex::real(scale.g / ohms));
            }
            ElementKind::Conductance { siemens } => {
                self.stamp_admittance(t, rp, rm, Complex::real(scale.g * siemens));
            }
            ElementKind::Capacitor { farads } => {
                self.stamp_admittance(t, rp, rm, s * (scale.f * farads));
            }
            ElementKind::Vccs { gm, control } => {
                let y = Complex::real(scale.g * gm);
                let (cp, cm) = (self.node_row(control.0), self.node_row(control.1));
                self.stamp_transadmittance(t, rp, rm, cp, cm, y);
            }
            ElementKind::VSource { .. } => {
                let row = self.branch_rows[&el.name];
                self.stamp_branch_voltage(t, row, rp, rm);
            }
            ElementKind::Vcvs { gain, control } => {
                let row = self.branch_rows[&el.name];
                self.stamp_branch_voltage(t, row, rp, rm);
                let (cp, cm) = (self.node_row(control.0), self.node_row(control.1));
                if let Some(c) = cp {
                    t.add(row, c, Complex::real(-gain));
                }
                if let Some(c) = cm {
                    t.add(row, c, Complex::real(*gain));
                }
            }
            ElementKind::Cccs { gain, control_branch } => {
                let col = self.branch_rows[control_branch];
                if let Some(r) = rp {
                    t.add(r, col, Complex::real(*gain));
                }
                if let Some(r) = rm {
                    t.add(r, col, Complex::real(-gain));
                }
            }
            ElementKind::Ccvs { ohms, control_branch } => {
                let row = self.branch_rows[&el.name];
                self.stamp_branch_voltage(t, row, rp, rm);
                let col = self.branch_rows[control_branch];
                t.add(row, col, Complex::real(-ohms));
            }
            ElementKind::Inductor { henries } => {
                let row = self.branch_rows[&el.name];
                self.stamp_branch_voltage(t, row, rp, rm);
                // The frequency scale applies to every reactive element:
                // s → f·σ substitutes exactly in the branch equation too.
                t.add(row, row, -(s * (scale.f * *henries)));
            }
            ElementKind::ISource { .. } => {
                // Pure excitation: appears only in the RHS.
            }
        }
    }

    fn stamp_admittance(&self, t: &mut Triplets, rp: Option<usize>, rm: Option<usize>, y: Complex) {
        if let Some(i) = rp {
            t.add(i, i, y);
            if let Some(j) = rm {
                t.add(i, j, -y);
            }
        }
        if let Some(j) = rm {
            t.add(j, j, y);
            if let Some(i) = rp {
                t.add(j, i, -y);
            }
        }
    }

    fn stamp_transadmittance(
        &self,
        t: &mut Triplets,
        rp: Option<usize>,
        rm: Option<usize>,
        cp: Option<usize>,
        cm: Option<usize>,
        y: Complex,
    ) {
        for (node, sign_n) in [(rp, 1.0), (rm, -1.0)] {
            let Some(r) = node else { continue };
            for (ctrl, sign_c) in [(cp, 1.0), (cm, -1.0)] {
                let Some(c) = ctrl else { continue };
                t.add(r, c, y.scale(sign_n * sign_c));
            }
        }
    }

    /// Branch voltage definition row and its incidence column entries.
    fn stamp_branch_voltage(
        &self,
        t: &mut Triplets,
        row: usize,
        rp: Option<usize>,
        rm: Option<usize>,
    ) {
        if let Some(i) = rp {
            t.add(row, i, Complex::ONE);
            t.add(i, row, Complex::ONE);
        }
        if let Some(j) = rm {
            t.add(row, j, -Complex::ONE);
            t.add(j, row, -Complex::ONE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refgen_circuit::library::{rc_ladder, tow_thomas_biquad, ua741};

    fn voltage_divider() -> Circuit {
        let mut c = Circuit::new();
        c.add_vsource("V1", "a", "0", 2.0).unwrap();
        c.add_resistor("R1", "a", "b", 1e3).unwrap();
        c.add_resistor("R2", "b", "0", 3e3).unwrap();
        c
    }

    #[test]
    fn dimensions() {
        let sys = MnaSystem::new(&voltage_divider()).unwrap();
        assert_eq!(sys.node_unknowns(), 2);
        assert_eq!(sys.branch_unknowns(), 1);
        assert_eq!(sys.dim(), 3);
        assert!(sys.branch_row("V1").is_some());
    }

    #[test]
    fn dc_divider_solution() {
        let c = voltage_divider();
        let sys = MnaSystem::new(&c).unwrap();
        let lu = sys.factor(Complex::ZERO, Scale::unit()).unwrap();
        let x = lu.solve(&sys.rhs());
        let b_row = sys.node_row(c.find_node("b").unwrap()).unwrap();
        // v(b) = 2 V · 3k/4k = 1.5 V.
        assert!((x[b_row] - Complex::real(1.5)).abs() < 1e-12);
        let a_row = sys.node_row(c.find_node("a").unwrap()).unwrap();
        assert!((x[a_row] - Complex::real(2.0)).abs() < 1e-12);
        // Branch current: 2V/4k = 0.5 mA flowing out of the + terminal.
        let i_row = sys.branch_row("V1").unwrap();
        assert!((x[i_row] + Complex::real(0.5e-3)).abs() < 1e-9, "{}", x[i_row]);
    }

    #[test]
    fn isource_rc() {
        let mut c = Circuit::new();
        c.add_isource("I1", "0", "n", 1e-3).unwrap();
        c.add_resistor("R1", "n", "0", 2e3).unwrap();
        c.add_capacitor("C1", "n", "0", 1e-9).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let lu = sys.factor(Complex::ZERO, Scale::unit()).unwrap();
        let x = lu.solve(&sys.rhs());
        let n_row = sys.node_row(c.find_node("n").unwrap()).unwrap();
        // 1 mA into 2 kΩ = 2 V.
        assert!((x[n_row] - Complex::real(2.0)).abs() < 1e-12);
    }

    #[test]
    fn capacitor_frequency_dependence() {
        let c = rc_ladder(1, 1e3, 1e-9);
        let sys = MnaSystem::new(&c).unwrap();
        let w0 = 1.0 / (1e3 * 1e-9);
        let lu = sys.factor(Complex::new(0.0, w0), Scale::unit()).unwrap();
        let x = lu.solve(&sys.rhs());
        let out = sys.node_row(c.find_node("out").unwrap()).unwrap();
        // At the pole frequency |H| = 1/√2.
        assert!((x[out].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn scale_equivalence_frequency_vs_element() {
        // Scaling all caps by f and evaluating at σ must equal evaluating
        // the unscaled system at s = f·σ.
        let c = rc_ladder(4, 1e3, 1e-9);
        let sys = MnaSystem::new(&c).unwrap();
        let sigma = Complex::new(0.2, 0.9);
        let f = 1e9;
        let d_scaled = sys.det(sigma, Scale::new(f, 1.0)).unwrap();
        let d_subst = sys.det(sigma.scale(f), Scale::unit()).unwrap();
        let rel = ((d_scaled - d_subst).norm() / d_subst.norm()).to_f64();
        assert!(rel < 1e-12, "rel = {rel}");
    }

    #[test]
    fn admittance_degree_structural_vs_measured() {
        for (name, circuit) in [
            ("ladder", rc_ladder(5, 1e3, 1e-9)),
            ("ota", refgen_circuit::library::positive_feedback_ota()),
            ("biquad", tow_thomas_biquad(10e3, 2.0, 1e4)),
            ("ua741", ua741()),
        ] {
            let sys = MnaSystem::new(&circuit).unwrap();
            let structural = sys.admittance_degree();
            let measured = sys.measured_admittance_degree().unwrap();
            assert_eq!(structural, measured, "{name}");
        }
    }

    #[test]
    fn conductance_scaling_multiplies_det_uniformly() {
        // With f = g = λ, det scales by exactly λ^M.
        let c = rc_ladder(3, 1e3, 1e-9);
        let sys = MnaSystem::new(&c).unwrap();
        let s = Complex::new(1e5, 3e5);
        let d1 = sys.det(s, Scale::unit()).unwrap();
        let d2 = sys.det(s, Scale::new(4.0, 4.0)).unwrap();
        let m = sys.admittance_degree();
        let expect = d1.scale_ext(refgen_numeric::ExtFloat::from_f64(4.0).powi(m));
        let rel = ((d2 - expect).norm() / expect.norm()).to_f64();
        assert!(rel < 1e-11, "rel = {rel}");
    }

    #[test]
    fn det_of_singular_circuit_is_zero() {
        // Two V sources in parallel on the same node pair: singular MNA.
        let mut c = Circuit::new();
        c.add_vsource("V1", "a", "0", 1.0).unwrap();
        c.add_vsource("V2", "a", "0", 1.0).unwrap();
        c.add_resistor("R1", "a", "0", 1e3).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        assert!(sys.det(Complex::ONE, Scale::unit()).unwrap().is_zero());
    }

    #[test]
    fn unscalable_detection() {
        let mut c = Circuit::new();
        c.add_vsource("V1", "a", "0", 1.0).unwrap();
        c.add_inductor("L1", "a", "b", 1e-6).unwrap();
        c.add_resistor("R1", "b", "0", 50.0).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        assert!(sys.has_unscalable_elements());
        let sys2 = MnaSystem::new(&rc_ladder(2, 1.0, 1.0)).unwrap();
        assert!(!sys2.has_unscalable_elements());
    }

    #[test]
    fn inductor_ac_behaviour() {
        // Series RL divider: at ω = R/L, |v(b)/v(a)| = 1/√2 across R.
        let mut c = Circuit::new();
        c.add_vsource("V1", "a", "0", 1.0).unwrap();
        c.add_inductor("L1", "a", "b", 1e-3).unwrap();
        c.add_resistor("R1", "b", "0", 1e3).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let w = 1e3 / 1e-3;
        let lu = sys.factor(Complex::new(0.0, w), Scale::unit()).unwrap();
        let x = lu.solve(&sys.rhs());
        let b_row = sys.node_row(c.find_node("b").unwrap()).unwrap();
        assert!((x[b_row].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn vcvs_ideal_amplifier() {
        let mut c = Circuit::new();
        c.add_vsource("V1", "a", "0", 1.0).unwrap();
        c.add_resistor("R1", "a", "0", 1e3).unwrap();
        c.add_vcvs("E1", "o", "0", "a", "0", -5.0).unwrap();
        c.add_resistor("R2", "o", "0", 1e3).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let lu = sys.factor(Complex::ZERO, Scale::unit()).unwrap();
        let x = lu.solve(&sys.rhs());
        let o = sys.node_row(c.find_node("o").unwrap()).unwrap();
        assert!((x[o] - Complex::real(-5.0)).abs() < 1e-12);
    }

    #[test]
    fn cccs_current_mirror() {
        let mut c = Circuit::new();
        c.add_vsource("VS", "a", "0", 1.0).unwrap();
        c.add_resistor("R1", "a", "0", 1e3).unwrap(); // i(VS) = 1 mA
        c.add_cccs("F1", "0", "o", "VS", 2.0).unwrap();
        c.add_resistor("R2", "o", "0", 1e3).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let lu = sys.factor(Complex::ZERO, Scale::unit()).unwrap();
        let x = lu.solve(&sys.rhs());
        let o = sys.node_row(c.find_node("o").unwrap()).unwrap();
        // SPICE convention: i(VS) = −1 mA (sources driving loads read
        // negative), so F pushes 2·i = −2 mA from node 0 to node o,
        // giving v(o) = −2 V.
        assert!((x[o] - Complex::real(-2.0)).abs() < 1e-9, "{}", x[o]);
    }

    #[test]
    fn ccvs_transresistance() {
        let mut c = Circuit::new();
        c.add_vsource("VS", "a", "0", 1.0).unwrap();
        c.add_resistor("R1", "a", "0", 1e3).unwrap();
        c.add_ccvs("H1", "o", "0", "VS", 500.0).unwrap();
        c.add_resistor("R2", "o", "0", 1e3).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        assert!(sys.has_unscalable_elements());
        let lu = sys.factor(Complex::ZERO, Scale::unit()).unwrap();
        let x = lu.solve(&sys.rhs());
        let o = sys.node_row(c.find_node("o").unwrap()).unwrap();
        // v(o) = 500 · i(VS) = 500 · (−1 mA) = −0.5 V.
        assert!((x[o] - Complex::real(-0.5)).abs() < 1e-9, "{}", x[o]);
    }
}
