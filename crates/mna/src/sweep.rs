//! The plan/execute seam for repeated evaluation of one MNA system.
//!
//! Every consumer that evaluates the same `(MnaSystem, Scale)` pair at many
//! complex frequencies — the interpolation engine's unit-circle sampling,
//! the AC simulator's frequency sweep — used to pay full price per point:
//! re-stamp the matrix into fresh allocations, then a full Markowitz pivot
//! search. A [`SweepPlan`] hoists everything point-independent out of the
//! loop, built **once** per `(MnaSystem, Scale)`:
//!
//! * the **sparsity pattern** as an affine template `A(s) = K₀ + s·K₁`
//!   (every MNA stamp is constant or linear in `s`), so per-point assembly
//!   is one multiply-add per entry into a reused buffer;
//! * the **RHS template** (the excitation vector is frequency-independent);
//! * an **adopted pivot order** from one probe factorization, so per-point
//!   factorization is a numeric replay
//!   ([`SparseLu::refactor_into`](refgen_sparse::SparseLu::refactor_into))
//!   with no pivot search.
//!
//! Execution state lives in a [`SweepScratch`] — reused triplet buffer, LU
//! workspace, solution vector, and hit counters — so the steady state
//! allocates nothing. The plan itself is immutable and `Sync`: a parallel
//! executor shares one plan across workers, each owning a scratch, and
//! every point's result depends only on `(plan, s)` — which is what makes
//! batched sampling bit-identical at any thread count.
//!
//! # Example
//!
//! ```
//! use refgen_circuit::library::rc_ladder;
//! use refgen_mna::{MnaSystem, Scale, SweepPlan, SweepScratch, TransferSpec};
//! use refgen_numeric::Complex;
//!
//! # fn main() -> Result<(), refgen_mna::MnaError> {
//! let circuit = rc_ladder(4, 1e3, 1e-9);
//! let sys = MnaSystem::new(&circuit)?;
//! let spec = TransferSpec::voltage_gain("VIN", "out");
//! let plan = SweepPlan::new(&sys, Scale::unit(), &spec)?;
//! let mut scratch = SweepScratch::new();
//! for k in 0..32 {
//!     let s = Complex::new(0.0, 1e5 * (k + 1) as f64);
//!     let r = plan.eval_at(s, &mut scratch)?; // refactor + solve, no search
//!     assert!(r.response.abs() <= 1.0 + 1e-9); // passive ladder
//! }
//! // Every point after the plan's probe reused the recorded pivot order.
//! assert_eq!(scratch.stats().refactor_hits, 32);
//! assert_eq!(scratch.stats().fresh_factorizations, 0);
//! # Ok(())
//! # }
//! ```
//!
//! Determinant-only sampling (the denominator polynomial of the paper's
//! eq. (9)) skips the solve entirely:
//!
//! ```
//! use refgen_circuit::library::rc_ladder;
//! use refgen_mna::{MnaSystem, Scale, SweepPlan, SweepScratch};
//! use refgen_numeric::Complex;
//!
//! # fn main() -> Result<(), refgen_mna::MnaError> {
//! let sys = MnaSystem::new(&rc_ladder(4, 1e3, 1e-9))?;
//! let plan = SweepPlan::for_determinant(&sys, Scale::new(1e9, 1e3));
//! let mut scratch = SweepScratch::new();
//! let d = plan.eval_det(Complex::ONE, &mut scratch);
//! assert!(!d.is_zero());
//! # Ok(())
//! # }
//! ```

use crate::error::MnaError;
use crate::system::{MnaSystem, Scale};
use crate::transfer::{OutputSpec, TransferResponse, TransferSpec};
use refgen_numeric::{Complex, ExtComplex};
use refgen_sparse::{LuWorkspace, PivotOrder, SparseLu, Triplets};

/// Counters a [`SweepScratch`] accumulates across evaluations: how often
/// the recorded pivot order was replayed numerically versus how often a
/// full Markowitz pivot search had to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Evaluations that reused a recorded pivot order (the cheap path).
    pub refactor_hits: u64,
    /// Evaluations that paid a full Markowitz factorization (no usable
    /// order, or the recorded order hit an exact zero pivot).
    pub fresh_factorizations: u64,
}

/// Per-executor mutable state for [`SweepPlan`] evaluation: reused
/// assembly/factorization/solve buffers plus [`SweepStats`] counters.
///
/// One scratch per thread; the plan is shared. A scratch built with
/// [`SweepScratch::new`] always replays the *plan's* pivot order, so
/// results are a pure function of `(plan, s)` — the mode batched sampling
/// needs for thread-count-independent output. A scratch built with
/// [`SweepScratch::adopting`] additionally adopts the pivot order of any
/// fallback Markowitz factorization for subsequent points, so a sequential
/// sweep that crosses a point where the recorded order dies (exact zero
/// pivot) pays the pivot search once instead of at every remaining point.
#[derive(Clone, Debug, Default)]
pub struct SweepScratch {
    triplets: Triplets,
    ws: LuWorkspace,
    x: Vec<Complex>,
    adopted: Option<PivotOrder>,
    adopt_on_fallback: bool,
    stats: SweepStats,
}

impl SweepScratch {
    /// A scratch that always replays the plan's pivot order
    /// (deterministic-batch mode; see the type docs).
    pub fn new() -> Self {
        SweepScratch::default()
    }

    /// A scratch that adopts the pivot order of fallback factorizations
    /// (sequential-sweep mode; see the type docs).
    pub fn adopting() -> Self {
        SweepScratch { adopt_on_fallback: true, ..SweepScratch::default() }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SweepStats {
        self.stats
    }

    /// Resets the counters (buffers and any adopted order are kept).
    pub fn reset_stats(&mut self) {
        self.stats = SweepStats::default();
    }
}

/// Where a factorization for one evaluation point lives.
enum Factored {
    /// In the scratch workspace (pivot-order replay succeeded).
    Workspace,
    /// A fresh Markowitz factorization (fallback path).
    Fresh(SparseLu),
}

/// Resolved output observation: matrix rows instead of node names.
#[derive(Clone, Copy, Debug)]
enum PlanOutput {
    Node(Option<usize>),
    Differential(Option<usize>, Option<usize>),
}

/// Resolved transfer-function drive: source amplitude + output rows.
#[derive(Clone, Copy, Debug)]
struct PlanDrive {
    amp: f64,
    out: PlanOutput,
}

impl PlanDrive {
    fn response_from(&self, x: &[Complex]) -> Complex {
        let v = |row: Option<usize>| row.map(|r| x[r]).unwrap_or(Complex::ZERO);
        let out = match self.out {
            PlanOutput::Node(r) => v(r),
            PlanOutput::Differential(p, m) => v(p) - v(m),
        };
        out / self.amp
    }
}

/// A compiled evaluation plan for one `(MnaSystem, Scale)` pair. See the
/// [module docs](self) for the architecture and examples.
#[derive(Clone, Debug)]
pub struct SweepPlan {
    dim: usize,
    scale: Scale,
    /// `(row, col, constant, s-coefficient)` per raw stamp entry; the
    /// matrix at `s` is the accumulation of `constant + s·coefficient`.
    pattern: Vec<(usize, usize, Complex, Complex)>,
    rhs: Vec<Complex>,
    order: Option<PivotOrder>,
    drive: Option<PlanDrive>,
}

impl SweepPlan {
    /// Builds a full plan: determinant *and* transfer evaluation.
    ///
    /// Resolves the spec's source and output once, extracts the affine
    /// pattern, and performs one probe factorization (at a generic
    /// unit-circle point) to record the pivot order every evaluation will
    /// replay. If even the probe is singular the plan still works — each
    /// evaluation then runs its own Markowitz factorization.
    ///
    /// # Errors
    ///
    /// The spec-resolution errors of
    /// [`MnaSystem::resolve_source`] and [`MnaError::NoSuchNode`] for
    /// unknown output nodes.
    pub fn new(sys: &MnaSystem, scale: Scale, spec: &TransferSpec) -> Result<SweepPlan, MnaError> {
        let (_source, amp) = sys.resolve_source(&spec.input)?;
        let row_of = |name: &str| -> Result<Option<usize>, MnaError> {
            let id = sys
                .circuit()
                .find_node(name)
                .ok_or_else(|| MnaError::NoSuchNode { name: name.to_string() })?;
            Ok(sys.node_row(id))
        };
        let out = match &spec.output {
            OutputSpec::Node(n) => PlanOutput::Node(row_of(n)?),
            OutputSpec::Differential(p, m) => PlanOutput::Differential(row_of(p)?, row_of(m)?),
        };
        Ok(Self::build(sys, scale, Some(PlanDrive { amp, out })))
    }

    /// Builds a determinant-only plan ([`SweepPlan::eval_at`] is
    /// unavailable): no transfer spec needed, no RHS solve ever performed.
    pub fn for_determinant(sys: &MnaSystem, scale: Scale) -> SweepPlan {
        Self::build(sys, scale, None)
    }

    fn build(sys: &MnaSystem, scale: Scale, drive: Option<PlanDrive>) -> SweepPlan {
        // Every stamp is affine in s: sample the assembly at s = 0 and
        // s = 1 and difference the aligned raw entry lists.
        let t0 = sys.assemble(Complex::ZERO, scale);
        let t1 = sys.assemble(Complex::ONE, scale);
        debug_assert_eq!(t0.raw_len(), t1.raw_len(), "stamp order must be deterministic");
        let mut pattern: Vec<(usize, usize, Complex, Complex)> = t0
            .entries()
            .iter()
            .zip(t1.entries())
            .map(|(&(r0, c0, v0), &(r1, c1, v1))| {
                debug_assert_eq!((r0, c0), (r1, c1), "stamp positions must align");
                (r0, c0, v0, v1 - v0)
            })
            .collect();
        // Merge duplicate positions once at build time (MNA stamping hits a
        // node diagonal once per connected element; affinity in `s` is
        // preserved under addition), and keep the pattern sorted so each
        // evaluation scatters pre-deduplicated, pre-ordered rows into the
        // workspace — the per-point duplicate merge degenerates to a scan.
        pattern.sort_unstable_by_key(|&(r, c, _, _)| (r, c));
        let mut w = 0usize;
        for i in 0..pattern.len() {
            let (r, c, k0, k1) = pattern[i];
            if w > 0 && pattern[w - 1].0 == r && pattern[w - 1].1 == c {
                pattern[w - 1].2 += k0;
                pattern[w - 1].3 += k1;
            } else {
                pattern[w] = (r, c, k0, k1);
                w += 1;
            }
        }
        pattern.truncate(w);

        // Probe factorization at a generic unit-circle point (angle of one
        // radian — an irrational fraction of the circle, so it never
        // coincides with a DFT sampling point) to record the pivot order.
        let probe = Complex::new(1f64.cos(), 1f64.sin());
        let mut probe_t = Triplets::new(t0.dim());
        for &(r, c, k0, k1) in &pattern {
            probe_t.add(r, c, k0 + probe * k1);
        }
        let order = SparseLu::factor(&probe_t).ok().map(|lu| lu.order().clone());

        SweepPlan { dim: t0.dim(), scale, pattern, rhs: sys.rhs(), order, drive }
    }

    /// The scale this plan stamps with.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The pivot order recorded by the probe factorization (`None` when
    /// the probe was singular).
    pub fn order(&self) -> Option<&PivotOrder> {
        self.order.as_ref()
    }

    /// Stamps `A(s)` into the scratch's reused triplet buffer.
    fn assemble_into(&self, s: Complex, t: &mut Triplets) {
        t.reset(self.dim);
        for &(r, c, k0, k1) in &self.pattern {
            t.add(r, c, k0 + s * k1);
        }
    }

    /// Assembles and factors at `s`: pivot-order replay into the scratch
    /// workspace when possible, fresh Markowitz fallback otherwise.
    fn factor(
        &self,
        s: Complex,
        scratch: &mut SweepScratch,
    ) -> Result<Factored, refgen_sparse::FactorError> {
        self.assemble_into(s, &mut scratch.triplets);
        let order = if scratch.adopt_on_fallback {
            scratch.adopted.as_ref().or(self.order.as_ref())
        } else {
            self.order.as_ref()
        };
        if let Some(ord) = order {
            if SparseLu::refactor_into(&scratch.triplets, ord, &mut scratch.ws).is_ok() {
                scratch.stats.refactor_hits += 1;
                return Ok(Factored::Workspace);
            }
        }
        scratch.stats.fresh_factorizations += 1;
        let lu = SparseLu::factor(&scratch.triplets)?;
        if scratch.adopt_on_fallback {
            scratch.adopted = Some(lu.order().clone());
        }
        Ok(Factored::Fresh(lu))
    }

    /// Determinant `D(s)` of the (scaled) MNA matrix — the denominator
    /// sample of the paper's eq. (9). A singular matrix yields
    /// `ExtComplex::ZERO`, matching [`MnaSystem::det`].
    pub fn eval_det(&self, s: Complex, scratch: &mut SweepScratch) -> ExtComplex {
        match self.factor(s, scratch) {
            Ok(Factored::Workspace) => scratch.ws.det(),
            Ok(Factored::Fresh(lu)) => lu.det(),
            Err(_) => ExtComplex::ZERO,
        }
    }

    /// Evaluates the transfer function at `s`: `H`, `D`, and `N = H·D`
    /// from one factorization and one solve, matching
    /// [`MnaSystem::transfer`] — at refactorization speed.
    ///
    /// # Errors
    ///
    /// [`MnaError::Singular`] when even a fresh factorization fails.
    ///
    /// # Panics
    ///
    /// Panics if the plan was built with [`SweepPlan::for_determinant`].
    pub fn eval_at(
        &self,
        s: Complex,
        scratch: &mut SweepScratch,
    ) -> Result<TransferResponse, MnaError> {
        let drive = self.drive.as_ref().expect("determinant-only plan cannot evaluate a transfer");
        let (denominator, response) = match self.factor(s, scratch) {
            Ok(Factored::Workspace) => {
                let (ws, x) = (&mut scratch.ws, &mut scratch.x);
                ws.solve_into(&self.rhs, x);
                (ws.det(), drive.response_from(x))
            }
            Ok(Factored::Fresh(lu)) => {
                let x = lu.solve(&self.rhs);
                (lu.det(), drive.response_from(&x))
            }
            Err(e) => return Err(MnaError::from_factor(e, format!("s = {s}"))),
        };
        Ok(TransferResponse { response, denominator, numerator: denominator * response })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refgen_circuit::library::{rc_ladder, ua741};
    use refgen_circuit::Circuit;

    fn spec() -> TransferSpec {
        TransferSpec::voltage_gain("VIN", "out")
    }

    #[test]
    fn plan_matches_direct_transfer() {
        let c = ua741();
        let sys = MnaSystem::new(&c).unwrap();
        let scale = Scale::new(1e9, 1e3);
        let plan = SweepPlan::new(&sys, scale, &spec()).unwrap();
        let mut scratch = SweepScratch::new();
        for k in 0..16 {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / 16.0;
            let s = Complex::new(theta.cos(), theta.sin());
            let fast = plan.eval_at(s, &mut scratch).unwrap();
            let slow = sys.transfer(s, scale, &spec()).unwrap();
            let rel = (fast.response - slow.response).abs() / slow.response.abs();
            assert!(rel < 1e-9, "response at point {k}: rel {rel:.2e}");
            let drel =
                ((fast.denominator - slow.denominator).norm() / slow.denominator.norm()).to_f64();
            assert!(drel < 1e-9, "determinant at point {k}: rel {drel:.2e}");
            let nrel = ((fast.numerator - slow.numerator).norm() / slow.numerator.norm()).to_f64();
            assert!(nrel < 1e-9, "numerator at point {k}: rel {nrel:.2e}");
        }
        // Every point replayed the probe's pivot order.
        assert_eq!(scratch.stats().refactor_hits, 16);
        assert_eq!(scratch.stats().fresh_factorizations, 0);
    }

    #[test]
    fn plan_det_matches_system_det() {
        let c = rc_ladder(6, 1e3, 1e-9);
        let sys = MnaSystem::new(&c).unwrap();
        let scale = Scale::new(1e9, 1e3);
        let plan = SweepPlan::for_determinant(&sys, scale);
        let mut scratch = SweepScratch::new();
        for k in 0..7 {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / 7.0;
            let s = Complex::new(theta.cos(), theta.sin());
            let fast = plan.eval_det(s, &mut scratch);
            let slow = sys.det(s, scale).unwrap();
            let rel = ((fast - slow).norm() / slow.norm()).to_f64();
            assert!(rel < 1e-10, "point {k}: rel {rel:.2e}");
        }
        assert!(scratch.stats().refactor_hits > 0);
    }

    #[test]
    fn det_only_plan_is_zero_on_singular_system() {
        // Two parallel V sources: singular at every s; probe fails, every
        // eval falls back and reports a zero determinant, like
        // MnaSystem::det.
        let mut c = Circuit::new();
        c.add_vsource("V1", "a", "0", 1.0).unwrap();
        c.add_vsource("V2", "a", "0", 1.0).unwrap();
        c.add_resistor("R1", "a", "0", 1e3).unwrap();
        c.add_capacitor("C1", "a", "0", 1e-9).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let plan = SweepPlan::for_determinant(&sys, Scale::unit());
        assert!(plan.order().is_none(), "probe of a singular system records no order");
        let mut scratch = SweepScratch::new();
        assert!(plan.eval_det(Complex::ONE, &mut scratch).is_zero());
        assert_eq!(scratch.stats().fresh_factorizations, 1);
    }

    /// The regression the satellite bugfix targets: a pivot order recorded
    /// at one frequency dies (exact zero pivot) at another where the
    /// matrix's *numeric* pattern changes — here a node whose diagonal is
    /// purely capacitive after a VCCS cancels its conductances, so it
    /// vanishes at DC. An adopting scratch must pay the fallback pivot
    /// search once and then replay the *new* order, not re-fail the stale
    /// one at every remaining point.
    #[test]
    fn adopting_scratch_replaces_stale_order_on_fallback() {
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "a", 1e3).unwrap();
        c.add_capacitor("C1", "a", "0", 1.0).unwrap();
        // gm exactly cancels the two conductances on node a's diagonal.
        c.add_vccs("G1", "a", "0", "a", "0", -2e-3).unwrap();
        c.add_resistor("R3", "a", "b", 1e3).unwrap();
        c.add_resistor("R4", "b", "0", 1e3).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let plan =
            SweepPlan::new(&sys, Scale::unit(), &TransferSpec::voltage_gain("VIN", "b")).unwrap();

        // Sanity: the probe (|s| = 1, so |s·C| = 1 dominates the mS-range
        // conductances) pivots on node a's capacitor-only diagonal.
        let mut adopting = SweepScratch::adopting();
        plan.eval_at(Complex::new(0.3, 1.1), &mut adopting).unwrap();
        assert_eq!(adopting.stats().refactor_hits, 1, "generic point replays the probe order");

        // At s = 0 the prescribed pivot is exactly zero: one fallback…
        plan.eval_at(Complex::ZERO, &mut adopting).unwrap();
        assert_eq!(adopting.stats().fresh_factorizations, 1);
        // …and the adopted DC-safe order serves every further DC point.
        for _ in 0..4 {
            plan.eval_at(Complex::ZERO, &mut adopting).unwrap();
        }
        let stats = adopting.stats();
        assert_eq!(
            stats.fresh_factorizations, 1,
            "stale order must be replaced on fallback, not re-failed per point"
        );
        assert_eq!(stats.refactor_hits, 5);

        // A non-adopting scratch (deterministic batch mode) keeps replaying
        // the plan order by design, paying the fallback at every DC point.
        let mut plain = SweepScratch::new();
        for _ in 0..3 {
            plan.eval_at(Complex::ZERO, &mut plain).unwrap();
        }
        assert_eq!(plain.stats().fresh_factorizations, 3);
        assert_eq!(plain.stats().refactor_hits, 0);
    }

    #[test]
    fn spec_errors_surface_at_plan_build() {
        let c = rc_ladder(2, 1e3, 1e-9);
        let sys = MnaSystem::new(&c).unwrap();
        assert!(matches!(
            SweepPlan::new(&sys, Scale::unit(), &TransferSpec::voltage_gain("VX", "out")),
            Err(MnaError::NoSuchSource { .. })
        ));
        assert!(matches!(
            SweepPlan::new(&sys, Scale::unit(), &TransferSpec::voltage_gain("VIN", "nowhere")),
            Err(MnaError::NoSuchNode { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "determinant-only plan")]
    fn det_only_plan_panics_on_eval_at() {
        let sys = MnaSystem::new(&rc_ladder(2, 1e3, 1e-9)).unwrap();
        let plan = SweepPlan::for_determinant(&sys, Scale::unit());
        let _ = plan.eval_at(Complex::ONE, &mut SweepScratch::new());
    }
}
