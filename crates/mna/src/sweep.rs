//! The plan/execute seam for repeated evaluation of one MNA system.
//!
//! Every consumer that evaluates the same `(MnaSystem, Scale)` pair at many
//! complex frequencies — the interpolation engine's unit-circle sampling,
//! the AC simulator's frequency sweep — used to pay full price per point:
//! re-stamp the matrix into fresh allocations, then a full Markowitz pivot
//! search. A [`SweepPlan`] hoists everything point-independent out of the
//! loop, built **once** per `(MnaSystem, Scale)`:
//!
//! * the **sparsity pattern** as an affine template `A(s) = K₀ + s·K₁`
//!   (every MNA stamp is constant or linear in `s`), so per-point assembly
//!   is one multiply-add per entry into a reused buffer;
//! * the **RHS template** (the excitation vector is frequency-independent);
//! * an **adopted pivot order** from one probe factorization, so per-point
//!   factorization is a numeric replay
//!   ([`SparseLu::refactor_into`](refgen_sparse::SparseLu::refactor_into))
//!   with no pivot search;
//! * a **compiled symbolic kernel**
//!   ([`FactorProgram`]) built from
//!   `(pattern, pivot order)`: fill-in, slot layout, and the elimination
//!   instruction stream are computed once, and every point stamps
//!   `K₀ + s·K₁` straight into flat slots and replays — zero sorting,
//!   searching, insertion, or allocation per point
//!   ([`SweepStats::compiled_hits`] counts this fastest path);
//! * a **conjugate-symmetry flag**: when every `K₀`/`K₁` entry and the RHS
//!   are real (true for every supported element), `D(s̄) = conj(D(s))`
//!   exactly, so batched samplers may solve only the closed upper half of
//!   a conjugate-paired point set and mirror the rest bit-identically
//!   (IEEE arithmetic is conjugate-equivariant; see
//!   [`SweepPlan::conjugate_symmetric`]).
//!
//! Execution state lives in a [`SweepScratch`] — reused triplet buffer, LU
//! workspace, program scratch, solution vector, and hit counters — so the
//! steady state allocates nothing. The plan itself is immutable and
//! `Sync`: a parallel executor shares one plan across workers, each owning
//! a scratch, and every point's result depends only on `(plan, s)` — which
//! is what makes batched sampling bit-identical at any thread count.
//!
//! # Example
//!
//! ```
//! use refgen_circuit::library::rc_ladder;
//! use refgen_mna::{MnaSystem, Scale, SweepPlan, SweepScratch, TransferSpec};
//! use refgen_numeric::Complex;
//!
//! # fn main() -> Result<(), refgen_mna::MnaError> {
//! let circuit = rc_ladder(4, 1e3, 1e-9);
//! let sys = MnaSystem::new(&circuit)?;
//! let spec = TransferSpec::voltage_gain("VIN", "out");
//! let plan = SweepPlan::new(&sys, Scale::unit(), &spec)?;
//! let mut scratch = SweepScratch::new();
//! for k in 0..32 {
//!     let s = Complex::new(0.0, 1e5 * (k + 1) as f64);
//!     let r = plan.eval_at(s, &mut scratch)?; // refactor + solve, no search
//!     assert!(r.response.abs() <= 1.0 + 1e-9); // passive ladder
//! }
//! // Every point after the plan's probe reused the recorded pivot order.
//! assert_eq!(scratch.stats().refactor_hits, 32);
//! assert_eq!(scratch.stats().fresh_factorizations, 0);
//! # Ok(())
//! # }
//! ```
//!
//! Determinant-only sampling (the denominator polynomial of the paper's
//! eq. (9)) skips the solve entirely:
//!
//! ```
//! use refgen_circuit::library::rc_ladder;
//! use refgen_mna::{MnaSystem, Scale, SweepPlan, SweepScratch};
//! use refgen_numeric::Complex;
//!
//! # fn main() -> Result<(), refgen_mna::MnaError> {
//! let sys = MnaSystem::new(&rc_ladder(4, 1e3, 1e-9))?;
//! let plan = SweepPlan::for_determinant(&sys, Scale::new(1e9, 1e3));
//! let mut scratch = SweepScratch::new();
//! let d = plan.eval_det(Complex::ONE, &mut scratch);
//! assert!(!d.is_zero());
//! # Ok(())
//! # }
//! ```

use crate::error::MnaError;
use crate::faults;
use crate::system::{MnaSystem, Scale};
use crate::transfer::{OutputSpec, TransferResponse, TransferSpec};
use refgen_numeric::{Complex, ExtComplex};
use refgen_sparse::gmres::{gmres_solve, GmresParams, GmresWorkspace};
use refgen_sparse::{FactorProgram, LuWorkspace, PivotOrder, ProgramScratch, SparseLu, Triplets};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Which symbolic ordering strategy a plan build uses for its compiled
/// kernel. See the crate docs of `refgen_sparse` for the three orderings
/// and their trade-offs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrderingMode {
    /// Probe Markowitz by default; switch to AMD when the probe order's
    /// realized fill crosses the mesh threshold *and* AMD actually
    /// reduces it (validated numerically before adoption).
    #[default]
    Auto,
    /// Always the probe Markowitz order (pre-mesh behaviour).
    Markowitz,
    /// Force the AMD order whenever it compiles and factors the probe
    /// point; fall back to Markowitz only if it cannot.
    Amd,
}

impl OrderingMode {
    /// The process-wide default: `REFGEN_TEST_ORDERING` (`auto`,
    /// `markowitz`, `amd` — anything else means `Auto`), read once. The
    /// CI suite uses `amd` to force the AMD path through every plan build
    /// of the whole test tier.
    pub fn env_default() -> OrderingMode {
        static MODE: OnceLock<OrderingMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("REFGEN_TEST_ORDERING").as_deref() {
            Ok("amd") => OrderingMode::Amd,
            Ok("markowitz") => OrderingMode::Markowitz,
            _ => OrderingMode::Auto,
        })
    }
}

/// Which ordering a built plan actually adopted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectedOrdering {
    /// The probe-recorded Markowitz order.
    Markowitz,
    /// The AMD order from `refgen_sparse::ordering::minimum_degree`.
    Amd,
}

/// The outcome of a plan build's ordering selection: what was adopted and
/// the realized fill-in figures that drove the choice (compare these to
/// see what AMD bought on a given pattern).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderingChoice {
    /// The adopted ordering.
    pub selected: SelectedOrdering,
    /// Fill-in slots of the compiled probe-Markowitz program (`None` when
    /// its compilation was skipped or failed).
    pub markowitz_fill: Option<usize>,
    /// Fill-in slots of the compiled AMD program (`None` when AMD was
    /// never attempted — [`OrderingMode::Markowitz`], or Auto below the
    /// fill threshold).
    pub amd_fill: Option<usize>,
}

/// Counters a [`SweepScratch`] accumulates across evaluations: how often
/// the recorded pivot order was replayed numerically versus how often a
/// full Markowitz pivot search had to run, and how far down the
/// singular-recovery ladder any point had to climb.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use = "sweep accounting is the observable the determinism tiers pin — read it or drop it explicitly"]
pub struct SweepStats {
    /// Evaluations that reused a recorded pivot order (the cheap path).
    pub refactor_hits: u64,
    /// Evaluations that paid a full Markowitz factorization (no usable
    /// order, or the recorded order hit an exact zero pivot).
    pub fresh_factorizations: u64,
    /// The subset of [`SweepStats::refactor_hits`] that ran through a
    /// compiled symbolic kernel
    /// ([`FactorProgram`]): a flat
    /// instruction-stream replay with zero per-point sorting, searching,
    /// insertion, or heap allocation — whether the plan's own kernel or
    /// one compiled for an *adopted* fallback order (sequential sweeps
    /// recompile once at adoption, so the rest of the window replays the
    /// fast path too). Batched lanes ([`SweepPlan::eval_batch`]) count
    /// one hit per live lane, exactly like sequential points.
    pub compiled_hits: u64,
    /// The subset of [`SweepStats::compiled_hits`] that replayed a kernel
    /// compiled from an **AMD** ordering ([`SelectedOrdering::Amd`]) —
    /// the mesh-scale fill-reducing path. Zero on plans that kept the
    /// probe Markowitz order.
    pub amd_replays: u64,
    /// Points rescued at rung 1 of the singular-recovery ladder: a
    /// prescribed-order replay reported a singular pivot and the fresh
    /// value-aware Markowitz factorization succeeded anyway.
    pub recovered_fresh: u64,
    /// Points rescued at rung 2: fresh Markowitz failed too, and a kernel
    /// recompiled under the *alternate* ordering family (AMD for a
    /// Markowitz plan, Markowitz for an AMD plan) factored the point.
    pub recovered_reordered: u64,
    /// Points where every rung failed — surfaced to callers as the typed
    /// per-point [`MnaError::Unrecoverable`].
    pub unrecoverable: u64,
}

/// Per-executor mutable state for [`SweepPlan`] evaluation: reused
/// assembly/factorization/solve buffers plus [`SweepStats`] counters.
///
/// One scratch per thread; the plan is shared. A scratch built with
/// [`SweepScratch::new`] always replays the *plan's* pivot order, so
/// results are a pure function of `(plan, s)` — the mode batched sampling
/// needs for thread-count-independent output. A scratch built with
/// [`SweepScratch::adopting`] additionally adopts the pivot order of any
/// fallback Markowitz factorization for subsequent points, so a sequential
/// sweep that crosses a point where the recorded order dies (exact zero
/// pivot) pays the pivot search once instead of at every remaining point.
#[derive(Clone, Debug, Default)]
pub struct SweepScratch {
    triplets: Triplets,
    ws: LuWorkspace,
    prog: ProgramScratch,
    x: Vec<Complex>,
    adopted: Option<PivotOrder>,
    /// Symbolic kernel compiled for the adopted order at adoption time, so
    /// post-fallback points replay the flat instruction stream instead of
    /// the workspace (`None` only if compilation failed — impossible for
    /// an order recorded on this very pattern — or before any fallback).
    adopted_program: Option<Arc<FactorProgram>>,
    adopt_on_fallback: bool,
    stats: SweepStats,
}

impl SweepScratch {
    /// A scratch that always replays the plan's pivot order
    /// (deterministic-batch mode; see the type docs).
    pub fn new() -> Self {
        SweepScratch::default()
    }

    /// A scratch that adopts the pivot order of fallback factorizations
    /// (sequential-sweep mode; see the type docs).
    pub fn adopting() -> Self {
        SweepScratch { adopt_on_fallback: true, ..SweepScratch::default() }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SweepStats {
        self.stats
    }

    /// Resets the counters (buffers and any adopted order are kept).
    pub fn reset_stats(&mut self) {
        self.stats = SweepStats::default();
    }
}

/// Where a factorization for one evaluation point lives.
enum Factored {
    /// In the scratch's program scratch (compiled-kernel replay succeeded
    /// — the fastest path). Carries the kernel that replayed: the plan's
    /// own, or one compiled for an adopted fallback order.
    Program(Arc<FactorProgram>),
    /// In the scratch workspace (pivot-order replay succeeded).
    Workspace,
    /// A fresh Markowitz factorization (fallback path).
    Fresh(SparseLu),
}

/// Resolved output observation: matrix rows instead of node names.
#[derive(Clone, Copy, Debug)]
enum PlanOutput {
    Node(Option<usize>),
    Differential(Option<usize>, Option<usize>),
}

/// Resolved transfer-function drive: source amplitude + output rows.
#[derive(Clone, Copy, Debug)]
struct PlanDrive {
    amp: f64,
    out: PlanOutput,
}

impl PlanDrive {
    fn response_from(&self, x: &[Complex]) -> Complex {
        let v = |row: Option<usize>| row.map(|r| x[r]).unwrap_or(Complex::ZERO);
        let out = match self.out {
            PlanOutput::Node(r) => v(r),
            PlanOutput::Differential(p, m) => v(p) - v(m),
        };
        out / self.amp
    }

    /// As [`PlanDrive::response_from`], reading one lane of a column-major
    /// batched solution (`x[col·lanes + lane]`) — the identical scalar
    /// operations, so the result is bit-identical to the one-lane path.
    fn response_from_lane(&self, x: &[Complex], lanes: usize, lane: usize) -> Complex {
        let v = |row: Option<usize>| row.map(|r| x[r * lanes + lane]).unwrap_or(Complex::ZERO);
        let out = match self.out {
            PlanOutput::Node(r) => v(r),
            PlanOutput::Differential(p, m) => v(p) - v(m),
        };
        out / self.amp
    }
}

/// A compiled evaluation plan for one `(MnaSystem, Scale)` pair. See the
/// [module docs](self) for the architecture and examples.
#[derive(Clone, Debug)]
pub struct SweepPlan {
    dim: usize,
    scale: Scale,
    /// `(row, col, constant, s-coefficient)` per raw stamp entry; the
    /// matrix at `s` is the accumulation of `constant + s·coefficient`.
    pattern: Vec<(usize, usize, Complex, Complex)>,
    rhs: Vec<Complex>,
    order: Option<PivotOrder>,
    /// Compiled symbolic kernel for `(pattern, order)` — shared by
    /// reference across rebinds and cache hits (symbolic analysis is
    /// value- and scale-independent).
    program: Option<Arc<FactorProgram>>,
    /// `true` when every `K₀`/`K₁` entry and every RHS entry is real, so
    /// `D(s̄) = conj(D(s))` holds exactly (see the [module docs](self)).
    conjugate_symmetric: bool,
    drive: Option<PlanDrive>,
    /// The spec input this plan's drive was resolved from (`None` for
    /// determinant-only plans); [`SweepPlan::rebind`] re-resolves it
    /// against the new system so a changed source amplitude stays
    /// consistent with the recomputed RHS.
    input: Option<String>,
    /// The ordering-selection outcome (`None` when the probe was singular
    /// and the plan carries no order at all).
    ordering: Option<OrderingChoice>,
}

/// What one ordering selection produced: the adopted order, its compiled
/// kernel, and the choice record.
struct PlanSelection {
    order: PivotOrder,
    program: Option<Arc<FactorProgram>>,
    choice: OrderingChoice,
}

/// Shares recorded pivot orders between [`SweepPlan`]s of the **same
/// topology** — the amortization seam for Monte-Carlo/sensitivity fleets,
/// where hundreds of same-structure, different-value systems are planned
/// at near-identical scales and a pivot search per plan would dominate.
///
/// A cache entry is keyed by the sparsity **pattern fingerprint**
/// (dimension plus a hash of every stamped position, so same-dimension
/// circuits of different topology never share an order) and scale
/// proximity: a recorded order is offered to any same-pattern plan whose
/// scale is within [`PlanCache::SCALE_TOLERANCE_DECADES`] of the
/// recording scale on both axes. That window is far wider than
/// fleet-to-fleet value perturbations
/// move the heuristic scales (a 5 % value spread shifts them by
/// ~0.02 decades) and far narrower than the ≥ 10-decade re-tilts between
/// adaptive windows — so variants share orders, while windows whose
/// numeric balance genuinely differs each record their own.
///
/// Pivot-order *replay* only fails on an exact-zero prescribed pivot, in
/// which case the evaluation falls back to a fresh Markowitz factorization
/// ([`SweepStats::fresh_factorizations`] counts these), so a shared order
/// is an optimization, never a correctness hazard.
///
/// The cache is `Sync`; lookups and stores are lock-protected and happen
/// at plan-build time (never inside point evaluation).
/// One recorded probe in a [`PlanCache`]: scale, pattern fingerprint, the
/// recorded pivot order, and the symbolic kernel compiled from it.
#[derive(Debug)]
struct CacheEntry {
    scale: Scale,
    fingerprint: u64,
    /// The ordering mode the entry was built under: a forced-AMD build
    /// must never hand its order to a Markowitz-mode plan or vice versa.
    mode: OrderingMode,
    order: PivotOrder,
    program: Option<Arc<FactorProgram>>,
    choice: OrderingChoice,
}

#[derive(Debug, Default)]
pub struct PlanCache {
    entries: Mutex<Vec<CacheEntry>>,
    searches: AtomicUsize,
    shared: AtomicUsize,
    compiled: AtomicUsize,
}

impl PlanCache {
    /// How far (in decades, per scale axis) a plan's scale may sit from a
    /// recorded entry's scale and still reuse its pivot order.
    pub const SCALE_TOLERANCE_DECADES: f64 = 0.5;

    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Probe factorizations (full Markowitz pivot searches) performed by
    /// plans built through this cache — the number a fleet is trying to
    /// keep at "one per topology".
    pub fn pivot_searches(&self) -> usize {
        self.searches.load(Ordering::Relaxed)
    }

    /// Plan builds that reused a recorded order instead of probing.
    pub fn shared_hits(&self) -> usize {
        self.shared.load(Ordering::Relaxed)
    }

    /// [`FactorProgram`]s compiled through
    /// this cache. Symbolic analysis is value- and scale-independent, so a
    /// whole fleet of same-topology plans compiles **once** — cache hits
    /// hand out the same `Arc`'d program the probe build compiled.
    pub fn programs_compiled(&self) -> usize {
        self.compiled.load(Ordering::Relaxed)
    }

    /// Number of recorded `(scale, order)` entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("plan cache poisoned").len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn close(a: Scale, b: Scale) -> bool {
        let tol = Self::SCALE_TOLERANCE_DECADES;
        (a.f / b.f).log10().abs() <= tol && (a.g / b.g).log10().abs() <= tol
    }

    /// Returns the recorded ordering selection for
    /// `(scale, pattern, mode)` or runs the full selection via `build`
    /// (probe + optional AMD evaluation, counting the pivot search) and
    /// records it.
    fn selection_for(
        &self,
        scale: Scale,
        fingerprint: u64,
        mode: OrderingMode,
        build: impl FnOnce() -> Option<PlanSelection>,
    ) -> Option<PlanSelection> {
        // The lock is held across probe-and-record: concurrent misses on
        // the same `(pattern, scale)` region — a fleet's variants planned
        // in parallel — serialize into one probe plus hits, instead of
        // racing to insert duplicate entries. That keeps
        // [`PlanCache::pivot_searches`] deterministic at any thread count.
        let mut entries = self.entries.lock().expect("plan cache poisoned");
        if let Some(entry) = entries
            .iter()
            .find(|e| e.fingerprint == fingerprint && e.mode == mode && Self::close(e.scale, scale))
        {
            self.shared.fetch_add(1, Ordering::Relaxed);
            return Some(PlanSelection {
                order: entry.order.clone(),
                program: entry.program.clone(),
                choice: entry.choice,
            });
        }
        self.searches.fetch_add(1, Ordering::Relaxed);
        let selection = build()?;
        if selection.program.is_some() {
            self.compiled.fetch_add(1, Ordering::Relaxed);
        }
        entries.push(CacheEntry {
            scale,
            fingerprint,
            mode,
            order: selection.order.clone(),
            program: selection.program.clone(),
            choice: selection.choice,
        });
        Some(selection)
    }
}

/// FNV-1a fingerprint of a pattern's sparsity structure (dimension plus
/// every stamped `(row, col)` position, value-independent): the identity
/// [`PlanCache`] shares pivot orders under. Same-topology variants hash
/// identically; same-dimension circuits of different structure do not.
fn pattern_fingerprint(dim: usize, pattern: &[(usize, usize, Complex, Complex)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(dim as u64);
    for &(r, c, _, _) in pattern {
        mix(r as u64);
        mix(c as u64);
    }
    h
}

/// Extracts the affine stamp pattern `A(s) = K₀ + s·K₁` of `(sys, scale)`,
/// deduplicated and sorted by position. Shared with the transient engine
/// ([`crate::transient`]), whose companion matrix is this same pattern
/// evaluated at one real point `s = γ`.
pub(crate) fn affine_pattern(
    sys: &MnaSystem,
    scale: Scale,
) -> (usize, Vec<(usize, usize, Complex, Complex)>) {
    // Every stamp is affine in s: sample the assembly at s = 0 and s = 1
    // and difference the aligned raw entry lists.
    let t0 = sys.assemble(Complex::ZERO, scale);
    let t1 = sys.assemble(Complex::ONE, scale);
    debug_assert_eq!(t0.raw_len(), t1.raw_len(), "stamp order must be deterministic");
    let mut pattern: Vec<(usize, usize, Complex, Complex)> = t0
        .entries()
        .iter()
        .zip(t1.entries())
        .map(|(&(r0, c0, v0), &(r1, c1, v1))| {
            debug_assert_eq!((r0, c0), (r1, c1), "stamp positions must align");
            (r0, c0, v0, v1 - v0)
        })
        .collect();
    // Merge duplicate positions once at build time (MNA stamping hits a
    // node diagonal once per connected element; affinity in `s` is
    // preserved under addition), and keep the pattern sorted so each
    // evaluation scatters pre-deduplicated, pre-ordered rows into the
    // workspace — the per-point duplicate merge degenerates to a scan.
    pattern.sort_unstable_by_key(|&(r, c, _, _)| (r, c));
    let mut w = 0usize;
    for i in 0..pattern.len() {
        let (r, c, k0, k1) = pattern[i];
        if w > 0 && pattern[w - 1].0 == r && pattern[w - 1].1 == c {
            pattern[w - 1].2 += k0;
            pattern[w - 1].3 += k1;
        } else {
            pattern[w] = (r, c, k0, k1);
            w += 1;
        }
    }
    pattern.truncate(w);
    (t0.dim(), pattern)
}

/// One probe factorization at a generic unit-circle point (angle of one
/// radian — an irrational fraction of the circle, so it never coincides
/// with a DFT sampling point), recording the pivot order every evaluation
/// will replay. `None` when the probe is singular.
fn probe_order(dim: usize, pattern: &[(usize, usize, Complex, Complex)]) -> Option<PivotOrder> {
    probe_order_at(dim, pattern, Complex::new(1f64.cos(), 1f64.sin()))
}

/// Probe factorization of `K₀ + s·K₁` at an arbitrary point, recording the
/// pivot order. The transient engine probes at its real companion point
/// `s = γ` — the exact matrix every step replays.
pub(crate) fn probe_order_at(
    dim: usize,
    pattern: &[(usize, usize, Complex, Complex)],
    probe: Complex,
) -> Option<PivotOrder> {
    let mut probe_t = Triplets::new(dim);
    for &(r, c, k0, k1) in pattern {
        probe_t.add(r, c, k0 + probe * k1);
    }
    SparseLu::factor(&probe_t).ok().map(|lu| lu.order().clone())
}

/// Compiles the symbolic kernel for `(pattern, order)`. `None` when a
/// prescribed pivot is structurally absent — which cannot happen for an
/// order the probe just recorded on this very pattern, and those are the
/// only orders compiled: [`PlanCache`] hits hand out the *stored* program
/// without recompiling, safe because cache entries are keyed by the
/// positions-only pattern fingerprint (identical positions ⇒ identical
/// symbolic analysis).
pub(crate) fn compile_program(
    dim: usize,
    pattern: &[(usize, usize, Complex, Complex)],
    order: &PivotOrder,
) -> Option<FactorProgram> {
    let positions: Vec<(usize, usize)> = pattern.iter().map(|&(r, c, _, _)| (r, c)).collect();
    FactorProgram::compile(dim, &positions, order).ok()
}

/// Auto-mode trigger: attempt AMD only when the Markowitz probe order's
/// realized fill exceeds this — fill beyond the raw pattern size (or the
/// dimension, whichever is larger) marks the mesh regime where replay
/// cost is fill-dominated and a symbolic reordering can pay.
fn amd_fill_threshold(dim: usize, nnz: usize) -> usize {
    dim.max(nnz)
}

/// The full ordering selection for one `(pattern, mode)`: probe
/// Markowitz, then — per mode — evaluate the AMD alternative and adopt it
/// if it compiles, factors the probe point, and (in Auto mode) actually
/// reduces fill. Returns `None` only when the probe factorization itself
/// is singular (the plan then carries no order and every point pays a
/// fresh Markowitz factorization, exactly as before).
fn select_ordering(
    dim: usize,
    pattern: &[(usize, usize, Complex, Complex)],
    mode: OrderingMode,
) -> Option<PlanSelection> {
    let order = probe_order(dim, pattern)?;
    let program = compile_program(dim, pattern, &order).map(Arc::new);
    let markowitz_fill = program.as_ref().map(|p| p.fill_in());
    let attempt = match mode {
        OrderingMode::Markowitz => false,
        OrderingMode::Amd => true,
        OrderingMode::Auto => {
            markowitz_fill.is_some_and(|f| f > amd_fill_threshold(dim, pattern.len()))
        }
    };
    if attempt {
        if let Some((amd_order, amd_program)) = try_amd_program(dim, pattern) {
            let amd_fill = amd_program.fill_in();
            let adopt = match mode {
                OrderingMode::Amd => true,
                _ => markowitz_fill.is_none_or(|f| amd_fill < f),
            };
            let choice = OrderingChoice {
                selected: if adopt { SelectedOrdering::Amd } else { SelectedOrdering::Markowitz },
                markowitz_fill,
                amd_fill: Some(amd_fill),
            };
            if adopt {
                return Some(PlanSelection {
                    order: amd_order,
                    program: Some(Arc::new(amd_program)),
                    choice,
                });
            }
            return Some(PlanSelection { order, program, choice });
        }
    }
    Some(PlanSelection {
        order,
        program,
        choice: OrderingChoice {
            selected: SelectedOrdering::Markowitz,
            markowitz_fill,
            amd_fill: None,
        },
    })
}

/// Computes the AMD order for `pattern`, compiles it, and validates it
/// numerically at the generic probe point (the prescribed diagonal pivots
/// must exist in the filled pattern *and* be numerically nonzero there).
/// `None` means AMD is unusable on this pattern — keep Markowitz.
fn try_amd_program(
    dim: usize,
    pattern: &[(usize, usize, Complex, Complex)],
) -> Option<(PivotOrder, FactorProgram)> {
    let positions: Vec<(usize, usize)> = pattern.iter().map(|&(r, c, _, _)| (r, c)).collect();
    let order = refgen_sparse::ordering::minimum_degree(dim, &positions);
    let program = FactorProgram::compile(dim, &positions, &order).ok()?;
    let probe = Complex::new(1f64.cos(), 1f64.sin());
    let mut scratch = ProgramScratch::new();
    program
        .refactor_values(pattern.iter().map(|&(_, _, k0, k1)| k0 + probe * k1), &mut scratch)
        .ok()?;
    Some((order, program))
}

/// `true` when the affine pattern and RHS are entirely real, so the
/// evaluated matrix satisfies `A(s̄) = conj(A(s))` and every derived
/// quantity is conjugate-equivariant.
fn pattern_is_real(pattern: &[(usize, usize, Complex, Complex)], rhs: &[Complex]) -> bool {
    pattern.iter().all(|&(_, _, k0, k1)| k0.im == 0.0 && k1.im == 0.0)
        && rhs.iter().all(|v| v.im == 0.0)
}

impl SweepPlan {
    /// Builds a full plan: determinant *and* transfer evaluation.
    ///
    /// Resolves the spec's source and output once, extracts the affine
    /// pattern, and performs one probe factorization (at a generic
    /// unit-circle point) to record the pivot order every evaluation will
    /// replay. If even the probe is singular the plan still works — each
    /// evaluation then runs its own Markowitz factorization.
    ///
    /// # Errors
    ///
    /// The spec-resolution errors of
    /// [`MnaSystem::resolve_source`] and [`MnaError::NoSuchNode`] for
    /// unknown output nodes.
    pub fn new(sys: &MnaSystem, scale: Scale, spec: &TransferSpec) -> Result<SweepPlan, MnaError> {
        Self::build_transfer(sys, scale, spec, None, OrderingMode::env_default())
    }

    /// As [`SweepPlan::new`] with an explicit [`OrderingMode`] instead of
    /// the process default.
    ///
    /// # Errors
    ///
    /// See [`SweepPlan::new`].
    pub fn new_with_ordering(
        sys: &MnaSystem,
        scale: Scale,
        spec: &TransferSpec,
        mode: OrderingMode,
    ) -> Result<SweepPlan, MnaError> {
        Self::build_transfer(sys, scale, spec, None, mode)
    }

    /// As [`SweepPlan::new`], sharing pivot orders through `cache`: a
    /// cache entry recorded at a nearby scale for this dimension replaces
    /// the probe factorization entirely — the fleet path where one pivot
    /// search serves a whole topology.
    ///
    /// # Errors
    ///
    /// See [`SweepPlan::new`].
    pub fn new_cached(
        sys: &MnaSystem,
        scale: Scale,
        spec: &TransferSpec,
        cache: &PlanCache,
    ) -> Result<SweepPlan, MnaError> {
        Self::build_transfer(sys, scale, spec, Some(cache), OrderingMode::env_default())
    }

    /// As [`SweepPlan::new_cached`] with an explicit [`OrderingMode`].
    ///
    /// # Errors
    ///
    /// See [`SweepPlan::new`].
    pub fn new_cached_with_ordering(
        sys: &MnaSystem,
        scale: Scale,
        spec: &TransferSpec,
        cache: &PlanCache,
        mode: OrderingMode,
    ) -> Result<SweepPlan, MnaError> {
        Self::build_transfer(sys, scale, spec, Some(cache), mode)
    }

    fn build_transfer(
        sys: &MnaSystem,
        scale: Scale,
        spec: &TransferSpec,
        cache: Option<&PlanCache>,
        mode: OrderingMode,
    ) -> Result<SweepPlan, MnaError> {
        let (_source, amp) = sys.resolve_source(&spec.input)?;
        let row_of = |name: &str| -> Result<Option<usize>, MnaError> {
            let id = sys
                .circuit()
                .find_node(name)
                .ok_or_else(|| MnaError::NoSuchNode { name: name.to_string() })?;
            Ok(sys.node_row(id))
        };
        let out = match &spec.output {
            OutputSpec::Node(n) => PlanOutput::Node(row_of(n)?),
            OutputSpec::Differential(p, m) => PlanOutput::Differential(row_of(p)?, row_of(m)?),
        };
        Ok(Self::build(
            sys,
            scale,
            Some(PlanDrive { amp, out }),
            Some(spec.input.clone()),
            cache,
            mode,
        ))
    }

    /// Builds a determinant-only plan ([`SweepPlan::eval_at`] is
    /// unavailable): no transfer spec needed, no RHS solve ever performed.
    pub fn for_determinant(sys: &MnaSystem, scale: Scale) -> SweepPlan {
        Self::build(sys, scale, None, None, None, OrderingMode::env_default())
    }

    /// As [`SweepPlan::for_determinant`], sharing pivot orders through
    /// `cache` (see [`SweepPlan::new_cached`]).
    pub fn for_determinant_cached(sys: &MnaSystem, scale: Scale, cache: &PlanCache) -> SweepPlan {
        Self::build(sys, scale, None, None, Some(cache), OrderingMode::env_default())
    }

    /// As [`SweepPlan::for_determinant_cached`] with an explicit
    /// [`OrderingMode`].
    pub fn for_determinant_cached_with_ordering(
        sys: &MnaSystem,
        scale: Scale,
        cache: &PlanCache,
        mode: OrderingMode,
    ) -> SweepPlan {
        Self::build(sys, scale, None, None, Some(cache), mode)
    }

    /// Rebinds this plan to a **same-topology** system — identical node
    /// and element structure, element *values* free to differ (a
    /// Monte-Carlo or sensitivity variant). The numeric pattern, RHS and
    /// drive amplitude are recomputed from `sys`; the recorded pivot order
    /// is carried over **without a new probe factorization**, which is
    /// what makes a fleet of variants cost one pivot search per topology
    /// instead of one per variant.
    ///
    /// # Errors
    ///
    /// [`MnaError::TopologyMismatch`] when `sys` has a different dimension
    /// or sparsity structure, and the spec-resolution errors of
    /// [`SweepPlan::new`] when the plan carries a drive.
    pub fn rebind(&self, sys: &MnaSystem) -> Result<SweepPlan, MnaError> {
        if sys.dim() != self.dim {
            return Err(MnaError::TopologyMismatch { expected: self.dim, actual: sys.dim() });
        }
        let (dim, pattern) = affine_pattern(sys, self.scale);
        let same_structure = pattern.len() == self.pattern.len()
            && pattern
                .iter()
                .zip(&self.pattern)
                .all(|(&(r1, c1, _, _), &(r2, c2, _, _))| (r1, c1) == (r2, c2));
        if !same_structure {
            return Err(MnaError::TopologyMismatch { expected: self.dim, actual: dim });
        }
        let drive = match (&self.drive, &self.input) {
            (Some(drive), Some(input)) => {
                // Output rows are positional and identical across the
                // topology; the source amplitude may have changed with the
                // variant's element values.
                let (_source, amp) = sys.resolve_source(input)?;
                Some(PlanDrive { amp, out: drive.out })
            }
            _ => None,
        };
        let rhs = sys.rhs();
        let conjugate_symmetric = pattern_is_real(&pattern, &rhs);
        Ok(SweepPlan {
            dim,
            scale: self.scale,
            pattern,
            rhs,
            order: self.order.clone(),
            // Symbolic analysis is value-independent: the variant replays
            // the exact same compiled kernel, no recompilation.
            program: self.program.clone(),
            conjugate_symmetric,
            drive,
            input: self.input.clone(),
            ordering: self.ordering,
        })
    }

    fn build(
        sys: &MnaSystem,
        scale: Scale,
        drive: Option<PlanDrive>,
        input: Option<String>,
        cache: Option<&PlanCache>,
        mode: OrderingMode,
    ) -> SweepPlan {
        let (dim, pattern) = affine_pattern(sys, scale);
        let selection = match cache {
            Some(cache) => {
                let fingerprint = pattern_fingerprint(dim, &pattern);
                cache.selection_for(scale, fingerprint, mode, || {
                    select_ordering(dim, &pattern, mode)
                })
            }
            None => select_ordering(dim, &pattern, mode),
        };
        let (order, program, ordering) = match selection {
            Some(sel) => (Some(sel.order), sel.program, Some(sel.choice)),
            None => (None, None, None),
        };
        let rhs = sys.rhs();
        let conjugate_symmetric = pattern_is_real(&pattern, &rhs);
        SweepPlan {
            dim,
            scale,
            pattern,
            rhs,
            order,
            program,
            conjugate_symmetric,
            drive,
            input,
            ordering,
        }
    }

    /// The scale this plan stamps with.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The pivot order recorded by the probe factorization (`None` when
    /// the probe was singular).
    pub fn order(&self) -> Option<&PivotOrder> {
        self.order.as_ref()
    }

    /// The compiled symbolic kernel this plan evaluates through (`None`
    /// when the probe was singular). Rebinds and cache hits share one
    /// program by reference — compare with [`std::ptr::eq`] to verify.
    pub fn program(&self) -> Option<&FactorProgram> {
        self.program.as_deref()
    }

    /// The outcome of this plan's ordering selection: which ordering was
    /// adopted and the fill figures that drove the choice (`None` when
    /// the probe factorization was singular and no order exists).
    pub fn ordering_choice(&self) -> Option<OrderingChoice> {
        self.ordering
    }

    /// `true` when this plan replays a kernel compiled from the AMD
    /// ordering.
    fn amd_selected(&self) -> bool {
        matches!(self.ordering, Some(OrderingChoice { selected: SelectedOrdering::Amd, .. }))
    }

    /// `true` when the plan's affine pattern `K₀ + s·K₁` and RHS are
    /// entirely real, which makes every evaluation conjugate-equivariant:
    /// `D(s̄) = conj(D(s))` and `x(s̄) = conj(x(s))` **bit-exactly** (IEEE
    /// negation is exact and complex `+`, `−`, `×`, `÷` commute with
    /// conjugation). Samplers use this to solve only the closed upper half
    /// of a conjugate-paired point set and mirror the rest.
    pub fn conjugate_symmetric(&self) -> bool {
        self.conjugate_symmetric
    }

    /// Stamps `A(s)` into the scratch's reused triplet buffer.
    fn assemble_into(&self, s: Complex, t: &mut Triplets) {
        t.reset(self.dim);
        for &(r, c, k0, k1) in &self.pattern {
            t.add(r, c, k0 + s * k1);
        }
    }

    /// Factors at `s`, cheapest usable path first: compiled-kernel replay
    /// (flat instruction stream, no triplet assembly at all), then
    /// workspace replay of an adopted or recorded pivot order — rung 0 of
    /// the singular-recovery ladder. A replay that reports a singular
    /// pivot escalates through [`SweepPlan::recover`] (fresh Markowitz,
    /// then the alternate-ordering recompile) before the point is allowed
    /// to fail.
    fn factor(
        &self,
        s: Complex,
        scratch: &mut SweepScratch,
    ) -> Result<Factored, refgen_sparse::FactorError> {
        let s = faults::poison_point(s);
        // An adopted fallback order (sequential sweeps only) supersedes the
        // plan's own order *and* its compiled kernel: the kernel encodes
        // the stale order that just died. The adopted order was compiled
        // at adoption time, so its replay is a flat stream too — the
        // workspace only serves if that compilation failed or the scratch
        // carries an adoption from a structurally different plan.
        if scratch.adopt_on_fallback && scratch.adopted.is_some() {
            if let Some(program) = scratch
                .adopted_program
                .as_ref()
                .filter(|p| p.dim() == self.dim && p.raw_entries() == self.pattern.len())
                .cloned()
            {
                let replay = program.refactor_values(
                    self.pattern.iter().map(|&(_, _, k0, k1)| k0 + s * k1),
                    &mut scratch.prog,
                );
                if replay.is_ok() && !faults::poison_replay() {
                    scratch.stats.refactor_hits += 1;
                    scratch.stats.compiled_hits += 1;
                    return Ok(Factored::Program(program));
                }
                self.assemble_into(s, &mut scratch.triplets);
                return self.recover(s, scratch, true);
            }
            self.assemble_into(s, &mut scratch.triplets);
            let ord = scratch.adopted.as_ref().expect("checked above");
            let replayed = SparseLu::refactor_into(&scratch.triplets, ord, &mut scratch.ws);
            if replayed.is_ok() && !faults::poison_replay() {
                scratch.stats.refactor_hits += 1;
                return Ok(Factored::Workspace);
            }
            return self.recover(s, scratch, true);
        }
        if let Some(program) = self.program.as_ref() {
            // Stamp K₀ + s·K₁ straight into the program's slot array — no
            // triplet buffer, no sort, no search, no insert, no alloc.
            let replay = program.refactor_values(
                self.pattern.iter().map(|&(_, _, k0, k1)| k0 + s * k1),
                &mut scratch.prog,
            );
            if replay.is_ok() && !faults::poison_replay() {
                scratch.stats.refactor_hits += 1;
                scratch.stats.compiled_hits += 1;
                if self.amd_selected() {
                    scratch.stats.amd_replays += 1;
                }
                return Ok(Factored::Program(Arc::clone(program)));
            }
            // Compiled replay died (exact zero pivot): climb the ladder.
            self.assemble_into(s, &mut scratch.triplets);
            return self.recover(s, scratch, true);
        } else if let Some(ord) = self.order.as_ref() {
            self.assemble_into(s, &mut scratch.triplets);
            let replayed = SparseLu::refactor_into(&scratch.triplets, ord, &mut scratch.ws);
            if replayed.is_ok() && !faults::poison_replay() {
                scratch.stats.refactor_hits += 1;
                return Ok(Factored::Workspace);
            }
            return self.recover(s, scratch, true);
        }
        // No prescribed order at all (singular probe): rung 0 was never
        // attempted, so a rung-1 success is not a recovery.
        self.assemble_into(s, &mut scratch.triplets);
        self.recover(s, scratch, false)
    }

    /// Rungs 1–2 of the singular-recovery ladder; `scratch.triplets` must
    /// hold `A(s)` and `replay_died` marks whether rung 0 (a
    /// prescribed-order replay) ran and reported a singular pivot.
    ///
    /// Rung 1 is the fresh value-aware Markowitz factorization: pivots are
    /// chosen on the actual values at `s`, so an exact zero under the
    /// prescribed order is simply pivoted around. Rung 2 recompiles a
    /// kernel under the *other* ordering family (AMD ↔ Markowitz) and
    /// replays it at `s` — a different elimination order meets different
    /// pivots, which rescues patterns whose Markowitz search itself is
    /// cornered. Only when both rungs fail does the point error.
    fn recover(
        &self,
        s: Complex,
        scratch: &mut SweepScratch,
        replay_died: bool,
    ) -> Result<Factored, refgen_sparse::FactorError> {
        scratch.stats.fresh_factorizations += 1;
        let fresh = if faults::poison_fresh() {
            Err(refgen_sparse::FactorError::Singular { step: 0 })
        } else {
            SparseLu::factor(&scratch.triplets)
        };
        match fresh {
            Ok(lu) => {
                if replay_died {
                    scratch.stats.recovered_fresh += 1;
                }
                if scratch.adopt_on_fallback {
                    scratch.adopted = Some(lu.order().clone());
                    // Compile the adopted order once, at adoption — the
                    // rest of the sweep replays a flat instruction stream
                    // instead of the structural workspace path. Cannot
                    // fail symbolically: the order was just recorded on
                    // this very pattern.
                    scratch.adopted_program =
                        compile_program(self.dim, &self.pattern, lu.order()).map(Arc::new);
                }
                Ok(Factored::Fresh(lu))
            }
            Err(err) => {
                if let Some(program) = self.alternate_program() {
                    let replay = if faults::poison_alternate() {
                        Err(refgen_sparse::FactorError::Singular { step: 0 })
                    } else {
                        program.refactor_values(
                            self.pattern.iter().map(|&(_, _, k0, k1)| k0 + s * k1),
                            &mut scratch.prog,
                        )
                    };
                    if replay.is_ok() {
                        scratch.stats.recovered_reordered += 1;
                        return Ok(Factored::Program(program));
                    }
                }
                scratch.stats.unrecoverable += 1;
                Err(err)
            }
        }
    }

    /// The ladder's rung-2 challenger: a kernel compiled under the *other*
    /// ordering family from the plan's selection — AMD when the plan
    /// pivots by Markowitz (or carries no selection at all), a fresh
    /// Markowitz probe order when the plan pivots by AMD. Rung 2 is a cold
    /// path (reached only after a fresh factorization already failed at
    /// this point), so nothing is cached: the result is a pure function of
    /// the plan, keeping recovery deterministic at any thread count.
    fn alternate_program(&self) -> Option<Arc<FactorProgram>> {
        if self.amd_selected() {
            let order = probe_order(self.dim, &self.pattern)?;
            compile_program(self.dim, &self.pattern, &order).map(Arc::new)
        } else {
            try_amd_program(self.dim, &self.pattern).map(|(_, program)| Arc::new(program))
        }
    }

    /// Determinant `D(s)` of the (scaled) MNA matrix — the denominator
    /// sample of the paper's eq. (9). A singular matrix yields
    /// `ExtComplex::ZERO`, matching [`MnaSystem::det`].
    pub fn eval_det(&self, s: Complex, scratch: &mut SweepScratch) -> ExtComplex {
        match self.factor(s, scratch) {
            Ok(Factored::Program(_)) => scratch.prog.det(),
            Ok(Factored::Workspace) => scratch.ws.det(),
            Ok(Factored::Fresh(lu)) => lu.det(),
            Err(_) => ExtComplex::ZERO,
        }
    }

    /// Evaluates the transfer function at `s`: `H`, `D`, and `N = H·D`
    /// from one factorization and one solve, matching
    /// [`MnaSystem::transfer`] — at refactorization speed.
    ///
    /// # Errors
    ///
    /// [`MnaError::Unrecoverable`] when every rung of the singular-recovery
    /// ladder fails at `s` — replay, fresh Markowitz, *and* the
    /// alternate-ordering recompile.
    ///
    /// # Panics
    ///
    /// Panics if the plan was built with [`SweepPlan::for_determinant`].
    pub fn eval_at(
        &self,
        s: Complex,
        scratch: &mut SweepScratch,
    ) -> Result<TransferResponse, MnaError> {
        let drive = self.drive.as_ref().expect("determinant-only plan cannot evaluate a transfer");
        let (denominator, response) = match self.factor(s, scratch) {
            Ok(Factored::Program(program)) => {
                let (prog, x) = (&mut scratch.prog, &mut scratch.x);
                program.solve_into(prog, &self.rhs, x);
                (prog.det(), drive.response_from(x))
            }
            Ok(Factored::Workspace) => {
                let (ws, x) = (&mut scratch.ws, &mut scratch.x);
                ws.solve_into(&self.rhs, x);
                (ws.det(), drive.response_from(x))
            }
            Ok(Factored::Fresh(lu)) => {
                let x = lu.solve(&self.rhs);
                (lu.det(), drive.response_from(&x))
            }
            Err(e) => return Err(MnaError::ladder_exhausted(e, format!("s = {s}"))),
        };
        Ok(TransferResponse { response, denominator, numerator: denominator * response })
    }

    /// Batched [`SweepPlan::eval_at`]: evaluates the transfer at every
    /// point of `sigmas` through **one** traversal of the compiled
    /// instruction stream (point `k` is lane `k` of a
    /// [`BatchScratch`](refgen_sparse::BatchScratch)). Per point, the
    /// result — value, error, and [`SweepStats`] accounting — is
    /// **bit-identical** to a sequential `eval_at` with a fresh
    /// (non-adopting) scratch: live lanes perform the exact one-lane
    /// operation sequence, and a lane whose prescribed pivot is exactly
    /// zero falls back to the identical sequential path (failed replay,
    /// then fresh Markowitz) without disturbing its neighbours.
    ///
    /// Plans without a compiled kernel (singular probe) evaluate each
    /// point sequentially — same results, no batching to amortize.
    ///
    /// # Panics
    ///
    /// Panics if `sigmas` is empty or the plan was built with
    /// [`SweepPlan::for_determinant`].
    pub fn eval_batch(
        &self,
        sigmas: &[Complex],
        scratch: &mut SweepBatchScratch,
    ) -> Vec<Result<TransferResponse, MnaError>> {
        let drive = self.drive.as_ref().expect("determinant-only plan cannot evaluate a transfer");
        assert!(!sigmas.is_empty(), "batch needs at least one point");
        let Some(program) = self.program.as_deref() else {
            return sigmas.iter().map(|&s| self.eval_at(s, &mut scratch.fallback)).collect();
        };
        let lanes = sigmas.len();
        program.refactor_batch(
            sigmas.iter().map(|&s| {
                let s = faults::poison_point(s);
                self.pattern.iter().map(move |&(_, _, k0, k1)| k0 + s * k1)
            }),
            &mut scratch.batch,
        );
        // Broadcast the (frequency-independent) RHS across lanes, row-major.
        scratch.rhs.clear();
        for &v in &self.rhs {
            scratch.rhs.extend(std::iter::repeat_n(v, lanes));
        }
        program.solve_batch(&mut scratch.batch, &scratch.rhs, &mut scratch.x);
        sigmas
            .iter()
            .enumerate()
            .map(|(lane, &s)| match scratch.batch.lane_det(lane) {
                Ok(denominator) if !faults::poison_replay() => {
                    scratch.stats.refactor_hits += 1;
                    scratch.stats.compiled_hits += 1;
                    if self.amd_selected() {
                        scratch.stats.amd_replays += 1;
                    }
                    let response = drive.response_from_lane(&scratch.x, lanes, lane);
                    Ok(TransferResponse {
                        response,
                        denominator,
                        numerator: denominator * response,
                    })
                }
                // Dead lane (exact zero pivot, or an injected replay
                // fault): the sequential path for this exact point — its
                // compiled replay dies at the same step (bit-identical
                // pivots), then climbs the recovery ladder, accounting
                // included. The lane is masked, never fatal to its
                // neighbours.
                _ => self.eval_at(s, &mut scratch.fallback),
            })
            .collect()
    }

    /// Batched [`SweepPlan::eval_det`]: determinants at every point of
    /// `sigmas` through one instruction-stream traversal, bit-identical
    /// per point to the sequential path (dead lanes fall back exactly like
    /// sequential evaluations, reporting `ExtComplex::ZERO` only if even
    /// the fresh factorization fails).
    ///
    /// # Panics
    ///
    /// Panics if `sigmas` is empty.
    pub fn eval_det_batch(
        &self,
        sigmas: &[Complex],
        scratch: &mut SweepBatchScratch,
    ) -> Vec<ExtComplex> {
        assert!(!sigmas.is_empty(), "batch needs at least one point");
        let Some(program) = self.program.as_deref() else {
            return sigmas.iter().map(|&s| self.eval_det(s, &mut scratch.fallback)).collect();
        };
        program.refactor_batch(
            sigmas.iter().map(|&s| {
                let s = faults::poison_point(s);
                self.pattern.iter().map(move |&(_, _, k0, k1)| k0 + s * k1)
            }),
            &mut scratch.batch,
        );
        sigmas
            .iter()
            .enumerate()
            .map(|(lane, &s)| match scratch.batch.lane_det(lane) {
                Ok(det) if !faults::poison_replay() => {
                    scratch.stats.refactor_hits += 1;
                    scratch.stats.compiled_hits += 1;
                    if self.amd_selected() {
                        scratch.stats.amd_replays += 1;
                    }
                    det
                }
                _ => self.eval_det(s, &mut scratch.fallback),
            })
            .collect()
    }

    /// Hybrid direct/iterative transfer evaluation for dense sweeps of
    /// *nearby* points (an AC frequency sweep, a window's interior): the
    /// compiled kernel refactors **exactly** at sparse anchor points, and
    /// every point close to the current anchor is solved by restarted
    /// GMRES preconditioned with the anchor factorization's
    /// back-substitution — `O(iterations · (nnz + fill))` instead of a
    /// full elimination replay. On stagnation the point re-anchors (one
    /// direct replay, never wrong, counted in
    /// [`HybridStats::fallbacks`]) — the iterative path can only add
    /// speed, never change availability or accuracy class.
    ///
    /// Returns the transfer response `H(s)` only: GMRES produces no
    /// determinant, so interpolation-grade sampling (which needs `D(s)`)
    /// keeps the direct path. Results are a pure function of the scratch's
    /// call history — two scratches fed the same point sequence return
    /// bit-identical responses on any thread or executor (the invariant
    /// tier pins this); anchor placement *does* depend on that history, so
    /// per-point values differ from [`SweepPlan::eval_at`] only within the
    /// GMRES tolerance, which the mesh oracle tier bounds at direct-LU
    /// distance ≤ 1e-9.
    ///
    /// A scratch serves **one plan**: feeding it to a different plan
    /// discards the anchor (detected via the compiled kernel's identity)
    /// but a *rebound variant* shares that kernel — use a fresh scratch
    /// per variant.
    ///
    /// # Errors
    ///
    /// [`MnaError::Singular`] when even the fresh-factorization fallback
    /// fails at `s`.
    ///
    /// # Panics
    ///
    /// Panics if the plan was built with [`SweepPlan::for_determinant`].
    pub fn eval_at_iterative(
        &self,
        s: Complex,
        scratch: &mut HybridScratch,
    ) -> Result<Complex, MnaError> {
        let drive = self.drive.as_ref().expect("determinant-only plan cannot evaluate a transfer");
        let Some(program) = self.program.as_ref() else {
            // No compiled kernel (singular probe): the sequential direct
            // path is all there is.
            scratch.stats.fallbacks += 1;
            return self.eval_at(s, &mut scratch.direct).map(|r| r.response);
        };
        let key = Arc::as_ptr(program) as usize;
        let anchored = match scratch.anchor {
            Some((s0, k)) if k == key => {
                let dist = (s - s0).abs();
                dist <= HYBRID_REANCHOR_REL * s.abs().max(s0.abs())
            }
            _ => false,
        };
        if !anchored {
            // A different compiled kernel invalidates the solution history
            // along with the anchor; a same-kernel re-anchor keeps it.
            if !matches!(scratch.anchor, Some((_, k)) if k == key) {
                scratch.last_s = None;
                scratch.prev_s = None;
            }
            return self.anchor_at(s, drive, program, scratch, false);
        }
        if faults::gmres_stagnation() {
            // Injected stagnation: skip the iterative attempt entirely and
            // take the exact fallback a stagnated solve would — a direct
            // re-anchor replay, bit-identical to the sequential path.
            scratch.stats.fallbacks += 1;
            return self.anchor_at(s, drive, program, scratch, true);
        }

        // Interior point: left-preconditioned GMRES around the anchor,
        // warm-started from the sweep's solution history. After the swap
        // `prev` holds the last solution and `x` the one before it; the
        // initial guess overwrites `x` — linear extrapolation through the
        // last two solutions when possible, the last solution alone
        // otherwise, zeros on a cold scratch.
        std::mem::swap(&mut scratch.prev, &mut scratch.x);
        let dim = self.dim;
        match (scratch.last_s, scratch.prev_s) {
            (Some(s1), Some(s2))
                if scratch.prev.len() == dim && scratch.x.len() == dim && s1 != s2 =>
            {
                let t = (s - s1) / (s1 - s2);
                for i in 0..dim {
                    let last = scratch.prev[i];
                    scratch.x[i] = last + t * (last - scratch.x[i]);
                }
            }
            (Some(_), _) if scratch.prev.len() == dim => {
                scratch.x.clear();
                scratch.x.extend_from_slice(&scratch.prev);
            }
            _ => {
                scratch.x.clear();
                scratch.x.resize(dim, Complex::ZERO);
            }
        }
        // The anchor solution's norm is ‖M⁻¹·rhs‖ exactly — pass it so
        // the convergence criterion stays absolute under a warm guess
        // (unless the caller pinned a scale of their own).
        let mut params = scratch.params;
        if params.rhs_scale <= 0.0 && scratch.anchor_norm > 0.0 {
            params.rhs_scale = scratch.anchor_norm;
        }
        // An injected NaN stamp must poison the iterative operator exactly
        // like the direct one (NaN·0 = NaN turns every stamp non-finite).
        let sp = faults::poison_point(s);
        let HybridScratch { anchor_prog, gmres, tmp, x, .. } = scratch;
        let pattern = &self.pattern;
        let report = gmres_solve(
            &self.rhs,
            x,
            |v, out| {
                out.fill(Complex::ZERO);
                for &(r, c, k0, k1) in pattern {
                    out[r] += (k0 + sp * k1) * v[c];
                }
            },
            |v| {
                program.solve_into(anchor_prog, v, tmp);
                v.copy_from_slice(tmp);
            },
            &params,
            gmres,
        );
        scratch.stats.gmres_iterations += report.iterations as u64;
        if report.converged {
            scratch.stats.iterative_points += 1;
            scratch.prev_s = scratch.last_s.replace(s);
            return Ok(drive.response_from(&scratch.x));
        }
        // Stagnation: direct replay at `s`, which doubles as the new
        // anchor (points after a hard spot tend to cluster near it). Undo
        // the history rotation first — `prev` still holds the last
        // converged solution, which `anchor_at` re-rotates.
        std::mem::swap(&mut scratch.prev, &mut scratch.x);
        scratch.stats.fallbacks += 1;
        self.anchor_at(s, drive, program, scratch, true)
    }

    /// Direct compiled replay at `s` into the hybrid scratch's anchor
    /// slot, making `s` the current anchor; falls back to the sequential
    /// path (fresh Markowitz) if the prescribed pivot dies at `s`.
    fn anchor_at(
        &self,
        s: Complex,
        drive: &PlanDrive,
        program: &Arc<FactorProgram>,
        scratch: &mut HybridScratch,
        restagnated: bool,
    ) -> Result<Complex, MnaError> {
        let sp = faults::poison_point(s);
        let replay = program.refactor_values(
            self.pattern.iter().map(|&(_, _, k0, k1)| k0 + sp * k1),
            &mut scratch.anchor_prog,
        );
        match replay {
            Ok(()) => {
                scratch.stats.anchors += 1;
                scratch.anchor = Some((s, Arc::as_ptr(program) as usize));
                // Rotate history: the outgoing solution becomes `prev`,
                // the anchor solve lands in `x`, and its norm is kept as
                // the preconditioned-RHS scale for interior points
                // (M⁻¹·rhs at the anchor *is* the anchor solution).
                std::mem::swap(&mut scratch.prev, &mut scratch.x);
                program.solve_into(&mut scratch.anchor_prog, &self.rhs, &mut scratch.x);
                scratch.anchor_norm = scratch.x.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt();
                scratch.prev_s = scratch.last_s.replace(s);
                Ok(drive.response_from(&scratch.x))
            }
            Err(_) => {
                // Exact zero pivot at `s`: the anchor slot holds no valid
                // factorization — drop it (and the history: the sequential
                // fallback leaves no plan-order solution behind) and take
                // the full sequential fallback, which may succeed with
                // fresh pivoting.
                scratch.anchor = None;
                scratch.last_s = None;
                scratch.prev_s = None;
                if !restagnated {
                    scratch.stats.fallbacks += 1;
                }
                self.eval_at(s, &mut scratch.direct).map(|r| r.response)
            }
        }
    }
}

/// How far (relative to the point magnitudes) a point may sit from the
/// current anchor and still be solved iteratively. GMRES on the anchor-
/// preconditioned operator gains roughly −log₁₀(d) digits per iteration
/// at relative distance `d`, and each iteration costs about one fill
/// back-substitution (a small fraction of a full replay) — so iterating
/// only beats re-anchoring while `d` stays well under ~10 %. Sweeps
/// sparser than the radius simply anchor every point, which is the direct
/// path plus negligible bookkeeping.
const HYBRID_REANCHOR_REL: f64 = 0.08;

/// Counters a [`HybridScratch`] accumulates across
/// [`SweepPlan::eval_at_iterative`] calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use = "hybrid accounting is the observable the oracle tiers pin — read it or drop it explicitly"]
pub struct HybridStats {
    /// Points solved by a direct compiled replay that became the anchor.
    pub anchors: u64,
    /// Points solved iteratively (GMRES converged).
    pub iterative_points: u64,
    /// Total GMRES inner iterations across all points.
    pub gmres_iterations: u64,
    /// Points where the iterative path was unavailable or stagnated and a
    /// direct evaluation served instead.
    pub fallbacks: u64,
}

/// Per-executor mutable state for the hybrid direct/iterative path
/// ([`SweepPlan::eval_at_iterative`]): the anchor factorization, GMRES
/// workspace, and a sequential [`SweepScratch`] for hard fallbacks. One
/// scratch per plan per thread; all buffers retain capacity.
#[derive(Debug)]
pub struct HybridScratch {
    /// GMRES tuning; adjust before the sweep if the defaults don't fit.
    /// [`HybridScratch::new`] opens `rel_tol` to `1e-11` — two decades
    /// looser than the kernel default (which targets machine precision)
    /// and two decades tighter than the oracle tier's `1e-9` bound on
    /// hybrid-vs-direct distance.
    pub params: GmresParams,
    direct: SweepScratch,
    /// The current anchor: its point and the identity (address) of the
    /// compiled kernel whose factorization occupies `anchor_prog`.
    anchor: Option<(Complex, usize)>,
    /// Norm of the anchor solution — the preconditioned-RHS scale passed
    /// to GMRES so warm-started solves keep an absolute criterion.
    anchor_norm: f64,
    anchor_prog: ProgramScratch,
    gmres: GmresWorkspace,
    tmp: Vec<Complex>,
    /// The most recent solution (after every successful point).
    x: Vec<Complex>,
    /// The solution before `x`, and the points both were solved at —
    /// the linear-extrapolation warm-start history.
    prev: Vec<Complex>,
    last_s: Option<Complex>,
    prev_s: Option<Complex>,
    stats: HybridStats,
}

impl Default for HybridScratch {
    fn default() -> Self {
        HybridScratch::new()
    }
}

impl HybridScratch {
    /// An empty scratch; buffers size themselves on first use.
    pub fn new() -> HybridScratch {
        HybridScratch {
            params: GmresParams { rel_tol: 1e-11, ..GmresParams::default() },
            direct: SweepScratch::new(),
            anchor: None,
            anchor_norm: 0.0,
            anchor_prog: ProgramScratch::new(),
            gmres: GmresWorkspace::new(),
            tmp: Vec::new(),
            x: Vec::new(),
            prev: Vec::new(),
            last_s: None,
            prev_s: None,
            stats: HybridStats::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> HybridStats {
        self.stats
    }

    /// Resets the counters (buffers and the current anchor are kept).
    pub fn reset_stats(&mut self) {
        self.stats = HybridStats::default();
    }
}

/// Per-executor mutable state for batched plan evaluation
/// ([`SweepPlan::eval_batch`] / [`SweepPlan::eval_det_batch`] /
/// [`FleetSampler::eval_at`]): the sparse batch scratch, reused RHS/solution
/// buffers, and a sequential [`SweepScratch`] that serves dead lanes the
/// exact fallback path a sequential evaluation would take.
#[derive(Debug, Default)]
pub struct SweepBatchScratch {
    batch: refgen_sparse::BatchScratch,
    rhs: Vec<Complex>,
    x: Vec<Complex>,
    /// Non-adopting by construction: dead lanes must replicate the
    /// deterministic-batch sequential path bit for bit.
    fallback: SweepScratch,
    stats: SweepStats,
}

impl SweepBatchScratch {
    /// An empty scratch; buffers size themselves on first use and the lane
    /// count follows each batched call.
    pub fn new() -> SweepBatchScratch {
        SweepBatchScratch::default()
    }

    /// Counters accumulated so far — batched lanes and sequential
    /// fallbacks combined, so totals match a sequential sweep of the same
    /// points exactly.
    pub fn stats(&self) -> SweepStats {
        let fb = self.fallback.stats();
        SweepStats {
            refactor_hits: self.stats.refactor_hits + fb.refactor_hits,
            fresh_factorizations: self.stats.fresh_factorizations + fb.fresh_factorizations,
            compiled_hits: self.stats.compiled_hits + fb.compiled_hits,
            amd_replays: self.stats.amd_replays + fb.amd_replays,
            recovered_fresh: self.stats.recovered_fresh + fb.recovered_fresh,
            recovered_reordered: self.stats.recovered_reordered + fb.recovered_reordered,
            unrecoverable: self.stats.unrecoverable + fb.unrecoverable,
        }
    }

    /// Resets the counters (buffers are kept).
    pub fn reset_stats(&mut self) {
        self.stats = SweepStats::default();
        self.fallback.reset_stats();
    }
}

/// Variant-major batched evaluation: N same-topology fleet variants —
/// rebound plans sharing **one** compiled [`FactorProgram`] by reference
/// (see [`SweepPlan::rebind`] / [`PlanCache`]) — evaluated at one `s` per
/// call, variant `k` in lane `k`. This is the transpose of
/// [`SweepPlan::eval_batch`]: instead of many points of one variant, one
/// point of many variants, stamping each variant's `K₀ + s·K₁` lane-wise
/// so the whole fleet walks the instruction stream once.
///
/// Per variant, results and [`SweepStats`] accounting are bit-identical to
/// that variant's sequential [`SweepPlan::eval_at`]; a variant whose pivot
/// dies at `s` falls back alone, exactly like the sequential path.
#[derive(Debug)]
pub struct FleetSampler<'a> {
    plans: Vec<&'a SweepPlan>,
    program: Arc<FactorProgram>,
    /// Lane-interleaved RHS (`rhs[row·lanes + lane]` = variant `lane`'s
    /// excitation), precomputed once at construction — the plans are
    /// immutable for the sampler's lifetime, so every `eval_at` shares it.
    rhs: Vec<Complex>,
    /// Lane-interleaved stamp coefficients (`k0[e·lanes + lane]`,
    /// likewise `k1`): every variant's affine pattern entry
    /// `K₀ + s·K₁`, transposed once so each `eval_at` stamps the whole
    /// fleet through the vectorized
    /// [`FactorProgram::refactor_batch_interleaved`] fast path instead
    /// of per-lane iterator walks.
    k0: Vec<Complex>,
    k1: Vec<Complex>,
}

impl<'a> FleetSampler<'a> {
    /// Builds a sampler over `plans`, one lane per variant.
    ///
    /// # Panics
    ///
    /// Panics if `plans` is empty, any plan is determinant-only, or the
    /// plans do not all share one compiled program by reference (plan a
    /// fleet via [`SweepPlan::rebind`] or one [`PlanCache`] to guarantee
    /// this).
    pub fn new(plans: &[&'a SweepPlan]) -> FleetSampler<'a> {
        assert!(!plans.is_empty(), "fleet needs at least one variant");
        let first = plans[0].program.clone().expect("fleet plans must carry a compiled program");
        for p in plans {
            assert!(
                p.program.as_ref().is_some_and(|pp| Arc::ptr_eq(pp, &first)),
                "fleet plans must share one compiled program (rebind or plan through one PlanCache)"
            );
            assert!(p.drive.is_some(), "determinant-only plan cannot evaluate a transfer");
        }
        let mut rhs = Vec::with_capacity(first.dim() * plans.len());
        for row in 0..first.dim() {
            for p in plans {
                rhs.push(p.rhs[row]);
            }
        }
        let entries = plans[0].pattern.len();
        let mut k0 = Vec::with_capacity(entries * plans.len());
        let mut k1 = Vec::with_capacity(entries * plans.len());
        for e in 0..entries {
            for p in plans {
                let (_, _, e0, e1) = p.pattern[e];
                k0.push(e0);
                k1.push(e1);
            }
        }
        FleetSampler { plans: plans.to_vec(), program: first, rhs, k0, k1 }
    }

    /// Number of variants (lanes).
    pub fn lanes(&self) -> usize {
        self.plans.len()
    }

    /// Evaluates every variant's transfer at `s` through one
    /// instruction-stream traversal. Entry `k` is exactly what
    /// `plans[k].eval_at(s, …)` would return.
    pub fn eval_at(
        &self,
        s: Complex,
        scratch: &mut SweepBatchScratch,
    ) -> Vec<Result<TransferResponse, MnaError>> {
        let lanes = self.plans.len();
        self.program.refactor_batch_interleaved(&self.k0, &self.k1, s, lanes, &mut scratch.batch);
        self.program.solve_batch(&mut scratch.batch, &self.rhs, &mut scratch.x);
        self.plans
            .iter()
            .enumerate()
            .map(|(lane, plan)| {
                let drive = plan.drive.as_ref().expect("checked at construction");
                match scratch.batch.lane_det(lane) {
                    Ok(denominator) => {
                        scratch.stats.refactor_hits += 1;
                        scratch.stats.compiled_hits += 1;
                        if plan.amd_selected() {
                            scratch.stats.amd_replays += 1;
                        }
                        let response = drive.response_from_lane(&scratch.x, lanes, lane);
                        Ok(TransferResponse {
                            response,
                            denominator,
                            numerator: denominator * response,
                        })
                    }
                    Err(_) => plan.eval_at(s, &mut scratch.fallback),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refgen_circuit::library::{rc_ladder, ua741};
    use refgen_circuit::Circuit;

    fn spec() -> TransferSpec {
        TransferSpec::voltage_gain("VIN", "out")
    }

    #[test]
    fn plan_matches_direct_transfer() {
        let c = ua741();
        let sys = MnaSystem::new(&c).unwrap();
        let scale = Scale::new(1e9, 1e3);
        let plan = SweepPlan::new(&sys, scale, &spec()).unwrap();
        let mut scratch = SweepScratch::new();
        for k in 0..16 {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / 16.0;
            let s = Complex::new(theta.cos(), theta.sin());
            let fast = plan.eval_at(s, &mut scratch).unwrap();
            let slow = sys.transfer(s, scale, &spec()).unwrap();
            let rel = (fast.response - slow.response).abs() / slow.response.abs();
            assert!(rel < 1e-9, "response at point {k}: rel {rel:.2e}");
            let drel =
                ((fast.denominator - slow.denominator).norm() / slow.denominator.norm()).to_f64();
            assert!(drel < 1e-9, "determinant at point {k}: rel {drel:.2e}");
            let nrel = ((fast.numerator - slow.numerator).norm() / slow.numerator.norm()).to_f64();
            assert!(nrel < 1e-9, "numerator at point {k}: rel {nrel:.2e}");
        }
        // Every point replayed the probe's pivot order — and every replay
        // ran the compiled kernel, not the workspace path.
        assert_eq!(scratch.stats().refactor_hits, 16);
        assert_eq!(scratch.stats().compiled_hits, 16);
        assert_eq!(scratch.stats().fresh_factorizations, 0);
    }

    /// Every supported element stamps real `K₀`/`K₁` and the excitation is
    /// real, so plans detect conjugate symmetry — and evaluation really is
    /// conjugate-equivariant, bit for bit.
    #[test]
    fn real_patterns_are_conjugate_symmetric_bit_exactly() {
        for circuit in [ua741(), rc_ladder(6, 1e3, 1e-9)] {
            let sys = MnaSystem::new(&circuit).unwrap();
            let scale = Scale::new(1e9, 1e3);
            let plan = SweepPlan::new(&sys, scale, &spec()).unwrap();
            assert!(plan.conjugate_symmetric(), "MNA stamps and RHS are real");
            let mut scratch = SweepScratch::new();
            for k in 0..8 {
                let theta = 2.0 * std::f64::consts::PI * (k as f64 + 0.3) / 8.0;
                let s = Complex::new(theta.cos(), theta.sin());
                let up = plan.eval_at(s, &mut scratch).unwrap();
                let dn = plan.eval_at(s.conj(), &mut scratch).unwrap();
                assert_eq!(up.response.conj(), dn.response, "response at point {k}");
                assert_eq!(up.denominator.conj(), dn.denominator, "determinant at point {k}");
                assert_eq!(up.numerator.conj(), dn.numerator, "numerator at point {k}");
            }
        }
    }

    #[test]
    fn plan_det_matches_system_det() {
        let c = rc_ladder(6, 1e3, 1e-9);
        let sys = MnaSystem::new(&c).unwrap();
        let scale = Scale::new(1e9, 1e3);
        let plan = SweepPlan::for_determinant(&sys, scale);
        let mut scratch = SweepScratch::new();
        for k in 0..7 {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / 7.0;
            let s = Complex::new(theta.cos(), theta.sin());
            let fast = plan.eval_det(s, &mut scratch);
            let slow = sys.det(s, scale).unwrap();
            let rel = ((fast - slow).norm() / slow.norm()).to_f64();
            assert!(rel < 1e-10, "point {k}: rel {rel:.2e}");
        }
        assert!(scratch.stats().refactor_hits > 0);
    }

    #[test]
    fn det_only_plan_is_zero_on_singular_system() {
        // Two parallel V sources: singular at every s; probe fails, every
        // eval falls back and reports a zero determinant, like
        // MnaSystem::det.
        let mut c = Circuit::new();
        c.add_vsource("V1", "a", "0", 1.0).unwrap();
        c.add_vsource("V2", "a", "0", 1.0).unwrap();
        c.add_resistor("R1", "a", "0", 1e3).unwrap();
        c.add_capacitor("C1", "a", "0", 1e-9).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let plan = SweepPlan::for_determinant(&sys, Scale::unit());
        assert!(plan.order().is_none(), "probe of a singular system records no order");
        let mut scratch = SweepScratch::new();
        assert!(plan.eval_det(Complex::ONE, &mut scratch).is_zero());
        assert_eq!(scratch.stats().fresh_factorizations, 1);
    }

    /// The regression the satellite bugfix targets: a pivot order recorded
    /// at one frequency dies (exact zero pivot) at another where the
    /// matrix's *numeric* pattern changes — here a node whose diagonal is
    /// purely capacitive after a VCCS cancels its conductances, so it
    /// vanishes at DC. An adopting scratch must pay the fallback pivot
    /// search once and then replay the *new* order, not re-fail the stale
    /// one at every remaining point.
    #[test]
    fn adopting_scratch_replaces_stale_order_on_fallback() {
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "a", 1e3).unwrap();
        c.add_capacitor("C1", "a", "0", 1.0).unwrap();
        // gm exactly cancels the two conductances on node a's diagonal.
        c.add_vccs("G1", "a", "0", "a", "0", -2e-3).unwrap();
        c.add_resistor("R3", "a", "b", 1e3).unwrap();
        c.add_resistor("R4", "b", "0", 1e3).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        // Pinned to the probe order: this test documents Markowitz-probe
        // pivot mechanics (the DC-vanishing capacitor diagonal), which a
        // forced AMD environment would order around.
        let plan = SweepPlan::new_with_ordering(
            &sys,
            Scale::unit(),
            &TransferSpec::voltage_gain("VIN", "b"),
            OrderingMode::Markowitz,
        )
        .unwrap();

        // Sanity: the probe (|s| = 1, so |s·C| = 1 dominates the mS-range
        // conductances) pivots on node a's capacitor-only diagonal.
        let mut adopting = SweepScratch::adopting();
        plan.eval_at(Complex::new(0.3, 1.1), &mut adopting).unwrap();
        assert_eq!(adopting.stats().refactor_hits, 1, "generic point replays the probe order");

        // At s = 0 the prescribed pivot is exactly zero: one fallback…
        plan.eval_at(Complex::ZERO, &mut adopting).unwrap();
        assert_eq!(adopting.stats().fresh_factorizations, 1);
        // …and the adopted DC-safe order serves every further DC point.
        for _ in 0..4 {
            plan.eval_at(Complex::ZERO, &mut adopting).unwrap();
        }
        let stats = adopting.stats();
        assert_eq!(
            stats.fresh_factorizations, 1,
            "stale order must be replaced on fallback, not re-failed per point"
        );
        assert_eq!(stats.refactor_hits, 5);
        // The adopted order is *compiled* at adoption: the probe point ran
        // the plan's kernel (1) and all four post-fallback DC points ran
        // the adopted kernel (4) — no workspace replays left.
        assert_eq!(
            stats.compiled_hits, 5,
            "adopted-order replays must run the compiled kernel, not the workspace"
        );

        // A non-adopting scratch (deterministic batch mode) keeps replaying
        // the plan order by design, paying the fallback at every DC point.
        let mut plain = SweepScratch::new();
        for _ in 0..3 {
            plan.eval_at(Complex::ZERO, &mut plain).unwrap();
        }
        assert_eq!(plain.stats().fresh_factorizations, 3);
        assert_eq!(plain.stats().refactor_hits, 0);
    }

    #[test]
    fn spec_errors_surface_at_plan_build() {
        let c = rc_ladder(2, 1e3, 1e-9);
        let sys = MnaSystem::new(&c).unwrap();
        assert!(matches!(
            SweepPlan::new(&sys, Scale::unit(), &TransferSpec::voltage_gain("VX", "out")),
            Err(MnaError::NoSuchSource { .. })
        ));
        assert!(matches!(
            SweepPlan::new(&sys, Scale::unit(), &TransferSpec::voltage_gain("VIN", "nowhere")),
            Err(MnaError::NoSuchNode { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "determinant-only plan")]
    fn det_only_plan_panics_on_eval_at() {
        let sys = MnaSystem::new(&rc_ladder(2, 1e3, 1e-9)).unwrap();
        let plan = SweepPlan::for_determinant(&sys, Scale::unit());
        let _ = plan.eval_at(Complex::ONE, &mut SweepScratch::new());
    }

    /// A same-topology variant of the uniform ladder: every R and C scaled
    /// by a per-element factor, structure untouched.
    fn perturbed_ladder(n: usize, bump: f64) -> Circuit {
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        let mut prev = "in".to_string();
        for k in 0..n {
            let node = if k + 1 == n { "out".to_string() } else { format!("l{}", k + 1) };
            let wiggle = 1.0 + bump * ((k as f64 + 1.0) / n as f64 - 0.5);
            c.add_resistor(&format!("R{}", k + 1), &prev, &node, 1e3 * wiggle).unwrap();
            c.add_capacitor(&format!("C{}", k + 1), &node, "0", 1e-9 / wiggle).unwrap();
            prev = node;
        }
        c
    }

    #[test]
    fn rebind_matches_fresh_plan_without_probing() {
        let scale = Scale::new(1e9, 1e3);
        let base = MnaSystem::new(&perturbed_ladder(6, 0.0)).unwrap();
        let plan = SweepPlan::new(&base, scale, &spec()).unwrap();
        let variant = MnaSystem::new(&perturbed_ladder(6, 0.12)).unwrap();
        let rebound = plan.rebind(&variant).unwrap();
        // Same recorded order, no new probe…
        assert_eq!(rebound.order(), plan.order());
        // …and evaluations match a freshly probed plan on the variant to
        // full precision (the order is structural; values are numeric).
        let fresh = SweepPlan::new(&variant, scale, &spec()).unwrap();
        let mut sa = SweepScratch::new();
        let mut sb = SweepScratch::new();
        for k in 0..8 {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / 8.0;
            let s = Complex::new(theta.cos(), theta.sin());
            let a = rebound.eval_at(s, &mut sa).unwrap();
            let b = fresh.eval_at(s, &mut sb).unwrap();
            let rel = (a.response - b.response).abs() / b.response.abs();
            assert!(rel < 1e-12, "point {k}: rel {rel:.2e}");
        }
        // Every rebound evaluation replayed the transplanted order.
        assert_eq!(sa.stats().refactor_hits, 8);
        assert_eq!(sa.stats().fresh_factorizations, 0);
    }

    #[test]
    fn rebind_rejects_different_topology() {
        let scale = Scale::unit();
        let sys6 = MnaSystem::new(&rc_ladder(6, 1e3, 1e-9)).unwrap();
        let sys7 = MnaSystem::new(&rc_ladder(7, 1e3, 1e-9)).unwrap();
        let plan = SweepPlan::for_determinant(&sys6, scale);
        assert!(matches!(
            plan.rebind(&sys7),
            Err(MnaError::TopologyMismatch { expected, actual }) if expected + 1 == actual
        ));
    }

    #[test]
    fn rebind_tracks_changed_source_amplitude() {
        let scale = Scale::unit();
        let mut base = Circuit::new();
        base.add_vsource("VIN", "in", "0", 1.0).unwrap();
        base.add_resistor("R1", "in", "out", 1e3).unwrap();
        base.add_capacitor("C1", "out", "0", 1e-9).unwrap();
        let plan = SweepPlan::new(&MnaSystem::new(&base).unwrap(), scale, &spec()).unwrap();

        let mut scaled = Circuit::new();
        scaled.add_vsource("VIN", "in", "0", 2.5).unwrap();
        scaled.add_resistor("R1", "in", "out", 1e3).unwrap();
        scaled.add_capacitor("C1", "out", "0", 1e-9).unwrap();
        let sys = MnaSystem::new(&scaled).unwrap();
        let rebound = plan.rebind(&sys).unwrap();
        // H(0) of the RC low-pass is 1 regardless of drive amplitude: the
        // rebound plan must renormalize by the *variant's* amplitude.
        let mut scratch = SweepScratch::new();
        let r = rebound.eval_at(Complex::ZERO, &mut scratch).unwrap();
        assert!((r.response - Complex::ONE).abs() < 1e-12, "H(0) = {}", r.response);
    }

    #[test]
    fn plan_cache_shares_orders_across_nearby_scales_only() {
        let cache = PlanCache::new();
        let sys = MnaSystem::new(&ua741()).unwrap();
        let spec = spec();
        let scale = Scale::new(1e9, 1e3);
        let p1 = SweepPlan::new_cached(&sys, scale, &spec, &cache).unwrap();
        assert_eq!(cache.pivot_searches(), 1);
        assert_eq!(cache.shared_hits(), 0);

        // A verify-style nearby scale (±0.2 decades) reuses the order —
        // and the same compiled program, by reference…
        let nearby = Scale::new(1e9 * 10f64.powf(0.2), 1e3 / 10f64.powf(0.2));
        let p2 = SweepPlan::new_cached(&sys, nearby, &spec, &cache).unwrap();
        assert_eq!(cache.pivot_searches(), 1, "nearby scale must not re-probe");
        assert_eq!(cache.shared_hits(), 1);
        assert_eq!(p2.order(), p1.order());
        assert_eq!(cache.programs_compiled(), 1, "symbolic analysis runs once per entry");
        assert!(
            std::ptr::eq(p1.program().unwrap(), p2.program().unwrap()),
            "cache hit hands out the same compiled program"
        );

        // …while a re-tilted window scale records its own.
        let far = Scale::new(1e13, 1e2);
        let _p3 = SweepPlan::for_determinant_cached(&sys, far, &cache);
        assert_eq!(cache.pivot_searches(), 2);
        assert_eq!(cache.programs_compiled(), 2);
        assert_eq!(cache.len(), 2);
    }

    /// The fleet shape the batch-session layer is built on: 64
    /// same-topology µA741 variants evaluated through rebound plans —
    /// exactly **one** pivot search for the whole fleet, every evaluation
    /// a pivot-order replay (asserted via [`SweepStats`]).
    #[test]
    fn ua741_fleet_costs_one_pivot_search_per_topology() {
        use refgen_circuit::perturb::{Perturbation, VariantSet};

        let base = ua741();
        let scale = Scale::new(1e9, 1e3);
        let plan = SweepPlan::new(&MnaSystem::new(&base).unwrap(), scale, &spec()).unwrap();
        assert!(plan.order().is_some(), "base probe records the topology's order");
        let base_program = plan.program().expect("probe order compiles");

        let fleet =
            VariantSet::new(Perturbation::all_relative(0.04), 64).seed(7).generate(&base).unwrap();
        let mut scratch = SweepScratch::new();
        let points = 16usize;
        for circuit in &fleet {
            let sys = MnaSystem::new(circuit).unwrap();
            let rebound = plan.rebind(&sys).unwrap();
            // Rebinding transplants the one compiled program by reference:
            // the whole fleet shares a single symbolic analysis.
            assert!(
                std::ptr::eq(rebound.program().unwrap(), base_program),
                "rebind must carry the compiled program, not recompile"
            );
            for k in 0..points {
                let theta = 2.0 * std::f64::consts::PI * k as f64 / points as f64;
                let s = Complex::new(theta.cos(), theta.sin());
                rebound.eval_at(s, &mut scratch).unwrap();
            }
        }
        let stats = scratch.stats();
        assert_eq!(stats.fresh_factorizations, 0, "the one base probe must serve all 64 variants");
        assert_eq!(stats.refactor_hits, 64 * points as u64);
        assert_eq!(stats.compiled_hits, 64 * points as u64, "every evaluation ran compiled");
    }

    /// The acceptance shape: 64 same-topology µA741 variants planned
    /// through one [`PlanCache`] compile exactly **one** `FactorProgram`
    /// (and pay exactly one pivot search) — symbolic analysis is value-
    /// and scale-independent, so the fleet shares a single compiled kernel.
    #[test]
    fn ua741_fleet_compiles_exactly_one_program_through_cache() {
        use refgen_circuit::perturb::{Perturbation, VariantSet};

        let base = ua741();
        let scale = Scale::new(1e9, 1e3);
        let cache = PlanCache::new();
        let fleet =
            VariantSet::new(Perturbation::all_relative(0.04), 64).seed(11).generate(&base).unwrap();
        let mut scratch = SweepScratch::new();
        let mut first_program: Option<*const FactorProgram> = None;
        for circuit in &fleet {
            let sys = MnaSystem::new(circuit).unwrap();
            let plan = SweepPlan::new_cached(&sys, scale, &spec(), &cache).unwrap();
            let program = plan.program().expect("every variant plan carries the shared program")
                as *const FactorProgram;
            assert_eq!(*first_program.get_or_insert(program), program, "one Arc'd program");
            plan.eval_at(Complex::new(0.6, 0.8), &mut scratch).unwrap();
        }
        assert_eq!(cache.pivot_searches(), 1, "one probe for the whole fleet");
        assert_eq!(cache.programs_compiled(), 1, "one symbolic compilation for the whole fleet");
        assert_eq!(cache.shared_hits(), 63);
        assert_eq!(scratch.stats().compiled_hits, 64, "every variant evaluates compiled");
    }

    /// Same dimension, different topology: the cache must *not* share a
    /// pivot order (the pattern fingerprint, not the dimension, is the
    /// sharing identity).
    #[test]
    fn plan_cache_never_shares_across_topologies() {
        // Both circuits: 4 non-ground nodes + 1 V branch → dim 5, but the
        // elements connect differently.
        let ladder = rc_ladder(3, 1e3, 1e-9);
        let mut star = Circuit::new();
        star.add_vsource("VIN", "in", "0", 1.0).unwrap();
        star.add_resistor("R1", "in", "hub", 1e3).unwrap();
        star.add_resistor("R2", "hub", "out", 1e3).unwrap();
        star.add_resistor("R3", "hub", "x", 1e3).unwrap();
        star.add_capacitor("C1", "x", "0", 1e-9).unwrap();
        star.add_capacitor("C2", "out", "0", 1e-9).unwrap();
        star.add_capacitor("C3", "in", "out", 1e-9).unwrap();
        let a = MnaSystem::new(&ladder).unwrap();
        let b = MnaSystem::new(&star).unwrap();
        assert_eq!(a.dim(), b.dim(), "test premise: equal dimensions");

        let cache = PlanCache::new();
        let scale = Scale::new(1e9, 1e3);
        let _pa = SweepPlan::for_determinant_cached(&a, scale, &cache);
        let _pb = SweepPlan::for_determinant_cached(&b, scale, &cache);
        assert_eq!(cache.pivot_searches(), 2, "each topology probes its own order");
        assert_eq!(cache.shared_hits(), 0);
        // The same topologies, revisited, do share.
        let _pa2 = SweepPlan::for_determinant_cached(&a, scale, &cache);
        let _pb2 = SweepPlan::for_determinant_cached(&b, scale, &cache);
        assert_eq!(cache.pivot_searches(), 2);
        assert_eq!(cache.shared_hits(), 2);
    }

    /// The VCCS-cancelled-diagonal regression for the compiled adopted
    /// order: post-fallback DC points must produce the same values through
    /// the adopted kernel as a fresh factorization of each point would.
    #[test]
    fn adopted_order_kernel_reproduces_fresh_values() {
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "a", 1e3).unwrap();
        c.add_capacitor("C1", "a", "0", 1.0).unwrap();
        c.add_vccs("G1", "a", "0", "a", "0", -2e-3).unwrap();
        c.add_resistor("R3", "a", "b", 1e3).unwrap();
        c.add_resistor("R4", "b", "0", 1e3).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let spec = TransferSpec::voltage_gain("VIN", "b");
        let plan = SweepPlan::new(&sys, Scale::unit(), &spec).unwrap();

        let mut adopting = SweepScratch::adopting();
        plan.eval_at(Complex::ZERO, &mut adopting).unwrap(); // fallback + adopt
                                                             // Near-DC points replay the adopted kernel (compiled_hits move)…
        let before = adopting.stats();
        let probe_points: Vec<Complex> =
            (1..5).map(|k| Complex::new(1e-7 * k as f64, 0.0)).collect();
        for &s in &probe_points {
            let got = plan.eval_at(s, &mut adopting).unwrap();
            // …and match a from-scratch factorization to full precision.
            let want = sys.transfer(s, Scale::unit(), &spec).unwrap();
            let rel = (got.response - want.response).abs() / want.response.abs();
            assert!(rel < 1e-12, "s = {s}: rel {rel:.2e}");
        }
        let after = adopting.stats();
        assert_eq!(after.compiled_hits - before.compiled_hits, 4);
        assert_eq!(after.fresh_factorizations, before.fresh_factorizations);
    }

    /// `eval_batch` / `eval_det_batch` over any lane width are bit-identical
    /// to sequential `eval_at` / `eval_det` — values and accounting.
    #[test]
    fn eval_batch_is_bit_identical_to_sequential() {
        let sys = MnaSystem::new(&ua741()).unwrap();
        let scale = Scale::new(1e9, 1e3);
        let plan = SweepPlan::new(&sys, scale, &spec()).unwrap();
        let points: Vec<Complex> = (0..12)
            .map(|k| {
                let theta = 2.0 * std::f64::consts::PI * (k as f64 + 0.21) / 12.0;
                Complex::new(theta.cos(), theta.sin())
            })
            .collect();

        let mut seq = SweepScratch::new();
        let want: Vec<TransferResponse> =
            points.iter().map(|&s| plan.eval_at(s, &mut seq).unwrap()).collect();
        let want_dets: Vec<ExtComplex> =
            points.iter().map(|&s| plan.eval_det(s, &mut seq)).collect();

        for width in [1usize, 3, 8] {
            let mut batch = SweepBatchScratch::new();
            let mut got = Vec::new();
            let mut got_dets = Vec::new();
            for chunk in points.chunks(width) {
                got.extend(plan.eval_batch(chunk, &mut batch));
                got_dets.extend(plan.eval_det_batch(chunk, &mut batch));
            }
            for (k, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    format!("{:?}", g.as_ref().unwrap()),
                    format!("{w:?}"),
                    "width {width}, point {k}"
                );
            }
            for (k, (g, w)) in got_dets.iter().zip(&want_dets).enumerate() {
                assert_eq!(format!("{g:?}"), format!("{w:?}"), "width {width}, det point {k}");
            }
            assert_eq!(batch.stats(), seq.stats(), "width {width}: accounting parity");
        }
    }

    /// A batch containing a point where the plan's pivot order dies (the
    /// VCCS circuit at DC) must fall back for that lane alone, matching
    /// the sequential path — values, errors, and stats.
    #[test]
    fn eval_batch_dead_lane_falls_back_like_sequential() {
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "a", 1e3).unwrap();
        c.add_capacitor("C1", "a", "0", 1.0).unwrap();
        c.add_vccs("G1", "a", "0", "a", "0", -2e-3).unwrap();
        c.add_resistor("R3", "a", "b", 1e3).unwrap();
        c.add_resistor("R4", "b", "0", 1e3).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        // Pinned to the probe order: this test documents Markowitz-probe
        // pivot mechanics (the DC-vanishing capacitor diagonal), which a
        // forced AMD environment would order around.
        let plan = SweepPlan::new_with_ordering(
            &sys,
            Scale::unit(),
            &TransferSpec::voltage_gain("VIN", "b"),
            OrderingMode::Markowitz,
        )
        .unwrap();
        let points =
            [Complex::new(0.3, 1.1), Complex::ZERO, Complex::new(-0.4, 0.9), Complex::ZERO];

        let mut seq = SweepScratch::new();
        let want: Vec<TransferResponse> =
            points.iter().map(|&s| plan.eval_at(s, &mut seq).unwrap()).collect();

        let mut batch = SweepBatchScratch::new();
        let got = plan.eval_batch(&points, &mut batch);
        for (k, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(format!("{:?}", g.as_ref().unwrap()), format!("{w:?}"), "point {k}");
        }
        let stats = batch.stats();
        assert_eq!(stats, seq.stats(), "accounting parity with the sequential sweep");
        assert_eq!(stats.fresh_factorizations, 2, "both DC lanes fell back alone");
        assert_eq!(stats.refactor_hits, 2);
    }

    /// Variant-major batching: a `FleetSampler` over rebound plans yields,
    /// per variant, exactly that variant's sequential evaluation.
    #[test]
    fn fleet_sampler_matches_per_variant_eval() {
        let scale = Scale::new(1e9, 1e3);
        let base = MnaSystem::new(&perturbed_ladder(6, 0.0)).unwrap();
        let plan = SweepPlan::new(&base, scale, &spec()).unwrap();
        let systems: Vec<MnaSystem> = (0..5)
            .map(|k| MnaSystem::new(&perturbed_ladder(6, 0.05 * (k as f64 + 1.0))).unwrap())
            .collect();
        let plans: Vec<SweepPlan> = systems.iter().map(|s| plan.rebind(s).unwrap()).collect();
        let refs: Vec<&SweepPlan> = plans.iter().collect();
        let sampler = FleetSampler::new(&refs);
        assert_eq!(sampler.lanes(), 5);

        let mut batch = SweepBatchScratch::new();
        let mut seq = SweepScratch::new();
        for k in 0..6 {
            let theta = 2.0 * std::f64::consts::PI * (k as f64 + 0.4) / 6.0;
            let s = Complex::new(theta.cos(), theta.sin());
            let got = sampler.eval_at(s, &mut batch);
            for (lane, p) in plans.iter().enumerate() {
                let want = p.eval_at(s, &mut seq).unwrap();
                assert_eq!(
                    format!("{:?}", got[lane].as_ref().unwrap()),
                    format!("{want:?}"),
                    "point {k}, variant {lane}"
                );
            }
        }
        assert_eq!(batch.stats(), seq.stats());
    }

    #[test]
    #[should_panic(expected = "share one compiled program")]
    fn fleet_sampler_rejects_unshared_programs() {
        let scale = Scale::new(1e9, 1e3);
        let a = MnaSystem::new(&perturbed_ladder(4, 0.0)).unwrap();
        let b = MnaSystem::new(&perturbed_ladder(4, 0.1)).unwrap();
        // Two independently probed plans: same topology, separate programs.
        let pa = SweepPlan::new(&a, scale, &spec()).unwrap();
        let pb = SweepPlan::new(&b, scale, &spec()).unwrap();
        let _ = FleetSampler::new(&[&pa, &pb]);
    }

    #[test]
    fn forced_amd_matches_markowitz_values() {
        let c = refgen_circuit::library::random_rc_mesh(40, 60, 7);
        let sys = MnaSystem::new(&c).unwrap();
        let scale = Scale::new(1e6, 1e3);
        let mk =
            SweepPlan::new_with_ordering(&sys, scale, &spec(), OrderingMode::Markowitz).unwrap();
        let amd = SweepPlan::new_with_ordering(&sys, scale, &spec(), OrderingMode::Amd).unwrap();
        assert_eq!(
            mk.ordering_choice().unwrap().selected,
            SelectedOrdering::Markowitz,
            "forced markowitz"
        );
        assert_eq!(
            amd.ordering_choice().unwrap().selected,
            SelectedOrdering::Amd,
            "forced amd must adopt on a mesh"
        );
        let mut sa = SweepScratch::new();
        let mut sb = SweepScratch::new();
        for k in 0..8 {
            let theta = 2.0 * std::f64::consts::PI * (k as f64 + 0.3) / 8.0;
            let s = Complex::new(theta.cos(), theta.sin());
            let a = mk.eval_at(s, &mut sa).unwrap();
            let b = amd.eval_at(s, &mut sb).unwrap();
            let rel = (a.response - b.response).abs() / a.response.abs().max(1e-300);
            assert!(rel < 1e-9, "point {k}: rel {rel:.2e}");
        }
        assert!(sb.stats().amd_replays > 0, "amd replays must be counted");
        assert_eq!(sa.stats().amd_replays, 0, "markowitz plan counts no amd replays");
    }

    #[test]
    fn auto_mode_picks_amd_on_meshes_only() {
        // A ladder is tree-like: Markowitz fill stays tiny, Auto keeps it.
        let ladder = MnaSystem::new(&rc_ladder(6, 1e3, 1e-9)).unwrap();
        let scale = Scale::new(1e6, 1e3);
        let plan =
            SweepPlan::new_with_ordering(&ladder, scale, &spec(), OrderingMode::Auto).unwrap();
        let choice = plan.ordering_choice().unwrap();
        assert_eq!(choice.selected, SelectedOrdering::Markowitz);
        // A dense-ish random mesh crosses the fill threshold; Auto must
        // switch iff AMD actually reduces fill (the recorded numbers let
        // the test assert the contract rather than a particular topology).
        let mesh = MnaSystem::new(&refgen_circuit::library::random_rc_mesh(60, 150, 3)).unwrap();
        let plan = SweepPlan::new_with_ordering(&mesh, scale, &spec(), OrderingMode::Auto).unwrap();
        let choice = plan.ordering_choice().unwrap();
        if choice.selected == SelectedOrdering::Amd {
            let (mf, af) = (choice.markowitz_fill.unwrap(), choice.amd_fill.unwrap());
            assert!(af < mf, "auto adopted amd without a fill win: {af} vs {mf}");
        }
    }

    #[test]
    fn cache_keeps_ordering_modes_separate() {
        let c = refgen_circuit::library::random_rc_mesh(40, 60, 7);
        let sys = MnaSystem::new(&c).unwrap();
        let scale = Scale::new(1e6, 1e3);
        let cache = PlanCache::new();
        let mk = SweepPlan::new_cached_with_ordering(
            &sys,
            scale,
            &spec(),
            &cache,
            OrderingMode::Markowitz,
        )
        .unwrap();
        let amd =
            SweepPlan::new_cached_with_ordering(&sys, scale, &spec(), &cache, OrderingMode::Amd)
                .unwrap();
        assert_eq!(mk.ordering_choice().unwrap().selected, SelectedOrdering::Markowitz);
        assert_eq!(amd.ordering_choice().unwrap().selected, SelectedOrdering::Amd);
        // A second plan per mode must hit the cache entry for *its* mode.
        let mk2 = SweepPlan::new_cached_with_ordering(
            &sys,
            scale,
            &spec(),
            &cache,
            OrderingMode::Markowitz,
        )
        .unwrap();
        assert_eq!(mk2.ordering_choice(), mk.ordering_choice());
        let amd2 =
            SweepPlan::new_cached_with_ordering(&sys, scale, &spec(), &cache, OrderingMode::Amd)
                .unwrap();
        assert_eq!(amd2.ordering_choice(), amd.ordering_choice());
    }

    #[test]
    fn hybrid_matches_direct_and_iterates() {
        let c = refgen_circuit::library::random_rc_mesh(80, 120, 11);
        let sys = MnaSystem::new(&c).unwrap();
        let scale = Scale::new(1e6, 1e3);
        let plan = SweepPlan::new_with_ordering(&sys, scale, &spec(), OrderingMode::Amd).unwrap();
        let mut hybrid = HybridScratch::new();
        let mut direct = SweepScratch::new();
        // A dense walk around the upper unit semicircle: neighbors sit
        // well inside the re-anchor radius, so interior points should go
        // iterative.
        let n = 256;
        for k in 0..n {
            let theta = std::f64::consts::PI * (k as f64 + 0.5) / n as f64;
            let s = Complex::new(theta.cos(), theta.sin());
            let h = plan.eval_at_iterative(s, &mut hybrid).unwrap();
            let d = plan.eval_at(s, &mut direct).unwrap();
            let rel = (h - d.response).abs() / d.response.abs().max(1e-300);
            assert!(rel < 1e-9, "point {k}: rel {rel:.2e}");
        }
        let stats = hybrid.stats();
        assert!(stats.iterative_points > 0, "no point went iterative: {stats:?}");
        assert!(
            stats.anchors + stats.iterative_points + stats.fallbacks >= n as u64,
            "every point must be accounted for: {stats:?}"
        );
        assert!(stats.anchors < n as u64 / 2, "anchoring too often: {stats:?}");
    }

    #[test]
    fn hybrid_trace_is_deterministic() {
        let c = refgen_circuit::library::random_rc_mesh(50, 80, 5);
        let sys = MnaSystem::new(&c).unwrap();
        let scale = Scale::new(1e6, 1e3);
        let plan = SweepPlan::new(&sys, scale, &spec()).unwrap();
        let points: Vec<Complex> = (0..40)
            .map(|k| {
                let theta = std::f64::consts::PI * (k as f64 + 0.25) / 40.0;
                Complex::new(theta.cos(), theta.sin())
            })
            .collect();
        let mut a = HybridScratch::new();
        let mut b = HybridScratch::new();
        for &s in &points {
            let x = plan.eval_at_iterative(s, &mut a).unwrap();
            let y = plan.eval_at_iterative(s, &mut b).unwrap();
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "hybrid trace diverged at {s:?}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "hybrid trace diverged at {s:?}");
        }
        assert_eq!(a.stats(), b.stats());
    }

    fn circle_points(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|k| {
                let theta = 2.0 * std::f64::consts::PI * (k as f64 + 0.37) / n as f64;
                Complex::new(theta.cos(), theta.sin())
            })
            .collect()
    }

    #[test]
    fn ladder_rung1_rescues_dead_replays_with_fresh_markowitz() {
        let sys = MnaSystem::new(&ua741()).unwrap();
        let plan = SweepPlan::new(&sys, Scale::new(1e9, 1e3), &spec()).unwrap();
        let points = circle_points(6);
        let mut clean_scratch = SweepScratch::new();
        let clean: Vec<TransferResponse> =
            points.iter().map(|&s| plan.eval_at(s, &mut clean_scratch).unwrap()).collect();

        let _guard = faults::install(
            faults::FaultPlan::new().fault_variant(7, faults::FaultKind::ReplayZeroPivot),
        );
        let _scope = faults::FaultScope::variant(7);
        let mut scratch = SweepScratch::new();
        for (k, &s) in points.iter().enumerate() {
            let r = plan.eval_at(s, &mut scratch).unwrap();
            let rel = (r.response - clean[k].response).abs() / clean[k].response.abs();
            assert!(rel < 1e-9, "recovered point {k} drifted: rel {rel:.2e}");
        }
        let stats = scratch.stats();
        assert_eq!(stats.refactor_hits, 0, "every replay was injected dead: {stats:?}");
        assert_eq!(stats.recovered_fresh, points.len() as u64, "{stats:?}");
        assert_eq!(stats.recovered_reordered, 0, "{stats:?}");
        assert_eq!(stats.unrecoverable, 0, "{stats:?}");
    }

    #[test]
    fn ladder_rung2_rescues_via_alternate_ordering() {
        let sys = MnaSystem::new(&ua741()).unwrap();
        let plan = SweepPlan::new(&sys, Scale::new(1e9, 1e3), &spec()).unwrap();
        let points = circle_points(4);
        let mut clean_scratch = SweepScratch::new();
        let clean: Vec<TransferResponse> =
            points.iter().map(|&s| plan.eval_at(s, &mut clean_scratch).unwrap()).collect();

        let _guard = faults::install(
            faults::FaultPlan::new().fault_variant(3, faults::FaultKind::FreshSingular),
        );
        let _scope = faults::FaultScope::variant(3);
        let mut scratch = SweepScratch::new();
        for (k, &s) in points.iter().enumerate() {
            let r = plan.eval_at(s, &mut scratch).unwrap();
            let rel = (r.response - clean[k].response).abs() / clean[k].response.abs();
            assert!(rel < 1e-9, "reordered point {k} drifted: rel {rel:.2e}");
        }
        let stats = scratch.stats();
        assert_eq!(stats.recovered_reordered, points.len() as u64, "{stats:?}");
        assert_eq!(stats.recovered_fresh, 0, "{stats:?}");
        assert_eq!(stats.unrecoverable, 0, "{stats:?}");
    }

    #[test]
    fn exhausted_ladder_is_a_typed_per_point_failure() {
        let sys = MnaSystem::new(&ua741()).unwrap();
        let plan = SweepPlan::new(&sys, Scale::new(1e9, 1e3), &spec()).unwrap();
        let _guard =
            faults::install(faults::FaultPlan::new().fault_variant(5, faults::FaultKind::Singular));
        let _scope = faults::FaultScope::variant(5);
        let mut scratch = SweepScratch::new();
        let s = Complex::new(0.6, 0.8);
        match plan.eval_at(s, &mut scratch) {
            Err(MnaError::Unrecoverable { rung, .. }) => assert_eq!(rung, 3),
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
        // Determinant sampling reports the singular-matrix convention.
        assert_eq!(plan.eval_det(s, &mut scratch), ExtComplex::ZERO);
        let stats = scratch.stats();
        assert_eq!(stats.unrecoverable, 2, "{stats:?}");
        assert_eq!(stats.recovered_fresh + stats.recovered_reordered, 0, "{stats:?}");
    }

    /// A faulted lane in the batched path is masked — it takes the exact
    /// sequential ladder, bit for bit, accounting included — and never
    /// disturbs its neighbours.
    #[test]
    fn faulted_batch_lanes_match_sequential_ladder_bitwise() {
        let sys = MnaSystem::new(&ua741()).unwrap();
        let plan = SweepPlan::new(&sys, Scale::new(1e9, 1e3), &spec()).unwrap();
        let points = circle_points(4);
        let _guard = faults::install(
            faults::FaultPlan::new().fault_variant(2, faults::FaultKind::ReplayZeroPivot),
        );
        let _scope = faults::FaultScope::variant(2);
        let mut batch = SweepBatchScratch::new();
        let batched = plan.eval_batch(&points, &mut batch);
        let mut seq = SweepScratch::new();
        for (k, (&s, b)) in points.iter().zip(&batched).enumerate() {
            let r = plan.eval_at(s, &mut seq).unwrap();
            let b = b.as_ref().unwrap();
            assert_eq!(b.response.re.to_bits(), r.response.re.to_bits(), "lane {k}");
            assert_eq!(b.response.im.to_bits(), r.response.im.to_bits(), "lane {k}");
            assert_eq!(b.denominator, r.denominator, "lane {k}");
        }
        let bs = batch.stats();
        assert_eq!(bs.recovered_fresh, points.len() as u64, "{bs:?}");
        assert_eq!(bs, seq.stats(), "batched accounting must match sequential");
    }

    /// Injected GMRES stagnation turns the hybrid sweep into a pure
    /// direct-replay sweep — bit-identical to `eval_at` at every point.
    #[test]
    fn forced_stagnation_degrades_hybrid_to_direct_bitwise() {
        let c = refgen_circuit::library::random_rc_mesh(40, 64, 9);
        let sys = MnaSystem::new(&c).unwrap();
        let plan = SweepPlan::new(&sys, Scale::new(1e6, 1e3), &spec()).unwrap();
        // Adjacent points sit well inside the re-anchor radius, so a
        // healthy sweep would solve most of them iteratively.
        let points: Vec<Complex> = (0..60)
            .map(|k| {
                let theta = std::f64::consts::PI * (k as f64 + 0.4) / 60.0;
                Complex::new(theta.cos(), theta.sin())
            })
            .collect();
        let _guard = faults::install(faults::FaultPlan::new().stagnate_gmres());
        let _scope = faults::FaultScope::variant(0);
        let mut hybrid = HybridScratch::new();
        let mut direct = SweepScratch::new();
        for (k, &s) in points.iter().enumerate() {
            let h = plan.eval_at_iterative(s, &mut hybrid).unwrap();
            let d = plan.eval_at(s, &mut direct).unwrap();
            assert_eq!(h.re.to_bits(), d.response.re.to_bits(), "point {k}");
            assert_eq!(h.im.to_bits(), d.response.im.to_bits(), "point {k}");
        }
        let stats = hybrid.stats();
        assert_eq!(stats.iterative_points, 0, "no point may converge iteratively: {stats:?}");
        // Every point direct-anchors; every interior point (all but the
        // first) got there through the stagnation-fallback counter — the
        // same double entry a genuinely stagnated point records.
        assert_eq!(stats.anchors, points.len() as u64, "{stats:?}");
        assert_eq!(stats.fallbacks, points.len() as u64 - 1, "{stats:?}");
    }
}
