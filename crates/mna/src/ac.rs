//! AC small-signal analysis — the reproduction's "electrical simulator".
//!
//! The paper's Fig. 2 validates interpolated coefficients against a
//! commercial electrical simulator. What such a simulator does for `.AC` is
//! exactly this module: stamp the MNA matrix at `s = j·2πf`, LU-solve, and
//! record magnitude/phase — a code path completely independent of the
//! interpolation engine, which is what makes the comparison meaningful.

use crate::error::MnaError;
use crate::system::{MnaSystem, Scale};
use crate::transfer::TransferSpec;
use refgen_circuit::Circuit;
use refgen_numeric::Complex;

/// One point of an AC sweep.
#[derive(Clone, Copy, Debug)]
pub struct AcPoint {
    /// Frequency in hertz.
    pub freq_hz: f64,
    /// Complex response `H(j·2πf)`.
    pub response: Complex,
}

impl AcPoint {
    /// Floor returned by [`AcPoint::mag_db`] for zero (or NaN) magnitude
    /// responses. The quietest *representable* nonzero response is
    /// `20·log10(f64::MIN_POSITIVE) ≈ −6160 dB`, and deep-stopband
    /// responses of high-order filters are real data down there (a
    /// 30-section RC ladder passes −2000 dB), so the floor sits below the
    /// entire normal f64 range: only exact zeros, subnormal dust and NaN
    /// clamp. The value stays finite so Bode data remains plottable and
    /// comparable without `-inf`/NaN poisoning downstream arithmetic
    /// (max-error folds, CSV output).
    pub const MAG_DB_FLOOR: f64 = -6200.0;

    /// Magnitude in decibels, clamped to [`AcPoint::MAG_DB_FLOOR`].
    ///
    /// A transfer function with an exact transmission zero at the sampled
    /// frequency has `|H| = 0`, whose raw `20·log10` is `-inf`; a NaN
    /// response (overflowed solve) has no decibel value at all. Both map
    /// to the documented finite floor.
    pub fn mag_db(&self) -> f64 {
        // f64::max ignores a NaN argument, so this clamps -inf *and* NaN.
        (20.0 * self.response.abs().log10()).max(Self::MAG_DB_FLOOR)
    }

    /// Phase in degrees, in `(−180, 180]`.
    pub fn phase_deg(&self) -> f64 {
        self.response.arg().to_degrees()
    }
}

/// An AC analysis bound to a circuit and transfer spec.
///
/// ```
/// use refgen_circuit::library::rc_ladder;
/// use refgen_mna::{AcAnalysis, TransferSpec, log_space};
///
/// # fn main() -> Result<(), refgen_mna::MnaError> {
/// let circuit = rc_ladder(2, 1e3, 1e-9);
/// let ac = AcAnalysis::new(&circuit, TransferSpec::voltage_gain("VIN", "out"))?;
/// let pts = ac.sweep(&log_space(1.0, 1e8, 50))?;
/// assert!(pts[0].mag_db().abs() < 0.1); // flat at DC
/// assert!(pts.last().unwrap().mag_db() < -40.0); // rolls off
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct AcAnalysis {
    system: MnaSystem,
    spec: TransferSpec,
}

impl AcAnalysis {
    /// Compiles the circuit and binds the transfer spec.
    ///
    /// # Errors
    ///
    /// Propagates circuit validation failures.
    pub fn new(circuit: &Circuit, spec: TransferSpec) -> Result<Self, MnaError> {
        Ok(AcAnalysis { system: MnaSystem::new(circuit)?, spec })
    }

    /// The compiled MNA system.
    pub fn system(&self) -> &MnaSystem {
        &self.system
    }

    /// Evaluates the response at a single frequency (hertz).
    ///
    /// # Errors
    ///
    /// [`MnaError::Singular`] at frequencies where the matrix degenerates,
    /// plus spec-resolution errors.
    pub fn at(&self, freq_hz: f64) -> Result<AcPoint, MnaError> {
        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * freq_hz);
        let r = self.system.transfer(s, Scale::unit(), &self.spec)?;
        Ok(AcPoint { freq_hz, response: r.response })
    }

    /// Sweeps a frequency grid.
    ///
    /// # Errors
    ///
    /// Fails on the first singular frequency point.
    pub fn sweep(&self, freqs_hz: &[f64]) -> Result<Vec<AcPoint>, MnaError> {
        freqs_hz.iter().map(|&f| self.at(f)).collect()
    }

    /// Sweeps the grid of a parsed `.AC` card
    /// ([`refgen_circuit::AcCard`]) — the netlist-driven form of
    /// [`AcAnalysis::sweep`].
    ///
    /// # Errors
    ///
    /// As for [`AcAnalysis::sweep`].
    pub fn sweep_card(&self, card: &refgen_circuit::AcCard) -> Result<Vec<AcPoint>, MnaError> {
        self.sweep(&card.frequencies())
    }

    /// Sweeps a frequency grid through a [`SweepPlan`](crate::SweepPlan):
    /// one pivot search
    /// (the plan's probe factorization) and then pure numeric
    /// refactorization into a reused workspace per point — what production
    /// circuit simulators do. Any point where the recorded order hits an
    /// exact zero pivot falls back to a fresh Markowitz factorization whose
    /// order is **adopted** for the remaining points, so a mid-sweep
    /// numeric pattern change costs one pivot search, not one per
    /// remaining point.
    ///
    /// # Errors
    ///
    /// Fails on the first frequency where even a fresh factorization is
    /// singular, or on spec-resolution errors.
    pub fn sweep_fast(&self, freqs_hz: &[f64]) -> Result<Vec<AcPoint>, MnaError> {
        let plan = crate::sweep::SweepPlan::new(&self.system, Scale::unit(), &self.spec)?;
        let mut scratch = crate::sweep::SweepScratch::adopting();
        freqs_hz
            .iter()
            .map(|&f| {
                let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * f);
                let r = plan.eval_at(s, &mut scratch).map_err(|e| match e {
                    // Report the sweep frequency, not the raw complex s.
                    MnaError::Singular { .. } => MnaError::Singular { at: format!("{f} Hz") },
                    MnaError::Unrecoverable { step, rung, .. } => {
                        MnaError::Unrecoverable { at: format!("{f} Hz"), step, rung }
                    }
                    other => other,
                })?;
                Ok(AcPoint { freq_hz: f, response: r.response })
            })
            .collect()
    }

    /// Sweeps a frequency grid through the hybrid direct/iterative path
    /// ([`SweepPlan::eval_at_iterative`](crate::SweepPlan::eval_at_iterative)):
    /// exact compiled refactorization at sparse anchor frequencies,
    /// preconditioned GMRES at the points between them. On mesh-scale
    /// circuits (thousands of nodes) this trades the per-point elimination
    /// replay for a handful of matrix-vector products and
    /// back-substitutions; on small circuits it behaves like
    /// [`AcAnalysis::sweep_fast`] with extra bookkeeping. Any point where
    /// the iterative machinery stagnates or the compiled order dies is
    /// served directly — accuracy stays within the GMRES tolerance
    /// (default 1e-13 relative) of the direct answer.
    ///
    /// # Errors
    ///
    /// Fails on the first frequency where even a fresh factorization is
    /// singular, or on spec-resolution errors.
    pub fn sweep_hybrid(&self, freqs_hz: &[f64]) -> Result<Vec<AcPoint>, MnaError> {
        let plan = crate::sweep::SweepPlan::new(&self.system, Scale::unit(), &self.spec)?;
        let mut scratch = crate::sweep::HybridScratch::new();
        freqs_hz
            .iter()
            .map(|&f| {
                let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * f);
                let response = plan.eval_at_iterative(s, &mut scratch).map_err(|e| match e {
                    MnaError::Singular { .. } => MnaError::Singular { at: format!("{f} Hz") },
                    MnaError::Unrecoverable { step, rung, .. } => {
                        MnaError::Unrecoverable { at: format!("{f} Hz"), step, rung }
                    }
                    other => other,
                })?;
                Ok(AcPoint { freq_hz: f, response })
            })
            .collect()
    }
}

/// `n` logarithmically spaced frequencies from `start` to `stop` inclusive.
///
/// # Panics
///
/// Panics unless `start`, `stop` are positive, `start < stop`, `n ≥ 2`.
pub fn log_space(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(start > 0.0 && stop > start && n >= 2);
    let l0 = start.log10();
    let l1 = stop.log10();
    (0..n).map(|i| 10f64.powf(l0 + (l1 - l0) * (i as f64) / ((n - 1) as f64))).collect()
}

/// Unwraps a phase sequence (degrees) so it is continuous: whenever the
/// step between consecutive samples exceeds 180°, a ±360° correction is
/// accumulated. Used for Bode plots like the paper's Fig. 2, whose phase
/// runs from 0 down to −800°.
pub fn unwrap_phase(phases_deg: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(phases_deg.len());
    let mut offset = 0.0;
    for (i, &p) in phases_deg.iter().enumerate() {
        if i > 0 {
            let prev_raw = phases_deg[i - 1];
            let mut d = p - prev_raw;
            while d > 180.0 {
                d -= 360.0;
                offset -= 360.0;
            }
            while d < -180.0 {
                d += 360.0;
                offset += 360.0;
            }
        }
        out.push(p + offset);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use refgen_circuit::library::{rc_ladder, sallen_key_lowpass, tow_thomas_biquad, ua741};

    #[test]
    fn log_space_endpoints() {
        let f = log_space(1.0, 1e6, 7);
        assert_eq!(f.len(), 7);
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[6] - 1e6).abs() < 1e-6);
        assert!((f[3] - 1e3).abs() < 1e-9);
    }

    #[test]
    fn mag_db_clamps_zero_and_nan_to_floor() {
        let zero = AcPoint { freq_hz: 1.0, response: Complex::ZERO };
        assert_eq!(zero.mag_db(), AcPoint::MAG_DB_FLOOR);
        assert!(zero.mag_db().is_finite());
        let nan = AcPoint { freq_hz: 1.0, response: Complex::new(f64::NAN, 0.0) };
        assert_eq!(nan.mag_db(), AcPoint::MAG_DB_FLOOR);
        // Subnormal dust below the floor clamps too…
        let dust = AcPoint { freq_hz: 1.0, response: Complex::new(1e-320, 0.0) };
        assert_eq!(dust.mag_db(), AcPoint::MAG_DB_FLOOR);
        // …while every normal-range magnitude passes through untouched,
        // including legitimate deep-stopband data.
        let unity = AcPoint { freq_hz: 1.0, response: Complex::ONE };
        assert!(unity.mag_db().abs() < 1e-12);
        let small = AcPoint { freq_hz: 1.0, response: Complex::new(1e-3, 0.0) };
        assert!((small.mag_db() + 60.0).abs() < 1e-9);
        let stopband = AcPoint { freq_hz: 1.0, response: Complex::new(1e-200, 0.0) };
        assert!((stopband.mag_db() + 4000.0).abs() < 1e-6);
    }

    #[test]
    fn rc_pole_location() {
        let c = rc_ladder(1, 1e3, 1e-9);
        let ac = AcAnalysis::new(&c, TransferSpec::voltage_gain("VIN", "out")).unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let p = ac.at(f0).unwrap();
        assert!((p.mag_db() + 3.0103).abs() < 0.01);
        assert!((p.phase_deg() + 45.0).abs() < 0.01);
    }

    #[test]
    fn sweep_card_matches_explicit_grid() {
        use refgen_circuit::{AcCard, SweepGrid};
        let c = rc_ladder(2, 1e3, 1e-9);
        let ac = AcAnalysis::new(&c, TransferSpec::voltage_gain("VIN", "out")).unwrap();
        let card = AcCard { grid: SweepGrid::Decade, points: 5, fstart_hz: 1e3, fstop_hz: 1e6 };
        let by_card = ac.sweep_card(&card).unwrap();
        let by_grid = ac.sweep(&card.frequencies()).unwrap();
        assert_eq!(by_card.len(), by_grid.len());
        for (a, b) in by_card.iter().zip(&by_grid) {
            assert_eq!(a.freq_hz, b.freq_hz);
            assert_eq!(a.response, b.response);
        }
    }

    #[test]
    fn sallen_key_peaking() {
        // Q = 5 gives ≈ 20·log10(5) = 14 dB of peaking near f0.
        let c = sallen_key_lowpass(10e3, 5.0);
        let ac = AcAnalysis::new(&c, TransferSpec::voltage_gain("VIN", "out")).unwrap();
        let peak = ac.at(10e3).unwrap().mag_db();
        assert!((peak - 14.0).abs() < 0.3, "peak {peak}");
        let dc = ac.at(1.0).unwrap().mag_db();
        assert!(dc.abs() < 0.01);
    }

    #[test]
    fn biquad_bandpass_resonance() {
        let c = tow_thomas_biquad(10e3, 5.0, 1e5);
        let ac = AcAnalysis::new(&c, TransferSpec::voltage_gain("VIN", "out")).unwrap();
        let at_f0 = ac.at(10e3).unwrap().mag_db();
        let below = ac.at(1e3).unwrap().mag_db();
        let above = ac.at(100e3).unwrap().mag_db();
        assert!(at_f0 > below + 10.0, "f0 {at_f0} below {below}");
        assert!(at_f0 > above + 10.0, "f0 {at_f0} above {above}");
    }

    #[test]
    fn ua741_open_loop_shape() {
        let c = ua741();
        let ac = AcAnalysis::new(&c, TransferSpec::voltage_gain("VIN", "out")).unwrap();
        let dc = ac.at(0.1).unwrap().mag_db();
        // Open-loop DC gain of a 741-class opamp: roughly 90–115 dB.
        assert!(dc > 80.0 && dc < 130.0, "dc gain {dc} dB");
        // Dominant pole: gain falls by >15 dB from 0.1 Hz to 100 Hz.
        let g100 = ac.at(100.0).unwrap().mag_db();
        assert!(dc - g100 > 15.0, "dc {dc} vs 100 Hz {g100}");
        // Unity-gain crossover in the 0.1–10 MHz region.
        let g_100k = ac.at(1e5).unwrap().mag_db();
        let g_10m = ac.at(1e7).unwrap().mag_db();
        assert!(g_100k > 0.0 && g_10m < 0.0, "crossover between 0.1 and 10 MHz");
    }

    #[test]
    fn sweep_fast_matches_sweep() {
        let c = ua741();
        let ac = AcAnalysis::new(&c, TransferSpec::voltage_gain("VIN", "out")).unwrap();
        let freqs = log_space(1.0, 1e8, 40);
        let slow = ac.sweep(&freqs).unwrap();
        let fast = ac.sweep_fast(&freqs).unwrap();
        for (a, b) in slow.iter().zip(&fast) {
            let rel = (a.response - b.response).abs() / a.response.abs();
            assert!(rel < 1e-9, "at {} Hz: rel {rel:.2e}", a.freq_hz);
        }
    }

    #[test]
    fn sweep_fast_handles_differential_output() {
        let c = rc_ladder(4, 1e3, 1e-9);
        let ac = AcAnalysis::new(&c, TransferSpec::differential_gain("VIN", "out", "l1")).unwrap();
        let freqs = log_space(1e2, 1e8, 20);
        let slow = ac.sweep(&freqs).unwrap();
        let fast = ac.sweep_fast(&freqs).unwrap();
        for (a, b) in slow.iter().zip(&fast) {
            assert!((a.response - b.response).abs() < 1e-12 + 1e-9 * a.response.abs());
        }
    }

    #[test]
    fn sweep_hybrid_matches_sweep() {
        let c = ua741();
        let ac = AcAnalysis::new(&c, TransferSpec::voltage_gain("VIN", "out")).unwrap();
        let freqs = log_space(1.0, 1e8, 60);
        let slow = ac.sweep(&freqs).unwrap();
        let hybrid = ac.sweep_hybrid(&freqs).unwrap();
        for (a, b) in slow.iter().zip(&hybrid) {
            let rel = (a.response - b.response).abs() / a.response.abs();
            assert!(rel < 1e-9, "at {} Hz: rel {rel:.2e}", a.freq_hz);
        }
    }

    #[test]
    fn sweep_hybrid_deterministic() {
        let c = rc_ladder(6, 1e3, 1e-9);
        let ac = AcAnalysis::new(&c, TransferSpec::voltage_gain("VIN", "out")).unwrap();
        let freqs = log_space(1e2, 1e7, 35);
        let a = ac.sweep_hybrid(&freqs).unwrap();
        let b = ac.sweep_hybrid(&freqs).unwrap();
        for (x, y) in a.iter().zip(&b) {
            // Bit-identical: the hybrid trace is a pure function of the
            // point sequence fed to a fresh scratch.
            assert_eq!(x.response.re.to_bits(), y.response.re.to_bits());
            assert_eq!(x.response.im.to_bits(), y.response.im.to_bits());
        }
    }

    /// Injected NaN stamps corrupt chosen sweep points; the hybrid path
    /// must degrade exactly like the direct path, per trace: GMRES cannot
    /// converge on a NaN operator, so the poisoned point falls back to a
    /// direct replay and reports the same non-finite response the direct
    /// sweep does, while every clean point stays at direct-LU distance.
    #[test]
    fn hybrid_nan_stamps_keep_parity_with_direct_sweep() {
        use crate::faults;
        let c = ua741();
        let ac = AcAnalysis::new(&c, TransferSpec::voltage_gain("VIN", "out")).unwrap();
        let freqs = log_space(10.0, 1e7, 30);
        // Poison two interior points (one of them deep in the dense region
        // where the hybrid path iterates), addressed by the exact `s` the
        // sweeps evaluate: s = j·2πf.
        let poisoned = [7usize, 19usize];
        let mut plan = faults::FaultPlan::new();
        for &k in &poisoned {
            plan = plan.nan_stamp_at(Complex::new(0.0, 2.0 * std::f64::consts::PI * freqs[k]));
        }
        let _guard = faults::install(plan);
        let _scope = faults::FaultScope::variant(0);
        let direct = ac.sweep_fast(&freqs).unwrap();
        let hybrid = ac.sweep_hybrid(&freqs).unwrap();
        for (k, (d, h)) in direct.iter().zip(&hybrid).enumerate() {
            let d_finite = d.response.re.is_finite() && d.response.im.is_finite();
            let h_finite = h.response.re.is_finite() && h.response.im.is_finite();
            assert_eq!(d_finite, h_finite, "finiteness parity at point {k} ({} Hz)", d.freq_hz);
            if poisoned.contains(&k) {
                assert!(!d_finite, "injected NaN stamp must poison point {k}");
            } else {
                assert!(d_finite, "clean point {k} must stay finite");
                let rel = (d.response - h.response).abs() / d.response.abs();
                assert!(rel < 1e-9, "clean point {k}: rel {rel:.2e}");
            }
        }
    }

    /// Forced GMRES stagnation must never change a hybrid sweep's output —
    /// every point takes the direct-replay fallback, bit-identical to
    /// `sweep_fast`.
    #[test]
    fn hybrid_forced_stagnation_falls_back_to_direct_bitwise() {
        use crate::faults;
        let c = rc_ladder(6, 1e3, 1e-9);
        let ac = AcAnalysis::new(&c, TransferSpec::voltage_gain("VIN", "out")).unwrap();
        let freqs = log_space(1e2, 1e7, 35);
        let _guard = faults::install(faults::FaultPlan::new().stagnate_gmres());
        let _scope = faults::FaultScope::variant(0);
        let direct = ac.sweep_fast(&freqs).unwrap();
        let hybrid = ac.sweep_hybrid(&freqs).unwrap();
        for (d, h) in direct.iter().zip(&hybrid) {
            assert_eq!(d.response.re.to_bits(), h.response.re.to_bits(), "at {} Hz", d.freq_hz);
            assert_eq!(d.response.im.to_bits(), h.response.im.to_bits(), "at {} Hz", d.freq_hz);
        }
    }

    #[test]
    fn unwrap_phase_continuity() {
        let raw = vec![170.0, -170.0, -150.0, 150.0];
        let un = unwrap_phase(&raw);
        assert_eq!(un[0], 170.0);
        assert!((un[1] - 190.0).abs() < 1e-12);
        assert!((un[2] - 210.0).abs() < 1e-12);
        // Raw step +300 is really −60: continues from 210 down to 150.
        assert!((un[3] - 150.0).abs() < 1e-12);
        // Every unwrapped step is now ≤ 180° in magnitude.
        for w in un.windows(2) {
            assert!((w[1] - w[0]).abs() <= 180.0);
        }
    }

    #[test]
    #[should_panic]
    fn log_space_bad_args() {
        log_space(10.0, 1.0, 5);
    }
}
