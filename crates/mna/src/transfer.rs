//! Transfer-function specification and evaluation.
//!
//! The paper computes, at each interpolation point `s_k` (eqs. 8–10):
//!
//! * `H(s_k)` from the LU solve of `Y·X = E`,
//! * `D(s_k) = det(Y)`,
//! * `N(s_k) = H(s_k)·D(s_k)`,
//!
//! sharing one factorization. [`MnaSystem::transfer`] implements exactly
//! that.

use crate::error::MnaError;
use crate::system::{MnaSystem, Scale};
use refgen_circuit::ElementKind;
use refgen_numeric::{Complex, ExtComplex};

/// What to observe as the transfer-function output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OutputSpec {
    /// Voltage at a named node (w.r.t. ground).
    Node(String),
    /// Differential voltage `v(p) − v(m)`.
    Differential(String, String),
}

/// A transfer-function specification: which source excites the circuit and
/// what is observed.
///
/// The response is normalized by the source amplitude, so for a voltage
/// source input this is a voltage gain and for a current source input a
/// transimpedance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransferSpec {
    /// Input: an independent source name, or a node name to which exactly
    /// one independent source is attached.
    pub input: String,
    /// Observed output.
    pub output: OutputSpec,
}

impl TransferSpec {
    /// Voltage gain `v(output)/input`, with `input` a source name (`"VIN"`)
    /// or the node it drives (`"in"`).
    pub fn voltage_gain(input: &str, output: &str) -> Self {
        TransferSpec { input: input.to_string(), output: OutputSpec::Node(output.to_string()) }
    }

    /// Differential output `[v(p) − v(m)]/input`.
    pub fn differential_gain(input: &str, p: &str, m: &str) -> Self {
        TransferSpec {
            input: input.to_string(),
            output: OutputSpec::Differential(p.to_string(), m.to_string()),
        }
    }
}

/// A parsed `.TF` card maps directly onto a transfer-function
/// specification: the card's source excites the circuit, its `V(…)`
/// output is observed.
impl From<&refgen_circuit::TfCard> for TransferSpec {
    fn from(card: &refgen_circuit::TfCard) -> Self {
        use refgen_circuit::TfOutput;
        let output = match &card.output {
            TfOutput::Node(n) => OutputSpec::Node(n.clone()),
            TfOutput::Differential(p, m) => OutputSpec::Differential(p.clone(), m.clone()),
        };
        TransferSpec { input: card.source.clone(), output }
    }
}

/// The result of evaluating a transfer function at one complex frequency.
#[derive(Clone, Copy, Debug)]
pub struct TransferResponse {
    /// `H(s)` — output normalized by source amplitude.
    pub response: Complex,
    /// `D(s) = det(Y_MNA(s))`, extended range.
    pub denominator: ExtComplex,
    /// `N(s) = H(s)·D(s)`, extended range.
    pub numerator: ExtComplex,
}

impl MnaSystem {
    /// Resolves a [`TransferSpec`] input to `(source element name,
    /// amplitude)`.
    ///
    /// # Errors
    ///
    /// [`MnaError::NoSuchSource`] when nothing matches,
    /// [`MnaError::ZeroAmplitudeSource`] when the matched source has zero
    /// AC amplitude.
    pub fn resolve_source(&self, input: &str) -> Result<(String, f64), MnaError> {
        // Direct element-name match first.
        if let Some(el) = self.circuit().element(input) {
            let amp = match el.kind {
                ElementKind::VSource { ac } => ac,
                ElementKind::ISource { ac } => ac,
                _ => return Err(MnaError::NoSuchSource { name: input.to_string() }),
            };
            if amp == 0.0 {
                return Err(MnaError::ZeroAmplitudeSource { name: el.name.clone() });
            }
            return Ok((el.name.clone(), amp));
        }
        // Otherwise: a node name with exactly one attached source.
        let node = self
            .circuit()
            .find_node(input)
            .ok_or_else(|| MnaError::NoSuchSource { name: input.to_string() })?;
        let mut matches = self
            .circuit()
            .elements()
            .iter()
            .filter(|el| el.is_source() && (el.nodes.0 == node || el.nodes.1 == node));
        let found =
            matches.next().ok_or_else(|| MnaError::NoSuchSource { name: input.to_string() })?;
        if matches.next().is_some() {
            return Err(MnaError::NoSuchSource { name: format!("{input} (ambiguous)") });
        }
        let amp = match found.kind {
            ElementKind::VSource { ac } | ElementKind::ISource { ac } => ac,
            _ => unreachable!("filtered to sources"),
        };
        if amp == 0.0 {
            return Err(MnaError::ZeroAmplitudeSource { name: found.name.clone() });
        }
        Ok((found.name.clone(), amp))
    }

    /// Evaluates the transfer function at complex frequency `s` under the
    /// given scaling, returning `H`, `D`, and `N = H·D` from a single LU
    /// factorization (paper eqs. 8–10).
    ///
    /// # Errors
    ///
    /// [`MnaError::Singular`] if the matrix cannot be factored, plus the
    /// resolution errors of [`MnaSystem::resolve_source`] and
    /// [`MnaError::NoSuchNode`] for unknown output nodes.
    pub fn transfer(
        &self,
        s: Complex,
        scale: Scale,
        spec: &TransferSpec,
    ) -> Result<TransferResponse, MnaError> {
        let (_source, amp) = self.resolve_source(&spec.input)?;
        let lu = self.factor(s, scale)?;
        let x = lu.solve(&self.rhs());
        let out = self.output_voltage(&x, &spec.output)?;
        let response = out / amp;
        let denominator = lu.det();
        let numerator = denominator * response;
        Ok(TransferResponse { response, denominator, numerator })
    }

    fn output_voltage(&self, x: &[Complex], out: &OutputSpec) -> Result<Complex, MnaError> {
        let node_v = |name: &str| -> Result<Complex, MnaError> {
            let id = self
                .circuit()
                .find_node(name)
                .ok_or_else(|| MnaError::NoSuchNode { name: name.to_string() })?;
            Ok(match self.node_row(id) {
                Some(r) => x[r],
                None => Complex::ZERO, // ground
            })
        };
        match out {
            OutputSpec::Node(n) => node_v(n),
            OutputSpec::Differential(p, m) => Ok(node_v(p)? - node_v(m)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refgen_circuit::library::rc_ladder;
    use refgen_circuit::Circuit;

    #[test]
    fn rc_first_order_response() {
        let c = rc_ladder(1, 1e3, 1e-9);
        let sys = MnaSystem::new(&c).unwrap();
        let spec = TransferSpec::voltage_gain("VIN", "out");
        let w0 = 1.0 / (1e3 * 1e-9);
        // H(jω0) = 1/(1+j) → magnitude 1/√2, phase −45°.
        let r = sys.transfer(Complex::new(0.0, w0), Scale::unit(), &spec).unwrap();
        assert!((r.response.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!((r.response.arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-9);
    }

    #[test]
    fn numerator_identity() {
        let c = rc_ladder(3, 2e3, 0.5e-9);
        let sys = MnaSystem::new(&c).unwrap();
        let spec = TransferSpec::voltage_gain("VIN", "out");
        let s = Complex::new(1e4, 7e5);
        let r = sys.transfer(s, Scale::unit(), &spec).unwrap();
        let expect = r.denominator * r.response;
        let rel = ((r.numerator - expect).norm() / expect.norm()).to_f64();
        assert!(rel < 1e-14);
    }

    #[test]
    fn input_by_node_name() {
        let c = rc_ladder(2, 1e3, 1e-9);
        let sys = MnaSystem::new(&c).unwrap();
        let by_source = TransferSpec::voltage_gain("VIN", "out");
        let by_node = TransferSpec::voltage_gain("in", "out");
        let s = Complex::new(0.0, 1e5);
        let a = sys.transfer(s, Scale::unit(), &by_source).unwrap();
        let b = sys.transfer(s, Scale::unit(), &by_node).unwrap();
        assert!((a.response - b.response).abs() < 1e-15);
    }

    #[test]
    fn amplitude_normalization() {
        // A 2 V source must give the same H as a 1 V source.
        let mut c = Circuit::new();
        c.add_vsource("V1", "in", "0", 2.0).unwrap();
        c.add_resistor("R1", "in", "out", 1e3).unwrap();
        c.add_resistor("R2", "out", "0", 1e3).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let spec = TransferSpec::voltage_gain("V1", "out");
        let r = sys.transfer(Complex::ZERO, Scale::unit(), &spec).unwrap();
        assert!((r.response - Complex::real(0.5)).abs() < 1e-12);
    }

    #[test]
    fn differential_output() {
        let mut c = Circuit::new();
        c.add_vsource("V1", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "p", 1e3).unwrap();
        c.add_resistor("R2", "p", "0", 1e3).unwrap();
        c.add_resistor("R3", "in", "m", 1e3).unwrap();
        c.add_resistor("R4", "m", "0", 3e3).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let spec = TransferSpec::differential_gain("V1", "p", "m");
        let r = sys.transfer(Complex::ZERO, Scale::unit(), &spec).unwrap();
        // v(p) = 0.5, v(m) = 0.75 → diff = −0.25.
        assert!((r.response - Complex::real(-0.25)).abs() < 1e-12);
    }

    #[test]
    fn transimpedance_with_current_input() {
        let mut c = Circuit::new();
        c.add_isource("IIN", "0", "n", 1e-3).unwrap();
        c.add_resistor("R1", "n", "0", 2e3).unwrap();
        c.add_capacitor("C1", "n", "0", 1e-12).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let spec = TransferSpec::voltage_gain("IIN", "n");
        let r = sys.transfer(Complex::ZERO, Scale::unit(), &spec).unwrap();
        // v(n)/i = R = 2 kΩ.
        assert!((r.response - Complex::real(2e3)).abs() < 1e-9);
    }

    #[test]
    fn error_cases() {
        let c = rc_ladder(1, 1e3, 1e-9);
        let sys = MnaSystem::new(&c).unwrap();
        let bad_src = TransferSpec::voltage_gain("VMISSING", "out");
        assert!(matches!(
            sys.transfer(Complex::ZERO, Scale::unit(), &bad_src),
            Err(MnaError::NoSuchSource { .. })
        ));
        let bad_out = TransferSpec::voltage_gain("VIN", "nowhere");
        assert!(matches!(
            sys.transfer(Complex::ZERO, Scale::unit(), &bad_out),
            Err(MnaError::NoSuchNode { .. })
        ));
        // R1 is not a source.
        let not_src = TransferSpec::voltage_gain("R1", "out");
        assert!(matches!(
            sys.transfer(Complex::ZERO, Scale::unit(), &not_src),
            Err(MnaError::NoSuchSource { .. })
        ));
    }

    #[test]
    fn tf_card_converts_to_spec() {
        use refgen_circuit::{TfCard, TfOutput};
        let card = TfCard { output: TfOutput::Node("out".into()), source: "VIN".into() };
        assert_eq!(TransferSpec::from(&card), TransferSpec::voltage_gain("VIN", "out"));
        let card =
            TfCard { output: TfOutput::Differential("p".into(), "m".into()), source: "I1".into() };
        assert_eq!(TransferSpec::from(&card), TransferSpec::differential_gain("I1", "p", "m"));
    }

    #[test]
    fn zero_amplitude_rejected() {
        let mut c = Circuit::new();
        c.add_vsource("V1", "in", "0", 0.0).unwrap();
        c.add_resistor("R1", "in", "out", 1e3).unwrap();
        c.add_resistor("R2", "out", "0", 1e3).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let spec = TransferSpec::voltage_gain("V1", "out");
        assert!(matches!(
            sys.transfer(Complex::ZERO, Scale::unit(), &spec),
            Err(MnaError::ZeroAmplitudeSource { .. })
        ));
    }
}
