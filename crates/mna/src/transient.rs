//! Companion-model time stepping on the compiled plan/execute seam.
//!
//! The classical transient recipe discretizes each reactive element into a
//! *companion model* — a conductance in the matrix plus a history current
//! on the right-hand side — and solves one resistive network per time
//! step. The load-bearing observation here is that for a **fixed step**
//! `h` the companion conductances are exactly the existing affine pattern
//! of [`SweepPlan`](crate::SweepPlan) evaluated at one *real* point:
//!
//! ```text
//!   A_companion  =  K₀ + γ·K₁        γ = 1/h   (backward Euler)
//!                                    γ = 2/h   (trapezoidal)
//! ```
//!
//! because every capacitor stamps `s·C` and every inductor branch stamps
//! `−s·L` — substituting `s = γ` turns them into the `C/h` (resp. `2C/h`)
//! conductances and `−L/h` (resp. `−2L/h`) branch impedances of the
//! textbook companion models. The whole frequency-domain plan machinery
//! therefore transfers unchanged, and a run compiles into three phases,
//! mirroring `refgen_sparse::symbolic`:
//!
//! ```text
//!   phase 1 (per (system, Δt, method)): pattern + probe + compile
//!       affine pattern K₀ + s·K₁  ──s=γ──▶  companion matrix values
//!       one probe factorization at γ       ──▶  recorded pivot order
//!       one symbolic compilation           ──▶  FactorProgram
//!
//!   phase 2 (once per run): numeric factorization
//!       stamp values into program slots, replay the instruction stream
//!       (the matrix is step-invariant: this happens exactly once)
//!
//!   phase 3 (per step): history stamping + back-substitution
//!       waveform sources + companion history currents ──▶ RHS
//!       one triangular solve through the compiled kernel
//!       state update (capacitor currents, previous solution)
//! ```
//!
//! Phase 3 performs **zero allocation** and **zero pivot searches** — the
//! same contract [`SweepPlan`](crate::SweepPlan) gives the unit-circle
//! samplers, witnessed by [`TransientStats`]: a healthy N-step run shows
//! `refactor_hits = 1` and `compiled_hits = N`.
//!
//! Companion formulas (node pair `p,m`, step `n → n+1`):
//!
//! * capacitor, BE: `i = (C/h)·v_{n+1} − (C/h)·v_n`; history current
//!   `(C/h)·v_n` enters node `p`, leaves node `m`.
//! * capacitor, TR: `i_{n+1} = (2C/h)(v_{n+1} − v_n) − i_n`; history
//!   current `(2C/h)·v_n + i_n`.
//! * inductor, BE: branch row `v_{n+1} − (L/h)·i_{n+1} = −(L/h)·i_n`.
//! * inductor, TR: branch row
//!   `v_{n+1} − (2L/h)·i_{n+1} = −v_n − (2L/h)·i_n`.
//! * V source: branch RHS is the waveform value at `t_{n+1}`; I source:
//!   the waveform value leaves `p` and enters `m` (matching
//!   [`MnaSystem::rhs`]).
//!
//! Because the step is uniform and the arithmetic is a fixed sequence of
//! f64 operations on one thread, a run's samples are a pure function of
//! `(plan, initial state)` — bit-identical across thread counts and
//! executors by construction.

use crate::error::MnaError;
use crate::sweep::{affine_pattern, compile_program, probe_order_at};
use crate::system::{MnaSystem, Scale};
use refgen_circuit::{ElementKind, Waveform};
use refgen_numeric::Complex;
use refgen_sparse::{FactorProgram, LuWorkspace, PivotOrder, ProgramScratch, SparseLu, Triplets};
use std::sync::Arc;

/// The implicit integration rule a [`TransientPlan`] discretizes with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegrationMethod {
    /// Backward Euler: L-stable, first order, damps everything.
    BackwardEuler,
    /// Trapezoidal rule: A-stable, second order, energy-preserving.
    Trapezoidal,
}

impl IntegrationMethod {
    /// The companion-point multiplier `γ` such that the companion matrix
    /// is `K₀ + γ·K₁` (see the [module docs](self)).
    pub fn gamma(self, dt: f64) -> f64 {
        match self {
            IntegrationMethod::BackwardEuler => 1.0 / dt,
            IntegrationMethod::Trapezoidal => 2.0 / dt,
        }
    }

    /// Asymptotic convergence order: the global error of a stable run
    /// shrinks as `O(h^order)` under step halving.
    pub fn order(self) -> u32 {
        match self {
            IntegrationMethod::BackwardEuler => 1,
            IntegrationMethod::Trapezoidal => 2,
        }
    }

    /// Short display label (`"BE"` / `"TR"`).
    pub fn label(self) -> &'static str {
        match self {
            IntegrationMethod::BackwardEuler => "BE",
            IntegrationMethod::Trapezoidal => "TR",
        }
    }
}

/// Counters a [`TransientScratch`] accumulates across steps — the proof
/// obligation that stepping stays on the compiled path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransientStats {
    /// Time steps solved.
    pub steps: u64,
    /// Numeric factorizations that replayed a recorded pivot order. The
    /// companion matrix is step-invariant, so a healthy run pays exactly
    /// **one**, at the first step.
    pub refactor_hits: u64,
    /// Full Markowitz factorizations (no usable order, or the recorded
    /// order hit an exact zero pivot).
    pub fresh_factorizations: u64,
    /// Steps whose solve ran through the compiled
    /// [`FactorProgram`] — flat back-substitution, no allocation.
    pub compiled_hits: u64,
}

/// Integration state between steps: the solution vector at `t_n`, the
/// per-capacitor companion currents the trapezoidal rule carries, and the
/// priming flag (see [`TransientPlan::step`]).
#[derive(Clone, Debug)]
pub struct TransientState {
    x: Vec<Complex>,
    cap_currents: Vec<f64>,
    primed: bool,
}

impl TransientState {
    /// The MNA solution vector at the state's time point (node voltages
    /// first, then branch currents — [`MnaSystem`]'s unknown order).
    pub fn solution(&self) -> &[Complex] {
        &self.x
    }
}

/// Where the run's one numeric factorization lives.
#[derive(Debug, Default)]
enum StepFactor {
    /// Not factored yet (before the first step).
    #[default]
    Pending,
    /// In the program scratch (compiled replay — the expected path).
    Program,
    /// In the LU workspace (pivot-order replay without a program).
    Workspace,
    /// A fresh Markowitz factorization (fallback path).
    Fresh(SparseLu),
}

/// Per-run mutable state: reused solve buffers, the cached numeric
/// factorization, and [`TransientStats`] counters. Use a fresh scratch per
/// `(plan, run)` — the cached factorization belongs to the first plan
/// stepped with it (call [`TransientScratch::reset`] to re-arm).
#[derive(Debug, Default)]
pub struct TransientScratch {
    prog: ProgramScratch,
    ws: LuWorkspace,
    triplets: Triplets,
    rhs: Vec<Complex>,
    x_next: Vec<Complex>,
    factored: StepFactor,
    stats: TransientStats,
}

impl TransientScratch {
    /// A fresh scratch.
    pub fn new() -> Self {
        TransientScratch::default()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> TransientStats {
        self.stats
    }

    /// Drops the cached factorization and counters (buffers are kept), so
    /// the scratch can serve a different plan.
    pub fn reset(&mut self) {
        self.factored = StepFactor::Pending;
        self.stats = TransientStats::default();
    }
}

/// A capacitor's companion stamp: its node rows and value.
#[derive(Clone, Copy, Debug)]
struct CompanionCap {
    rp: Option<usize>,
    rm: Option<usize>,
    farads: f64,
}

/// An inductor's companion stamp: its branch row, node rows, and value.
#[derive(Clone, Copy, Debug)]
struct CompanionInd {
    row: usize,
    rp: Option<usize>,
    rm: Option<usize>,
    henries: f64,
}

/// A compiled time-stepping plan for one `(MnaSystem, Δt, method)` — see
/// the [module docs](self) for the three-phase architecture.
#[derive(Clone, Debug)]
pub struct TransientPlan {
    dim: usize,
    dt: f64,
    method: IntegrationMethod,
    gamma: f64,
    pattern: Vec<(usize, usize, Complex, Complex)>,
    /// Precomputed companion matrix values `K₀ + γ·K₁`, aligned with
    /// `pattern`.
    values: Vec<Complex>,
    order: Option<PivotOrder>,
    program: Option<Arc<FactorProgram>>,
    caps: Vec<CompanionCap>,
    inds: Vec<CompanionInd>,
    /// Independent V sources: branch row + time-domain drive.
    vsrcs: Vec<(usize, Waveform)>,
    /// Independent I sources: node rows + time-domain drive.
    isrcs: Vec<(Option<usize>, Option<usize>, Waveform)>,
}

impl TransientPlan {
    /// Builds a plan: affine pattern at [`Scale::unit`], one probe
    /// factorization at the real companion point `γ`, one symbolic
    /// compilation. Sources without an attached [`Waveform`] drive their
    /// AC amplitude as a constant.
    ///
    /// # Errors
    ///
    /// [`MnaError::InvalidTimeStep`] unless `dt` is positive and finite.
    pub fn new(
        sys: &MnaSystem,
        dt: f64,
        method: IntegrationMethod,
    ) -> Result<TransientPlan, MnaError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(MnaError::InvalidTimeStep { dt });
        }
        let (dim, pattern) = affine_pattern(sys, Scale::unit());
        let gamma = method.gamma(dt);
        let values = companion_values(&pattern, gamma);
        let order = probe_order_at(dim, &pattern, Complex::real(gamma));
        let program = order.as_ref().and_then(|o| compile_program(dim, &pattern, o)).map(Arc::new);

        let mut caps = Vec::new();
        let mut inds = Vec::new();
        let mut vsrcs = Vec::new();
        let mut isrcs = Vec::new();
        let circuit = sys.circuit();
        for el in circuit.elements() {
            let (p, m) = el.nodes;
            let (rp, rm) = (sys.node_row(p), sys.node_row(m));
            match &el.kind {
                ElementKind::Capacitor { farads } => {
                    caps.push(CompanionCap { rp, rm, farads: *farads });
                }
                ElementKind::Inductor { henries } => {
                    let row = sys
                        .branch_row(&el.name)
                        .ok_or_else(|| MnaError::NoSuchBranch { name: el.name.clone() })?;
                    inds.push(CompanionInd { row, rp, rm, henries: *henries });
                }
                ElementKind::VSource { ac } => {
                    let row = sys
                        .branch_row(&el.name)
                        .ok_or_else(|| MnaError::NoSuchBranch { name: el.name.clone() })?;
                    let wave =
                        circuit.waveform(&el.name).cloned().unwrap_or(Waveform::Dc { value: *ac });
                    vsrcs.push((row, wave));
                }
                ElementKind::ISource { ac } => {
                    let wave =
                        circuit.waveform(&el.name).cloned().unwrap_or(Waveform::Dc { value: *ac });
                    isrcs.push((rp, rm, wave));
                }
                _ => {}
            }
        }
        Ok(TransientPlan {
            dim,
            dt,
            method,
            gamma,
            pattern,
            values,
            order,
            program,
            caps,
            inds,
            vsrcs,
            isrcs,
        })
    }

    /// Re-plans the same system at a different step size, **sharing** the
    /// recorded pivot order and compiled program (symbolic analysis is
    /// value-independent; only the numeric `γ` changes). This is what
    /// makes a step-halving cross-check cost zero extra pivot searches and
    /// zero extra compilations.
    ///
    /// # Errors
    ///
    /// [`MnaError::InvalidTimeStep`] unless `dt` is positive and finite.
    pub fn with_dt(&self, dt: f64) -> Result<TransientPlan, MnaError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(MnaError::InvalidTimeStep { dt });
        }
        let gamma = self.method.gamma(dt);
        Ok(TransientPlan {
            dim: self.dim,
            dt,
            method: self.method,
            gamma,
            pattern: self.pattern.clone(),
            values: companion_values(&self.pattern, gamma),
            order: self.order.clone(),
            program: self.program.clone(),
            caps: self.caps.clone(),
            inds: self.inds.clone(),
            vsrcs: self.vsrcs.clone(),
            isrcs: self.isrcs.clone(),
        })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The fixed step size, seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The integration rule.
    pub fn method(&self) -> IntegrationMethod {
        self.method
    }

    /// The pivot order recorded by the probe at `γ` (`None` when the
    /// companion matrix is singular).
    pub fn order(&self) -> Option<&PivotOrder> {
        self.order.as_ref()
    }

    /// The compiled symbolic kernel ([`with_dt`](Self::with_dt) shares one
    /// by reference — compare with [`std::ptr::eq`]).
    pub fn program(&self) -> Option<&FactorProgram> {
        self.program.as_deref()
    }

    /// The initial condition at `t0`: a DC operating-point solve (`s = 0`)
    /// with every source at its waveform value at `t0`, zero capacitor
    /// currents. Falls back to the zero state when the DC matrix is
    /// singular (e.g. a node with no DC path).
    pub fn initial_state(&self, t0: f64) -> TransientState {
        let mut t = Triplets::new(self.dim);
        for &(r, c, k0, _) in &self.pattern {
            t.add(r, c, k0);
        }
        let mut rhs = vec![Complex::ZERO; self.dim];
        self.stamp_sources(t0, &mut rhs);
        let x = match SparseLu::factor(&t) {
            Ok(lu) => lu.solve(&rhs),
            Err(_) => vec![Complex::ZERO; self.dim],
        };
        TransientState {
            x,
            cap_currents: vec![0.0; self.caps.len()],
            // Backward Euler carries no companion current, so it needs no
            // priming; the trapezoidal rule primes on its first step.
            primed: self.method == IntegrationMethod::BackwardEuler,
        }
    }

    /// Source drives at time `t`, accumulated into `rhs` with
    /// [`MnaSystem::rhs`]'s sign convention.
    fn stamp_sources(&self, t: f64, rhs: &mut [Complex]) {
        for (row, wave) in &self.vsrcs {
            rhs[*row] += Complex::real(wave.eval(t));
        }
        for (rp, rm, wave) in &self.isrcs {
            let v = Complex::real(wave.eval(t));
            if let Some(r) = rp {
                rhs[*r] -= v;
            }
            if let Some(r) = rm {
                rhs[*r] += v;
            }
        }
    }

    /// Advances `state` from `t_next − dt` to `t_next`: stamp history and
    /// source RHS, solve through the cached factorization, update
    /// companion currents. The first step pays the run's one numeric
    /// factorization.
    ///
    /// A trapezoidal run **primes** its first step with two backward-Euler
    /// half-steps. The TR companion current `i₀` is inconsistent when a
    /// source jumps at `t₀` (an ideal pulse edge), which would pollute the
    /// whole run with an `O(h)` error; the classical fix costs nothing
    /// here because BE at `h/2` and TR at `h` share the companion point
    /// `γ = 2/h` — the primer replays the **same** factorization. The two
    /// half-steps have `O(h²)` local error, so second-order convergence is
    /// preserved (and [`TransientStats::compiled_hits`] reads `steps + 1`
    /// for a healthy TR run, `steps` for BE).
    ///
    /// # Errors
    ///
    /// [`MnaError::Singular`] when the companion matrix cannot be factored
    /// even by a fresh Markowitz pass.
    pub fn step(
        &self,
        t_next: f64,
        state: &mut TransientState,
        scratch: &mut TransientScratch,
    ) -> Result<(), MnaError> {
        if matches!(scratch.factored, StepFactor::Pending) {
            self.factor_into(scratch)?;
        }
        let trapezoidal = self.method == IntegrationMethod::Trapezoidal;
        if trapezoidal && !state.primed {
            // Two BE half-steps through the shared γ = 2/h factorization.
            self.solve_one(t_next - 0.5 * self.dt, false, state, scratch);
            self.solve_one(t_next, false, state, scratch);
            // Seed the TR companion currents from the last half-step:
            // i₁ = (2C/h)·(v₁ − v_½) is the BE capacitor current at t₁.
            for (k, cap) in self.caps.iter().enumerate() {
                let geq = self.gamma * cap.farads;
                let dv = vpm(&state.x, cap.rp, cap.rm) - vpm(&scratch.x_next, cap.rp, cap.rm);
                state.cap_currents[k] = geq * dv.re;
            }
            state.primed = true;
        } else {
            self.solve_one(t_next, trapezoidal, state, scratch);
            // After the swap, `scratch.x_next` holds the previous solution.
            for (k, cap) in self.caps.iter().enumerate() {
                let geq = self.gamma * cap.farads;
                let dv = vpm(&state.x, cap.rp, cap.rm) - vpm(&scratch.x_next, cap.rp, cap.rm);
                let prev = if trapezoidal { state.cap_currents[k] } else { 0.0 };
                state.cap_currents[k] = geq * dv.re - prev;
            }
        }
        scratch.stats.steps += 1;
        Ok(())
    }

    /// One linear solve: stamp sources at `t_eval` plus BE or TR history
    /// from `state`, solve through the cached factorization, and swap the
    /// new solution into `state.x` (the previous one lands in
    /// `scratch.x_next`).
    fn solve_one(
        &self,
        t_eval: f64,
        trapezoidal_hist: bool,
        state: &mut TransientState,
        scratch: &mut TransientScratch,
    ) {
        let gamma = self.gamma;
        scratch.rhs.clear();
        scratch.rhs.resize(self.dim, Complex::ZERO);
        self.stamp_sources(t_eval, &mut scratch.rhs);
        for (k, cap) in self.caps.iter().enumerate() {
            let geq = gamma * cap.farads;
            let mut hist = vpm(&state.x, cap.rp, cap.rm).scale(geq);
            if trapezoidal_hist {
                hist += Complex::real(state.cap_currents[k]);
            }
            if let Some(r) = cap.rp {
                scratch.rhs[r] += hist;
            }
            if let Some(r) = cap.rm {
                scratch.rhs[r] -= hist;
            }
        }
        for ind in &self.inds {
            let i_n = state.x[ind.row];
            let mut hist = -i_n.scale(gamma * ind.henries);
            if trapezoidal_hist {
                hist -= vpm(&state.x, ind.rp, ind.rm);
            }
            scratch.rhs[ind.row] += hist;
        }

        let TransientScratch { prog, ws, rhs, x_next, factored, stats, .. } = scratch;
        match factored {
            StepFactor::Program => {
                let program = self.program.as_deref().expect("program path implies a program");
                program.solve_into(prog, rhs, x_next);
                stats.compiled_hits += 1;
            }
            StepFactor::Workspace => {
                ws.solve_into(rhs, x_next);
            }
            StepFactor::Fresh(lu) => {
                *x_next = lu.solve(rhs);
            }
            StepFactor::Pending => unreachable!("step() factors before solving"),
        }
        std::mem::swap(&mut state.x, &mut scratch.x_next);
    }

    /// The run's one numeric factorization: compiled replay, then
    /// pivot-order replay, then fresh Markowitz.
    fn factor_into(&self, scratch: &mut TransientScratch) -> Result<(), MnaError> {
        if let Some(program) = self.program.as_deref() {
            if program.refactor_values(self.values.iter().copied(), &mut scratch.prog).is_ok() {
                scratch.stats.refactor_hits += 1;
                scratch.factored = StepFactor::Program;
                return Ok(());
            }
        }
        scratch.triplets.reset(self.dim);
        for (&(r, c, _, _), &v) in self.pattern.iter().zip(&self.values) {
            scratch.triplets.add(r, c, v);
        }
        if let Some(order) = self.order.as_ref() {
            if SparseLu::refactor_into(&scratch.triplets, order, &mut scratch.ws).is_ok() {
                scratch.stats.refactor_hits += 1;
                scratch.factored = StepFactor::Workspace;
                return Ok(());
            }
        }
        scratch.stats.fresh_factorizations += 1;
        let lu = SparseLu::factor(&scratch.triplets).map_err(|e| {
            MnaError::from_factor(
                e,
                format!("companion point γ = {:e} ({})", self.gamma, self.method.label()),
            )
        })?;
        scratch.factored = StepFactor::Fresh(lu);
        Ok(())
    }
}

/// `K₀ + γ·K₁` for every pattern entry.
fn companion_values(pattern: &[(usize, usize, Complex, Complex)], gamma: f64) -> Vec<Complex> {
    pattern.iter().map(|&(_, _, k0, k1)| k0 + k1.scale(gamma)).collect()
}

/// Branch voltage `v(rp) − v(rm)` with grounded terminals reading zero.
fn vpm(x: &[Complex], rp: Option<usize>, rm: Option<usize>) -> Complex {
    let v = |r: Option<usize>| r.map(|i| x[i]).unwrap_or(Complex::ZERO);
    v(rp) - v(rm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use refgen_circuit::library::rc_ladder;
    use refgen_circuit::Circuit;

    fn step_source() -> Waveform {
        Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: f64::INFINITY,
            period: f64::INFINITY,
        }
    }

    fn rc_with_step() -> (Circuit, f64) {
        let mut c = rc_ladder(1, 1e3, 1e-9);
        c.set_waveform("VIN", step_source()).unwrap();
        (c, 1e3 * 1e-9)
    }

    fn run(
        plan: &TransientPlan,
        sys: &MnaSystem,
        node: &str,
        steps: usize,
    ) -> (Vec<f64>, TransientStats) {
        let row = sys.node_row(sys.circuit().find_node(node).unwrap()).unwrap();
        let mut state = plan.initial_state(0.0);
        let mut scratch = TransientScratch::new();
        let mut out = vec![state.solution()[row].re];
        for k in 1..=steps {
            plan.step(plan.dt() * k as f64, &mut state, &mut scratch).unwrap();
            out.push(state.solution()[row].re);
        }
        (out, scratch.stats())
    }

    #[test]
    fn rc_step_response_tracks_analytic_curve() {
        let (c, tau) = rc_with_step();
        let sys = MnaSystem::new(&c).unwrap();
        for (method, tol) in
            [(IntegrationMethod::BackwardEuler, 2e-2), (IntegrationMethod::Trapezoidal, 1e-4)]
        {
            let dt = tau / 50.0;
            let plan = TransientPlan::new(&sys, dt, method).unwrap();
            let (v, _) = run(&plan, &sys, "out", 150);
            for (k, &vk) in v.iter().enumerate() {
                let t = dt * k as f64;
                let exact = 1.0 - (-t / tau).exp();
                assert!(
                    (vk - exact).abs() < tol,
                    "{} at step {k}: {vk} vs {exact}",
                    method.label()
                );
            }
        }
    }

    #[test]
    fn rl_branch_companion_tracks_analytic_current() {
        // Series V–R–L: i(t) = (V/R)(1 − e^{−tR/L}) after a unit step.
        let mut c = Circuit::new();
        c.add_vsource("VIN", "in", "0", 1.0).unwrap();
        c.add_resistor("R1", "in", "mid", 1e3).unwrap();
        c.add_inductor("L1", "mid", "0", 1e-3).unwrap();
        c.set_waveform("VIN", step_source()).unwrap();
        let sys = MnaSystem::new(&c).unwrap();
        let tau = 1e-3 / 1e3;
        let dt = tau / 100.0;
        let plan = TransientPlan::new(&sys, dt, IntegrationMethod::Trapezoidal).unwrap();
        let row = sys.branch_row("L1").unwrap();
        let mut state = plan.initial_state(0.0);
        let mut scratch = TransientScratch::new();
        for k in 1..=300 {
            plan.step(dt * k as f64, &mut state, &mut scratch).unwrap();
            let t = dt * k as f64;
            let exact = 1e-3 * (1.0 - (-t / tau).exp());
            assert!(
                (state.solution()[row].re - exact).abs() < 1e-6,
                "step {k}: {} vs {exact}",
                state.solution()[row].re
            );
        }
    }

    #[test]
    fn stepping_is_one_refactor_then_compiled_solves() {
        let (c, tau) = rc_with_step();
        let sys = MnaSystem::new(&c).unwrap();
        let plan = TransientPlan::new(&sys, tau / 10.0, IntegrationMethod::Trapezoidal).unwrap();
        assert!(plan.order().is_some(), "probe at γ records an order");
        assert!(plan.program().is_some(), "order compiles");
        let (_, stats) = run(&plan, &sys, "out", 64);
        assert_eq!(stats.steps, 64);
        assert_eq!(stats.refactor_hits, 1, "the companion matrix factors once per run");
        // 64 steps + 1 extra solve from the BE half-step primer, all through
        // the compiled kernel.
        assert_eq!(stats.compiled_hits, 65, "every solve replays the compiled kernel");
        assert_eq!(stats.fresh_factorizations, 0);

        let be = TransientPlan::new(&sys, tau / 10.0, IntegrationMethod::BackwardEuler).unwrap();
        let (_, stats) = run(&be, &sys, "out", 64);
        assert_eq!(stats.steps, 64);
        assert_eq!(stats.refactor_hits, 1);
        assert_eq!(stats.compiled_hits, 64, "BE needs no primer: one solve per step");
    }

    #[test]
    fn with_dt_shares_order_and_program() {
        let (c, tau) = rc_with_step();
        let sys = MnaSystem::new(&c).unwrap();
        let plan = TransientPlan::new(&sys, tau / 10.0, IntegrationMethod::BackwardEuler).unwrap();
        let halved = plan.with_dt(tau / 20.0).unwrap();
        assert_eq!(halved.dt(), tau / 20.0);
        assert_eq!(halved.order(), plan.order());
        assert!(
            std::ptr::eq(halved.program().unwrap(), plan.program().unwrap()),
            "step halving shares the compiled program by reference"
        );
        // The halved plan still steps correctly through the shared kernel.
        let (v, stats) = run(&halved, &sys, "out", 40);
        assert_eq!(stats.refactor_hits, 1);
        assert!(v.last().unwrap() > &0.8);
    }

    #[test]
    fn constant_drive_starts_at_dc_steady_state() {
        // No waveform attached: the AC amplitude drives as a constant, so
        // the initial DC solve already is the steady state and stepping
        // holds it.
        let c = rc_ladder(3, 1e3, 1e-9);
        let sys = MnaSystem::new(&c).unwrap();
        let plan = TransientPlan::new(&sys, 1e-7, IntegrationMethod::Trapezoidal).unwrap();
        let (v, _) = run(&plan, &sys, "out", 20);
        for (k, &vk) in v.iter().enumerate() {
            assert!((vk - 1.0).abs() < 1e-9, "step {k}: {vk}");
        }
    }

    #[test]
    fn invalid_dt_is_typed_error() {
        let sys = MnaSystem::new(&rc_ladder(1, 1e3, 1e-9)).unwrap();
        for dt in [0.0, -1e-9, f64::NAN, f64::INFINITY] {
            let err = TransientPlan::new(&sys, dt, IntegrationMethod::BackwardEuler).unwrap_err();
            assert!(matches!(err, MnaError::InvalidTimeStep { .. }), "dt = {dt}: {err:?}");
        }
        let plan = TransientPlan::new(&sys, 1e-6, IntegrationMethod::BackwardEuler).unwrap();
        assert!(matches!(plan.with_dt(0.0), Err(MnaError::InvalidTimeStep { .. })));
    }

    #[test]
    fn convergence_order_under_step_halving() {
        // Observed order from errors at h, h/2 against the analytic RC
        // step response: BE ≈ 1, TR ≈ 2.
        let (c, tau) = rc_with_step();
        let sys = MnaSystem::new(&c).unwrap();
        let err_at = |method: IntegrationMethod, dt: f64| -> f64 {
            let plan = TransientPlan::new(&sys, dt, method).unwrap();
            let steps = (3.0 * tau / dt).round() as usize;
            let (v, _) = run(&plan, &sys, "out", steps);
            v.iter()
                .enumerate()
                .map(|(k, &vk)| (vk - (1.0 - (-(dt * k as f64) / tau).exp())).abs())
                .fold(0.0f64, f64::max)
        };
        for (method, expect) in
            [(IntegrationMethod::BackwardEuler, 1.0), (IntegrationMethod::Trapezoidal, 2.0)]
        {
            let h = tau / 20.0;
            let e1 = err_at(method, h);
            let e2 = err_at(method, h / 2.0);
            let observed = (e1 / e2).log2();
            assert!(
                observed > expect - 0.15,
                "{}: observed order {observed:.3}, expected ≈ {expect}",
                method.label()
            );
        }
    }
}
