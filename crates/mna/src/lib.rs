//! Modified nodal analysis (MNA) for the `refgen` workspace.
//!
//! Builds the paper's eq. (7), `Y_MNA · X = E`, from a
//! [`Circuit`](refgen_circuit::Circuit), with two features specific to the
//! reproduction:
//!
//! * **Scale hooks** ([`Scale`]): every capacitor is stamped as `f·C` and
//!   every resistive admittance (conductance, transconductance) as `g·G`.
//!   This realizes the coefficient scaling of the paper's eq. (11),
//!   `p'_i = p_i·f^i·g^{M-i}`, purely through element values.
//! * **Admittance degree** `M`: the number of admittance factors in every
//!   term of `det(Y_MNA)`, needed to *denormalize* interpolated
//!   coefficients. [`MnaSystem::admittance_degree`] derives it structurally
//!   (`M = #nodes − 1 − #branches`) and
//!   [`MnaSystem::measured_admittance_degree`] cross-checks it numerically
//!   via `det(λ·Y)/det(Y) = λ^M`.
//!
//! The [`ac`] module is the workspace's stand-in for the "commercial
//! electrical simulator" of the paper's Fig. 2: a direct complex LU solve
//! per frequency point, sharing no code with the interpolation engine.
//!
//! The [`sweep`] module is the plan/execute seam for *repeated* evaluation
//! of one system: a [`SweepPlan`] compiles the sparsity pattern, RHS
//! template, and a recorded pivot order once per `(MnaSystem, Scale)`, and
//! [`SweepPlan::eval_at`]/[`SweepPlan::eval_det`] evaluate points through a
//! reusable [`SweepScratch`] with no pivot search and no steady-state
//! allocation. Both the AC fast sweep and `refgen_core`'s batched
//! unit-circle sampling execute on it. For same-topology *fleets*
//! (Monte-Carlo and sensitivity variants of one circuit),
//! [`SweepPlan::rebind`] transplants a compiled plan onto new element
//! values and [`PlanCache`] shares recorded pivot orders across plans — one
//! pivot search per topology, not per variant.
//!
//! The [`transient`] module rides the same seam in the time domain: for a
//! fixed step `h` the companion-model matrix of backward-Euler or
//! trapezoidal integration is the affine pattern evaluated at one real
//! point `γ` (`1/h` resp. `2/h`), so a [`TransientPlan`] probes and
//! compiles once per `(system, Δt, method)` and every step is
//! stamp-history → replay → back-substitute with zero allocation.
//!
//! # Example
//!
//! ```
//! use refgen_circuit::library::rc_ladder;
//! use refgen_mna::{MnaSystem, TransferSpec, Scale};
//! use refgen_numeric::Complex;
//!
//! # fn main() -> Result<(), refgen_mna::MnaError> {
//! let circuit = rc_ladder(3, 1e3, 1e-9);
//! let sys = MnaSystem::new(&circuit)?;
//! let spec = TransferSpec::voltage_gain("VIN", "out");
//! // DC gain of an RC ladder is 1.
//! let h = sys.transfer(Complex::ZERO, Scale::unit(), &spec)?;
//! assert!((h.response - Complex::ONE).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod error;
pub mod faults;
pub mod sensitivity;
pub mod sweep;
pub mod system;
pub mod transfer;
pub mod transient;

pub use ac::{log_space, unwrap_phase, AcAnalysis, AcPoint};
pub use error::MnaError;
pub use sensitivity::Sensitivity;
pub use sweep::{
    FleetSampler, HybridScratch, HybridStats, OrderingChoice, OrderingMode, PlanCache,
    SelectedOrdering, SweepBatchScratch, SweepPlan, SweepScratch, SweepStats,
};
pub use system::{MnaSystem, Scale};
pub use transfer::{OutputSpec, TransferResponse, TransferSpec};
pub use transient::{
    IntegrationMethod, TransientPlan, TransientScratch, TransientState, TransientStats,
};
