//! Error type for MNA assembly and analysis.

use refgen_circuit::CircuitError;
use refgen_sparse::FactorError;
use std::fmt;

/// Errors from MNA construction, evaluation, or AC analysis.
#[derive(Clone, Debug, PartialEq)]
pub enum MnaError {
    /// The circuit failed structural validation.
    Circuit(CircuitError),
    /// The system matrix was singular at the given complex frequency.
    Singular {
        /// Human-readable frequency description.
        at: String,
    },
    /// Every rung of the singular-recovery ladder failed at one point:
    /// the prescribed-order replay, the fresh value-aware Markowitz
    /// factorization, *and* the alternate-ordering recompile all reported
    /// a singular pivot. This is the typed **per-point** failure a
    /// contained fleet surfaces per variant instead of aborting the run.
    Unrecoverable {
        /// Human-readable point description (e.g. `s = …` or `… Hz`).
        at: String,
        /// Elimination step of the first rung's singular pivot.
        step: usize,
        /// Ladder rungs exhausted before giving up (always 3 today:
        /// replay → fresh → reorder).
        rung: u8,
    },
    /// The transfer-function input could not be resolved to an independent
    /// source.
    NoSuchSource {
        /// The requested source or node name.
        name: String,
    },
    /// The requested source exists but has zero AC amplitude.
    ZeroAmplitudeSource {
        /// The source name.
        name: String,
    },
    /// A named output node does not exist.
    NoSuchNode {
        /// The missing node name.
        name: String,
    },
    /// A controlled source references a branch that carries no MNA branch
    /// equation (should be caught by validation; kept for defense in depth).
    NoSuchBranch {
        /// The missing branch name.
        name: String,
    },
    /// A transient plan was asked for a non-positive or non-finite time
    /// step.
    InvalidTimeStep {
        /// The offending Δt, seconds.
        dt: f64,
    },
    /// A plan was asked to rebind to a system of a different shape
    /// ([`SweepPlan::rebind`](crate::SweepPlan::rebind) requires the same
    /// topology: identical node/element structure, values free to differ).
    TopologyMismatch {
        /// Dimension the plan was compiled for.
        expected: usize,
        /// Dimension of the offered system.
        actual: usize,
    },
}

impl fmt::Display for MnaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MnaError::Circuit(e) => write!(f, "invalid circuit: {e}"),
            MnaError::Singular { at } => write!(f, "singular MNA matrix at {at}"),
            MnaError::Unrecoverable { at, step, rung } => write!(
                f,
                "unrecoverably singular MNA matrix at {at}: \
                 {rung} recovery rungs exhausted (first zero pivot at elimination step {step})"
            ),
            MnaError::NoSuchSource { name } => {
                write!(f, "no independent source matches `{name}`")
            }
            MnaError::ZeroAmplitudeSource { name } => {
                write!(f, "source `{name}` has zero AC amplitude")
            }
            MnaError::NoSuchNode { name } => write!(f, "no node named `{name}`"),
            MnaError::NoSuchBranch { name } => write!(f, "no branch equation for `{name}`"),
            MnaError::InvalidTimeStep { dt } => {
                write!(f, "transient time step must be positive and finite, got {dt}")
            }
            MnaError::TopologyMismatch { expected, actual } => write!(
                f,
                "plan rebind requires the same topology: plan dimension {expected}, \
                 system dimension {actual}"
            ),
        }
    }
}

impl std::error::Error for MnaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MnaError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for MnaError {
    fn from(e: CircuitError) -> Self {
        MnaError::Circuit(e)
    }
}

impl MnaError {
    /// Wraps a factorization failure as a singularity at a described point.
    pub fn from_factor(err: FactorError, at: impl Into<String>) -> Self {
        let _ = err;
        MnaError::Singular { at: at.into() }
    }

    /// Wraps a factorization failure that survived the whole
    /// singular-recovery ladder as the typed per-point
    /// [`MnaError::Unrecoverable`].
    pub(crate) fn ladder_exhausted(err: FactorError, at: impl Into<String>) -> Self {
        let step = match err {
            FactorError::Singular { step } => step,
            _ => 0,
        };
        MnaError::Unrecoverable { at: at.into(), step, rung: 3 }
    }
}
