//! Property-based tests: sparse LU against the dense oracle on random
//! matrices.

use proptest::prelude::*;
use refgen_numeric::Complex;
use refgen_sparse::{SparseLu, Triplets};

/// Random sparse complex matrix with a guaranteed-nonzero diagonal band
/// (so most cases are regular) plus random off-diagonal fill.
fn random_matrix(dim: usize, seed: u64, density_pct: u64) -> Triplets {
    let mut t = Triplets::new(dim);
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(12345);
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state
    };
    for i in 0..dim {
        let re = ((next() >> 11) as f64) / ((1u64 << 53) as f64) + 0.5;
        let im = ((next() >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
        t.add(i, i, Complex::new(re * 4.0, im));
    }
    for r in 0..dim {
        for c in 0..dim {
            if r == c {
                continue;
            }
            if next() % 100 < density_pct {
                let re = ((next() >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
                let im = ((next() >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
                t.add(r, c, Complex::new(re, im));
            }
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn determinant_matches_dense(dim in 1usize..12, seed in 0u64..100_000, density in 10u64..70) {
        let t = random_matrix(dim, seed, density);
        let dense = t.to_dense().det();
        match SparseLu::factor(&t) {
            Ok(lu) => {
                let rel = ((lu.det() - dense).norm()
                    / dense.norm().max_abs(lu.det().norm()))
                .to_f64();
                prop_assert!(rel < 1e-9, "rel {rel:.2e} (dim {dim}, seed {seed})");
            }
            Err(_) => {
                // Sparse declared singular: dense determinant must be tiny
                // relative to the matrix scale.
                prop_assert!(dense.norm().to_f64() < 1e-6);
            }
        }
    }

    #[test]
    fn solve_residual_small(dim in 1usize..12, seed in 0u64..100_000) {
        let t = random_matrix(dim, seed, 40);
        let lu = match SparseLu::factor(&t) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        let b: Vec<Complex> = (0..dim)
            .map(|i| Complex::new(1.0 + i as f64, (i as f64) - 0.5))
            .collect();
        let x = lu.solve(&b);
        let ax = t.to_dense().mul_vec(&x);
        let resid: f64 = ax.iter().zip(&b).map(|(p, q)| (*p - *q).abs()).sum();
        let scale: f64 = b.iter().map(|v| v.abs()).sum();
        prop_assert!(resid < 1e-9 * scale, "residual {resid:.2e}");
    }

    #[test]
    fn refactor_reproduces_factor(dim in 1usize..10, seed in 0u64..100_000) {
        let t = random_matrix(dim, seed, 35);
        let lu = match SparseLu::factor(&t) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        let re = SparseLu::refactor(&t, lu.order()).expect("same matrix refactors");
        let rel = ((lu.det() - re.det()).norm() / lu.det().norm()).to_f64();
        prop_assert!(rel < 1e-12);
        let b = vec![Complex::ONE; dim];
        for (p, q) in lu.solve(&b).iter().zip(re.solve(&b)) {
            prop_assert!((*p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn row_scaling_scales_determinant(dim in 1usize..9, seed in 0u64..100_000, k in 1u32..20) {
        // Multiplying one row by 2^k multiplies det by exactly 2^k.
        let t = random_matrix(dim, seed, 40);
        let lu = match SparseLu::factor(&t) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        let factor = 2f64.powi(k as i32);
        let mut t2 = Triplets::new(dim);
        for &(r, c, v) in t.entries() {
            t2.add(r, c, if r == 0 { v.scale(factor) } else { v });
        }
        let lu2 = SparseLu::factor(&t2).expect("scaled matrix regular");
        let got = (lu2.det().norm() / lu.det().norm()).log2();
        prop_assert!((got - k as f64).abs() < 1e-9, "got 2^{got}, want 2^{k}");
    }
}
