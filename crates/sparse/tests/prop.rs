//! Property-based tests: sparse LU against the dense oracle on random
//! matrices, and the compiled symbolic kernel against both replay paths.

use proptest::prelude::*;
use refgen_numeric::Complex;
use refgen_sparse::{FactorError, FactorProgram, ProgramScratch, SparseLu, Triplets};

/// Random sparse complex matrix with a guaranteed-nonzero diagonal band
/// (so most cases are regular) plus random off-diagonal fill.
fn random_matrix(dim: usize, seed: u64, density_pct: u64) -> Triplets {
    let mut t = Triplets::new(dim);
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(12345);
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state
    };
    for i in 0..dim {
        let re = ((next() >> 11) as f64) / ((1u64 << 53) as f64) + 0.5;
        let im = ((next() >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
        t.add(i, i, Complex::new(re * 4.0, im));
    }
    for r in 0..dim {
        for c in 0..dim {
            if r == c {
                continue;
            }
            if next() % 100 < density_pct {
                let re = ((next() >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
                let im = ((next() >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
                t.add(r, c, Complex::new(re, im));
            }
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn determinant_matches_dense(dim in 1usize..12, seed in 0u64..100_000, density in 10u64..70) {
        let t = random_matrix(dim, seed, density);
        let dense = t.to_dense().det();
        match SparseLu::factor(&t) {
            Ok(lu) => {
                let rel = ((lu.det() - dense).norm()
                    / dense.norm().max_abs(lu.det().norm()))
                .to_f64();
                prop_assert!(rel < 1e-9, "rel {rel:.2e} (dim {dim}, seed {seed})");
            }
            Err(_) => {
                // Sparse declared singular: dense determinant must be tiny
                // relative to the matrix scale.
                prop_assert!(dense.norm().to_f64() < 1e-6);
            }
        }
    }

    #[test]
    fn solve_residual_small(dim in 1usize..12, seed in 0u64..100_000) {
        let t = random_matrix(dim, seed, 40);
        let lu = match SparseLu::factor(&t) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        let b: Vec<Complex> = (0..dim)
            .map(|i| Complex::new(1.0 + i as f64, (i as f64) - 0.5))
            .collect();
        let x = lu.solve(&b);
        let ax = t.to_dense().mul_vec(&x);
        let resid: f64 = ax.iter().zip(&b).map(|(p, q)| (*p - *q).abs()).sum();
        let scale: f64 = b.iter().map(|v| v.abs()).sum();
        prop_assert!(resid < 1e-9 * scale, "residual {resid:.2e}");
    }

    #[test]
    fn refactor_reproduces_factor(dim in 1usize..10, seed in 0u64..100_000) {
        let t = random_matrix(dim, seed, 35);
        let lu = match SparseLu::factor(&t) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        let re = SparseLu::refactor(&t, lu.order()).expect("same matrix refactors");
        let rel = ((lu.det() - re.det()).norm() / lu.det().norm()).to_f64();
        prop_assert!(rel < 1e-12);
        let b = vec![Complex::ONE; dim];
        for (p, q) in lu.solve(&b).iter().zip(re.solve(&b)) {
            prop_assert!((*p - q).abs() < 1e-10);
        }
    }

    /// Tentpole equivalence: `FactorProgram` execution ≡ `SparseLu::refactor`
    /// ≡ a fresh Markowitz factorization on random fill-heavy patterns —
    /// determinants, solve vectors, and fill accounting.
    #[test]
    fn compiled_program_matches_both_replay_paths(
        dim in 1usize..12,
        seed in 0u64..100_000,
        density in 30u64..80,
    ) {
        let t = random_matrix(dim, seed, density);
        let lu = match SparseLu::factor(&t) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        let program = FactorProgram::for_triplets(&t, lu.order())
            .expect("order recorded on this pattern compiles");
        prop_assert_eq!(program.fill_in(), lu.fill_in(), "compile-time fill = numeric fill");

        // Same matrix, then a same-pattern matrix with fresh values: the
        // program must track SparseLu::refactor on both.
        let mut t2 = Triplets::new(dim);
        for (i, &(r, c, v)) in t.entries().iter().enumerate() {
            let bump = 1.0 + ((i as f64) + 1.0) / (t.raw_len() as f64 + 2.0);
            t2.add(r, c, v.scale(bump) + Complex::new(0.0, 0.125 * bump));
        }
        let mut scratch = ProgramScratch::new();
        let mut x = Vec::new();
        for m in [&t, &t2] {
            let reference = match SparseLu::refactor(m, lu.order()) {
                Ok(re) => re,
                Err(e) => {
                    // Error parity: the program must die the same way.
                    let got = program.refactor(m, &mut scratch);
                    prop_assert_eq!(got, Err(e));
                    continue;
                }
            };
            program.refactor(m, &mut scratch).expect("refactor succeeded, replay must too");
            let drel = ((scratch.det() - reference.det()).norm()
                / reference.det().norm())
            .to_f64();
            prop_assert!(drel < 1e-10, "det rel {drel:.2e} (dim {dim}, seed {seed})");
            // …and against the fully fresh factorization of the same values.
            if let Ok(fresh) = SparseLu::factor(m) {
                let frel =
                    ((scratch.det() - fresh.det()).norm() / fresh.det().norm()).to_f64();
                prop_assert!(frel < 1e-9, "fresh det rel {frel:.2e}");
            }
            let b: Vec<Complex> =
                (0..dim).map(|i| Complex::new(1.0 + i as f64, 0.5 - i as f64)).collect();
            program.solve_into(&mut scratch, &b, &mut x);
            for (p, q) in x.iter().zip(reference.solve(&b)) {
                prop_assert!((*p - q).abs() < 1e-9, "solve divergence (dim {dim}, seed {seed})");
            }
        }
    }

    /// Error parity under injected zero pivots: when a value replay dies,
    /// the program and the workspace replay report `Singular` at the same
    /// elimination step.
    #[test]
    fn compiled_program_error_parity_on_zeroed_pivots(
        dim in 2usize..10,
        seed in 0u64..100_000,
        victim in 0usize..10,
    ) {
        let t = random_matrix(dim, seed, 40);
        let lu = match SparseLu::factor(&t) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        let program = FactorProgram::for_triplets(&t, lu.order()).unwrap();
        // Zero every raw entry at the victim step's pivot position.
        let step = victim % dim;
        let (pr, pc) = (lu.order().rows()[step], lu.order().cols()[step]);
        let mut zeroed = Triplets::new(dim);
        for &(r, c, v) in t.entries() {
            zeroed.add(r, c, if (r, c) == (pr, pc) { Complex::ZERO } else { v });
        }
        let mut scratch = ProgramScratch::new();
        let got = program.refactor(&zeroed, &mut scratch);
        let want = SparseLu::refactor(&zeroed, lu.order()).map(|_| ());
        match (got, want) {
            (Ok(()), Ok(())) => {}
            (
                Err(FactorError::Singular { step: a }),
                Err(FactorError::Singular { step: b }),
            ) => prop_assert_eq!(a, b, "both die, and at the same step"),
            (g, w) => prop_assert!(false, "outcomes diverge: {g:?} vs {w:?}"),
        }
    }

    #[test]
    fn row_scaling_scales_determinant(dim in 1usize..9, seed in 0u64..100_000, k in 1u32..20) {
        // Multiplying one row by 2^k multiplies det by exactly 2^k.
        let t = random_matrix(dim, seed, 40);
        let lu = match SparseLu::factor(&t) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        let factor = 2f64.powi(k as i32);
        let mut t2 = Triplets::new(dim);
        for &(r, c, v) in t.entries() {
            t2.add(r, c, if r == 0 { v.scale(factor) } else { v });
        }
        let lu2 = SparseLu::factor(&t2).expect("scaled matrix regular");
        let got = (lu2.det().norm() / lu.det().norm()).log2();
        prop_assert!((got - k as f64).abs() < 1e-9, "got 2^{got}, want 2^{k}");
    }
}
