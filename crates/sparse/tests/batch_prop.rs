//! Property tests for the batched (variant-major) kernel: driving N lanes
//! through one instruction-stream traversal must be **bit-identical** to N
//! independent one-lane replays — determinants, solution vectors, and
//! per-lane `Singular { step }` parity under injected zero pivots.

use proptest::prelude::*;
use refgen_numeric::Complex;
use refgen_sparse::{BatchScratch, FactorError, FactorProgram, ProgramScratch, SparseLu, Triplets};

/// Random sparse complex matrix with a guaranteed-nonzero diagonal band
/// (so most cases are regular) plus random off-diagonal fill.
fn random_matrix(dim: usize, seed: u64, density_pct: u64) -> Triplets {
    let mut t = Triplets::new(dim);
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(12345);
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state
    };
    for i in 0..dim {
        let re = ((next() >> 11) as f64) / ((1u64 << 53) as f64) + 0.5;
        let im = ((next() >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
        t.add(i, i, Complex::new(re * 4.0, im));
    }
    for r in 0..dim {
        for c in 0..dim {
            if r == c {
                continue;
            }
            if next() % 100 < density_pct {
                let re = ((next() >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
                let im = ((next() >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
                t.add(r, c, Complex::new(re, im));
            }
        }
    }
    t
}

/// Same-pattern value variant `k`: every raw entry perturbed
/// deterministically, like a Monte-Carlo fleet rebind.
fn variant(base: &Triplets, k: usize) -> Triplets {
    let mut t = Triplets::new(base.dim());
    for (i, &(r, c, v)) in base.entries().iter().enumerate() {
        let bump = 1.0 + ((k + 1) as f64) * ((i + 1) as f64) / (base.raw_len() as f64 + 3.0) / 7.0;
        t.add(r, c, v.scale(bump) + Complex::new(0.0, 0.01 * (k as f64) * bump));
    }
    t
}

fn bits(v: Complex) -> (u64, u64) {
    (v.re.to_bits(), v.im.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// `refactor_batch`/`solve_batch` over N lanes ≡ N independent
    /// `ProgramScratch` replays, bit for bit, at lane widths spanning the
    /// vectorized pairs and the odd scalar tail.
    #[test]
    fn batched_lanes_are_bit_identical_to_independent_replays(
        dim in 1usize..11,
        seed in 0u64..100_000,
        density in 20u64..75,
        lanes in 1usize..9,
    ) {
        let base = random_matrix(dim, seed, density);
        let lu = match SparseLu::factor(&base) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        let program = FactorProgram::for_triplets(&base, lu.order()).unwrap();
        let mats: Vec<Triplets> = (0..lanes).map(|k| variant(&base, k)).collect();

        let mut batch = BatchScratch::new();
        program.refactor_batch(
            mats.iter().map(|m| m.entries().iter().map(|&(_, _, v)| v)),
            &mut batch,
        );
        let b: Vec<Complex> =
            (0..dim).map(|i| Complex::new(1.0 + i as f64, 0.5 - i as f64)).collect();
        let mut brhs = Vec::with_capacity(dim * lanes);
        for &v in &b {
            for _ in 0..lanes {
                brhs.push(v);
            }
        }
        let mut bx = Vec::new();
        program.solve_batch(&mut batch, &brhs, &mut bx);

        let mut scratch = ProgramScratch::new();
        let mut x = Vec::new();
        for (lane, m) in mats.iter().enumerate() {
            match program.refactor(m, &mut scratch) {
                Ok(()) => {
                    prop_assert_eq!(batch.singular_step(lane), None, "lane {} lives", lane);
                    prop_assert_eq!(
                        format!("{:?}", batch.lane_det(lane).unwrap()),
                        format!("{:?}", scratch.det()),
                        "lane {} det bits (dim {}, seed {})", lane, dim, seed
                    );
                    program.solve_into(&mut scratch, &b, &mut x);
                    for (col, &want) in x.iter().enumerate() {
                        prop_assert_eq!(
                            bits(bx[col * lanes + lane]),
                            bits(want),
                            "lane {} col {} (dim {}, seed {})", lane, col, dim, seed
                        );
                    }
                }
                Err(FactorError::Singular { step }) => {
                    prop_assert_eq!(batch.singular_step(lane), Some(step));
                }
                Err(other) => prop_assert!(false, "unexpected one-lane error {:?}", other),
            }
        }
    }

    /// Injected zero pivots: one victim lane's pivot entries are zeroed so
    /// it dies mid-elimination; its recorded step must equal the one-lane
    /// `Singular { step }`, and every surviving lane must stay bit-identical
    /// to its independent replay.
    #[test]
    fn injected_zero_pivot_dies_alone_with_step_parity(
        dim in 2usize..10,
        seed in 0u64..100_000,
        lanes in 2usize..8,
        victim_lane in 0usize..8,
        victim_step in 0usize..10,
    ) {
        let base = random_matrix(dim, seed, 40);
        let lu = match SparseLu::factor(&base) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        let program = FactorProgram::for_triplets(&base, lu.order()).unwrap();
        let victim_lane = victim_lane % lanes;
        let step = victim_step % dim;
        let (pr, pc) = (lu.order().rows()[step], lu.order().cols()[step]);
        let mats: Vec<Triplets> = (0..lanes)
            .map(|k| {
                let v = variant(&base, k);
                if k != victim_lane {
                    return v;
                }
                // Zero every raw entry at the victim step's pivot position.
                let mut z = Triplets::new(dim);
                for &(r, c, val) in v.entries() {
                    z.add(r, c, if (r, c) == (pr, pc) { Complex::ZERO } else { val });
                }
                z
            })
            .collect();

        let mut batch = BatchScratch::new();
        program.refactor_batch(
            mats.iter().map(|m| m.entries().iter().map(|&(_, _, v)| v)),
            &mut batch,
        );
        let mut scratch = ProgramScratch::new();
        for (lane, m) in mats.iter().enumerate() {
            match program.refactor(m, &mut scratch) {
                Ok(()) => {
                    prop_assert_eq!(batch.singular_step(lane), None);
                    prop_assert_eq!(
                        format!("{:?}", batch.lane_det(lane).unwrap()),
                        format!("{:?}", scratch.det()),
                        "surviving lane {} (dim {}, seed {})", lane, dim, seed
                    );
                }
                Err(FactorError::Singular { step: want }) => {
                    prop_assert_eq!(
                        batch.singular_step(lane),
                        Some(want),
                        "lane {} step parity (dim {}, seed {})", lane, dim, seed
                    );
                    let det_err_matches = matches!(
                        batch.lane_det(lane),
                        Err(FactorError::Singular { step }) if step == want
                    );
                    prop_assert!(det_err_matches);
                }
                Err(other) => prop_assert!(false, "unexpected one-lane error {:?}", other),
            }
        }
    }
}
