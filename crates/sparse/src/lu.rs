//! Sparse LU factorization with Markowitz pivoting.
//!
//! The pivot at each step is chosen to minimize the Markowitz count
//! `(r_nnz − 1)·(c_nnz − 1)` (a classic fill-in heuristic from circuit
//! simulation) among entries passing a threshold stability test
//! `|a| ≥ u·max|row|`. The resulting [`PivotOrder`] can be reused for fast
//! *numeric refactorization*: the interpolation engine factors the same
//! circuit matrix at dozens of frequency points, and only the first
//! factorization pays for pivot search.
//!
//! The determinant is accumulated as an
//! [`refgen_numeric::ExtComplex`] — the product of pivots of a
//! scaled MNA matrix reaches `1e±124` and beyond (paper Table 2), which must
//! not overflow.

use crate::triplets::Triplets;
use refgen_numeric::{Complex, ExtComplex, ExtProduct};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Default threshold-pivoting parameter: candidates must satisfy
/// `|a| ≥ u·max|row|`. `0.1` is the customary compromise between stability
/// and sparsity (a pure-stability choice would be `1.0`).
pub const DEFAULT_PIVOT_THRESHOLD: f64 = 0.1;

/// Errors from LU factorization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FactorError {
    /// The matrix is structurally or numerically singular; `step` is the
    /// elimination step (0-based) at which no usable pivot remained.
    Singular {
        /// Elimination step at which factorization failed.
        step: usize,
    },
    /// A reused pivot order does not match the matrix dimension.
    OrderMismatch {
        /// Dimension implied by the pivot order.
        expected: usize,
        /// Actual matrix dimension.
        actual: usize,
    },
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorError::Singular { step } => {
                write!(f, "matrix is singular at elimination step {step}")
            }
            FactorError::OrderMismatch { expected, actual } => {
                write!(f, "pivot order is for dimension {expected}, matrix has {actual}")
            }
        }
    }
}

impl std::error::Error for FactorError {}

/// A recorded pivot sequence: at step `k` the pivot sits at original
/// position `(rows[k], cols[k])`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PivotOrder {
    rows: Vec<usize>,
    cols: Vec<usize>,
}

impl PivotOrder {
    /// A symmetric (diagonal-pivot) order: step `k` pivots on
    /// `(perm[k], perm[k])`. This is the shape fill-reducing symbolic
    /// orderings over the pattern graph produce
    /// ([`minimum_degree`](crate::ordering::minimum_degree)); whether the
    /// prescribed diagonal pivots actually exist in the filled pattern is
    /// checked by [`FactorProgram::compile`](crate::FactorProgram::compile).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..perm.len()`.
    pub fn diagonal(perm: Vec<usize>) -> PivotOrder {
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            assert!(
                p < perm.len() && !std::mem::replace(&mut seen[p], true),
                "diagonal order is not a permutation of 0..{}",
                perm.len()
            );
        }
        PivotOrder { rows: perm.clone(), cols: perm }
    }

    /// Pivot row (original index) for each elimination step.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// Pivot column (original index) for each elimination step.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// The dimension this order was produced for.
    pub fn dim(&self) -> usize {
        self.rows.len()
    }

    /// Sign of the combined row/column permutation (`+1.0` or `-1.0`).
    pub(crate) fn sign(&self) -> f64 {
        permutation_sign(&self.rows) * permutation_sign(&self.cols)
    }
}

fn permutation_sign(perm: &[usize]) -> f64 {
    let mut seen = vec![false; perm.len()];
    let mut sign = 1.0;
    for start in 0..perm.len() {
        if seen[start] {
            continue;
        }
        let mut len = 0;
        let mut i = start;
        while !seen[i] {
            seen[i] = true;
            i = perm[i];
            len += 1;
        }
        if len % 2 == 0 {
            sign = -sign;
        }
    }
    sign
}

/// An LU factorization of a sparse complex matrix.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct SparseLu {
    n: usize,
    order: PivotOrder,
    /// `lcols[k]` — multipliers eliminating column `cols[k]` from the listed
    /// original rows.
    lcols: Vec<Vec<(usize, Complex)>>,
    /// `urows[k]` — the pivot row at step `k`, original column indices,
    /// *excluding* the pivot entry itself.
    urows: Vec<Vec<(usize, Complex)>>,
    pivots: Vec<Complex>,
    det: ExtComplex,
    fill_in: usize,
}

impl SparseLu {
    /// Factors with Markowitz pivoting at the default stability threshold.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Singular`] if no nonzero pivot remains at some
    /// elimination step.
    pub fn factor(a: &Triplets) -> Result<SparseLu, FactorError> {
        Self::factor_with_threshold(a, DEFAULT_PIVOT_THRESHOLD)
    }

    /// Factors with a caller-chosen threshold `u ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Singular`] if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not in `(0, 1]`.
    pub fn factor_with_threshold(a: &Triplets, u: f64) -> Result<SparseLu, FactorError> {
        assert!(u > 0.0 && u <= 1.0, "pivot threshold must be in (0,1], got {u}");
        factor_impl(a, PivotStrategy::Markowitz { threshold: u })
    }

    /// Refactors numerically with a previously recorded pivot order — no
    /// pivot search. Intended for re-evaluating the same circuit matrix at a
    /// new frequency point.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::OrderMismatch`] on dimension mismatch and
    /// [`FactorError::Singular`] if a prescribed pivot is exactly zero (the
    /// caller should fall back to a fresh [`SparseLu::factor`]).
    pub fn refactor(a: &Triplets, order: &PivotOrder) -> Result<SparseLu, FactorError> {
        if order.dim() != a.dim() {
            return Err(FactorError::OrderMismatch { expected: order.dim(), actual: a.dim() });
        }
        factor_impl(a, PivotStrategy::Fixed(order.clone()))
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The pivot order used, reusable via [`SparseLu::refactor`].
    pub fn order(&self) -> &PivotOrder {
        &self.order
    }

    /// Determinant (sign-corrected for the row/column permutations), in
    /// extended range.
    pub fn det(&self) -> ExtComplex {
        self.det
    }

    /// Number of fill-in entries created during elimination.
    pub fn fill_in(&self) -> usize {
        self.fill_in
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[Complex]) -> Vec<Complex> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let mut work = b.to_vec();
        // Forward elimination replay: y[k] lives at work[order.rows[k]].
        for k in 0..self.n {
            let t = work[self.order.rows[k]];
            if t == Complex::ZERO {
                continue;
            }
            for &(r2, l) in &self.lcols[k] {
                work[r2] -= l * t;
            }
        }
        // Back substitution in original column coordinates.
        let mut x = vec![Complex::ZERO; self.n];
        for k in (0..self.n).rev() {
            let mut s = work[self.order.rows[k]];
            for &(c, v) in &self.urows[k] {
                s -= v * x[c];
            }
            x[self.order.cols[k]] = s / self.pivots[k];
        }
        x
    }

    /// Refactors numerically into a reusable [`LuWorkspace`] — no pivot
    /// search *and* no heap allocation once the workspace has warmed up on
    /// this pattern. This is the steady-state path of a frequency sweep:
    /// factor once with [`SparseLu::factor`], then replay the recorded
    /// order at every subsequent point with this method and solve through
    /// [`LuWorkspace::solve_into`].
    ///
    /// On success the workspace holds the factorization (determinant,
    /// pivots, elimination multipliers). On failure the workspace contents
    /// are unspecified, but the workspace itself stays reusable: the caller
    /// falls back to a fresh [`SparseLu::factor`] and may try
    /// `refactor_into` again at the next point.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::OrderMismatch`] on dimension mismatch and
    /// [`FactorError::Singular`] if a prescribed pivot is exactly zero.
    pub fn refactor_into(
        a: &Triplets,
        order: &PivotOrder,
        ws: &mut LuWorkspace,
    ) -> Result<(), FactorError> {
        if order.dim() != a.dim() {
            return Err(FactorError::OrderMismatch { expected: order.dim(), actual: a.dim() });
        }
        ws.refactor(a, order)
    }
}

/// Reusable buffers for repeated numeric refactorization with a fixed
/// [`PivotOrder`] ([`SparseLu::refactor_into`]) and repeated solves
/// ([`LuWorkspace::solve_into`]).
///
/// All internal storage is capacity-retaining `Vec`s: the first
/// refactorization of a given pattern sizes them, and every later
/// refactorization of the same pattern reuses the memory — the steady
/// state performs **zero heap allocation**, which is what makes per-point
/// sampling cheap enough to scale across threads (each worker owns one
/// workspace).
///
/// ```
/// use refgen_numeric::Complex;
/// use refgen_sparse::{LuWorkspace, SparseLu, Triplets};
///
/// # fn main() -> Result<(), refgen_sparse::FactorError> {
/// let mut a = Triplets::new(2);
/// a.add(0, 0, Complex::real(2.0));
/// a.add(0, 1, Complex::real(1.0));
/// a.add(1, 1, Complex::real(3.0));
/// let order = SparseLu::factor(&a)?.order().clone(); // pivot search, once
///
/// let mut ws = LuWorkspace::new();
/// let mut x = Vec::new();
/// SparseLu::refactor_into(&a, &order, &mut ws)?; // numeric replay only
/// ws.solve_into(&[Complex::real(3.0), Complex::real(3.0)], &mut x);
/// assert!((x[0] - Complex::real(1.0)).abs() < 1e-12);
/// assert!((ws.det().to_complex() - Complex::real(6.0)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct LuWorkspace {
    n: usize,
    /// Active-row storage, sorted by column. After a successful
    /// refactorization, row `rows[k]` of the pivot sequence holds exactly
    /// the step-`k` U row (pivot entry included).
    rows: Vec<Vec<(usize, Complex)>>,
    /// `col_rows[c]`: rows known to hold an entry in column `c`.
    col_rows: Vec<Vec<usize>>,
    row_active: Vec<bool>,
    /// Elimination multipliers per step: `(target row, l)`.
    lcols: Vec<Vec<(usize, Complex)>>,
    /// Pivot-free U row per step, copied out at the pivot step so the
    /// back substitution in [`LuWorkspace::solve_into`] never has to test
    /// each stored entry against the pivot column.
    urows: Vec<Vec<(usize, Complex)>>,
    pivots: Vec<Complex>,
    pivot_rows: Vec<usize>,
    pivot_cols: Vec<usize>,
    det: ExtComplex,
    work: Vec<Complex>,
    factored: bool,
}

impl LuWorkspace {
    /// An empty workspace; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        LuWorkspace { det: ExtComplex::ONE, ..Default::default() }
    }

    /// Dimension of the last factorization.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Determinant of the last successful refactorization (sign-corrected
    /// for the pivot order's permutations), in extended range.
    ///
    /// # Panics
    ///
    /// Panics if no refactorization has succeeded yet.
    pub fn det(&self) -> ExtComplex {
        assert!(self.factored, "workspace holds no factorization");
        self.det
    }

    /// Solves `A·x = b` with the last successful refactorization, writing
    /// the solution into `x` (cleared and refilled — its allocation is
    /// reused across calls, as is the internal forward-elimination buffer).
    ///
    /// # Panics
    ///
    /// Panics if no refactorization has succeeded yet or if `b.len()`
    /// differs from the factored dimension.
    pub fn solve_into(&mut self, b: &[Complex], x: &mut Vec<Complex>) {
        assert!(self.factored, "workspace holds no factorization");
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        self.work.clear();
        self.work.extend_from_slice(b);
        // Forward elimination replay: y[k] lives at work[pivot_rows[k]].
        for k in 0..self.n {
            let t = self.work[self.pivot_rows[k]];
            if t == Complex::ZERO {
                continue;
            }
            for &(r2, l) in &self.lcols[k] {
                self.work[r2] -= l * t;
            }
        }
        // Back substitution in original column coordinates over the
        // pivot-free U rows recorded at refactor time — branchless: no
        // per-entry pivot-column test in the inner loop.
        x.clear();
        x.resize(self.n, Complex::ZERO);
        for k in (0..self.n).rev() {
            let mut s = self.work[self.pivot_rows[k]];
            for &(c, v) in &self.urows[k] {
                s -= v * x[c];
            }
            x[self.pivot_cols[k]] = s / self.pivots[k];
        }
    }

    /// Clears per-factorization state, retaining every buffer's capacity.
    fn reset(&mut self, n: usize) {
        self.factored = false;
        self.n = n;
        if self.rows.len() < n {
            self.rows.resize_with(n, Vec::new);
            self.col_rows.resize_with(n, Vec::new);
            self.lcols.resize_with(n, Vec::new);
            self.urows.resize_with(n, Vec::new);
        }
        for r in &mut self.rows[..n] {
            r.clear();
        }
        for c in &mut self.col_rows[..n] {
            c.clear();
        }
        for l in &mut self.lcols[..n] {
            l.clear();
        }
        for u in &mut self.urows[..n] {
            u.clear();
        }
        self.row_active.clear();
        self.row_active.resize(n, true);
        self.pivots.clear();
        self.pivot_rows.clear();
        self.pivot_cols.clear();
        self.det = ExtComplex::ONE;
    }

    /// The numeric elimination replay behind [`SparseLu::refactor_into`].
    fn refactor(&mut self, a: &Triplets, order: &PivotOrder) -> Result<(), FactorError> {
        let n = a.dim();
        self.reset(n);
        // Scatter raw triplets, then sort + merge duplicates per row.
        for &(r, c, v) in a.entries() {
            self.rows[r].push((c, v));
        }
        for row in &mut self.rows[..n] {
            row.sort_unstable_by_key(|&(c, _)| c);
            merge_sorted_duplicates(row);
        }
        for (r, row) in self.rows[..n].iter().enumerate() {
            for &(c, _) in row {
                self.col_rows[c].push(r);
            }
        }

        let mut det_mag = ExtProduct::ONE;
        for step in 0..n {
            let pr = order.rows[step];
            let pc = order.cols[step];
            let pivot = match self.rows[pr].binary_search_by_key(&pc, |&(c, _)| c) {
                Ok(pos) => self.rows[pr][pos].1,
                Err(_) => Complex::ZERO,
            };
            if pivot == Complex::ZERO {
                return Err(FactorError::Singular { step });
            }
            det_mag.mul_complex(pivot);
            self.pivots.push(pivot);
            self.pivot_rows.push(pr);
            self.pivot_cols.push(pc);
            self.row_active[pr] = false;

            // Detach the pivot row and the pivot column's row list so the
            // target-row updates can borrow `self.rows` mutably; both are
            // returned afterwards (the Vec moves keep their capacity).
            let prow = std::mem::take(&mut self.rows[pr]);
            let targets = std::mem::take(&mut self.col_rows[pc]);
            // prow is final at its own pivot step: record the pivot-free U
            // row now so solve_into's back substitution is branch-free.
            let urow = &mut self.urows[step];
            for &(c, v) in &prow {
                if c != pc {
                    urow.push((c, v));
                }
            }
            let lcol = &mut self.lcols[step];
            for &r2 in &targets {
                if !self.row_active[r2] {
                    continue;
                }
                let row2 = &mut self.rows[r2];
                let Ok(pos) = row2.binary_search_by_key(&pc, |&(c, _)| c) else {
                    continue;
                };
                let a_rc = row2.remove(pos).1;
                if a_rc == Complex::ZERO {
                    continue;
                }
                let l = a_rc / pivot;
                lcol.push((r2, l));
                for &(c, v) in &prow {
                    if c == pc {
                        continue;
                    }
                    let delta = l * v;
                    match row2.binary_search_by_key(&c, |&(cc, _)| cc) {
                        Ok(pos) => row2[pos].1 -= delta,
                        Err(pos) => {
                            row2.insert(pos, (c, -delta));
                            self.col_rows[c].push(r2);
                        }
                    }
                }
            }
            self.rows[pr] = prow;
            self.col_rows[pc] = targets;
        }

        self.det = det_mag.value() * Complex::real(order.sign());
        self.factored = true;
        Ok(())
    }
}

/// In-place accumulation of duplicate columns in a sorted row.
fn merge_sorted_duplicates(row: &mut Vec<(usize, Complex)>) {
    let mut w = 0usize;
    for i in 0..row.len() {
        let (c, v) = row[i];
        if w > 0 && row[w - 1].0 == c {
            row[w - 1].1 += v;
        } else {
            row[w] = (c, v);
            w += 1;
        }
    }
    row.truncate(w);
}

enum PivotStrategy {
    Markowitz { threshold: f64 },
    Fixed(PivotOrder),
}

fn factor_impl(a: &Triplets, strategy: PivotStrategy) -> Result<SparseLu, FactorError> {
    let n = a.dim();
    let mut rows: Vec<BTreeMap<usize, Complex>> = a.to_rows();
    // col_rows[c]: active rows holding a (possibly zero) entry in column c.
    let mut col_rows: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (r, row) in rows.iter().enumerate() {
        for (&c, _) in row.iter() {
            col_rows[c].insert(r);
        }
    }
    let mut row_active = vec![true; n];
    let mut col_active = vec![true; n];

    let mut order_rows = Vec::with_capacity(n);
    let mut order_cols = Vec::with_capacity(n);
    let mut lcols = Vec::with_capacity(n);
    let mut urows = Vec::with_capacity(n);
    let mut pivots = Vec::with_capacity(n);
    let mut det_mag = ExtProduct::ONE;
    let initial_nnz: usize = rows.iter().map(|r| r.len()).sum();

    for step in 0..n {
        let (pr, pc) = match &strategy {
            PivotStrategy::Markowitz { threshold } => {
                select_markowitz(&rows, &col_rows, &row_active, *threshold)
                    .ok_or(FactorError::Singular { step })?
            }
            PivotStrategy::Fixed(ord) => (ord.rows[step], ord.cols[step]),
        };
        let pivot = rows[pr].get(&pc).copied().unwrap_or(Complex::ZERO);
        if pivot == Complex::ZERO {
            return Err(FactorError::Singular { step });
        }
        det_mag.mul_complex(pivot);
        order_rows.push(pr);
        order_cols.push(pc);
        pivots.push(pivot);
        row_active[pr] = false;
        col_active[pc] = false;

        // Detach the pivot row; record U (without the pivot entry).
        let prow = std::mem::take(&mut rows[pr]);
        for (&c, _) in prow.iter() {
            col_rows[c].remove(&pr);
        }
        let urow: Vec<(usize, Complex)> =
            prow.iter().filter(|&(&c, _)| c != pc).map(|(&c, &v)| (c, v)).collect();

        // Eliminate column pc from remaining active rows.
        let targets: Vec<usize> = col_rows[pc].iter().copied().filter(|&r| row_active[r]).collect();
        let mut lcol = Vec::with_capacity(targets.len());
        for r2 in targets {
            let a_rc = rows[r2].remove(&pc).unwrap_or(Complex::ZERO);
            col_rows[pc].remove(&r2);
            if a_rc == Complex::ZERO {
                continue;
            }
            let l = a_rc / pivot;
            lcol.push((r2, l));
            for &(c, v) in &urow {
                let delta = l * v;
                match rows[r2].entry(c) {
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        *e.get_mut() -= delta;
                    }
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(-delta);
                        col_rows[c].insert(r2);
                    }
                }
            }
        }
        lcols.push(lcol);
        urows.push(urow);
    }

    let _ = col_active;
    let order = PivotOrder { rows: order_rows, cols: order_cols };
    let det = det_mag.value() * Complex::real(order.sign());
    let final_nnz: usize = urows.iter().map(|u| u.len() + 1).sum::<usize>()
        + lcols.iter().map(|l| l.len()).sum::<usize>();
    Ok(SparseLu {
        n,
        order,
        lcols,
        urows,
        pivots,
        det,
        fill_in: final_nnz.saturating_sub(initial_nnz),
    })
}

/// Markowitz pivot selection with threshold stability test.
fn select_markowitz(
    rows: &[BTreeMap<usize, Complex>],
    col_rows: &[BTreeSet<usize>],
    row_active: &[bool],
    threshold: f64,
) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize, usize, f64)> = None; // (r, c, markowitz, |a|)
    for (r, row) in rows.iter().enumerate() {
        if !row_active[r] || row.is_empty() {
            continue;
        }
        let row_max = row.values().map(|v| v.abs()).fold(0.0, f64::max);
        if row_max == 0.0 {
            continue;
        }
        let r_nnz = row.values().filter(|v| **v != Complex::ZERO).count();
        for (&c, &v) in row.iter() {
            let mag = v.abs();
            if mag < threshold * row_max || mag == 0.0 {
                continue;
            }
            let c_nnz = col_rows[c].iter().filter(|&&rr| row_active[rr]).count();
            let mark = (r_nnz - 1) * (c_nnz.saturating_sub(1));
            let better = match best {
                None => true,
                Some((_, _, bm, bmag)) => mark < bm || (mark == bm && mag > bmag),
            };
            if better {
                best = Some((r, c, mark, mag));
            }
        }
    }
    best.map(|(r, c, _, _)| (r, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri(dim: usize, entries: &[(usize, usize, f64)]) -> Triplets {
        let mut t = Triplets::new(dim);
        for &(r, c, v) in entries {
            t.add(r, c, Complex::real(v));
        }
        t
    }

    #[test]
    fn solve_small_system() {
        let a = tri(
            3,
            &[
                (0, 0, 4.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        );
        let lu = SparseLu::factor(&a).unwrap();
        let x_true = vec![Complex::real(1.0), Complex::real(-2.0), Complex::real(0.5)];
        let b = a.to_dense().mul_vec(&x_true);
        let x = lu.solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((*got - *want).abs() < 1e-12);
        }
    }

    #[test]
    fn det_matches_dense() {
        let a = tri(
            4,
            &[
                (0, 0, 2.0),
                (0, 3, 1.0),
                (1, 1, -1.0),
                (1, 2, 0.5),
                (2, 0, 3.0),
                (2, 2, 4.0),
                (3, 1, 1.0),
                (3, 3, -2.0),
            ],
        );
        let lu = SparseLu::factor(&a).unwrap();
        let dense = a.to_dense().det();
        let diff = (lu.det() - dense).norm();
        assert!((diff / dense.norm()).to_f64() < 1e-12, "{} vs {}", lu.det(), dense);
    }

    #[test]
    fn det_sign_permutation() {
        // Anti-diagonal identity: det = sign of reversal permutation.
        for n in 2..7 {
            let mut t = Triplets::new(n);
            for i in 0..n {
                t.add(i, n - 1 - i, Complex::ONE);
            }
            let lu = SparseLu::factor(&t).unwrap();
            let expect = if (n * (n - 1) / 2) % 2 == 0 { 1.0 } else { -1.0 };
            assert!(
                (lu.det().to_complex() - Complex::real(expect)).abs() < 1e-12,
                "n={n}: {}",
                lu.det()
            );
        }
    }

    #[test]
    fn singular_detected() {
        let a = tri(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)]);
        match SparseLu::factor(&a) {
            Err(FactorError::Singular { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
        // Structurally singular: empty row.
        let b = tri(2, &[(0, 0, 1.0)]);
        assert!(matches!(SparseLu::factor(&b), Err(FactorError::Singular { .. })));
    }

    #[test]
    fn complex_entries() {
        let mut t = Triplets::new(2);
        t.add(0, 0, Complex::new(0.0, 1.0));
        t.add(0, 1, Complex::real(1.0));
        t.add(1, 0, Complex::real(1.0));
        t.add(1, 1, Complex::new(0.0, -1.0));
        // det = (j)(-j) - 1 = 1 - 1 = 0 → singular
        assert!(SparseLu::factor(&t).is_err());
        // Perturb to make it regular.
        t.add(1, 1, Complex::real(0.5));
        let lu = SparseLu::factor(&t).unwrap();
        let dense = t.to_dense().det();
        assert!(((lu.det() - dense).norm() / dense.norm()).to_f64() < 1e-12);
    }

    #[test]
    fn refactor_same_values_matches() {
        let a = tri(
            3,
            &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (1, 0, 1.0), (2, 2, 5.0), (2, 1, -1.0)],
        );
        let lu = SparseLu::factor(&a).unwrap();
        let re = SparseLu::refactor(&a, lu.order()).unwrap();
        assert!(((lu.det() - re.det()).norm()).to_f64() < 1e-12);
        let b = vec![Complex::ONE; 3];
        let x1 = lu.solve(&b);
        let x2 = re.solve(&b);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((*p - *q).abs() < 1e-13);
        }
    }

    #[test]
    fn refactor_new_values_same_pattern() {
        let mut a = Triplets::new(2);
        a.add(0, 0, Complex::real(1.0));
        a.add(1, 1, Complex::real(1.0));
        a.add(0, 1, Complex::real(0.25));
        let lu = SparseLu::factor(&a).unwrap();
        // New values, same pattern.
        let mut b = Triplets::new(2);
        b.add(0, 0, Complex::real(3.0));
        b.add(1, 1, Complex::real(-2.0));
        b.add(0, 1, Complex::real(1.0));
        let re = SparseLu::refactor(&b, lu.order()).unwrap();
        assert!((re.det().to_complex() - Complex::real(-6.0)).abs() < 1e-12);
    }

    #[test]
    fn refactor_dimension_mismatch() {
        let a = tri(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let lu = SparseLu::factor(&a).unwrap();
        let b = tri(3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        assert!(matches!(
            SparseLu::refactor(&b, lu.order()),
            Err(FactorError::OrderMismatch { expected: 2, actual: 3 })
        ));
    }

    #[test]
    fn extreme_scale_determinant() {
        // Diagonal with huge spread: det = 1e-100·1e100·1e-200 = 1e-200…
        // then another 1e-200 → product 1e-400, beyond f64.
        let mut t = Triplets::new(4);
        for (i, &v) in [1e-100, 1e100, 1e-200, 1e-200].iter().enumerate() {
            t.add(i, i, Complex::real(v));
        }
        let lu = SparseLu::factor(&t).unwrap();
        assert!((lu.det().norm().log10() + 400.0).abs() < 1e-9);
    }

    #[test]
    fn markowitz_prefers_sparse_pivot() {
        // An arrow matrix: dense first row/col. Markowitz should not pick
        // the (0,0) corner first (that fills everything); after factoring,
        // fill-in must stay small.
        let n = 12;
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.add(i, i, Complex::real(2.0));
        }
        for i in 1..n {
            t.add(0, i, Complex::real(1.0));
            t.add(i, 0, Complex::real(1.0));
        }
        let lu = SparseLu::factor(&t).unwrap();
        assert!(lu.fill_in() <= 2, "fill-in {}", lu.fill_in());
        // Compare determinant with the dense oracle.
        let dense = t.to_dense().det();
        assert!(((lu.det() - dense).norm() / dense.norm()).to_f64() < 1e-12);
    }

    #[test]
    fn workspace_refactor_matches_refactor() {
        let a = tri(
            4,
            &[
                (0, 0, 2.0),
                (0, 3, 1.0),
                (1, 1, -1.0),
                (1, 2, 0.5),
                (2, 0, 3.0),
                (2, 2, 4.0),
                (3, 1, 1.0),
                (3, 3, -2.0),
            ],
        );
        let lu = SparseLu::factor(&a).unwrap();
        let mut ws = LuWorkspace::new();
        SparseLu::refactor_into(&a, lu.order(), &mut ws).unwrap();
        assert!(((lu.det() - ws.det()).norm()).to_f64() < 1e-14, "{} vs {}", lu.det(), ws.det());
        let b = vec![Complex::real(1.0), Complex::real(-2.0), Complex::real(0.5), Complex::ONE];
        let mut x = Vec::new();
        ws.solve_into(&b, &mut x);
        for (p, q) in x.iter().zip(&lu.solve(&b)) {
            assert!((*p - *q).abs() < 1e-13);
        }
    }

    #[test]
    fn workspace_new_values_same_pattern_and_reuse() {
        // An arrow matrix with fill-in, refactored over a sweep of values:
        // the workspace result must track a fresh refactor at every step,
        // and the buffers must survive being reused.
        let n = 10;
        let build = |w: f64| {
            let mut t = Triplets::new(n);
            for i in 0..n {
                t.add(i, i, Complex::new(2.0 + i as f64, w));
            }
            for i in 1..n {
                t.add(0, i, Complex::real(1.0));
                t.add(i, 0, Complex::new(0.5, -w));
            }
            t
        };
        let order = SparseLu::factor(&build(0.1)).unwrap().order().clone();
        let mut ws = LuWorkspace::new();
        let mut x = Vec::new();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 1.0)).collect();
        for k in 0..12 {
            let t = build(0.1 + 0.3 * k as f64);
            SparseLu::refactor_into(&t, &order, &mut ws).unwrap();
            let reference = SparseLu::refactor(&t, &order).unwrap();
            let rel = ((ws.det() - reference.det()).norm() / reference.det().norm()).to_f64();
            assert!(rel < 1e-13, "sweep step {k}: det rel {rel:.2e}");
            ws.solve_into(&b, &mut x);
            for (p, q) in x.iter().zip(&reference.solve(&b)) {
                assert!((*p - *q).abs() < 1e-12, "sweep step {k}");
            }
        }
    }

    #[test]
    fn workspace_reports_zero_pivot_and_recovers() {
        let a = tri(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]);
        let order = SparseLu::factor(&a).unwrap().order().clone();
        // Zero out the prescribed pivot's position: the replay must report
        // Singular at some step…
        let mut ws = LuWorkspace::new();
        let zeroed = tri(2, &[(0, 0, 0.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 0.0)]);
        assert!(matches!(
            SparseLu::refactor_into(&zeroed, &order, &mut ws),
            Err(FactorError::Singular { .. })
        ));
        // …and the same workspace must still be usable afterwards.
        SparseLu::refactor_into(&a, &order, &mut ws).unwrap();
        assert!((ws.det().to_complex() - Complex::real(-2.0)).abs() < 1e-12);
    }

    #[test]
    fn workspace_dimension_mismatch_and_dim_changes() {
        let a2 = tri(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let a3 = tri(3, &[(0, 0, 2.0), (1, 1, 3.0), (2, 2, 4.0)]);
        let o2 = SparseLu::factor(&a2).unwrap().order().clone();
        let o3 = SparseLu::factor(&a3).unwrap().order().clone();
        let mut ws = LuWorkspace::new();
        assert!(matches!(
            SparseLu::refactor_into(&a3, &o2, &mut ws),
            Err(FactorError::OrderMismatch { expected: 2, actual: 3 })
        ));
        // One workspace across different dimensions.
        SparseLu::refactor_into(&a3, &o3, &mut ws).unwrap();
        assert!((ws.det().to_complex() - Complex::real(24.0)).abs() < 1e-12);
        SparseLu::refactor_into(&a2, &o2, &mut ws).unwrap();
        assert!((ws.det().to_complex() - Complex::ONE).abs() < 1e-12);
        let mut x = Vec::new();
        ws.solve_into(&[Complex::real(5.0), Complex::real(7.0)], &mut x);
        assert_eq!(x.len(), 2);
        assert!((x[0] - Complex::real(5.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no factorization")]
    fn workspace_solve_before_factor_panics() {
        LuWorkspace::new().solve_into(&[], &mut Vec::new());
    }

    #[test]
    fn permutation_sign_helper() {
        assert_eq!(permutation_sign(&[0, 1, 2]), 1.0);
        assert_eq!(permutation_sign(&[1, 0, 2]), -1.0);
        assert_eq!(permutation_sign(&[1, 2, 0]), 1.0);
        assert_eq!(permutation_sign(&[]), 1.0);
    }

    #[test]
    fn dim_zero_matrix() {
        let t = Triplets::new(0);
        let lu = SparseLu::factor(&t).unwrap();
        assert_eq!(lu.det().to_complex(), Complex::ONE);
        assert!(lu.solve(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn solve_wrong_length_panics() {
        let t = tri(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        SparseLu::factor(&t).unwrap().solve(&[Complex::ONE]);
    }
}
