//! Compiled symbolic LU kernels: do the structural work once, replay it as
//! a flat instruction stream at every numeric point.
//!
//! [`LuWorkspace`](crate::LuWorkspace) replays a recorded
//! [`PivotOrder`] without pivot *search*, but it still pays a per-point
//! *structural* tax: triplet scatter into per-row vectors, a
//! `sort_unstable` per row, binary searches for every pivot and update
//! target, and `Vec::insert` for every fill-in entry — even though the
//! fill pattern is byte-for-byte identical at every point of a sweep.
//! A [`FactorProgram`] hoists all of that to compile time (the
//! Sparse-1.3/KLU split classic circuit simulators use for exactly this
//! workload):
//!
//! 1. **Symbolic factorization** — elimination is simulated on the
//!    sparsity pattern alone, computing the complete fill-in pattern of
//!    `L + U` ahead of time.
//! 2. **Slot layout** — every entry of the filled pattern gets one index
//!    ("slot") in a flat value array; a precomputed *stamp map* sends each
//!    raw input entry directly to its slot.
//! 3. **Instruction stream** — the elimination is encoded as flat arrays
//!    of precomputed slot indices: one pivot slot per step, one `(row,
//!    slot)` pair per multiplier, one `(dest, src)` pair per update.
//!
//! Numeric refactorization ([`FactorProgram::refactor`] /
//! [`FactorProgram::refactor_values`]) is then *scatter-then-replay* into
//! a reusable [`ProgramScratch`]: **zero sorting, zero searching, zero
//! insertion, zero allocation** in the steady state — a branch-free
//! linear pass over the instruction stream. See the
//! [crate docs](crate) for the phase diagram relating the three phases.
//!
//! # Example
//!
//! ```
//! use refgen_numeric::Complex;
//! use refgen_sparse::{FactorProgram, ProgramScratch, SparseLu, Triplets};
//!
//! # fn main() -> Result<(), refgen_sparse::FactorError> {
//! let mut a = Triplets::new(2);
//! a.add(0, 0, Complex::real(2.0));
//! a.add(0, 1, Complex::real(1.0));
//! a.add(1, 0, Complex::real(1.0));
//! a.add(1, 1, Complex::real(3.0));
//! let order = SparseLu::factor(&a)?.order().clone(); // pivot search, once
//! let program = FactorProgram::for_triplets(&a, &order)?; // symbolic, once
//!
//! let mut scratch = ProgramScratch::new();
//! let mut x = Vec::new();
//! program.refactor(&a, &mut scratch)?; // flat replay: no sort/search/insert
//! program.solve_into(&mut scratch, &[Complex::real(3.0), Complex::real(4.0)], &mut x);
//! assert!((x[0] - Complex::real(1.0)).abs() < 1e-12);
//! assert!((scratch.det().to_complex() - Complex::real(5.0)).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use crate::lu::{FactorError, PivotOrder};
use crate::triplets::Triplets;
use refgen_numeric::{Complex, ExtComplex};
use std::collections::HashMap;

/// One multiplier of the elimination: the entry at `slot` (original
/// position `(row, pivot column)`) is divided by the pivot and then drives
/// the updates in `ops[ops_start..ops_end]`.
#[derive(Clone, Copy, Debug)]
struct LEntry {
    /// Original row index the multiplier eliminates (needed by the solve's
    /// forward pass).
    row: u32,
    /// Slot holding `a_{row,pc}` before, and the multiplier `l` after.
    slot: u32,
    /// First update op of this multiplier.
    ops_start: u32,
    /// One past the last update op of this multiplier.
    ops_end: u32,
}

/// One precomputed update: `vals[dest] -= l · vals[src]`.
#[derive(Clone, Copy, Debug)]
struct Op {
    dest: u32,
    src: u32,
}

/// A compiled symbolic factorization of one `(sparsity pattern,
/// [`PivotOrder`])` pair. See the [module docs](self).
///
/// The program is immutable and `Sync`: a parallel executor shares one
/// program across workers, each owning a [`ProgramScratch`]. Compilation is
/// **value-independent** — any matrix with the same raw entry positions
/// (in the same input order) replays the same program, which is what lets
/// a Monte-Carlo fleet of same-topology variants compile once.
#[derive(Clone, Debug)]
pub struct FactorProgram {
    n: usize,
    slots: usize,
    /// The raw input positions the program was compiled for, in input
    /// order (debug validation of [`FactorProgram::refactor`] callers).
    positions: Vec<(u32, u32)>,
    /// Stamp map: raw input entry `i` accumulates into `vals[scatter[i]]`.
    scatter: Vec<u32>,
    /// Slot of the pivot entry, per elimination step.
    pivot_slots: Vec<u32>,
    /// Pivot row (original index) per step.
    pivot_rows: Vec<u32>,
    /// Pivot column (original index) per step.
    pivot_cols: Vec<u32>,
    /// Range into `lents` per step.
    lranges: Vec<(u32, u32)>,
    lents: Vec<LEntry>,
    ops: Vec<Op>,
    /// Range into `uents` per step: the pivot-free U row.
    uranges: Vec<(u32, u32)>,
    /// `(original column, slot)` per stored U entry, pivot excluded.
    uents: Vec<(u32, u32)>,
    fill_in: usize,
    sign: f64,
}

impl FactorProgram {
    /// Compiles the program for the pattern given by `positions` (raw
    /// `(row, col)` entry positions, duplicates allowed — they accumulate
    /// into one slot) under `order`.
    ///
    /// # Errors
    ///
    /// [`FactorError::OrderMismatch`] when `order` is for a different
    /// dimension, and [`FactorError::Singular`] when a prescribed pivot
    /// position is **structurally** absent from the filled pattern (every
    /// numeric replay would fail at that step regardless of values).
    ///
    /// # Panics
    ///
    /// Panics if a position is out of range for `dim`.
    pub fn compile(
        dim: usize,
        positions: &[(usize, usize)],
        order: &PivotOrder,
    ) -> Result<FactorProgram, FactorError> {
        if order.dim() != dim {
            return Err(FactorError::OrderMismatch { expected: order.dim(), actual: dim });
        }
        // Slot assignment for the raw pattern + per-row sorted column sets.
        let mut slot_of: HashMap<(usize, usize), u32> = HashMap::new();
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); dim];
        let mut scatter = Vec::with_capacity(positions.len());
        for &(r, c) in positions {
            assert!(r < dim && c < dim, "position ({r},{c}) out of range for dim {dim}");
            let next = u32::try_from(slot_of.len()).expect("pattern exceeds u32 slots");
            let slot = *slot_of.entry((r, c)).or_insert_with(|| {
                rows[r].push(c);
                next
            });
            scatter.push(slot);
        }
        for row in &mut rows {
            row.sort_unstable();
        }
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); dim];
        for (r, row) in rows.iter().enumerate() {
            for &c in row {
                col_rows[c].push(r);
            }
        }
        let initial_nnz = slot_of.len();
        let mut row_active = vec![true; dim];

        let mut pivot_slots = Vec::with_capacity(dim);
        let mut pivot_rows = Vec::with_capacity(dim);
        let mut pivot_cols = Vec::with_capacity(dim);
        let mut lranges = Vec::with_capacity(dim);
        let mut lents: Vec<LEntry> = Vec::new();
        let mut ops: Vec<Op> = Vec::new();
        let mut uranges = Vec::with_capacity(dim);
        let mut uents: Vec<(u32, u32)> = Vec::new();

        // Symbolic elimination: identical structure to the numeric replay
        // in `LuWorkspace::refactor`, on positions instead of values.
        for step in 0..dim {
            let pr = order.rows()[step];
            let pc = order.cols()[step];
            if rows[pr].binary_search(&pc).is_err() {
                return Err(FactorError::Singular { step });
            }
            row_active[pr] = false;
            pivot_slots.push(slot_of[&(pr, pc)]);
            pivot_rows.push(pr as u32);
            pivot_cols.push(pc as u32);

            // rows[pr] is final at its own pivot step (updates only reach
            // rows that are still active): record the pivot-free U row.
            let ustart = uents.len() as u32;
            for &c in &rows[pr] {
                if c != pc {
                    uents.push((c as u32, slot_of[&(pr, c)]));
                }
            }
            uranges.push((ustart, uents.len() as u32));

            let lstart = lents.len() as u32;
            let prow = std::mem::take(&mut rows[pr]);
            let targets = std::mem::take(&mut col_rows[pc]);
            for &r2 in &targets {
                if !row_active[r2] {
                    continue;
                }
                let Ok(pos) = rows[r2].binary_search(&pc) else {
                    continue;
                };
                // The eliminated entry leaves U's pattern (its slot stays,
                // holding the multiplier — the entry of L this step makes).
                rows[r2].remove(pos);
                let ops_start = ops.len() as u32;
                for &c in &prow {
                    if c == pc {
                        continue;
                    }
                    let src = slot_of[&(pr, c)];
                    let dest = match rows[r2].binary_search(&c) {
                        Ok(_) => slot_of[&(r2, c)],
                        Err(ins) => {
                            // Fill-in: a brand-new slot, discovered once at
                            // compile time instead of at every point.
                            let slot =
                                u32::try_from(slot_of.len()).expect("pattern exceeds u32 slots");
                            slot_of.insert((r2, c), slot);
                            rows[r2].insert(ins, c);
                            col_rows[c].push(r2);
                            slot
                        }
                    };
                    ops.push(Op { dest, src });
                }
                lents.push(LEntry {
                    row: r2 as u32,
                    slot: slot_of[&(r2, pc)],
                    ops_start,
                    ops_end: ops.len() as u32,
                });
            }
            rows[pr] = prow;
            col_rows[pc] = targets;
            lranges.push((lstart, lents.len() as u32));
        }

        Ok(FactorProgram {
            n: dim,
            slots: slot_of.len(),
            positions: positions.iter().map(|&(r, c)| (r as u32, c as u32)).collect(),
            scatter,
            pivot_slots,
            pivot_rows,
            pivot_cols,
            lranges,
            lents,
            ops,
            uranges,
            uents,
            fill_in: slot_of.len() - initial_nnz,
            sign: order.sign(),
        })
    }

    /// Compiles the program for `a`'s raw entry positions (in entry order,
    /// so [`FactorProgram::refactor`] accepts any same-pattern matrix).
    ///
    /// # Errors
    ///
    /// See [`FactorProgram::compile`].
    pub fn for_triplets(a: &Triplets, order: &PivotOrder) -> Result<FactorProgram, FactorError> {
        let positions: Vec<(usize, usize)> = a.entries().iter().map(|&(r, c, _)| (r, c)).collect();
        Self::compile(a.dim(), &positions, order)
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of value slots (nonzeros of `L + U`, fill-in included).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Fill-in entries the elimination creates (precomputed, so numeric
    /// replay never inserts).
    pub fn fill_in(&self) -> usize {
        self.fill_in
    }

    /// Total update instructions in the stream — the inner-loop work of
    /// one numeric replay.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Numeric refactorization of `a` (same positions the program was
    /// compiled for, values free to differ): scatter every raw entry
    /// through the stamp map, then replay the instruction stream.
    ///
    /// # Errors
    ///
    /// [`FactorError::Singular`] when a prescribed pivot is exactly zero
    /// at this matrix's values (the caller falls back to a fresh
    /// [`SparseLu::factor`](crate::SparseLu::factor), exactly like the
    /// [`LuWorkspace`](crate::LuWorkspace) path).
    ///
    /// # Panics
    ///
    /// Panics if `a`'s dimension or raw entry count differs from the
    /// compiled pattern (debug builds additionally verify every position).
    pub fn refactor(&self, a: &Triplets, scratch: &mut ProgramScratch) -> Result<(), FactorError> {
        assert_eq!(a.dim(), self.n, "matrix dimension differs from compiled pattern");
        assert_eq!(
            a.raw_len(),
            self.scatter.len(),
            "raw entry count differs from compiled pattern"
        );
        debug_assert!(
            a.entries()
                .iter()
                .zip(&self.positions)
                .all(|(&(r, c, _), &(pr, pc))| r == pr as usize && c == pc as usize),
            "entry positions differ from compiled pattern"
        );
        self.refactor_values(a.entries().iter().map(|&(_, _, v)| v), scratch)
    }

    /// As [`FactorProgram::refactor`], with the values supplied directly in
    /// compiled-position order — the zero-copy path sweep plans use to
    /// stamp `K₀ + s·K₁` straight into the slot array without assembling a
    /// [`Triplets`] at all.
    ///
    /// # Errors
    ///
    /// See [`FactorProgram::refactor`].
    ///
    /// # Panics
    ///
    /// Panics if `values` yields a different number of items than the
    /// compiled pattern has raw entries.
    pub fn refactor_values<I>(
        &self,
        values: I,
        scratch: &mut ProgramScratch,
    ) -> Result<(), FactorError>
    where
        I: IntoIterator<Item = Complex>,
    {
        scratch.begin(self);
        let mut count = 0usize;
        for v in values {
            // Indexing `scatter[count]` (rather than zipping, which would
            // silently truncate) makes a too-long iterator panic just like
            // a too-short one.
            scratch.vals[self.scatter[count] as usize] += v;
            count += 1;
        }
        assert_eq!(count, self.scatter.len(), "value count differs from compiled pattern");
        self.replay(scratch)
    }

    /// The branch-free elimination replay.
    fn replay(&self, scratch: &mut ProgramScratch) -> Result<(), FactorError> {
        let vals = &mut scratch.vals;
        let mut det = ExtComplex::ONE;
        for step in 0..self.n {
            let pivot = vals[self.pivot_slots[step] as usize];
            if pivot == Complex::ZERO {
                return Err(FactorError::Singular { step });
            }
            det *= ExtComplex::from_complex(pivot);
            let (ls, le) = self.lranges[step];
            for ent in &self.lents[ls as usize..le as usize] {
                let l = vals[ent.slot as usize] / pivot;
                vals[ent.slot as usize] = l;
                for op in &self.ops[ent.ops_start as usize..ent.ops_end as usize] {
                    let d = l * vals[op.src as usize];
                    vals[op.dest as usize] -= d;
                }
            }
        }
        scratch.det = det * Complex::real(self.sign);
        scratch.factored = true;
        Ok(())
    }

    /// Solves `A·x = b` with the factorization last replayed into
    /// `scratch`, writing into `x` (cleared and refilled; both `x` and the
    /// internal forward-elimination buffer retain their allocations). The
    /// back substitution runs over the precompiled pivot-free U entries —
    /// no per-entry pivot test.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` holds no successful replay of this program or
    /// `b.len()` differs from the dimension.
    pub fn solve_into(&self, scratch: &mut ProgramScratch, b: &[Complex], x: &mut Vec<Complex>) {
        assert!(scratch.factored, "scratch holds no factorization");
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        scratch.work.clear();
        scratch.work.extend_from_slice(b);
        // Forward elimination replay: y[k] lives at work[pivot_rows[k]].
        for step in 0..self.n {
            let t = scratch.work[self.pivot_rows[step] as usize];
            if t == Complex::ZERO {
                continue;
            }
            let (ls, le) = self.lranges[step];
            for ent in &self.lents[ls as usize..le as usize] {
                scratch.work[ent.row as usize] -= scratch.vals[ent.slot as usize] * t;
            }
        }
        // Back substitution in original column coordinates.
        x.clear();
        x.resize(self.n, Complex::ZERO);
        for step in (0..self.n).rev() {
            let mut s = scratch.work[self.pivot_rows[step] as usize];
            let (us, ue) = self.uranges[step];
            for &(c, slot) in &self.uents[us as usize..ue as usize] {
                s -= scratch.vals[slot as usize] * x[c as usize];
            }
            x[self.pivot_cols[step] as usize] = s / scratch.vals[self.pivot_slots[step] as usize];
        }
    }
}

/// Per-executor mutable state for [`FactorProgram`] execution: the flat
/// slot-value array, the forward-elimination buffer, and the determinant
/// of the last successful replay. All buffers retain capacity across
/// points — the steady state performs **zero heap allocation**. One
/// scratch per worker thread; the program is shared.
#[derive(Clone, Debug, Default)]
pub struct ProgramScratch {
    vals: Vec<Complex>,
    work: Vec<Complex>,
    det: ExtComplex,
    factored: bool,
}

impl ProgramScratch {
    /// An empty scratch; buffers size themselves on first use.
    pub fn new() -> ProgramScratch {
        ProgramScratch::default()
    }

    /// Determinant of the last successful replay (sign-corrected for the
    /// compiled order's permutations), in extended range.
    ///
    /// # Panics
    ///
    /// Panics if no replay has succeeded yet.
    pub fn det(&self) -> ExtComplex {
        assert!(self.factored, "scratch holds no factorization");
        self.det
    }

    /// Clears the slot array for a new replay of `program`, retaining
    /// capacity (a `resize` within capacity is a plain linear fill).
    fn begin(&mut self, program: &FactorProgram) {
        self.factored = false;
        self.vals.clear();
        self.vals.resize(program.slots, Complex::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::{LuWorkspace, SparseLu};

    fn tri(dim: usize, entries: &[(usize, usize, f64)]) -> Triplets {
        let mut t = Triplets::new(dim);
        for &(r, c, v) in entries {
            t.add(r, c, Complex::real(v));
        }
        t
    }

    /// The arrow matrix with fill-in used by the workspace tests: the
    /// program must reproduce workspace refactorization across a sweep of
    /// values, reusing one scratch.
    #[test]
    fn program_matches_workspace_across_value_sweep() {
        let n = 10;
        let build = |w: f64| {
            let mut t = Triplets::new(n);
            for i in 0..n {
                t.add(i, i, Complex::new(2.0 + i as f64, w));
            }
            for i in 1..n {
                t.add(0, i, Complex::real(1.0));
                t.add(i, 0, Complex::new(0.5, -w));
            }
            t
        };
        let order = SparseLu::factor(&build(0.1)).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&build(0.1), &order).unwrap();
        assert_eq!(program.dim(), n);

        let mut scratch = ProgramScratch::new();
        let mut ws = LuWorkspace::new();
        let (mut x, mut xw) = (Vec::new(), Vec::new());
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 1.0)).collect();
        for k in 0..12 {
            let t = build(0.1 + 0.3 * k as f64);
            program.refactor(&t, &mut scratch).unwrap();
            SparseLu::refactor_into(&t, &order, &mut ws).unwrap();
            let rel = ((scratch.det() - ws.det()).norm() / ws.det().norm()).to_f64();
            assert!(rel < 1e-13, "sweep step {k}: det rel {rel:.2e}");
            program.solve_into(&mut scratch, &b, &mut x);
            ws.solve_into(&b, &mut xw);
            for (p, q) in x.iter().zip(&xw) {
                assert!((*p - *q).abs() < 1e-12, "sweep step {k}");
            }
        }
    }

    /// A cyclic bidiagonal pattern fills in a cascade under diagonal
    /// pivoting: eliminating `(0,0)` fills `(n−1,1)`, eliminating `(1,1)`
    /// fills `(n−1,2)`, and so on. The compiled program must discover every
    /// fill slot at compile time and still match the workspace replay.
    #[test]
    fn fill_in_cascade_is_precompiled() {
        let n = 8;
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.add(i, i, Complex::real(4.0 + i as f64));
            t.add(i, (i + 1) % n, Complex::real(1.0));
        }
        let lu = SparseLu::factor(&t).unwrap();
        let program = FactorProgram::for_triplets(&t, lu.order()).unwrap();
        assert_eq!(program.fill_in(), lu.fill_in(), "compile-time fill matches numeric fill");
        assert!(program.fill_in() > 0, "cyclic pattern must fill");
        assert!(program.op_count() > 0);

        let mut scratch = ProgramScratch::new();
        let mut ws = LuWorkspace::new();
        program.refactor(&t, &mut scratch).unwrap();
        SparseLu::refactor_into(&t, lu.order(), &mut ws).unwrap();
        let rel = ((scratch.det() - ws.det()).norm() / ws.det().norm()).to_f64();
        assert!(rel < 1e-13, "det rel {rel:.2e}");
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(1.0, i as f64)).collect();
        let (mut x, mut xw) = (Vec::new(), Vec::new());
        program.solve_into(&mut scratch, &b, &mut x);
        ws.solve_into(&b, &mut xw);
        for (p, q) in x.iter().zip(&xw) {
            assert!((*p - *q).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_entries_accumulate_through_stamp_map() {
        let mut a = Triplets::new(2);
        a.add(0, 0, Complex::real(1.0));
        a.add(0, 0, Complex::real(1.0)); // accumulates: a00 = 2
        a.add(0, 1, Complex::real(1.0));
        a.add(1, 1, Complex::real(3.0));
        let order = SparseLu::factor(&a).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&a, &order).unwrap();
        let mut scratch = ProgramScratch::new();
        program.refactor(&a, &mut scratch).unwrap();
        assert!((scratch.det().to_complex() - Complex::real(6.0)).abs() < 1e-12);
    }

    #[test]
    fn singular_replay_reports_same_step_and_scratch_recovers() {
        let a = tri(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]);
        let order = SparseLu::factor(&a).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&a, &order).unwrap();
        let zeroed = tri(2, &[(0, 0, 0.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 0.0)]);
        let mut scratch = ProgramScratch::new();
        let got = program.refactor(&zeroed, &mut scratch);
        let want = SparseLu::refactor(&zeroed, &order);
        match (got, want) {
            (Err(FactorError::Singular { step: a }), Err(FactorError::Singular { step: b })) => {
                assert_eq!(a, b, "error parity: same failing elimination step");
            }
            other => panic!("expected matching Singular, got {other:?}"),
        }
        // The same scratch stays usable afterwards.
        program.refactor(&a, &mut scratch).unwrap();
        assert!((scratch.det().to_complex() - Complex::real(-2.0)).abs() < 1e-12);
    }

    #[test]
    fn structurally_absent_pivot_fails_at_compile_time() {
        // An order recorded for a denser pattern dies symbolically on a
        // sparser one — at compile time, not at every numeric point.
        let dense = tri(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]);
        let order = SparseLu::factor(&dense).unwrap().order().clone();
        let sparse = tri(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let positions: Vec<(usize, usize)> =
            sparse.entries().iter().map(|&(r, c, _)| (r, c)).collect();
        match FactorProgram::compile(2, &positions, &order) {
            Ok(_) => {
                // The dense order may happen to pivot down the diagonal, in
                // which case compiling succeeds — accept either, but a
                // compiled program must then replay fine.
            }
            Err(FactorError::Singular { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = tri(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let order = SparseLu::factor(&a).unwrap().order().clone();
        assert!(matches!(
            FactorProgram::compile(3, &[(0, 0), (1, 1), (2, 2)], &order),
            Err(FactorError::OrderMismatch { expected: 2, actual: 3 })
        ));
    }

    #[test]
    fn dim_zero_program() {
        let t = Triplets::new(0);
        let order = SparseLu::factor(&t).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&t, &order).unwrap();
        let mut scratch = ProgramScratch::new();
        program.refactor(&t, &mut scratch).unwrap();
        assert_eq!(scratch.det().to_complex(), Complex::ONE);
        let mut x = Vec::new();
        program.solve_into(&mut scratch, &[], &mut x);
        assert!(x.is_empty());
    }

    #[test]
    #[should_panic]
    fn too_many_values_panics() {
        let a = tri(1, &[(0, 0, 2.0)]);
        let order = SparseLu::factor(&a).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&a, &order).unwrap();
        let _ = program.refactor_values([Complex::ONE, Complex::ONE], &mut ProgramScratch::new());
    }

    #[test]
    #[should_panic(expected = "value count differs")]
    fn too_few_values_panics() {
        let a = tri(2, &[(0, 0, 2.0), (1, 1, 2.0)]);
        let order = SparseLu::factor(&a).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&a, &order).unwrap();
        let _ = program.refactor_values([Complex::ONE], &mut ProgramScratch::new());
    }

    #[test]
    #[should_panic(expected = "no factorization")]
    fn solve_before_replay_panics() {
        let a = tri(1, &[(0, 0, 1.0)]);
        let order = SparseLu::factor(&a).unwrap().order().clone();
        let program = FactorProgram::for_triplets(&a, &order).unwrap();
        program.solve_into(&mut ProgramScratch::new(), &[Complex::ONE], &mut Vec::new());
    }
}
